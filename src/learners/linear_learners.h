// Table 5 "sklearn lr": logistic regression with inverse regularization
// strength C in [0.03125, 32768]. Classification only, like the paper's
// search space.
#pragma once

#include "learners/learner.h"

namespace flaml {

class LogisticLearner final : public Learner {
 public:
  const std::string& name() const override;
  bool supports(Task task) const override { return is_classification(task); }
  ConfigSpace space(Task task, std::size_t full_size) const override;
  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override;
  double initial_cost_multiplier() const override { return 160.0; }
  std::unique_ptr<Model> load_model(std::istream& in) const override;
};

}  // namespace flaml
