#include "learners/learner.h"

#include "common/error.h"

namespace flaml {

void Model::save(std::ostream&) const {
  throw InvalidArgument("this model does not support serialization");
}

std::unique_ptr<Model> Learner::load_model(std::istream&) const {
  throw InvalidArgument("learner '" + name() + "' does not support model loading");
}

}  // namespace flaml
