#include "learners/forest_learners.h"

#include <algorithm>

#include "common/error.h"
#include "forest/forest.h"

namespace flaml {

namespace {

class ForestModelWrapper final : public Model {
 public:
  explicit ForestModelWrapper(ForestModel model, int n_threads = 1)
      : model_(std::move(model)), n_threads_(n_threads) {}
  Predictions predict(const DataView& view) const override {
    return model_.predict(view, n_threads_);
  }
  void save(std::ostream& out) const override { model_.save(out); }

 private:
  ForestModel model_;
  int n_threads_;
};

double get(const Config& config, const std::string& name) {
  auto it = config.find(name);
  FLAML_REQUIRE(it != config.end(), "config missing '" << name << "'");
  return it->second;
}

ConfigSpace forest_space(Task task, std::size_t full_size) {
  ConfigSpace space;
  const double cap =
      static_cast<double>(std::min<std::size_t>(2048, std::max<std::size_t>(full_size, 5)));
  space.add_int("tree_num", 4, cap, 4, /*log=*/true, /*cost_related=*/true);
  space.add_float("max_features", 0.1, 1.0, 1.0);
  if (is_classification(task)) {
    space.add_categorical("criterion", {"gini", "entropy"}, 0);
  }
  return space;
}

ForestParams forest_params(const TrainContext& ctx, const Config& config,
                           bool extra_trees) {
  ForestParams params;
  params.n_trees = static_cast<int>(get(config, "tree_num"));
  params.max_features = get(config, "max_features");
  if (auto it = config.find("criterion"); it != config.end()) {
    params.criterion =
        it->second < 0.5 ? SplitCriterion::Gini : SplitCriterion::Entropy;
  }
  params.extra_trees = extra_trees;
  params.max_seconds = ctx.max_seconds;
  params.fail_on_deadline = ctx.fail_on_deadline;
  params.seed = ctx.seed;
  params.n_threads = ctx.n_threads;
  params.substrate = ctx.substrate;
  params.report = ctx.report;
  // Stream per-chunk validation losses only when the caller installed an
  // observer AND supplied validation rows; otherwise the training path is
  // exactly the pre-racing one (single parallel_for over all trees).
  if (ctx.progress && ctx.valid != nullptr) {
    params.valid = ctx.valid;
    params.progress = ctx.progress;
  }
  return params;
}

std::unique_ptr<Model> load_forest_model(std::istream& in) {
  return std::make_unique<ForestModelWrapper>(ForestModel::load(in));
}

}  // namespace

std::unique_ptr<Model> RandomForestLearner::load_model(std::istream& in) const {
  return load_forest_model(in);
}
std::unique_ptr<Model> ExtraTreesLearner::load_model(std::istream& in) const {
  return load_forest_model(in);
}

const std::string& RandomForestLearner::name() const {
  static const std::string n = "rf";
  return n;
}

ConfigSpace RandomForestLearner::space(Task task, std::size_t full_size) const {
  return forest_space(task, full_size);
}

std::unique_ptr<Model> RandomForestLearner::train(const TrainContext& ctx,
                                                  const Config& config) const {
  return std::make_unique<ForestModelWrapper>(
      train_forest(ctx.train, forest_params(ctx, config, /*extra_trees=*/false)),
      ctx.n_threads);
}

const std::string& ExtraTreesLearner::name() const {
  static const std::string n = "extra_tree";
  return n;
}

ConfigSpace ExtraTreesLearner::space(Task task, std::size_t full_size) const {
  return forest_space(task, full_size);
}

std::unique_ptr<Model> ExtraTreesLearner::train(const TrainContext& ctx,
                                                const Config& config) const {
  return std::make_unique<ForestModelWrapper>(
      train_forest(ctx.train, forest_params(ctx, config, /*extra_trees=*/true)),
      ctx.n_threads);
}

}  // namespace flaml
