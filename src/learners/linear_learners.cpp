#include "learners/linear_learners.h"

#include "common/error.h"
#include "linear/linear_model.h"

namespace flaml {

namespace {

class LinearModelWrapper final : public Model {
 public:
  explicit LinearModelWrapper(LinearModel model) : model_(std::move(model)) {}
  Predictions predict(const DataView& view) const override {
    return model_.predict(view);
  }
  void save(std::ostream& out) const override { model_.save(out); }

 private:
  LinearModel model_;
};

}  // namespace

std::unique_ptr<Model> LogisticLearner::load_model(std::istream& in) const {
  return std::make_unique<LinearModelWrapper>(LinearModel::load(in));
}

const std::string& LogisticLearner::name() const {
  static const std::string n = "lr";
  return n;
}

ConfigSpace LogisticLearner::space(Task task, std::size_t) const {
  FLAML_REQUIRE(is_classification(task), "lr supports classification only");
  ConfigSpace space;
  space.add_float("C", 0.03125, 32768.0, 1.0, /*log=*/true);
  return space;
}

std::unique_ptr<Model> LogisticLearner::train(const TrainContext& ctx,
                                              const Config& config) const {
  auto it = config.find("C");
  FLAML_REQUIRE(it != config.end(), "config missing 'C'");
  LinearParams params;
  params.c = it->second;
  params.seed = ctx.seed;
  return std::make_unique<LinearModelWrapper>(train_linear(ctx.train, params));
}

}  // namespace flaml
