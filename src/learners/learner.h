// The learner abstraction of the ML layer (paper Figure 3).
//
// A Learner bundles a training procedure with its hyperparameter search
// space (Table 5). Learners are stateless; train() returns a Model. Users
// can add custom learners through the registry (paper §3:
// `automl.add_learner(...)`) — anything with well-defined train/predict
// methods and a ConfigSpace qualifies.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "common/progress.h"
#include "data/dataset.h"
#include "metrics/error_metric.h"
#include "tree/binning.h"
#include "tuners/config_space.h"

namespace flaml {

class Model {
 public:
  virtual ~Model() = default;
  virtual Predictions predict(const DataView& view) const = 0;

  // Text serialization. All built-in learners support it; custom learners
  // may leave the default, which throws InvalidArgument.
  virtual void save(std::ostream& out) const;
};

struct TrainContext {
  DataView train;
  // Validation rows for learners with early stopping (may be null).
  const DataView* valid = nullptr;
  // Wall-clock cap for this single training call; the substitute for
  // killing an overrunning trial. CONTRACT: 0 means UNLIMITED — there is no
  // way to request a zero-second fit, and with an unlimited cap
  // fail_on_deadline is irrelevant because the deadline can never fire.
  // Learners must implement exactly this rule (the trial runner relies on
  // it when it divides an unlimited trial budget into per-fold caps: 0 / k
  // folds must stay "unlimited", not become "kill immediately").
  double max_seconds = 0.0;
  // Only meaningful when max_seconds > 0. true: exceeding max_seconds
  // throws DeadlineExceeded (kill semantics for search trials). false:
  // training stops early and returns the partial model (safety cap for
  // final retrains).
  bool fail_on_deadline = false;
  std::uint64_t seed = 0;
  // Intra-trial worker threads for learners that support them (tree
  // learners parallelize histogram build / split finding / prediction).
  // Any value must produce the bit-identical model; 1 = serial.
  int n_threads = 1;
  // Optional cross-trial binned-substrate provider (tree/binning.h). When
  // set, histogram trainers ask it for a prebuilt fit+encode of exactly
  // ctx.train's rows instead of re-binning; a null return — or a substrate
  // whose rows/max_bin do not match — falls back to a fresh fit, so a
  // provider can never change the trained model, only skip redundant work.
  SubstrateProvider substrate;
  // Optional streamed learning-curve observer (racing). Invoked by learners
  // that train iteratively (boosting, forests) after each completed unit,
  // with the current validation loss; requires `valid` to be set for the
  // loss to be meaningful. Null = no streaming (default). A callback that
  // always returns true must not change the trained model.
  ProgressCallback progress;
  // Optional out-param: trainers record iterations_completed/planned and
  // the stop reason here, progressively, so the counts survive a throwing
  // exit. Null = not recorded.
  TrainReport* report = nullptr;
};

class Learner {
 public:
  virtual ~Learner() = default;

  virtual const std::string& name() const = 0;

  // Whether this learner supports the task (e.g. `lr` is
  // classification-only, as in the paper's search space).
  virtual bool supports(Task task) const = 0;

  // The hyperparameter space for `task` given the full training size S
  // (Table 5 ranges depend on S through min(32768, S) style caps).
  virtual ConfigSpace space(Task task, std::size_t full_size) const = 0;

  virtual std::unique_ptr<Model> train(const TrainContext& ctx,
                                       const Config& config) const = 0;

  // Relative cost of this learner's cheapest configuration versus the
  // fastest learner's (paper appendix constants: lightgbm 1, xgboost 1.6,
  // extra_tree 1.9, rf 2, catboost 15, lr 160). Seeds the cold-start ECI1.
  virtual double initial_cost_multiplier() const = 0;

  // Deserialize a model previously saved by one of this learner's models.
  // Default throws InvalidArgument (custom learners may not support it).
  virtual std::unique_ptr<Model> load_model(std::istream& in) const;
};

using LearnerPtr = std::shared_ptr<const Learner>;

}  // namespace flaml
