#include "learners/gbdt_learners.h"

#include <algorithm>
#include <cmath>

#include "boosting/gbdt.h"
#include "common/error.h"

namespace flaml {

namespace {

class GbdtModelWrapper final : public Model {
 public:
  explicit GbdtModelWrapper(GBDTModel model, int n_threads = 1)
      : model_(std::move(model)), n_threads_(n_threads) {}
  Predictions predict(const DataView& view) const override {
    return model_.predict(view, n_threads_);
  }
  void save(std::ostream& out) const override { model_.save(out); }
  const GBDTModel& inner() const { return model_; }

 private:
  GBDTModel model_;
  int n_threads_;
};

double get(const Config& config, const std::string& name) {
  auto it = config.find(name);
  FLAML_REQUIRE(it != config.end(), "config missing '" << name << "'");
  return it->second;
}

// Validation view to train against: the caller's valid rows when a streamed
// progress observer wants per-iteration losses, else none. Gating on
// ctx.progress keeps the no-racing path exactly as before (no validation
// scoring at all); with a callback installed the extra scoring is pure
// observation, so the model stays byte-identical either way.
const DataView* stream_valid(const TrainContext& ctx) {
  return ctx.progress ? ctx.valid : nullptr;
}

void fill_stream_params(GBDTParams& params, const TrainContext& ctx) {
  params.report = ctx.report;
  if (ctx.progress && ctx.valid != nullptr) params.progress = ctx.progress;
}

double tree_cap(std::size_t full_size) {
  return static_cast<double>(std::min<std::size_t>(32768, std::max<std::size_t>(full_size, 5)));
}

// Common Table-5 entries shared by the LightGBM- and XGBoost-style spaces.
void add_shared_gbdt_params(ConfigSpace& space, std::size_t full_size) {
  const double cap = tree_cap(full_size);
  space.add_int("tree_num", 4, cap, 4, /*log=*/true, /*cost_related=*/true);
  space.add_int("leaf_num", 4, cap, 4, /*log=*/true, /*cost_related=*/true);
  space.add_float("min_child_weight", 0.01, 20.0, 20.0, /*log=*/true);
  space.add_float("learning_rate", 0.01, 1.0, 0.1, /*log=*/true);
  space.add_float("subsample", 0.6, 1.0, 1.0);
  space.add_float("reg_alpha", 1e-10, 1.0, 1e-10, /*log=*/true);
  space.add_float("reg_lambda", 1e-10, 1.0, 1.0, /*log=*/true);
}

void fill_shared_gbdt_params(GBDTParams& params, const Config& config) {
  params.n_trees = static_cast<int>(get(config, "tree_num"));
  params.max_leaves = std::max(2, static_cast<int>(get(config, "leaf_num")));
  params.min_child_weight = get(config, "min_child_weight");
  params.learning_rate = get(config, "learning_rate");
  params.subsample = get(config, "subsample");
  params.reg_alpha = get(config, "reg_alpha");
  params.reg_lambda = get(config, "reg_lambda");
}

}  // namespace

namespace {
std::unique_ptr<Model> load_gbdt_model(std::istream& in) {
  return std::make_unique<GbdtModelWrapper>(GBDTModel::load(in));
}
}  // namespace

std::unique_ptr<Model> LightGbmLearner::load_model(std::istream& in) const {
  return load_gbdt_model(in);
}
std::unique_ptr<Model> XgboostLearner::load_model(std::istream& in) const {
  return load_gbdt_model(in);
}
std::unique_ptr<Model> CatBoostLearner::load_model(std::istream& in) const {
  return load_gbdt_model(in);
}

// ---------------------------------------------------------------- LightGBM

const std::string& LightGbmLearner::name() const {
  static const std::string n = "lgbm";
  return n;
}

ConfigSpace LightGbmLearner::space(Task, std::size_t full_size) const {
  ConfigSpace space;
  add_shared_gbdt_params(space, full_size);
  space.add_int("max_bin", 7, 1023, 255, /*log=*/true);
  space.add_float("colsample_bytree", 0.7, 1.0, 1.0);
  return space;
}

std::unique_ptr<Model> LightGbmLearner::train(const TrainContext& ctx,
                                              const Config& config) const {
  GBDTParams params;
  fill_shared_gbdt_params(params, config);
  params.max_bin = static_cast<int>(get(config, "max_bin"));
  params.colsample_bytree = get(config, "colsample_bytree");
  params.tree_style = TreeStyle::LeafWise;
  params.max_seconds = ctx.max_seconds;
  params.fail_on_deadline = ctx.fail_on_deadline;
  params.seed = ctx.seed;
  params.n_threads = ctx.n_threads;
  params.substrate = ctx.substrate;
  fill_stream_params(params, ctx);
  return std::make_unique<GbdtModelWrapper>(
      train_gbdt(ctx.train, stream_valid(ctx), params), ctx.n_threads);
}

// ----------------------------------------------------------------- XGBoost

const std::string& XgboostLearner::name() const {
  static const std::string n = "xgboost";
  return n;
}

ConfigSpace XgboostLearner::space(Task, std::size_t full_size) const {
  ConfigSpace space;
  add_shared_gbdt_params(space, full_size);
  space.add_float("colsample_bylevel", 0.6, 1.0, 1.0);
  space.add_float("colsample_bytree", 0.7, 1.0, 1.0);
  return space;
}

std::unique_ptr<Model> XgboostLearner::train(const TrainContext& ctx,
                                             const Config& config) const {
  GBDTParams params;
  fill_shared_gbdt_params(params, config);
  params.max_bin = 255;
  params.colsample_bylevel = get(config, "colsample_bylevel");
  params.colsample_bytree = get(config, "colsample_bytree");
  params.tree_style = TreeStyle::LeafWise;
  params.max_seconds = ctx.max_seconds;
  params.fail_on_deadline = ctx.fail_on_deadline;
  params.seed = ctx.seed;
  params.n_threads = ctx.n_threads;
  params.substrate = ctx.substrate;
  fill_stream_params(params, ctx);
  return std::make_unique<GbdtModelWrapper>(
      train_gbdt(ctx.train, stream_valid(ctx), params), ctx.n_threads);
}

// ---------------------------------------------------------------- CatBoost

const std::string& CatBoostLearner::name() const {
  static const std::string n = "catboost";
  return n;
}

ConfigSpace CatBoostLearner::space(Task, std::size_t) const {
  ConfigSpace space;
  space.add_int("early_stop_rounds", 10, 150, 10, /*log=*/true, /*cost_related=*/true);
  space.add_float("learning_rate", 0.005, 0.2, 0.1, /*log=*/true);
  return space;
}

std::unique_ptr<Model> CatBoostLearner::train(const TrainContext& ctx,
                                              const Config& config) const {
  GBDTParams params;
  params.tree_style = TreeStyle::Oblivious;
  params.oblivious_depth = 6;
  params.learning_rate = get(config, "learning_rate");
  params.early_stopping_rounds = static_cast<int>(get(config, "early_stop_rounds"));
  // Iteration cap scaled down from CatBoost's 1000 default to our
  // laptop-scale budgets; early stopping is the operative control. Softmax
  // trains one tree per class per iteration, so the cap shrinks with the
  // class count to keep the trial cost comparable across tasks.
  const int outputs = ctx.train.data().task() == Task::MultiClassification
                          ? std::max(1, ctx.train.data().n_classes())
                          : 1;
  params.n_trees = std::max(40, 300 / outputs);
  params.min_child_weight = 0.0;
  params.reg_lambda = 3.0;
  params.max_seconds = ctx.max_seconds;
  params.fail_on_deadline = ctx.fail_on_deadline;
  params.seed = ctx.seed;
  params.n_threads = ctx.n_threads;
  params.report = ctx.report;

  if (ctx.valid != nullptr && ctx.valid->n_rows() > 0) {
    params.substrate = ctx.substrate;
    params.progress = ctx.progress;
    return std::make_unique<GbdtModelWrapper>(
        train_gbdt(ctx.train, ctx.valid, params), ctx.n_threads);
  }
  // No validation data supplied: carve an internal 10% holdout (CatBoost
  // behaves similarly when given eval_fraction).
  const std::size_t n = ctx.train.n_rows();
  if (n < 20) {
    params.early_stopping_rounds = 0;
    params.n_trees = 50;
    params.substrate = ctx.substrate;
    return std::make_unique<GbdtModelWrapper>(
        train_gbdt(ctx.train, nullptr, params), ctx.n_threads);
  }
  // Internal 90/10 carve: training runs on a subset of ctx.train's rows, so
  // the provider's substrate (keyed to ctx.train exactly) does not apply;
  // the trainer's row-count guard would reject it anyway.
  std::vector<std::uint32_t> train_rows, valid_rows;
  for (std::size_t i = 0; i < n; ++i) {
    (i % 10 == 9 ? valid_rows : train_rows).push_back(ctx.train.row_index(i));
  }
  DataView train_view(ctx.train.data(), std::move(train_rows));
  DataView valid_view(ctx.train.data(), std::move(valid_rows));
  // Streamed losses come from the internal carve — deterministic (i % 10),
  // so curves stay comparable across catboost trials at a sample size.
  params.progress = ctx.progress;
  return std::make_unique<GbdtModelWrapper>(
      train_gbdt(train_view, &valid_view, params), ctx.n_threads);
}

}  // namespace flaml
