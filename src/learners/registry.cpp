#include "learners/registry.h"

#include "common/error.h"
#include "learners/forest_learners.h"
#include "learners/gbdt_learners.h"
#include "learners/linear_learners.h"

namespace flaml {

std::vector<LearnerPtr> builtin_learners() {
  static const std::vector<LearnerPtr> learners = {
      std::make_shared<LightGbmLearner>(),  std::make_shared<XgboostLearner>(),
      std::make_shared<CatBoostLearner>(),  std::make_shared<RandomForestLearner>(),
      std::make_shared<ExtraTreesLearner>(), std::make_shared<LogisticLearner>(),
  };
  return learners;
}

LearnerPtr builtin_learner(const std::string& name) {
  for (const auto& l : builtin_learners()) {
    if (l->name() == name) return l;
  }
  throw InvalidArgument("unknown learner '" + name + "'");
}

std::vector<LearnerPtr> default_learners(Task task) {
  std::vector<LearnerPtr> out;
  for (const auto& l : builtin_learners()) {
    if (l->supports(task)) out.push_back(l);
  }
  return out;
}

}  // namespace flaml
