// Table 5 "sklearn random forest" / "sklearn extra trees": tree num,
// max features, split criterion (classification only).
#pragma once

#include "learners/learner.h"

namespace flaml {

class RandomForestLearner final : public Learner {
 public:
  const std::string& name() const override;
  bool supports(Task) const override { return true; }
  ConfigSpace space(Task task, std::size_t full_size) const override;
  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override;
  double initial_cost_multiplier() const override { return 2.0; }
  std::unique_ptr<Model> load_model(std::istream& in) const override;
};

class ExtraTreesLearner final : public Learner {
 public:
  const std::string& name() const override;
  bool supports(Task) const override { return true; }
  ConfigSpace space(Task task, std::size_t full_size) const override;
  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override;
  double initial_cost_multiplier() const override { return 1.9; }
  std::unique_ptr<Model> load_model(std::istream& in) const override;
};

}  // namespace flaml
