// Built-in learner registry and the default estimator lists.
#pragma once

#include <vector>

#include "learners/learner.h"

namespace flaml {

// All built-in learners (Table 5): lgbm, xgboost, catboost, rf, extra_tree, lr.
std::vector<LearnerPtr> builtin_learners();

// Look up a built-in learner by name; throws InvalidArgument if unknown.
LearnerPtr builtin_learner(const std::string& name);

// The default estimator list for a task (lr excluded for regression).
std::vector<LearnerPtr> default_learners(Task task);

}  // namespace flaml
