// The three boosted learners of Table 5: LightGBM-style, XGBoost-style and
// CatBoost-style, all built on the shared GBDT trainer with their
// respective growth policies and search spaces.
#pragma once

#include "learners/learner.h"

namespace flaml {

// Table 5 "LightGBM": tree num, leaf num, min child weight, learning rate,
// subsample, reg alpha, reg lambda, max bin, colsample by tree.
class LightGbmLearner final : public Learner {
 public:
  const std::string& name() const override;
  bool supports(Task) const override { return true; }
  ConfigSpace space(Task task, std::size_t full_size) const override;
  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override;
  double initial_cost_multiplier() const override { return 1.0; }
  std::unique_ptr<Model> load_model(std::istream& in) const override;
};

// Table 5 "XGBoost": tree num, leaf num, min child weight, learning rate,
// subsample, reg alpha, reg lambda, colsample by level, colsample by tree.
class XgboostLearner final : public Learner {
 public:
  const std::string& name() const override;
  bool supports(Task) const override { return true; }
  ConfigSpace space(Task task, std::size_t full_size) const override;
  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override;
  double initial_cost_multiplier() const override { return 1.6; }
  std::unique_ptr<Model> load_model(std::istream& in) const override;
};

// Table 5 "CatBoost": early stop rounds, learning rate; oblivious trees of
// fixed depth with a large iteration cap, stopped early on validation data.
class CatBoostLearner final : public Learner {
 public:
  const std::string& name() const override;
  bool supports(Task) const override { return true; }
  ConfigSpace space(Task task, std::size_t full_size) const override;
  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override;
  double initial_cost_multiplier() const override { return 15.0; }
  std::unique_ptr<Model> load_model(std::istream& in) const override;
};

}  // namespace flaml
