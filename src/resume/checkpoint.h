// Crash-safe search checkpointing (the resume subsystem).
//
// A SearchCheckpoint is the COMPLETE state of an AutoML search at a trial
// boundary: per-learner ECI bookkeeping and FLOW2 walk state, current
// sample sizes, the controller RNG stream, elapsed-budget accounting, the
// full trial history, the trial-runner counter, the metrics registry and —
// for post-fit snapshots — the best model blob (the save_best_model
// format). The contract, proven by tests/stress/stress_resume.cpp: a search
// killed at ANY trial boundary and resumed from its last checkpoint
// produces the identical trial history, best error and run-summary totals
// as the never-interrupted run, serial and parallel.
//
// On-disk format (version 3; v2 added the per-learner eci last_ok_cost
// field, v3 added the racing envelope state and per-pending-trial racing
// plan snapshots — no silent migration, older files are rejected):
//   flaml-checkpoint v3 <nbytes> <fnv64hex>\n
//   <exactly nbytes bytes of compact JSON payload>
// The FNV-1a 64 checksum covers the payload bytes, so ANY truncation or bit
// flip — including ones that would still parse as valid JSON — surfaces as
// a SerializationError, never as a silently different search. Writes go to
// "<path>.tmp" and are renamed into place, so a crash mid-write leaves the
// previous checkpoint intact.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "automl/history.h"
#include "common/json.h"
#include "resume/serial_util.h"

namespace flaml::resume {

inline constexpr int kCheckpointVersion = 3;

// FNV-1a 64-bit over a byte range (the payload checksum).
std::uint64_t fnv1a64(const char* data, std::size_t n);

// Binary blob <-> lowercase hex (model blobs inside the JSON payload).
std::string encode_blob(const std::string& bytes);
std::string decode_blob(const std::string& hex);  // throws SerializationError

// A trial that was launched but not yet committed when the checkpoint was
// written (parallel search keeps up to n_parallel of these in flight).
// Resume re-runs exactly these — same config, sample size and seed salt, in
// the original launch order — before proposing anything new, which is what
// stitches the controller's decision sequence back together.
struct PendingTrial {
  std::string learner;
  std::uint64_t trial_index = 0;  // per-learner, 1-based
  std::uint64_t seed_salt = 0;    // never 0 (0 = runner-counter domain)
  bool grow_sample = false;
  std::size_t sample_size = 0;
  ConfigMap config;
  // Launch-time racing plan snapshot (src/automl/racing.h): the envelope
  // this trial was racing against when it launched. Re-running the trial
  // against TODAY'S monitor state would race a newer envelope and could
  // kill (or spare) it differently than the uninterrupted run — the
  // snapshot is what makes racing-on resume byte-identical.
  bool racing_enabled = false;
  std::vector<double> envelope;  // running-min; empty = no incumbent yet
};

struct LearnerCheckpoint {
  std::string name;
  JsonValue eci;    // EciState::to_json()
  JsonValue tuner;  // Flow2::to_json()
  std::size_t sample_size = 0;
  double best_error = std::numeric_limits<double>::infinity();
  ConfigMap best_config;
  std::uint64_t n_proposed = 0;
};

struct SearchCheckpoint {
  int version = kCheckpointVersion;

  // Compatibility fingerprint: resume_from rejects a checkpoint whose task,
  // metric, seed, resampling or learner lineup differs from the options it
  // is resumed with (the search would silently diverge otherwise).
  std::string task;
  std::string metric;
  std::uint64_t seed = 1;
  std::string resampling;

  // Controller state.
  std::uint64_t iteration = 0;  // committed trials == history.size()
  bool calibrated = false;
  double elapsed_seconds = 0.0;  // budget already spent before the resume
  JsonValue rng;                 // controller stream (json_rng)

  // Global best.
  std::string best_learner;  // empty = no successful trial yet
  double best_error = std::numeric_limits<double>::infinity();
  std::size_t best_sample_size = 0;
  ConfigMap best_config;

  std::vector<LearnerCheckpoint> learners;
  std::vector<PendingTrial> pending;
  TrialHistory history;
  JsonValue runner;   // TrialRunner::to_json()
  JsonValue metrics;  // MetricsRegistry::state_to_json()
  // RacingMonitor::to_json() ({"envelopes": [...]}). Held as raw JSON:
  // flaml_resume links only flaml_common, so the semantic validation
  // (monotone envelopes, finite losses) runs in RacingMonitor::from_json
  // when the AutoML layer restores it; from_json below checks structure
  // only. Unset (null) serializes as the empty-monitor shape.
  JsonValue racing;

  // save_best_model bytes (empty = none: mid-search snapshot, or ensemble
  // mode, whose blended models are not serializable).
  std::string model_blob;

  JsonValue to_json() const;
  // Strict: throws SerializationError on any missing/ill-typed/out-of-range
  // field or violated cross-field invariant.
  static SearchCheckpoint from_json(const JsonValue& payload);

  // Atomic file I/O in the checksummed container format above.
  void save(const std::string& path) const;
  static SearchCheckpoint load(const std::string& path);
};

// Container layer, exposed separately so tests can corrupt payloads:
// serialize wraps a payload in the header+checksum envelope; parse verifies
// the envelope and returns the payload (SerializationError on any damage).
std::string serialize_checkpoint(const JsonValue& payload);
JsonValue parse_checkpoint(const std::string& text);
// Durable atomic write: "<path>.tmp" is written and fsync'd, renamed into
// place, and the directory entry fsync'd — a crash at any point leaves
// either the previous checkpoint or the new one, never a torn file that a
// later write()-without-sync could have surfaced. A non-empty `tmp_dir`
// stages the tmp file there instead; when that crosses a filesystem
// boundary (rename fails with EXDEV) the write falls back to a second
// synced copy next to the target. Reading a `path` that is missing while
// its "<path>.tmp" survives throws a SerializationError naming the tmp —
// a possibly half-written tmp is never loaded as a checkpoint.
void write_checkpoint_file(const std::string& path, const JsonValue& payload,
                           const std::string& tmp_dir = "");
JsonValue read_checkpoint_file(const std::string& path);

}  // namespace flaml::resume
