#include "resume/checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.h"

namespace flaml::resume {

namespace {

// Caps on what a corrupt file can make us allocate or loop over. All are
// far above anything a real search produces.
constexpr std::size_t kMaxLearners = 4096;
constexpr std::size_t kMaxPending = 65536;
constexpr std::size_t kMaxEnvelopes = 100000;
constexpr std::size_t kMaxEnvelopePoints = 1u << 20;
constexpr std::size_t kMaxHistory = 10000000;
constexpr std::size_t kMaxBlobBytes = 1u << 30;
constexpr std::size_t kMaxPayloadBytes = 1u << 31;

constexpr char kMagic[] = "flaml-checkpoint";

JsonValue record_to_json(const TrialRecord& r) {
  JsonValue out = JsonValue::make_object();
  out.set("iteration", JsonValue::make_number(r.iteration));
  out.set("finished_at", json_double(r.finished_at));
  out.set("learner", JsonValue::make_string(r.learner));
  out.set("config", json_config(r.config));
  out.set("sample_size", json_size(r.sample_size));
  out.set("error", json_double(r.error));
  out.set("cost", json_double(r.cost));
  out.set("best_error_so_far", json_double(r.best_error_so_far));
  return out;
}

TrialRecord record_from_json(const JsonValue& v) {
  TrialRecord r;
  r.iteration = static_cast<int>(req_int(v, "iteration", 1, 2147483647));
  r.finished_at = req_finite(v, "finished_at");
  FLAML_PARSE_REQUIRE(r.finished_at >= 0.0,
                      "trial record finished_at must be >= 0");
  r.learner = req_string(v, "learner");
  FLAML_PARSE_REQUIRE(!r.learner.empty(), "trial record learner must be non-empty");
  r.config = req_config(v, "config");
  r.sample_size = req_size(v, "sample_size", kMaxHistory * 1000);
  FLAML_PARSE_REQUIRE(r.sample_size >= 1, "trial record sample_size must be >= 1");
  // error is +inf for killed/failed trials; never NaN.
  r.error = req_double(v, "error");
  FLAML_PARSE_REQUIRE(!std::isnan(r.error), "trial record error must not be NaN");
  r.cost = req_finite(v, "cost");
  FLAML_PARSE_REQUIRE(r.cost >= 0.0, "trial record cost must be >= 0");
  r.best_error_so_far = req_double(v, "best_error_so_far");
  FLAML_PARSE_REQUIRE(!std::isnan(r.best_error_so_far),
                      "trial record best_error_so_far must not be NaN");
  return r;
}

}  // namespace

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ static_cast<unsigned char>(data[i])) * 0x100000001b3ULL;
  }
  return h;
}

std::string encode_blob(const std::string& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

std::string decode_blob(const std::string& hex) {
  FLAML_PARSE_REQUIRE(hex.size() % 2 == 0, "blob hex has odd length");
  FLAML_PARSE_REQUIRE(hex.size() / 2 <= kMaxBlobBytes, "blob too large");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    FLAML_PARSE_REQUIRE(false, "blob holds a non-hex character");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

JsonValue SearchCheckpoint::to_json() const {
  JsonValue out = JsonValue::make_object();
  out.set("version", JsonValue::make_number(version));
  out.set("task", JsonValue::make_string(task));
  out.set("metric", JsonValue::make_string(metric));
  out.set("seed", json_u64(seed));
  out.set("resampling", JsonValue::make_string(resampling));
  out.set("iteration", json_size(static_cast<std::size_t>(iteration)));
  out.set("calibrated", JsonValue::make_bool(calibrated));
  out.set("elapsed_seconds", json_double(elapsed_seconds));
  out.set("rng", rng);
  out.set("best_learner", JsonValue::make_string(best_learner));
  out.set("best_error", json_double(best_error));
  out.set("best_sample_size", json_size(best_sample_size));
  out.set("best_config", json_config(best_config));
  JsonValue& larr = out.set("learners", JsonValue::make_array());
  for (const LearnerCheckpoint& l : learners) {
    JsonValue entry = JsonValue::make_object();
    entry.set("name", JsonValue::make_string(l.name));
    entry.set("eci", l.eci);
    entry.set("tuner", l.tuner);
    entry.set("sample_size", json_size(l.sample_size));
    entry.set("best_error", json_double(l.best_error));
    entry.set("best_config", json_config(l.best_config));
    entry.set("n_proposed", json_u64(l.n_proposed));
    larr.push(std::move(entry));
  }
  JsonValue& parr = out.set("pending", JsonValue::make_array());
  for (const PendingTrial& p : pending) {
    JsonValue entry = JsonValue::make_object();
    entry.set("learner", JsonValue::make_string(p.learner));
    entry.set("trial_index", json_u64(p.trial_index));
    entry.set("seed_salt", json_u64(p.seed_salt));
    entry.set("grow_sample", JsonValue::make_bool(p.grow_sample));
    entry.set("sample_size", json_size(p.sample_size));
    entry.set("config", json_config(p.config));
    entry.set("racing_enabled", JsonValue::make_bool(p.racing_enabled));
    JsonValue& earr = entry.set("envelope", JsonValue::make_array());
    for (double v : p.envelope) earr.push(json_double(v));
    parr.push(std::move(entry));
  }
  JsonValue& harr = out.set("history", JsonValue::make_array());
  for (const TrialRecord& r : history) harr.push(record_to_json(r));
  out.set("runner", runner);
  out.set("metrics", metrics);
  if (racing.is_object()) {
    out.set("racing", racing);
  } else {
    // Unset (e.g. a hand-built checkpoint): the empty-monitor shape, so
    // every v3 file carries the field and from_json can require it.
    JsonValue empty = JsonValue::make_object();
    empty.set("envelopes", JsonValue::make_array());
    out.set("racing", std::move(empty));
  }
  out.set("model", JsonValue::make_string(encode_blob(model_blob)));
  return out;
}

SearchCheckpoint SearchCheckpoint::from_json(const JsonValue& payload) {
  SearchCheckpoint ckpt;
  ckpt.version = static_cast<int>(req_int(payload, "version", 1, 1000000));
  FLAML_PARSE_REQUIRE(ckpt.version == kCheckpointVersion,
                      "checkpoint version " << ckpt.version
                                            << " is not the supported version "
                                            << kCheckpointVersion);
  ckpt.task = req_string(payload, "task");
  ckpt.metric = req_string(payload, "metric");
  FLAML_PARSE_REQUIRE(!ckpt.task.empty() && !ckpt.metric.empty(),
                      "checkpoint task/metric must be non-empty");
  ckpt.seed = req_u64(payload, "seed");
  ckpt.resampling = req_string(payload, "resampling");
  FLAML_PARSE_REQUIRE(ckpt.resampling == "cv" || ckpt.resampling == "holdout",
                      "checkpoint resampling must be 'cv' or 'holdout'");
  ckpt.iteration =
      static_cast<std::uint64_t>(req_size(payload, "iteration", kMaxHistory));
  ckpt.calibrated = req_bool(payload, "calibrated");
  // The first committed trial calibrates every cold-start ECI.
  FLAML_PARSE_REQUIRE(ckpt.calibrated == (ckpt.iteration > 0),
                      "checkpoint calibrated flag contradicts its iteration count");
  ckpt.elapsed_seconds = req_finite(payload, "elapsed_seconds");
  FLAML_PARSE_REQUIRE(ckpt.elapsed_seconds >= 0.0,
                      "checkpoint elapsed_seconds must be >= 0");
  ckpt.rng = req_object(payload, "rng");
  {
    // Validate the stream eagerly: a bad RNG state must fail the load, not
    // the first draw after resume.
    Rng probe;
    restore_rng_value(probe, ckpt.rng);
  }
  ckpt.best_learner = req_string(payload, "best_learner");
  ckpt.best_error = req_double(payload, "best_error");
  ckpt.best_sample_size = req_size(payload, "best_sample_size", kMaxHistory * 1000);
  ckpt.best_config = req_config(payload, "best_config");
  if (ckpt.best_learner.empty()) {
    FLAML_PARSE_REQUIRE(ckpt.best_error ==
                            std::numeric_limits<double>::infinity(),
                        "checkpoint without a best learner must carry +inf "
                        "best_error");
    FLAML_PARSE_REQUIRE(ckpt.best_config.empty(),
                        "checkpoint without a best learner must carry an "
                        "empty best_config");
  } else {
    FLAML_PARSE_REQUIRE(std::isfinite(ckpt.best_error),
                        "checkpoint best_error must be finite when a best "
                        "learner exists");
  }

  const JsonValue& larr = req_array(payload, "learners", kMaxLearners);
  FLAML_PARSE_REQUIRE(!larr.array.empty(), "checkpoint has no learners");
  bool best_learner_known = ckpt.best_learner.empty();
  for (const JsonValue& entry : larr.array) {
    LearnerCheckpoint l;
    l.name = req_string(entry, "name");
    FLAML_PARSE_REQUIRE(!l.name.empty(), "checkpoint learner name must be non-empty");
    for (const LearnerCheckpoint& prev : ckpt.learners) {
      FLAML_PARSE_REQUIRE(prev.name != l.name,
                          "duplicate checkpoint learner '" << l.name << "'");
    }
    if (l.name == ckpt.best_learner) best_learner_known = true;
    l.eci = req_object(entry, "eci");
    l.tuner = req_object(entry, "tuner");
    l.sample_size = req_size(entry, "sample_size", kMaxHistory * 1000);
    FLAML_PARSE_REQUIRE(l.sample_size >= 2,
                        "checkpoint learner sample_size must be >= 2");
    l.best_error = req_double(entry, "best_error");
    FLAML_PARSE_REQUIRE(!std::isnan(l.best_error),
                        "checkpoint learner best_error must not be NaN");
    l.best_config = req_config(entry, "best_config");
    l.n_proposed = req_u64(entry, "n_proposed");
    ckpt.learners.push_back(std::move(l));
  }
  FLAML_PARSE_REQUIRE(best_learner_known,
                      "checkpoint best_learner '" << ckpt.best_learner
                                                  << "' is not in its lineup");

  const JsonValue& parr = req_array(payload, "pending", kMaxPending);
  for (const JsonValue& entry : parr.array) {
    PendingTrial p;
    p.learner = req_string(entry, "learner");
    bool known = false;
    for (const LearnerCheckpoint& l : ckpt.learners) known |= l.name == p.learner;
    FLAML_PARSE_REQUIRE(known, "pending trial learner '" << p.learner
                                                         << "' is not in the lineup");
    for (const PendingTrial& prev : ckpt.pending) {
      // The controller keeps at most one outstanding trial per learner.
      FLAML_PARSE_REQUIRE(prev.learner != p.learner,
                          "two pending trials for learner '" << p.learner << "'");
    }
    p.trial_index = req_u64(entry, "trial_index");
    FLAML_PARSE_REQUIRE(p.trial_index >= 1, "pending trial_index must be >= 1");
    p.seed_salt = req_u64(entry, "seed_salt");
    FLAML_PARSE_REQUIRE(p.seed_salt != 0,
                        "pending seed_salt 0 would fall into the runner-counter "
                        "seed domain");
    p.grow_sample = req_bool(entry, "grow_sample");
    p.sample_size = req_size(entry, "sample_size", kMaxHistory * 1000);
    FLAML_PARSE_REQUIRE(p.sample_size >= 2, "pending sample_size must be >= 2");
    p.config = req_config(entry, "config");
    p.racing_enabled = req_bool(entry, "racing_enabled");
    const JsonValue& earr = req_array(entry, "envelope", kMaxEnvelopePoints);
    p.envelope.reserve(earr.array.size());
    for (const JsonValue& v : earr.array) {
      const double loss = double_value(v, "pending envelope point");
      FLAML_PARSE_REQUIRE(std::isfinite(loss),
                          "pending envelope points must be finite");
      FLAML_PARSE_REQUIRE(p.envelope.empty() || loss <= p.envelope.back(),
                          "pending envelope must be non-increasing "
                          "(a running minimum)");
      p.envelope.push_back(loss);
    }
    FLAML_PARSE_REQUIRE(p.racing_enabled || p.envelope.empty(),
                        "pending trial carries an envelope but racing is "
                        "disabled for it");
    ckpt.pending.push_back(std::move(p));
  }

  const JsonValue& harr = req_array(payload, "history", kMaxHistory);
  FLAML_PARSE_REQUIRE(harr.array.size() == ckpt.iteration,
                      "checkpoint history length " << harr.array.size()
                                                   << " != iteration count "
                                                   << ckpt.iteration);
  ckpt.history.reserve(harr.array.size());
  for (const JsonValue& entry : harr.array) {
    TrialRecord r = record_from_json(entry);
    FLAML_PARSE_REQUIRE(static_cast<std::size_t>(r.iteration) ==
                            ckpt.history.size() + 1,
                        "checkpoint history iterations must be 1..n in order");
    ckpt.history.push_back(std::move(r));
  }

  ckpt.runner = req_object(payload, "runner");
  ckpt.metrics = req_object(payload, "metrics");
  // Structural check only (bounded, well-typed); the monotonicity/finiteness
  // semantics live in RacingMonitor::from_json (flaml_automl — this library
  // cannot link it).
  ckpt.racing = req_object(payload, "racing");
  const JsonValue& renv = req_array(ckpt.racing, "envelopes", kMaxEnvelopes);
  for (const JsonValue& entry : renv.array) {
    FLAML_PARSE_REQUIRE(entry.is_object(),
                        "racing envelope entries must be objects");
    req_array(entry, "curve", kMaxEnvelopePoints);
  }
  ckpt.model_blob = decode_blob(req_string(payload, "model"));
  return ckpt;
}

std::string serialize_checkpoint(const JsonValue& payload) {
  const std::string body = dump_json_compact(payload);
  std::ostringstream out;
  out << kMagic << " v" << kCheckpointVersion << ' ' << body.size() << ' ';
  char checksum[17];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(fnv1a64(body.data(), body.size())));
  out << checksum << '\n' << body;
  return out.str();
}

JsonValue parse_checkpoint(const std::string& text) {
  const std::size_t eol = text.find('\n');
  FLAML_PARSE_REQUIRE(eol != std::string::npos, "checkpoint header line missing");
  std::istringstream header(text.substr(0, eol));
  std::string magic, version, checksum_hex;
  std::uint64_t nbytes = 0;
  header >> magic >> version >> nbytes >> checksum_hex;
  FLAML_PARSE_REQUIRE(!header.fail(), "malformed checkpoint header");
  FLAML_PARSE_REQUIRE(magic == kMagic, "not a flaml checkpoint file");
  FLAML_PARSE_REQUIRE(version == "v" + std::to_string(kCheckpointVersion),
                      "unsupported checkpoint version '" << version << "'");
  FLAML_PARSE_REQUIRE(nbytes <= kMaxPayloadBytes, "checkpoint payload too large");
  const std::string payload_bytes = text.substr(eol + 1);
  FLAML_PARSE_REQUIRE(payload_bytes.size() == nbytes,
                      "checkpoint payload has " << payload_bytes.size()
                                                << " bytes, header declares "
                                                << nbytes);
  JsonValue checksum_value = JsonValue::make_string("0x" + checksum_hex);
  const std::uint64_t declared = u64_value(checksum_value, "checkpoint checksum");
  const std::uint64_t actual = fnv1a64(payload_bytes.data(), payload_bytes.size());
  FLAML_PARSE_REQUIRE(declared == actual, "checkpoint checksum mismatch");
  try {
    return parse_json(payload_bytes);
  } catch (const std::exception& e) {
    // Unreachable in practice (the checksum already vouches for the bytes)
    // but keeps the error typed if the writer itself produced bad JSON.
    FLAML_PARSE_REQUIRE(false, "checkpoint payload is not valid JSON: " << e.what());
  }
}

namespace {

// Directory part of `path` ("." when it has none) — where the dir-entry
// fsync must land for the rename to be durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Write `contents` to `path`, fsync'ing the file before close so a crash
// right after this call cannot leave a zero-length or partially-flushed
// file behind the data the caller believes is on disk.
void write_file_synced(const std::string& path, const std::string& contents) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  FLAML_REQUIRE(fd >= 0, "cannot open '" << path << "' for writing — "
                                         << std::strerror(errno));
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      FLAML_REQUIRE(false, "failed writing checkpoint to '"
                               << path << "' — " << std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  // A successful write() only hands the bytes to the page cache; without
  // the fsync a crash can surface the rename (metadata) WITHOUT the data,
  // i.e. a valid-looking path holding a truncated checkpoint.
  const bool synced = ::fsync(fd) == 0;
  const int sync_err = errno;
  FLAML_REQUIRE(::close(fd) == 0, "failed closing '" << path << "'");
  FLAML_REQUIRE(synced, "fsync('" << path << "') failed — "
                                  << std::strerror(sync_err));
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FLAML_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  out << contents;
  out.flush();
  FLAML_REQUIRE(out.good(), "failed writing checkpoint to '" << path << "'");
#endif
}

// fsync the directory holding `path` so the rename's dir entry is durable
// (without it the rename itself can vanish in a crash, resurrecting the
// previous checkpoint — or on a fresh path, no checkpoint at all).
void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  // Some filesystems refuse O_RDONLY on directories; best-effort there.
  if (fd < 0) return;
  ::fsync(fd);  // best-effort: EINVAL on fs that can't fsync a directory
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

void write_checkpoint_file(const std::string& path, const JsonValue& payload,
                           const std::string& tmp_dir) {
  FLAML_REQUIRE(!path.empty(), "checkpoint path must be non-empty");
  // Default tmp location: next to the target, so the rename is same-
  // filesystem and atomic. A caller-provided tmp_dir (e.g. a fast scratch
  // mount) may cross filesystems — handled below.
  const std::string filename_part =
      path.find_last_of('/') == std::string::npos
          ? path
          : path.substr(path.find_last_of('/') + 1);
  const std::string tmp =
      tmp_dir.empty() ? path + ".tmp" : tmp_dir + "/" + filename_part + ".tmp";
  const std::string contents = serialize_checkpoint(payload);
  write_file_synced(tmp, contents);
  // Atomic replace: a crash between write and rename leaves the previous
  // checkpoint file untouched.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_err = errno;
    if (rename_err == EXDEV) {
      // tmp landed on a different filesystem (caller-provided tmp_dir):
      // rename can't cross mounts, so fall back to a second synced copy in
      // the TARGET directory and rename that — still atomic at the final
      // hop, never a direct (tearable) write of the live path.
      const std::string local_tmp = path + ".tmp";
      write_file_synced(local_tmp, contents);
      FLAML_REQUIRE(std::rename(local_tmp.c_str(), path.c_str()) == 0,
                    "failed to rename '" << local_tmp << "' to '" << path
                                         << "' — " << std::strerror(errno));
      std::remove(tmp.c_str());
    } else {
      FLAML_REQUIRE(false, "failed to rename '" << tmp << "' to '" << path
                                                << "' — "
                                                << std::strerror(rename_err));
    }
  }
  sync_parent_dir(path);
}

JsonValue read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    // A leftover "<path>.tmp" with no final file means the writer died (or
    // was interrupted) mid-checkpoint. The tmp may be half-written, so it
    // must NEVER be loaded in its place — surface a typed, explicit error
    // instead of the generic "cannot open" so the operator knows a
    // checkpoint was lost rather than never written.
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    FLAML_PARSE_REQUIRE(!tmp.good(),
                        "checkpoint file '"
                            << path << "' is missing but a leftover '" << path
                            << ".tmp' exists — the writer was interrupted "
                               "mid-checkpoint; the tmp file may be "
                               "half-written and will not be loaded");
  }
  FLAML_PARSE_REQUIRE(in.good(), "cannot open checkpoint file '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FLAML_PARSE_REQUIRE(!in.bad(), "failed reading checkpoint file '" << path << "'");
  return parse_checkpoint(buffer.str());
}

void SearchCheckpoint::save(const std::string& path) const {
  write_checkpoint_file(path, to_json());
}

SearchCheckpoint SearchCheckpoint::load(const std::string& path) {
  return from_json(read_checkpoint_file(path));
}

}  // namespace flaml::resume
