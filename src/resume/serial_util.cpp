#include "resume/serial_util.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace flaml::resume {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

bool is_integral_in(const JsonValue& v, double lo, double hi) {
  return v.is_number() && std::isfinite(v.number) &&
         v.number == std::floor(v.number) && v.number >= lo && v.number <= hi;
}

}  // namespace

JsonValue json_u64(std::uint64_t v) {
  char buf[19];
  buf[0] = '0';
  buf[1] = 'x';
  for (int i = 0; i < 16; ++i) {
    buf[2 + i] = kHexDigits[(v >> (60 - 4 * i)) & 0xF];
  }
  return JsonValue::make_string(std::string(buf, 18));
}

JsonValue json_double(double v) {
  if (std::isfinite(v)) return JsonValue::make_number(v);
  if (std::isnan(v)) return JsonValue::make_string("nan");
  return JsonValue::make_string(v > 0 ? "inf" : "-inf");
}

JsonValue json_size(std::size_t v) {
  return JsonValue::make_number(static_cast<double>(v));
}

JsonValue json_rng(const Rng& rng) {
  const Rng::State state = rng.snapshot();
  JsonValue out = JsonValue::make_object();
  JsonValue& words = out.set("s", JsonValue::make_array());
  for (std::uint64_t w : state.s) words.push(json_u64(w));
  out.set("has_cached_normal", JsonValue::make_bool(state.has_cached_normal));
  out.set("cached_normal", json_double(state.cached_normal));
  return out;
}

JsonValue json_config(const ConfigMap& config) {
  JsonValue out = JsonValue::make_object();
  for (const auto& [name, value] : config) out.set(name, json_double(value));
  return out;
}

const JsonValue& req_field(const JsonValue& obj, const char* key) {
  FLAML_PARSE_REQUIRE(obj.is_object(), "expected an object holding '" << key << "'");
  const JsonValue* field = obj.find(key);
  FLAML_PARSE_REQUIRE(field != nullptr, "missing field '" << key << "'");
  return *field;
}

bool req_bool(const JsonValue& obj, const char* key) {
  const JsonValue& v = req_field(obj, key);
  FLAML_PARSE_REQUIRE(v.is_bool(), "field '" << key << "' must be a bool");
  return v.boolean;
}

const std::string& req_string(const JsonValue& obj, const char* key) {
  const JsonValue& v = req_field(obj, key);
  FLAML_PARSE_REQUIRE(v.is_string(), "field '" << key << "' must be a string");
  return v.str;
}

double double_value(const JsonValue& v, const char* what) {
  if (v.is_number()) {
    FLAML_PARSE_REQUIRE(std::isfinite(v.number),
                        "'" << what << "' holds a non-finite number literal");
    return v.number;
  }
  FLAML_PARSE_REQUIRE(v.is_string(), "'" << what << "' must be a number or "
                                            "one of \"inf\"/\"-inf\"/\"nan\"");
  if (v.str == "inf") return std::numeric_limits<double>::infinity();
  if (v.str == "-inf") return -std::numeric_limits<double>::infinity();
  FLAML_PARSE_REQUIRE(v.str == "nan", "'" << what << "' holds unknown "
                                             "double encoding '" << v.str << "'");
  return std::numeric_limits<double>::quiet_NaN();
}

double req_double(const JsonValue& obj, const char* key) {
  return double_value(req_field(obj, key), key);
}

double req_finite(const JsonValue& obj, const char* key) {
  const double v = req_double(obj, key);
  FLAML_PARSE_REQUIRE(std::isfinite(v), "field '" << key << "' must be finite");
  return v;
}

std::uint64_t u64_value(const JsonValue& v, const char* what) {
  FLAML_PARSE_REQUIRE(v.is_string(), "'" << what << "' must be a hex string");
  const std::string& s = v.str;
  FLAML_PARSE_REQUIRE(s.size() == 18 && s[0] == '0' && s[1] == 'x',
                      "'" << what << "' must be an 18-char 0x hex string");
  std::uint64_t out = 0;
  for (std::size_t i = 2; i < 18; ++i) {
    const char c = s[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      FLAML_PARSE_REQUIRE(false, "'" << what << "' holds a non-hex digit");
    }
    out = (out << 4) | digit;
  }
  return out;
}

std::uint64_t req_u64(const JsonValue& obj, const char* key) {
  return u64_value(req_field(obj, key), key);
}

std::size_t req_size(const JsonValue& obj, const char* key, std::size_t max_value) {
  const JsonValue& v = req_field(obj, key);
  FLAML_PARSE_REQUIRE(is_integral_in(v, 0.0, static_cast<double>(max_value)),
                      "field '" << key << "' must be an integer in [0, "
                                << max_value << "]");
  return static_cast<std::size_t>(v.number);
}

std::int64_t req_int(const JsonValue& obj, const char* key, std::int64_t lo,
                     std::int64_t hi) {
  const JsonValue& v = req_field(obj, key);
  FLAML_PARSE_REQUIRE(
      is_integral_in(v, static_cast<double>(lo), static_cast<double>(hi)),
      "field '" << key << "' must be an integer in [" << lo << ", " << hi << "]");
  return static_cast<std::int64_t>(v.number);
}

const JsonValue& req_array(const JsonValue& obj, const char* key,
                           std::size_t max_items) {
  const JsonValue& v = req_field(obj, key);
  FLAML_PARSE_REQUIRE(v.is_array(), "field '" << key << "' must be an array");
  FLAML_PARSE_REQUIRE(v.array.size() <= max_items,
                      "field '" << key << "' has " << v.array.size()
                                << " items, cap is " << max_items);
  return v;
}

const JsonValue& req_object(const JsonValue& obj, const char* key) {
  const JsonValue& v = req_field(obj, key);
  FLAML_PARSE_REQUIRE(v.is_object(), "field '" << key << "' must be an object");
  return v;
}

ConfigMap req_config(const JsonValue& obj, const char* key) {
  const JsonValue& v = req_object(obj, key);
  // A config has one entry per search-space dimension; far below 4096.
  FLAML_PARSE_REQUIRE(v.object.size() <= 4096,
                      "field '" << key << "' has an implausible "
                                << v.object.size() << " config entries");
  ConfigMap config;
  for (const auto& [name, value] : v.object) {
    FLAML_PARSE_REQUIRE(!name.empty(), "config parameter with an empty name");
    const auto [it, inserted] = config.emplace(name, double_value(value, key));
    FLAML_PARSE_REQUIRE(inserted, "duplicate config parameter '" << name << "'");
  }
  return config;
}

void restore_rng(Rng& rng, const JsonValue& obj, const char* key) {
  restore_rng_value(rng, req_object(obj, key));
}

void restore_rng_value(Rng& rng, const JsonValue& v) {
  FLAML_PARSE_REQUIRE(v.is_object(), "rng state must be an object");
  const JsonValue& words = req_array(v, "s", 4);
  FLAML_PARSE_REQUIRE(words.array.size() == 4, "rng state needs exactly 4 words");
  Rng::State state;
  for (int i = 0; i < 4; ++i) {
    state.s[i] = u64_value(words.array[static_cast<std::size_t>(i)], "rng state word");
  }
  FLAML_PARSE_REQUIRE(state.s[0] != 0 || state.s[1] != 0 || state.s[2] != 0 ||
                          state.s[3] != 0,
                      "all-zero rng state");
  state.has_cached_normal = req_bool(v, "has_cached_normal");
  state.cached_normal = req_double(v, "cached_normal");
  rng.restore(state);
}

}  // namespace flaml::resume
