// Strict JSON (de)serialization helpers shared by every component that
// participates in search checkpointing (src/resume/checkpoint.h, EciState,
// Flow2, TrialRunner, MetricsRegistry).
//
// Two rules make checkpoints crash-safe AND resume bit-exact:
//   * values round-trip exactly: doubles use the writer's 17-significant-
//     digit form (with "inf"/"-inf"/"nan" spelled as strings, since JSON
//     numbers must be finite), and 64-bit integers are hex strings because
//     a JSON number is a double and would silently drop bits past 2^53 —
//     RNG state words and seed salts need all 64;
//   * every read is validated BEFORE it is used: missing keys, wrong types,
//     non-finite counts and out-of-range values all throw SerializationError
//     (common/error.h). A truncated or bit-flipped checkpoint can only ever
//     produce that typed error — never UB, never an unbounded allocation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"
#include "common/rng.h"

namespace flaml::resume {

// A Config is std::map<std::string, double> (tuners/config_space.h); spelled
// out here so the serialization toolkit does not pull in the tuner headers.
using ConfigMap = std::map<std::string, double>;

// --- encoding ---
JsonValue json_u64(std::uint64_t v);     // hex string, e.g. "0xcbf29ce484222325"
JsonValue json_double(double v);         // finite -> number; inf/nan -> string
JsonValue json_size(std::size_t v);      // plain number (counts stay < 2^53)
JsonValue json_rng(const Rng& rng);      // {"s": [u64 x4], "normal": ...}
JsonValue json_config(const ConfigMap& config);

// --- strict decoding (all throw SerializationError on any mismatch) ---
const JsonValue& req_field(const JsonValue& obj, const char* key);
bool req_bool(const JsonValue& obj, const char* key);
const std::string& req_string(const JsonValue& obj, const char* key);
// Exact inverse of json_double: accepts a number or "inf"/"-inf"/"nan".
double req_double(const JsonValue& obj, const char* key);
// Decode a bare json_double value (used for array elements).
double double_value(const JsonValue& v, const char* what);
// Like req_double but rejects non-finite values.
double req_finite(const JsonValue& obj, const char* key);
std::uint64_t req_u64(const JsonValue& obj, const char* key);
// Decode a bare json_u64 value (used for array elements).
std::uint64_t u64_value(const JsonValue& v, const char* what);
// Non-negative integral count, capped: `max_value` bounds what a corrupt
// file can make the caller allocate or loop over.
std::size_t req_size(const JsonValue& obj, const char* key, std::size_t max_value);
// Integral value within [lo, hi].
std::int64_t req_int(const JsonValue& obj, const char* key, std::int64_t lo,
                     std::int64_t hi);
const JsonValue& req_array(const JsonValue& obj, const char* key,
                           std::size_t max_items);
const JsonValue& req_object(const JsonValue& obj, const char* key);
ConfigMap req_config(const JsonValue& obj, const char* key);
// Restores `rng` from the object written by json_rng (all-zero state rejected).
void restore_rng(Rng& rng, const JsonValue& obj, const char* key);
// Same, on a bare json_rng value.
void restore_rng_value(Rng& rng, const JsonValue& v);

}  // namespace flaml::resume
