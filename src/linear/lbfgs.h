// Limited-memory BFGS with Armijo backtracking line search.
//
// Minimizes a smooth objective given by a value+gradient callback. Used by
// the logistic-regression learner; small, dependency-free, deterministic.
#pragma once

#include <functional>
#include <vector>

namespace flaml {

struct LbfgsOptions {
  int max_iterations = 200;
  int history = 10;          // number of (s, y) pairs kept
  double grad_tolerance = 1e-6;   // stop when ||g||_inf below this
  double min_step = 1e-12;
  int max_line_search = 40;
};

struct LbfgsResult {
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

// fn(x, grad) returns the objective at x and fills grad (same size as x).
using ObjectiveFn =
    std::function<double(const std::vector<double>&, std::vector<double>&)>;

// Minimizes fn starting at x (modified in place).
LbfgsResult lbfgs_minimize(const ObjectiveFn& fn, std::vector<double>& x,
                           const LbfgsOptions& options = {});

}  // namespace flaml
