#include "linear/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/error.h"

namespace flaml {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double inf_norm(const std::vector<double>& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace

LbfgsResult lbfgs_minimize(const ObjectiveFn& fn, std::vector<double>& x,
                           const LbfgsOptions& options) {
  FLAML_REQUIRE(!x.empty(), "lbfgs needs a non-empty start point");
  const std::size_t d = x.size();
  std::vector<double> grad(d), new_grad(d), direction(d), new_x(d);
  double value = fn(x, grad);

  struct Pair {
    std::vector<double> s, y;
    double rho;
  };
  std::deque<Pair> history;

  LbfgsResult result;
  result.objective = value;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (inf_norm(grad) <= options.grad_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion for direction = -H * grad.
    direction = grad;
    std::vector<double> alphas(history.size());
    for (std::size_t h = history.size(); h-- > 0;) {
      const Pair& p = history[h];
      alphas[h] = p.rho * dot(p.s, direction);
      for (std::size_t i = 0; i < d; ++i) direction[i] -= alphas[h] * p.y[i];
    }
    if (!history.empty()) {
      const Pair& last = history.back();
      double gamma = dot(last.s, last.y) / std::max(dot(last.y, last.y), 1e-300);
      for (double& v : direction) v *= gamma;
    }
    for (std::size_t h = 0; h < history.size(); ++h) {
      const Pair& p = history[h];
      double beta = p.rho * dot(p.y, direction);
      for (std::size_t i = 0; i < d; ++i) direction[i] += (alphas[h] - beta) * p.s[i];
    }
    for (double& v : direction) v = -v;

    double dir_deriv = dot(grad, direction);
    if (dir_deriv >= 0.0) {
      // Not a descent direction (numerical breakdown): restart with -grad.
      history.clear();
      for (std::size_t i = 0; i < d; ++i) direction[i] = -grad[i];
      dir_deriv = dot(grad, direction);
      if (dir_deriv >= 0.0) break;  // gradient is zero
    }

    // Weak-Wolfe line search via bisection (Lewis–Overton): guarantees the
    // curvature condition, so the (s, y) pair always has s·y > 0 and the
    // L-BFGS update stays well conditioned (Armijo alone degrades to
    // steepest descent on ill-conditioned objectives like Rosenbrock).
    double lo = 0.0;
    double hi = std::numeric_limits<double>::infinity();
    double step = 1.0;
    double new_value = value;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      for (std::size_t i = 0; i < d; ++i) new_x[i] = x[i] + step * direction[i];
      new_value = fn(new_x, new_grad);
      if (!std::isfinite(new_value) ||
          new_value > value + 1e-4 * step * dir_deriv) {
        hi = step;  // Armijo failed: shrink
      } else if (dot(new_grad, direction) < 0.9 * dir_deriv) {
        lo = step;  // curvature failed: grow
      } else {
        accepted = true;
        break;
      }
      step = std::isfinite(hi) ? 0.5 * (lo + hi) : 2.0 * step;
      if (step < options.min_step || step > 1e12) break;
    }
    if (!accepted) {
      // Fall back to the last Armijo-acceptable point if one exists.
      if (std::isfinite(new_value) &&
          new_value <= value + 1e-4 * step * dir_deriv) {
        // keep new_x / new_grad / new_value as computed
      } else {
        break;
      }
    }

    // Update history.
    Pair p;
    p.s.resize(d);
    p.y.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      p.s[i] = new_x[i] - x[i];
      p.y[i] = new_grad[i] - grad[i];
    }
    double sy = dot(p.s, p.y);
    if (sy > 1e-12) {
      p.rho = 1.0 / sy;
      history.push_back(std::move(p));
      if (static_cast<int>(history.size()) > options.history) history.pop_front();
    }

    x.swap(new_x);
    grad.swap(new_grad);
    value = new_value;
    result.iterations = iter + 1;
    result.objective = value;
  }
  result.objective = value;
  return result;
}

}  // namespace flaml
