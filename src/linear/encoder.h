// Dense feature encoding for linear models.
//
// Numeric features are standardized to zero mean / unit variance with
// missing values mean-imputed (i.e. encoded as 0 after standardization).
// Categorical features are one-hot expanded; missing categories encode as
// the all-zeros vector. The encoder is fitted on training rows and applied
// unchanged to validation/test rows.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "data/dataset.h"

namespace flaml {

class FeatureEncoder {
 public:
  struct ColumnPlan {
    ColumnType type = ColumnType::Numeric;
    std::size_t offset = 0;  // first output dimension of this column
    int cardinality = 0;     // categorical width
    double mean = 0.0;
    double inv_std = 1.0;
  };

  // Learn means/stds and the one-hot layout from `view`.
  static FeatureEncoder fit(const DataView& view);

  // Encoded dimensionality.
  std::size_t dim() const { return dim_; }

  // Per-input-column encoding plans (read by the serving compiler).
  const std::vector<ColumnPlan>& plans() const { return plans_; }

  // Encode one row into `out` (resized to dim()).
  void encode_row(const DataView& view, std::size_t i, std::vector<double>& out) const;

  // Encode all rows, row-major n × dim.
  std::vector<double> encode(const DataView& view) const;

  // Text serialization (round-trips via load()).
  void save(std::ostream& out) const;
  static FeatureEncoder load(std::istream& in);

 private:
  std::vector<ColumnPlan> plans_;
  std::size_t dim_ = 0;
};

}  // namespace flaml
