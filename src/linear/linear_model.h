// Regularized linear learners: logistic regression (binary and softmax
// multiclass) and ridge regression.
//
// The logistic learner matches Table 5's `sklearn lr` entry: the inverse
// regularization strength C is the tuned hyperparameter (loss + C/2-style
// L2 penalty 1/(2C) ||w||^2; bias unpenalized). Regression uses ridge with
// lambda = 1/C for a symmetric parameterization. Optimization is L-BFGS on
// the encoded (standardized + one-hot) features.
#pragma once

#include <iosfwd>
#include <vector>

#include "data/dataset.h"
#include "linear/encoder.h"
#include "metrics/error_metric.h"

namespace flaml {

struct LinearParams {
  // Inverse regularization strength (larger = weaker regularization).
  double c = 1.0;
  int max_iterations = 200;
  std::uint64_t seed = 0;
};

class LinearModel {
 public:
  LinearModel() = default;

  Task task() const { return task_; }
  int n_classes() const { return n_classes_; }
  int n_outputs() const { return n_outputs_; }
  const std::vector<double>& weights() const { return weights_; }
  const FeatureEncoder& encoder() const { return encoder_; }

  Predictions predict(const DataView& view) const;

  // Text serialization (round-trips via load()).
  void save(std::ostream& out) const;
  static LinearModel load(std::istream& in);

  friend LinearModel train_linear(const DataView& train, const LinearParams& params);

 private:
  Task task_ = Task::Regression;
  int n_classes_ = 0;
  int n_outputs_ = 1;
  FeatureEncoder encoder_;
  // Row-major n_outputs × (dim + 1); the last column is the bias.
  std::vector<double> weights_;
};

LinearModel train_linear(const DataView& train, const LinearParams& params);

}  // namespace flaml
