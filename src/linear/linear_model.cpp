#include "linear/linear_model.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/math_util.h"
#include "linear/lbfgs.h"

namespace flaml {

namespace {

// Scores for one encoded row: w_k · x + b_k for each output k.
void row_scores(const std::vector<double>& weights, const std::vector<double>& x,
                int n_outputs, std::size_t dim, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(n_outputs), 0.0);
  for (int k = 0; k < n_outputs; ++k) {
    const double* w = weights.data() + static_cast<std::size_t>(k) * (dim + 1);
    double s = w[dim];  // bias
    for (std::size_t j = 0; j < dim; ++j) s += w[j] * x[j];
    out[static_cast<std::size_t>(k)] = s;
  }
}

}  // namespace

Predictions LinearModel::predict(const DataView& view) const {
  FLAML_REQUIRE(!weights_.empty(), "predict on an untrained linear model");
  const std::size_t n = view.n_rows();
  const std::size_t dim = encoder_.dim();
  Predictions out;
  out.task = task_;
  std::vector<double> x, scores;
  if (task_ == Task::Regression) {
    out.n_classes = 0;
    out.values.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      encoder_.encode_row(view, i, x);
      row_scores(weights_, x, 1, dim, scores);
      out.values[i] = scores[0];
    }
    return out;
  }
  out.n_classes = n_classes_;
  out.values.resize(n * static_cast<std::size_t>(n_classes_));
  for (std::size_t i = 0; i < n; ++i) {
    encoder_.encode_row(view, i, x);
    if (task_ == Task::BinaryClassification) {
      row_scores(weights_, x, 1, dim, scores);
      double p1 = sigmoid(scores[0]);
      out.values[i * 2] = 1.0 - p1;
      out.values[i * 2 + 1] = p1;
    } else {
      row_scores(weights_, x, n_classes_, dim, scores);
      softmax_inplace(scores);
      for (int c = 0; c < n_classes_; ++c) {
        out.values[i * static_cast<std::size_t>(n_classes_) +
                   static_cast<std::size_t>(c)] = scores[static_cast<std::size_t>(c)];
      }
    }
  }
  return out;
}

void LinearModel::save(std::ostream& out) const {
  out << "linear v1\n";
  out << static_cast<int>(task_) << ' ' << n_classes_ << ' ' << n_outputs_ << ' '
      << weights_.size() << '\n';
  out.precision(17);
  for (double w : weights_) out << w << ' ';
  out << '\n';
  encoder_.save(out);
}

LinearModel LinearModel::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  FLAML_REQUIRE(magic == "linear" && version == "v1", "bad linear model header");
  LinearModel model;
  int task_int = 0;
  std::size_t n_weights = 0;
  in >> task_int >> model.n_classes_ >> model.n_outputs_ >> n_weights;
  FLAML_REQUIRE(in.good() && n_weights >= 1, "truncated linear model");
  // Untrusted input: validate the enum and cap the counts before allocating.
  FLAML_REQUIRE(task_int >= 0 && task_int <= 2,
                "corrupt linear model: unknown task " << task_int);
  FLAML_REQUIRE(model.n_classes_ >= 0 && model.n_classes_ <= 1'000'000,
                "corrupt linear model: class count " << model.n_classes_);
  FLAML_REQUIRE(model.n_outputs_ >= 1 && model.n_outputs_ <= 1'000'000,
                "corrupt linear model: output count " << model.n_outputs_);
  FLAML_REQUIRE(n_weights <= 100'000'000,
                "corrupt linear model: oversized weight count " << n_weights);
  model.task_ = static_cast<Task>(task_int);
  model.weights_.resize(n_weights);
  for (double& w : model.weights_) in >> w;
  FLAML_REQUIRE(in.good(), "truncated linear model weights");
  model.encoder_ = FeatureEncoder::load(in);
  return model;
}

LinearModel train_linear(const DataView& train, const LinearParams& params) {
  FLAML_REQUIRE(train.n_rows() >= 2, "linear model needs at least 2 rows");
  FLAML_REQUIRE(params.c > 0.0, "C must be positive");
  const Dataset& dataset = train.data();
  const Task task = dataset.task();

  LinearModel model;
  model.task_ = task;
  model.n_classes_ = dataset.n_classes();
  model.encoder_ = FeatureEncoder::fit(train);
  const std::size_t dim = model.encoder_.dim();
  const std::size_t n = train.n_rows();
  const double l2 = 1.0 / params.c;

  // Pre-encode the training matrix (row-major n × dim).
  const std::vector<double> matrix = model.encoder_.encode(train);
  std::vector<double> labels = train.labels();
  // Sample weights scale each example's loss term; the normalizer uses the
  // total weight so C keeps the same meaning as in the unweighted case.
  std::vector<double> weights =
      dataset.has_weights() ? train.weights() : std::vector<double>(n, 1.0);
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  const double inv_n = 1.0 / total_weight;

  const int n_outputs =
      task == Task::MultiClassification ? model.n_classes_ : 1;
  model.n_outputs_ = n_outputs;
  const std::size_t stride = dim + 1;
  std::vector<double> w(static_cast<std::size_t>(n_outputs) * stride, 0.0);

  ObjectiveFn objective;
  if (task == Task::Regression) {
    objective = [&](const std::vector<double>& x, std::vector<double>& grad) {
      grad.assign(x.size(), 0.0);
      double loss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = matrix.data() + i * dim;
        double s = x[dim];
        for (std::size_t j = 0; j < dim; ++j) s += x[j] * row[j];
        double r = s - labels[i];
        const double w = weights[i];
        loss += 0.5 * w * r * r;
        for (std::size_t j = 0; j < dim; ++j) grad[j] += w * r * row[j];
        grad[dim] += w * r;
      }
      loss *= inv_n;
      for (double& g : grad) g *= inv_n;
      for (std::size_t j = 0; j < dim; ++j) {  // bias unpenalized
        loss += 0.5 * l2 * x[j] * x[j];
        grad[j] += l2 * x[j];
      }
      return loss;
    };
  } else if (task == Task::BinaryClassification) {
    objective = [&](const std::vector<double>& x, std::vector<double>& grad) {
      grad.assign(x.size(), 0.0);
      double loss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = matrix.data() + i * dim;
        double s = x[dim];
        for (std::size_t j = 0; j < dim; ++j) s += x[j] * row[j];
        const double w = weights[i];
        loss += w * (log1pexp(s) - labels[i] * s);
        double g = w * (sigmoid(s) - labels[i]);
        for (std::size_t j = 0; j < dim; ++j) grad[j] += g * row[j];
        grad[dim] += g;
      }
      loss *= inv_n;
      for (double& g : grad) g *= inv_n;
      for (std::size_t j = 0; j < dim; ++j) {
        loss += 0.5 * l2 * x[j] * x[j];
        grad[j] += l2 * x[j];
      }
      return loss;
    };
  } else {
    const int k = model.n_classes_;
    objective = [&, k](const std::vector<double>& x, std::vector<double>& grad) {
      grad.assign(x.size(), 0.0);
      double loss = 0.0;
      std::vector<double> scores(static_cast<std::size_t>(k));
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = matrix.data() + i * dim;
        for (int c = 0; c < k; ++c) {
          const double* wc = x.data() + static_cast<std::size_t>(c) * stride;
          double s = wc[dim];
          for (std::size_t j = 0; j < dim; ++j) s += wc[j] * row[j];
          scores[static_cast<std::size_t>(c)] = s;
        }
        double lse = logsumexp(scores);
        int y = static_cast<int>(labels[i]);
        const double w = weights[i];
        loss += w * (lse - scores[static_cast<std::size_t>(y)]);
        for (int c = 0; c < k; ++c) {
          double p = std::exp(scores[static_cast<std::size_t>(c)] - lse);
          double g = w * (p - (c == y ? 1.0 : 0.0));
          double* gc = grad.data() + static_cast<std::size_t>(c) * stride;
          for (std::size_t j = 0; j < dim; ++j) gc[j] += g * row[j];
          gc[dim] += g;
        }
      }
      loss *= inv_n;
      for (double& g : grad) g *= inv_n;
      for (int c = 0; c < k; ++c) {
        const double* wc = x.data() + static_cast<std::size_t>(c) * stride;
        double* gc = grad.data() + static_cast<std::size_t>(c) * stride;
        for (std::size_t j = 0; j < dim; ++j) {
          loss += 0.5 * l2 * wc[j] * wc[j];
          gc[j] += l2 * wc[j];
        }
      }
      return loss;
    };
  }

  LbfgsOptions options;
  options.max_iterations = params.max_iterations;
  lbfgs_minimize(objective, w, options);
  model.weights_ = std::move(w);
  return model;
}

}  // namespace flaml
