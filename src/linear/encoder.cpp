#include "linear/encoder.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace flaml {

FeatureEncoder FeatureEncoder::fit(const DataView& view) {
  FLAML_REQUIRE(view.n_rows() > 0, "cannot fit encoder on empty view");
  const Dataset& data = view.data();
  FeatureEncoder enc;
  enc.plans_.resize(data.n_cols());
  std::size_t offset = 0;
  for (std::size_t c = 0; c < data.n_cols(); ++c) {
    ColumnPlan& plan = enc.plans_[c];
    const ColumnInfo& info = data.column_info(c);
    plan.type = info.type;
    plan.offset = offset;
    if (info.type == ColumnType::Categorical) {
      plan.cardinality = info.cardinality;
      offset += static_cast<std::size_t>(info.cardinality);
      continue;
    }
    double sum = 0.0, sum_sq = 0.0, count = 0.0;
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      float v = view.value(i, c);
      if (Dataset::is_missing(v)) continue;
      sum += v;
      sum_sq += static_cast<double>(v) * v;
      count += 1.0;
    }
    if (count > 0.0) {
      plan.mean = sum / count;
      double var = sum_sq / count - plan.mean * plan.mean;
      plan.inv_std = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
    offset += 1;
  }
  enc.dim_ = offset;
  return enc;
}

void FeatureEncoder::encode_row(const DataView& view, std::size_t i,
                                std::vector<double>& out) const {
  out.assign(dim_, 0.0);
  for (std::size_t c = 0; c < plans_.size(); ++c) {
    const ColumnPlan& plan = plans_[c];
    float v = view.value(i, c);
    if (Dataset::is_missing(v)) continue;  // zero-encode missing
    if (plan.type == ColumnType::Categorical) {
      int code = static_cast<int>(v);
      if (code >= 0 && code < plan.cardinality) {
        out[plan.offset + static_cast<std::size_t>(code)] = 1.0;
      }
    } else {
      out[plan.offset] = (static_cast<double>(v) - plan.mean) * plan.inv_std;
    }
  }
}

void FeatureEncoder::save(std::ostream& out) const {
  out << "encoder v1\n" << plans_.size() << ' ' << dim_ << '\n';
  out.precision(17);
  for (const ColumnPlan& p : plans_) {
    out << (p.type == ColumnType::Categorical ? 1 : 0) << ' ' << p.offset << ' '
        << p.cardinality << ' ' << p.mean << ' ' << p.inv_std << '\n';
  }
}

FeatureEncoder FeatureEncoder::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  FLAML_REQUIRE(magic == "encoder" && version == "v1", "bad encoder header");
  std::size_t n_plans = 0, dim = 0;
  in >> n_plans >> dim;
  FLAML_REQUIRE(in.good() && n_plans >= 1, "truncated encoder");
  // Untrusted input: cap the counts before allocating, and bound every
  // plan's output range by dim — encode_row writes at
  // [offset, offset + cardinality), so an oversized offset or cardinality
  // from a corrupted stream would write out of bounds.
  FLAML_REQUIRE(n_plans <= 10'000'000,
                "corrupt encoder: oversized column count " << n_plans);
  FLAML_REQUIRE(dim <= 100'000'000,
                "corrupt encoder: oversized dimension " << dim);
  FeatureEncoder enc;
  enc.plans_.resize(n_plans);
  enc.dim_ = dim;
  for (ColumnPlan& p : enc.plans_) {
    int cat = 0;
    in >> cat >> p.offset >> p.cardinality >> p.mean >> p.inv_std;
    p.type = cat ? ColumnType::Categorical : ColumnType::Numeric;
    FLAML_REQUIRE(p.cardinality >= 0,
                  "corrupt encoder: negative cardinality " << p.cardinality);
    const std::size_t width =
        p.type == ColumnType::Categorical ? static_cast<std::size_t>(p.cardinality)
                                          : 1;
    FLAML_REQUIRE(p.offset <= dim && width <= dim - p.offset,
                  "corrupt encoder: column range [" << p.offset << ", "
                      << p.offset << "+" << width << ") exceeds dimension "
                      << dim);
  }
  FLAML_REQUIRE(in.good(), "truncated encoder plans");
  return enc;
}

std::vector<double> FeatureEncoder::encode(const DataView& view) const {
  std::vector<double> matrix(view.n_rows() * dim_);
  std::vector<double> row;
  for (std::size_t i = 0; i < view.n_rows(); ++i) {
    encode_row(view, i, row);
    std::copy(row.begin(), row.end(), matrix.begin() + static_cast<std::ptrdiff_t>(i * dim_));
  }
  return matrix;
}

}  // namespace flaml
