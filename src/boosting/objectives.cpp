#include "boosting/objectives.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace flaml {

namespace {

constexpr double kMinHess = 1e-16;

class MseObjective final : public Objective {
 public:
  int n_outputs() const override { return 1; }

  std::vector<double> base_scores(const std::vector<double>& labels) const override {
    return {mean(labels)};
  }

  void gradients(const std::vector<double>& scores, const std::vector<double>& labels,
                 int k, std::vector<double>& grad,
                 std::vector<double>& hess) const override {
    FLAML_CHECK(k == 0);
    grad.resize(labels.size());
    hess.resize(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      grad[i] = scores[i] - labels[i];
      hess[i] = 1.0;
    }
  }

  double loss(const std::vector<double>& scores,
              const std::vector<double>& labels) const override {
    // 0.5 * mean squared error, so that grad = (score - label) is exactly
    // its derivative (the conventional GBDT parameterization).
    double total = 0.0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      double d = scores[i] - labels[i];
      total += 0.5 * d * d;
    }
    return total / static_cast<double>(labels.size());
  }

  Predictions transform(const std::vector<double>& scores) const override {
    Predictions p;
    p.task = Task::Regression;
    p.n_classes = 0;
    p.values = scores;
    return p;
  }
};

class LogisticObjective final : public Objective {
 public:
  int n_outputs() const override { return 1; }

  std::vector<double> base_scores(const std::vector<double>& labels) const override {
    double pos = 0.0;
    for (double y : labels) pos += y;
    double p = clamp(pos / static_cast<double>(labels.size()), 1e-6, 1.0 - 1e-6);
    return {std::log(p / (1.0 - p))};
  }

  void gradients(const std::vector<double>& scores, const std::vector<double>& labels,
                 int k, std::vector<double>& grad,
                 std::vector<double>& hess) const override {
    FLAML_CHECK(k == 0);
    grad.resize(labels.size());
    hess.resize(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      double p = sigmoid(scores[i]);
      grad[i] = p - labels[i];
      hess[i] = std::max(p * (1.0 - p), kMinHess);
    }
  }

  double loss(const std::vector<double>& scores,
              const std::vector<double>& labels) const override {
    double total = 0.0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      // -log P(y | score) = log(1+exp(score)) - y*score
      total += log1pexp(scores[i]) - labels[i] * scores[i];
    }
    return total / static_cast<double>(labels.size());
  }

  Predictions transform(const std::vector<double>& scores) const override {
    Predictions p;
    p.task = Task::BinaryClassification;
    p.n_classes = 2;
    p.values.resize(scores.size() * 2);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      double prob1 = sigmoid(scores[i]);
      p.values[i * 2] = 1.0 - prob1;
      p.values[i * 2 + 1] = prob1;
    }
    return p;
  }
};

class SoftmaxObjective final : public Objective {
 public:
  explicit SoftmaxObjective(int k) : k_(k) { FLAML_REQUIRE(k >= 2, "softmax needs K >= 2"); }

  int n_outputs() const override { return k_; }

  std::vector<double> base_scores(const std::vector<double>& labels) const override {
    std::vector<double> counts(static_cast<std::size_t>(k_), 1.0);  // +1 smoothing
    for (double y : labels) counts[static_cast<std::size_t>(y)] += 1.0;
    double total = static_cast<double>(labels.size()) + static_cast<double>(k_);
    std::vector<double> base(static_cast<std::size_t>(k_));
    for (int c = 0; c < k_; ++c) {
      base[static_cast<std::size_t>(c)] =
          std::log(counts[static_cast<std::size_t>(c)] / total);
    }
    return base;
  }

  void gradients(const std::vector<double>& scores, const std::vector<double>& labels,
                 int k, std::vector<double>& grad,
                 std::vector<double>& hess) const override {
    FLAML_CHECK(k >= 0 && k < k_);
    const std::size_t n = labels.size();
    grad.resize(n);
    hess.resize(n);
    std::vector<double> row(static_cast<std::size_t>(k_));
    for (std::size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k_; ++c) {
        row[static_cast<std::size_t>(c)] =
            scores[i * static_cast<std::size_t>(k_) + static_cast<std::size_t>(c)];
      }
      double lse = logsumexp(row);
      double p = std::exp(row[static_cast<std::size_t>(k)] - lse);
      double y = static_cast<int>(labels[i]) == k ? 1.0 : 0.0;
      grad[i] = p - y;
      hess[i] = std::max(p * (1.0 - p), kMinHess);
    }
  }

  double loss(const std::vector<double>& scores,
              const std::vector<double>& labels) const override {
    const std::size_t n = labels.size();
    double total = 0.0;
    std::vector<double> row(static_cast<std::size_t>(k_));
    for (std::size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k_; ++c) {
        row[static_cast<std::size_t>(c)] =
            scores[i * static_cast<std::size_t>(k_) + static_cast<std::size_t>(c)];
      }
      double lse = logsumexp(row);
      total += lse - row[static_cast<std::size_t>(static_cast<int>(labels[i]))];
    }
    return total / static_cast<double>(n);
  }

  Predictions transform(const std::vector<double>& scores) const override {
    Predictions p;
    p.task = Task::MultiClassification;
    p.n_classes = k_;
    p.values.resize(scores.size());
    const std::size_t n = scores.size() / static_cast<std::size_t>(k_);
    std::vector<double> row(static_cast<std::size_t>(k_));
    for (std::size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k_; ++c) {
        row[static_cast<std::size_t>(c)] =
            scores[i * static_cast<std::size_t>(k_) + static_cast<std::size_t>(c)];
      }
      softmax_inplace(row);
      for (int c = 0; c < k_; ++c) {
        p.values[i * static_cast<std::size_t>(k_) + static_cast<std::size_t>(c)] =
            row[static_cast<std::size_t>(c)];
      }
    }
    return p;
  }

 private:
  int k_;
};

}  // namespace

std::unique_ptr<Objective> make_objective(Task task, int n_classes) {
  switch (task) {
    case Task::Regression:
      return std::make_unique<MseObjective>();
    case Task::BinaryClassification:
      return std::make_unique<LogisticObjective>();
    case Task::MultiClassification:
      return std::make_unique<SoftmaxObjective>(n_classes);
  }
  throw InternalError("unreachable task");
}

}  // namespace flaml
