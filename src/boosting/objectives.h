// Loss objectives for gradient boosting.
//
// An objective owns the mapping between raw additive scores and
// predictions, the initial (base) scores, per-example gradients/hessians,
// and the training-loss value used for early stopping.
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "metrics/error_metric.h"

namespace flaml {

class Objective {
 public:
  virtual ~Objective() = default;

  // Number of parallel score columns (1 for regression/binary, K for softmax).
  virtual int n_outputs() const = 0;

  // Initial scores minimizing the loss on `labels` (e.g. log-odds of the
  // base rate); size n_outputs().
  virtual std::vector<double> base_scores(const std::vector<double>& labels) const = 0;

  // Fill grad/hess for output column `k`. scores is row-major n × n_outputs.
  virtual void gradients(const std::vector<double>& scores,
                         const std::vector<double>& labels, int k,
                         std::vector<double>& grad,
                         std::vector<double>& hess) const = 0;

  // Mean loss of raw scores vs labels (lower is better).
  virtual double loss(const std::vector<double>& scores,
                      const std::vector<double>& labels) const = 0;

  // Convert raw scores into Predictions (probabilities / targets).
  virtual Predictions transform(const std::vector<double>& scores) const = 0;
};

// Factory for the task's canonical objective: MSE for regression, logistic
// for binary, softmax for multiclass (n_classes required then).
std::unique_ptr<Objective> make_objective(Task task, int n_classes);

}  // namespace flaml
