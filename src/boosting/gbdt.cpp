#include "boosting/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "tree/tree_io.h"

namespace flaml {

GBDTModel::GBDTModel(Task task, int n_classes, std::vector<double> base_scores)
    : task_(task), n_classes_(n_classes), base_scores_(std::move(base_scores)) {
  FLAML_CHECK(!base_scores_.empty());
}

void GBDTModel::add_tree(Tree tree, double learning_rate) {
  trees_.push_back(std::move(tree));
  scales_.push_back(learning_rate);
}

std::vector<double> GBDTModel::raw_scores(const DataView& view, int n_threads) const {
  const std::size_t n = view.n_rows();
  const std::size_t k = base_scores_.size();
  std::vector<double> scores(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < k; ++c) scores[i * k + c] = base_scores_[c];
  }
  const Dataset& data = view.data();
  ThreadPool* pool = n_threads > 1 ? &shared_pool() : nullptr;
  // Rows sharded, trees in order within each shard: every score cell sums
  // its trees in the same order as the serial loop, bit for bit.
  sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      const std::size_t c = t % k;
      const Tree& tree = trees_[t];
      const double scale = scales_[t];
      for (std::size_t i = begin; i < end; ++i) {
        scores[i * k + c] += scale * tree.predict_row(data, view.row_index(i));
      }
    }
  });
  return scores;
}

Predictions GBDTModel::predict(const DataView& view, int n_threads) const {
  auto objective = make_objective(task_, n_classes_);
  return objective->transform(raw_scores(view, n_threads));
}

void GBDTModel::truncate(std::size_t n_keep) {
  const std::size_t k = base_scores_.size();
  const std::size_t keep_trees = n_keep * k;
  if (keep_trees < trees_.size()) {
    trees_.resize(keep_trees);
    scales_.resize(keep_trees);
  }
}

std::vector<double> GBDTModel::feature_importance(std::size_t n_features) const {
  std::vector<double> gains(n_features, 0.0);
  for (const Tree& tree : trees_) tree.add_feature_gains(gains);
  return gains;
}

void GBDTModel::save(std::ostream& out) const {
  out << "gbdt v1\n";
  out << static_cast<int>(task_) << ' ' << n_classes_ << ' ' << base_scores_.size()
      << '\n';
  out.precision(17);
  for (double b : base_scores_) out << b << ' ';
  out << '\n' << trees_.size() << '\n';
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    out << scales_[t] << '\n';
    write_tree(out, trees_[t]);
  }
}

GBDTModel GBDTModel::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  FLAML_REQUIRE(magic == "gbdt" && version == "v1", "bad GBDT model header");
  int task_int = 0, n_classes = 0;
  std::size_t n_base = 0;
  in >> task_int >> n_classes >> n_base;
  FLAML_REQUIRE(in.good() && n_base >= 1, "truncated GBDT model");
  // Untrusted input: validate the enum and cap the counts before allocating.
  FLAML_REQUIRE(task_int >= 0 && task_int <= 2,
                "corrupt GBDT model: unknown task " << task_int);
  FLAML_REQUIRE(n_classes >= 0 && n_classes <= 1'000'000,
                "corrupt GBDT model: class count " << n_classes);
  FLAML_REQUIRE(n_base <= 1'000'000,
                "corrupt GBDT model: oversized base-score count " << n_base);
  std::vector<double> base(n_base);
  for (auto& b : base) in >> b;
  GBDTModel model(static_cast<Task>(task_int), n_classes, std::move(base));
  std::size_t n_trees = 0;
  in >> n_trees;
  FLAML_REQUIRE(in.good(), "truncated GBDT model");
  FLAML_REQUIRE(n_trees <= 10'000'000,
                "corrupt GBDT model: oversized tree count " << n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    double scale = 0.0;
    in >> scale;
    FLAML_REQUIRE(in.good(), "truncated GBDT model tree");
    model.add_tree(read_tree(in), scale);
  }
  return model;
}

std::string GBDTModel::to_string() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

GBDTModel GBDTModel::from_string(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

GBDTModel train_gbdt(const DataView& train, const DataView* valid,
                     const GBDTParams& params) {
  FLAML_REQUIRE(train.n_rows() >= 2, "GBDT needs at least 2 training rows");
  FLAML_REQUIRE(params.n_trees >= 1, "n_trees must be >= 1");
  FLAML_REQUIRE(params.learning_rate > 0.0, "learning_rate must be positive");
  FLAML_REQUIRE(params.max_leaves >= 2, "max_leaves must be >= 2");
  FLAML_REQUIRE(params.early_stopping_rounds == 0 || valid != nullptr,
                "early stopping requires a validation view");
  FLAML_REQUIRE(!params.progress || valid != nullptr,
                "streamed progress requires a validation view");

  // Progressive accounting: counts stay valid when the fit exits by
  // throwing (DeadlineExceeded / TrialRaced below).
  TrainReport local_report;
  TrainReport& report = params.report != nullptr ? *params.report : local_report;
  report = TrainReport{};
  report.iterations_planned = params.n_trees;

  const Dataset& dataset = train.data();
  const Task task = dataset.task();
  const int n_classes = dataset.n_classes();
  auto objective = make_objective(task, n_classes);
  const int n_outputs = objective->n_outputs();

  Rng rng(params.seed == 0 ? 0x5eedf1a31ULL : params.seed);
  WallClock clock;

  // Bin the training rows: take the shared cross-trial substrate when the
  // provider has one for exactly these rows at this max_bin, else fit
  // fresh. Both paths are byte-identical by construction (build_substrate
  // runs the same fit+encode), so the provider can never change the model.
  std::shared_ptr<const BinnedSubstrate> shared =
      params.substrate ? params.substrate(params.max_bin) : nullptr;
  if (shared != nullptr && (shared->max_bin != params.max_bin ||
                            shared->binned.n_rows() != train.n_rows())) {
    shared = nullptr;
  }
  BinnedSubstrate local;
  if (shared == nullptr) local = build_substrate(train, params.max_bin);
  const BinMapper& mapper = shared ? shared->mapper : local.mapper;
  const BinnedMatrix& binned = shared ? shared->binned : local.binned;
  // Hand the substrate's packed row-major layout to the grower when the
  // build produced one (empty when the scalar kernel is forced).
  const PackedBins& packed = shared ? shared->packed : local.packed;
  GradientTreeGrower grower(mapper, binned, packed.empty() ? nullptr : &packed);

  const std::size_t n = train.n_rows();
  std::vector<double> labels = train.labels();
  // Sample weights scale each example's gradient/hessian (weighted loss).
  const bool weighted = dataset.has_weights();
  std::vector<double> weights = weighted ? train.weights() : std::vector<double>{};
  std::vector<double> base = objective->base_scores(labels);
  GBDTModel model(task, n_classes, base);

  // Raw scores per training position.
  std::vector<double> scores(n * static_cast<std::size_t>(n_outputs));
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < n_outputs; ++c) {
      scores[i * static_cast<std::size_t>(n_outputs) + static_cast<std::size_t>(c)] =
          base[static_cast<std::size_t>(c)];
    }
  }

  // Validation state for early stopping.
  std::vector<double> valid_labels;
  std::vector<double> valid_scores;
  double best_valid_loss = std::numeric_limits<double>::infinity();
  std::size_t best_iteration = 0;
  int rounds_since_best = 0;
  const bool use_es = params.early_stopping_rounds > 0;
  // Streaming shares the incremental validation scoring early stopping
  // already maintains; it is pure observation (never feeds the model).
  const bool stream = static_cast<bool>(params.progress);
  const bool track_valid = use_es || stream;
  if (track_valid) {
    valid_labels = valid->labels();
    valid_scores.resize(valid->n_rows() * static_cast<std::size_t>(n_outputs));
    for (std::size_t i = 0; i < valid->n_rows(); ++i) {
      for (int c = 0; c < n_outputs; ++c) {
        valid_scores[i * static_cast<std::size_t>(n_outputs) +
                     static_cast<std::size_t>(c)] = base[static_cast<std::size_t>(c)];
      }
    }
  }

  GrowerParams gp;
  gp.max_leaves = params.max_leaves;
  gp.max_depth = params.max_depth;
  gp.min_child_weight = params.min_child_weight;
  gp.reg_alpha = params.reg_alpha;
  gp.reg_lambda = params.reg_lambda;
  gp.colsample_bylevel = params.colsample_bylevel;
  gp.style = params.tree_style;
  gp.oblivious_depth = params.oblivious_depth;
  gp.n_threads = params.n_threads;
  ThreadPool* score_pool = params.n_threads > 1 ? &shared_pool() : nullptr;

  std::vector<int> all_features(dataset.n_cols());
  std::iota(all_features.begin(), all_features.end(), 0);

  std::vector<double> grad, hess;
  std::vector<double> col_scores(n);  // per-output score column

  for (int iter = 0; iter < params.n_trees; ++iter) {
    // Row subsample for this iteration (shared across output columns).
    std::vector<std::uint32_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0u);
    if (params.subsample < 1.0) {
      std::size_t keep = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::lround(params.subsample *
                                                  static_cast<double>(n))));
      for (std::size_t i = 0; i < keep; ++i) {
        std::size_t j = i + rng.uniform_index(rows.size() - i);
        std::swap(rows[i], rows[j]);
      }
      rows.resize(keep);
    }
    // Column subsample for this tree.
    std::vector<int> features = all_features;
    if (params.colsample_bytree < 1.0) {
      std::size_t keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(params.colsample_bytree *
                                                  static_cast<double>(features.size()))));
      for (std::size_t i = 0; i < keep; ++i) {
        std::size_t j = i + rng.uniform_index(features.size() - i);
        std::swap(features[i], features[j]);
      }
      features.resize(keep);
    }

    for (int c = 0; c < n_outputs; ++c) {
      objective->gradients(scores, labels, c, grad, hess);
      if (weighted) {
        for (std::size_t i = 0; i < n; ++i) {
          grad[i] *= weights[i];
          hess[i] *= weights[i];
        }
      }
      Tree tree = grower.grow(rows, grad, hess, features, gp, rng);
      // Update training scores (one add per row: order-independent).
      sharded_for(score_pool, params.n_threads, n,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      scores[i * static_cast<std::size_t>(n_outputs) +
                             static_cast<std::size_t>(c)] +=
                          params.learning_rate *
                          tree.predict_row(dataset, train.row_index(i));
                    }
                  });
      if (track_valid) {
        sharded_for(score_pool, params.n_threads, valid->n_rows(),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        valid_scores[i * static_cast<std::size_t>(n_outputs) +
                                     static_cast<std::size_t>(c)] +=
                            params.learning_rate *
                            tree.predict_row(dataset, valid->row_index(i));
                      }
                    });
      }
      model.add_tree(std::move(tree), params.learning_rate);
    }

    report.iterations_completed = iter + 1;

    if (track_valid) {
      double vloss = objective->loss(valid_scores, valid_labels);
      if (stream) {
        TrainProgress point;
        point.iteration = iter + 1;
        point.planned = params.n_trees;
        point.valid_loss = vloss;
        if (!params.progress(point)) {
          report.stopped_by = TrainStop::Raced;
          throw TrialRaced("gbdt fit raced at iteration " +
                           std::to_string(iter + 1));
        }
      }
      if (use_es) {
        if (vloss < best_valid_loss - 1e-12) {
          best_valid_loss = vloss;
          best_iteration = static_cast<std::size_t>(iter + 1);
          rounds_since_best = 0;
        } else if (++rounds_since_best >= params.early_stopping_rounds) {
          report.stopped_by = TrainStop::EarlyStopped;
          break;
        }
      }
    }
    if (params.max_seconds > 0.0 && clock.now() > params.max_seconds) {
      report.stopped_by = TrainStop::Deadline;
      if (params.fail_on_deadline) {
        throw DeadlineExceeded("gbdt fit exceeded its deadline");
      }
      break;
    }
  }

  if (use_es && best_iteration > 0) model.truncate(best_iteration);
  return model;
}

}  // namespace flaml
