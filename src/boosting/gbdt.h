// Gradient-boosted decision trees.
//
// One trainer covers the three boosted learners of the paper's search space
// (Table 5) through parameterization:
//   * LightGBM-style — leaf-wise growth, tunable max_bin, per-tree column
//     sampling;
//   * XGBoost-style  — leaf-wise growth, per-level + per-tree column
//     sampling, fixed 256-bin histograms;
//   * CatBoost-style — oblivious (symmetric) trees of fixed depth with
//     early stopping on a validation set.
// Trial cost scales ~linearly in sample size × n_trees × leaves, which is
// the Observation-3 relation the AutoML layer exploits.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "boosting/objectives.h"
#include "common/progress.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "tree/grower.h"

namespace flaml {

struct GBDTParams {
  int n_trees = 100;
  double learning_rate = 0.1;
  int max_leaves = 31;
  int max_depth = 0;
  double min_child_weight = 1e-3;
  double reg_alpha = 0.0;
  double reg_lambda = 1.0;
  double subsample = 1.0;          // row sampling per iteration (w/o replacement)
  double colsample_bytree = 1.0;   // feature sampling per tree
  double colsample_bylevel = 1.0;  // feature sampling per split search
  int max_bin = 255;
  TreeStyle tree_style = TreeStyle::LeafWise;
  int oblivious_depth = 6;
  // Stop when the validation loss has not improved for this many rounds
  // (0 = disabled; requires a validation view at train time).
  int early_stopping_rounds = 0;
  // Wall-clock training budget in seconds (0 = unlimited). When
  // fail_on_deadline, crossing it throws DeadlineExceeded (killed-trial
  // semantics); otherwise training stops after the offending tree and the
  // partial model is returned (see DESIGN.md).
  double max_seconds = 0.0;
  bool fail_on_deadline = false;
  std::uint64_t seed = 0;
  // Intra-trial parallelism (histogram build, split finding, score updates)
  // on the shared_pool(). Boosting is sequential across trees, so threads
  // work inside each tree; any value yields the bit-identical model.
  int n_threads = 1;
  // Optional prebuilt fit+encode of exactly the training rows at max_bin
  // (tree/binning.h). Null return or a rows/max_bin mismatch falls back to
  // a fresh fit; either way the model is byte-identical.
  SubstrateProvider substrate;
  // Streamed learning-curve observer (common/progress.h): invoked once per
  // boosting iteration with the validation objective loss (requires a
  // validation view). Returning false throws TrialRaced. Pure observation:
  // a callback that always returns true leaves the model byte-identical
  // (validation scoring never feeds back into training).
  ProgressCallback progress;
  // Optional out-param filled progressively with iterations run / planned
  // and the stop reason — valid even when the fit exits by throwing.
  TrainReport* report = nullptr;
};

class GBDTModel {
 public:
  GBDTModel() = default;
  GBDTModel(Task task, int n_classes, std::vector<double> base_scores);

  Task task() const { return task_; }
  int n_classes() const { return n_classes_; }
  int n_outputs() const { return static_cast<int>(base_scores_.size()); }
  std::size_t n_iterations() const {
    return trees_.empty() ? 0 : trees_.size() / base_scores_.size();
  }

  // Append the tree for output column k of the current iteration.
  void add_tree(Tree tree, double learning_rate);

  // Raw additive scores, row-major n × n_outputs. Row-sharded over
  // n_threads; each row accumulates its trees in tree order, so any thread
  // count gives bit-identical scores.
  std::vector<double> raw_scores(const DataView& view, int n_threads = 1) const;
  // Probabilities / targets.
  Predictions predict(const DataView& view, int n_threads = 1) const;

  // Human-readable text serialization (round-trips via load()).
  void save(std::ostream& out) const;
  static GBDTModel load(std::istream& in);
  std::string to_string() const;
  static GBDTModel from_string(const std::string& text);

  const std::vector<Tree>& trees() const { return trees_; }
  const std::vector<double>& tree_scales() const { return scales_; }
  const std::vector<double>& base_scores() const { return base_scores_; }

  // Drop iterations after `n_keep` (used by early stopping).
  void truncate(std::size_t n_keep);

  // Gain-based feature importance: total split gain per feature over all
  // trees. `n_features` is the training dataset's column count.
  std::vector<double> feature_importance(std::size_t n_features) const;

 private:
  Task task_ = Task::Regression;
  int n_classes_ = 0;
  std::vector<double> base_scores_;  // per output column
  // trees_[iter * n_outputs + k]; scales_ holds the learning rate applied.
  std::vector<Tree> trees_;
  std::vector<double> scales_;
};

// Train on `train`; if params.early_stopping_rounds > 0, `valid` must be
// non-null and is used for the stopping criterion (best-iteration model is
// returned). The objective is chosen by the training view's task.
GBDTModel train_gbdt(const DataView& train, const DataView* valid,
                     const GBDTParams& params);

}  // namespace flaml
