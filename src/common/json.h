// Minimal JSON value, writer and recursive-descent parser shared by the
// observability layer (src/observe: JSONL traces, run summaries) and the
// bench binaries that emit machine-readable results (BENCH_tree.json).
// Supports the subset those need: null, bool, finite numbers, strings,
// arrays, objects (insertion-ordered). Parsing throws std::runtime_error
// with an offset on malformed input, which is what --check relies on.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace flaml {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double x);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  // Object lookup; throws std::runtime_error when absent or not an object.
  const JsonValue& at(const std::string& key) const;
  // Append/overwrite a key (object) — returns the stored value.
  JsonValue& set(const std::string& key, JsonValue value);
  // Append to an array — returns the stored value.
  JsonValue& push(JsonValue value);
};

// Serialize with 2-space indentation and a trailing '\n'; numbers use up to
// 17 significant digits so doubles round-trip.
std::string dump_json(const JsonValue& value);

// Serialize on a single line with no whitespace (the JSONL form the trace
// sinks write: one event per line). No trailing newline.
std::string dump_json_compact(const JsonValue& value);

// Parse a complete JSON document (trailing whitespace allowed). Throws
// std::runtime_error on any syntax error.
JsonValue parse_json(const std::string& text);

}  // namespace flaml

namespace flaml::bench {
// The benches predate the promotion of this header from bench/ to
// src/common/; keep their flaml::bench::JsonValue spelling working.
using flaml::JsonValue;
using flaml::dump_json;
using flaml::dump_json_compact;
using flaml::parse_json;
}  // namespace flaml::bench
