#include "common/wire.h"

#include <cmath>

#include "common/error.h"

namespace flaml::wire {

const JsonValue* opt(const JsonValue& request, const std::string& key) {
  FLAML_REQUIRE(request.is_object(), "request must be a JSON object");
  return request.find(key);
}

std::string opt_string(const JsonValue& request, const std::string& key,
                       const std::string& fallback) {
  const JsonValue* v = opt(request, key);
  if (v == nullptr) return fallback;
  FLAML_REQUIRE(v->is_string(), "field '" << key << "' must be a string");
  return v->str;
}

bool opt_bool(const JsonValue& request, const std::string& key, bool fallback) {
  const JsonValue* v = opt(request, key);
  if (v == nullptr) return fallback;
  FLAML_REQUIRE(v->is_bool(), "field '" << key << "' must be a boolean");
  return v->boolean;
}

double opt_number(const JsonValue& request, const std::string& key,
                  double fallback) {
  const JsonValue* v = opt(request, key);
  if (v == nullptr) return fallback;
  FLAML_REQUIRE(v->is_number(), "field '" << key << "' must be a number");
  return v->number;
}

namespace {

// The shared core: `n` must be finite, exactly integral and in [lo, hi].
// The comparison against `hi` happens in double space with the bound
// rounded DOWN to a representable double <= hi, so a value like 2^53 + 8
// (representable) can never slip past a bound of 2^53 - 1 (not
// representable) through rounding.
std::uint64_t decode_integer(double n, const std::string& what,
                             std::uint64_t lo, std::uint64_t hi) {
  FLAML_REQUIRE(std::isfinite(n), what << " must be a finite number");
  FLAML_REQUIRE(n == std::floor(n),
                what << " must be an integer, got " << n);
  FLAML_REQUIRE(n >= 0.0 && n >= static_cast<double>(lo),
                what << " must be >= " << lo << ", got " << n);
  // hi <= 2^53 is always exactly representable (kMaxSafeInteger == 2^53 and
  // every integer below it converts exactly).
  FLAML_REQUIRE(n <= static_cast<double>(hi),
                what << " must be <= " << hi << ", got " << n);
  return static_cast<std::uint64_t>(n);
}

}  // namespace

std::size_t opt_size(const JsonValue& request, const std::string& key,
                     std::size_t fallback, std::uint64_t max) {
  const JsonValue* v = opt(request, key);
  if (v == nullptr) return fallback;
  FLAML_REQUIRE(v->is_number(), "field '" << key << "' must be a number");
  return static_cast<std::size_t>(
      decode_integer(v->number, "field '" + key + "'", 0, max));
}

std::uint64_t req_id(const JsonValue& request, const std::string& key,
                     std::uint64_t max) {
  const JsonValue* v = opt(request, key);
  FLAML_REQUIRE(v != nullptr && v->is_number(),
                "request needs a numeric \"" << key << "\"");
  return decode_integer(v->number, "field '" + key + "'", 1, max);
}

std::uint64_t strict_integer(const JsonValue& value, const std::string& what,
                             std::uint64_t max) {
  FLAML_REQUIRE(value.is_number(), what << " must be a number");
  return decode_integer(value.number, what, 0, max);
}

JsonValue ok_response() {
  JsonValue out = JsonValue::make_object();
  out.set("ok", JsonValue::make_bool(true));
  return out;
}

JsonValue error_response(const std::string& message) {
  JsonValue out = JsonValue::make_object();
  out.set("ok", JsonValue::make_bool(false));
  out.set("error", JsonValue::make_string(message));
  return out;
}

}  // namespace flaml::wire
