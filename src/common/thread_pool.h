// Fixed-size thread pool used by the optional parallel search mode of the
// AutoML controller (paper appendix: multiple search threads sampled by ECI)
// and by the forest trainers for per-tree parallelism.
//
// Shutdown contract (verified under TSan by tests/stress/stress_thread_pool):
//   * shutdown() (and the destructor) first marks the pool stopped under the
//     queue mutex, then joins the workers; workers drain every task that was
//     queued before the stop flag was set, so accepted work always runs.
//   * submit() after shutdown began throws the typed PoolStopped (an
//     InvalidArgument subclass) instead of enqueueing a task that could never
//     run (the enqueue/destroy race); try_submit() is the non-throwing
//     spelling for callers — like a worker task of this very pool enqueueing
//     follow-up work while the pool is being torn down — that must treat
//     "the pool is going away" as an ordinary outcome, not an error.
//   * The condition variable is only notified while the queue mutex is held:
//     a notify after unlocking could touch a condition variable whose pool is
//     already mid-destruction on another thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.h"

namespace flaml {

class ThreadPool {
 public:
  // n == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Stop accepting new tasks, run everything already queued, join workers.
  // Idempotent; called by the destructor. Must not be called from a worker
  // thread of this pool (a worker cannot join itself).
  void shutdown();

  // True once shutdown() has begun; submit() will throw from then on.
  // Inherently racy as a pre-check (shutdown can begin right after it
  // returns) — use try_submit() when the answer must be authoritative.
  bool stopped() const;

  // Enqueue a task; the returned future rethrows any exception on get().
  // Throws PoolStopped if the pool is (being) shut down — the stop flag and
  // the enqueue are checked/performed under one lock hold, so a task is
  // either visible to the draining workers or rejected, never lost in
  // between. Note: blocking on a future from inside a worker of the same
  // pool can deadlock once all workers block; use parallel_for for nested
  // parallelism instead.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    auto fut = try_submit(std::forward<F>(f));
    if (!fut.has_value()) {
      throw PoolStopped("submit() on a stopped ThreadPool");
    }
    return std::move(*fut);
  }

  // Non-throwing submit: nullopt once shutdown has begun. The atomic
  // check-and-enqueue is the same as submit()'s; only the rejection surface
  // differs. Safe to call from this pool's own workers (a dying worker's
  // follow-up enqueue gets a clean rejection instead of racing the drain).
  template <typename F>
  auto try_submit(F&& f)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return std::nullopt;
      queue_.emplace_back([task] { (*task)(); });
      cv_.notify_one();  // under the lock — see the shutdown contract above
    }
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  // Safe to call from inside one of this pool's own workers: the nested call
  // runs inline on the calling thread instead of deadlocking on the queue.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Same, but with at most `max_threads` threads working concurrently
  // (counting the calling thread, which always helps). max_threads <= 1
  // degrades to an inline loop. This is the primitive behind the per-trial
  // n_threads knob: one shared pool serves every trial, each capping its
  // own slice of it.
  void parallel_for(std::size_t n, std::size_t max_threads,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  bool on_worker_thread() const;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool joined_ = false;  // workers joined (shutdown completed)
};

// Process-wide pool for intra-trial data parallelism (histogram builds,
// split finding, tree bagging, row-sharded prediction). Lazily constructed
// on first use with max(8, hardware_concurrency) workers so that the
// deterministic parallel==serial contract can be exercised even on small
// machines; per-call concurrency is capped by the caller's n_threads via
// parallel_for(n, max_threads, fn). Distinct from the trial-level pool the
// AutoML controller creates per fit(): a trial running on a controller
// worker fans its inner loops out here, while work that reaches this pool's
// own workers degrades to inline loops (nested-parallel_for contract), so
// trial-level and intra-trial parallelism compose without deadlock.
ThreadPool& shared_pool();

// Split [0, n) into at most max(1, n_threads) contiguous shards and run
// fn(begin, end) on each, using `pool` when non-null and more than one
// shard results (serial inline otherwise). fn must be safe to run
// concurrently on disjoint ranges, and callers must not let results depend
// on shard boundaries — write per-index (or per-shard) outputs and reduce
// them in a fixed order afterwards to preserve bit-exact determinism.
void sharded_for(ThreadPool* pool, int n_threads, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace flaml
