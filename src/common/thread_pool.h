// Fixed-size thread pool used by the optional parallel search mode of the
// AutoML controller (paper appendix: multiple search threads sampled by ECI)
// and by the forest trainers for per-tree parallelism.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace flaml {

class ThreadPool {
 public:
  // n == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; the returned future rethrows any exception on get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace flaml
