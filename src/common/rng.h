// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (data generators, samplers,
// FLOW2 direction sampling, ECI-proportional learner choice, baseline
// tuners) draw from Rng so that every experiment is reproducible from a
// single seed. The engine is xoshiro256** seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <vector>

namespace flaml {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (cached pair).
  double normal();
  double normal(double mean, double stddev);
  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  // Exponential with rate lambda > 0.
  double exponential(double lambda);

  // A point drawn uniformly from the surface of the unit sphere in R^d.
  // For d == 1 returns {±1}. Requires d >= 1.
  std::vector<double> unit_sphere(int d);

  // Sample an index in [0, weights.size()) with probability proportional to
  // weights[i]. Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  // In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (stable across platforms).
  Rng split();

  // Exact engine state for checkpoint/resume: the 4 xoshiro256** words plus
  // the cached Box–Muller normal. restore() resumes the stream bit-for-bit
  // where snapshot() left it.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State snapshot() const;
  void restore(const State& state);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace flaml
