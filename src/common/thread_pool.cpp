#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace flaml {

namespace {
// Identifies the pool the current thread is a worker of (nullptr on
// non-worker threads). Lets parallel_for detect re-entrant calls from its
// own workers and degrade to an inline loop instead of deadlocking.
thread_local const ThreadPool* t_worker_of = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  FLAML_CHECK_MSG(!on_worker_thread(), "shutdown() from a pool worker thread");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;
    stop_ = true;
    cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
  std::lock_guard<std::mutex> lock(mutex_);
  joined_ = true;
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

bool ThreadPool::on_worker_thread() const { return t_worker_of == this; }

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-before-exit: tasks queued before the stop flag still run.
      if (stop_ && queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  t_worker_of = nullptr;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(n, workers_.size() + 1, fn);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t max_threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Shards submitted to the pool; the calling thread is the +1.
  const std::size_t helpers =
      std::min({workers_.size(), n, max_threads > 0 ? max_threads - 1 : 0});
  if (n == 1 || workers_.size() == 1 || helpers == 0 || on_worker_thread()) {
    // Inline fallback: trivial sizes, a single-worker pool (no speedup), a
    // concurrency cap of 1, or a nested call from one of our own workers
    // (submitting and blocking here could deadlock once every worker does
    // the same).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  std::size_t shards = helpers;
  futures.reserve(shards);
  for (std::size_t w = 0; w < shards; ++w) {
    futures.push_back(submit([&] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  // The calling thread helps instead of idling: one core fewer wasted, and
  // a 2-worker pool still makes progress when one worker is stuck behind an
  // unrelated long task.
  std::exception_ptr first_error;
  try {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      // Keep waiting for the remaining shards (they reference local state);
      // rethrow the first failure once everything has stopped.
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& shared_pool() {
  // Floor of 8 so the parallel code paths (and their TSan coverage) are real
  // even on 1-2 core machines; per-call concurrency is capped by callers.
  static ThreadPool pool(
      std::max<std::size_t>(8, std::thread::hardware_concurrency()));
  return pool;
}

void sharded_for(ThreadPool* pool, int n_threads, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t shards =
      std::min<std::size_t>(n, n_threads <= 1 ? 1 : static_cast<std::size_t>(n_threads));
  if (pool == nullptr || shards <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + shards - 1) / shards;
  pool->parallel_for(shards, shards, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace flaml
