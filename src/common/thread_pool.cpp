#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace flaml {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  std::size_t shards = std::min(workers_.size(), n);
  futures.reserve(shards);
  for (std::size_t w = 0; w < shards; ++w) {
    futures.push_back(submit([&] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace flaml
