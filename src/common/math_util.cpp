#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flaml {

double sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double log1pexp(double x) {
  if (x > 35.0) return x;
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double logsumexp(const std::vector<double>& x) {
  FLAML_CHECK(!x.empty());
  double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double v : x) s += std::exp(v - m);
  return m + std::log(s);
}

void softmax_inplace(std::vector<double>& x) {
  FLAML_CHECK(!x.empty());
  double lse = logsumexp(x);
  for (double& v : x) v = std::exp(v - lse);
}

double mean(const std::vector<double>& x) {
  FLAML_CHECK(!x.empty());
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double harmonic_mean(const std::vector<double>& x) {
  FLAML_CHECK(!x.empty());
  double s = 0.0;
  for (double v : x) {
    FLAML_CHECK_MSG(v > 0.0, "harmonic mean requires positive values");
    s += 1.0 / v;
  }
  return static_cast<double>(x.size()) / s;
}

double quantile(std::vector<double> x, double q) {
  FLAML_CHECK(!x.empty());
  FLAML_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(x.begin(), x.end());
  if (x.size() == 1) return x[0];
  double pos = q * static_cast<double>(x.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, x.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

double clamp(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

bool approx_equal(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  FLAML_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = mean(a), mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace flaml
