// Minimal leveled logger.
//
// The library is quiet by default (Warn). Benches and examples raise the
// level to Info/Debug to narrate the search. Thread-safe for interleaved
// lines; not intended for high-frequency logging on hot paths.
#pragma once

#include <sstream>
#include <string>

namespace flaml {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

namespace logging {

LogLevel level();
void set_level(LogLevel level);
void emit(LogLevel level, const std::string& message);

}  // namespace logging

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logging::emit(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace flaml

#define FLAML_LOG(lvl)                                    \
  if (::flaml::LogLevel::lvl < ::flaml::logging::level()) \
    ;                                                     \
  else                                                    \
    ::flaml::detail::LogLine(::flaml::LogLevel::lvl)
