#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace flaml::logging {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void emit(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[flaml " << name(level) << "] " << message << '\n';
}

}  // namespace flaml::logging
