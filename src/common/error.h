// Error handling primitives shared across the library.
//
// We use exceptions for contract violations at API boundaries (bad user
// input) and FLAML_CHECK for internal invariants. Both carry a formatted
// message with the failing expression and location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace flaml {

// Thrown when a public API is called with invalid arguments (e.g. an empty
// dataset, a mismatched label vector, an unknown learner name).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& msg) : std::invalid_argument(msg) {}
};

// Thrown by ThreadPool::submit once shutdown has begun: the task can never
// run (workers only drain what was queued before the stop flag), so
// accepting it would silently lose work. Subclasses InvalidArgument so the
// pre-existing catch sites (and tests) that treated this as a generic bad
// call keep working; typed so long-running services — the search daemon
// cancels jobs whose segments race the pool teardown — can tell "the pool
// is going away" apart from a real API misuse and fail the one task instead
// of the whole process. try_submit() is the non-throwing spelling.
class PoolStopped : public InvalidArgument {
 public:
  explicit PoolStopped(const std::string& msg) : InvalidArgument(msg) {}
};

// Thrown when a dataset (or a resampling carve of it) leaves too few rows
// to train on — e.g. a holdout split whose training side would be a single
// row, or a view where no cross-validation fold count yields non-empty
// folds with >= 2 training rows per fold. Subclasses InvalidArgument so
// existing catch sites keep working; typed so callers can tell "your data
// is too small for this resampling setup" apart from other bad arguments.
class DatasetTooSmall : public InvalidArgument {
 public:
  explicit DatasetTooSmall(const std::string& msg) : InvalidArgument(msg) {}
};

// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& msg) : std::logic_error(msg) {}
};

// Thrown by trainers when a fit exceeds its wall-clock deadline and the
// caller asked for kill semantics (TrainContext::fail_on_deadline) — the
// in-process equivalent of an AutoML driver killing an overrunning trial.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& msg) : std::runtime_error(msg) {}
};

// Thrown by trainers when a streamed-progress callback
// (TrainContext::progress) vetoes further iterations — the racing monitor
// decided the trial's learning curve is dominated by the incumbent envelope
// beyond the configured slack. Distinct from DeadlineExceeded so the trial
// runner can record TrialStatus::Raced (curve-based frugality) separately
// from wall-clock kills.
class TrialRaced : public std::runtime_error {
 public:
  explicit TrialRaced(const std::string& msg) : std::runtime_error(msg) {}
};

// Thrown when a serialized artifact (search checkpoint, model blob, trace)
// is truncated, corrupt, or written by an incompatible format version. Every
// loader validates before it allocates or indexes, so adversarial input can
// only ever produce this exception — never UB or an unbounded allocation.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "FLAML_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

[[noreturn]] inline void fail_require(const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << "invalid argument: requirement (" << expr << ") not met";
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void fail_parse(const std::string& msg) {
  throw SerializationError("corrupt serialized data — " + msg);
}

}  // namespace detail

}  // namespace flaml

// Internal invariant check; throws InternalError on failure.
#define FLAML_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr)) ::flaml::detail::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define FLAML_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::flaml::detail::fail_check(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                     \
  } while (false)

// Public-API precondition; throws InvalidArgument on failure.
#define FLAML_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::flaml::detail::fail_require(#expr, os_.str());                    \
    }                                                                     \
  } while (false)

// Loader validation of untrusted serialized input; throws SerializationError
// on failure. Use for anything read back from disk (checkpoints, model
// files): the caller may be handed a truncated or bit-flipped file and must
// get a typed error, not UB.
#define FLAML_PARSE_REQUIRE(expr, msg)                                    \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::flaml::detail::fail_parse(os_.str());                             \
    }                                                                     \
  } while (false)
