// Time sources for budget accounting.
//
// The AutoML controller charges every trial against a time budget. For
// production use WallClock measures real elapsed seconds; for deterministic
// tests and fast simulation VirtualClock lets the caller (e.g. a trial
// runner with a cost model) advance time explicitly.
#pragma once

#include <chrono>

namespace flaml {

// Abstract monotonic time source measured in seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  // Seconds since an arbitrary fixed origin.
  virtual double now() const = 0;
};

// Real monotonic wall-clock time.
class WallClock final : public Clock {
 public:
  WallClock();
  double now() const override;

 private:
  std::chrono::steady_clock::time_point origin_;
};

// Manually-advanced clock for deterministic tests and simulations.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start = 0.0) : t_(start) {}
  double now() const override { return t_; }
  void advance(double seconds);
  void set(double t);

 private:
  double t_;
};

// Monotone elapsed-time accumulator for budget accounting. Samples the
// clock on every elapsed() call and accumulates only non-negative deltas,
// so a source that jumps backwards (a buggy clock, a VM suspend artifact, a
// wall clock fed by NTP) can never make elapsed() decrease — and after the
// jump, forward progress counts again immediately instead of stalling until
// the source re-crosses its old maximum. The AutoML controller routes all
// of its elapsed_seconds_/elapsed_offset_ budget math through one of these
// (over a steady-clock WallClock by default, or AutoMLOptions::clock), so a
// system-time jump can neither kill a search early nor immortalize it.
class BudgetMeter {
 public:
  // `offset` = budget already spent before this meter started (resume).
  explicit BudgetMeter(const Clock& clock, double offset = 0.0);

  // Monotone non-decreasing; `offset` plus the sum of forward clock motion
  // observed so far.
  double elapsed();

 private:
  const Clock* clock_;
  double accumulated_;
  double last_now_;
};

// Convenience stopwatch over any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}
  double elapsed() const { return clock_->now() - start_; }
  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  double start_;
};

}  // namespace flaml
