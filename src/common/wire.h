// Strict field decoding for the line-JSON wire protocols (the search
// daemon's SearchService and the prediction daemon's PredictService).
//
// JSON numbers are doubles, so a naive static_cast<std::size_t>(v->number)
// silently truncates fractional values ("seed": 1.5 -> 1) and is undefined
// behaviour on out-of-range doubles. Every integer that crosses the wire
// goes through these helpers instead: a value must be a finite number,
// exactly integral, and within [lo, hi] — anything else throws a typed
// InvalidArgument naming the field, which the services turn into an
// {"ok":false,"error":...} response instead of a corrupted request.
//
// The representable-integer ceiling is 2^53: beyond it doubles cannot
// distinguish adjacent integers, so accepting 2^53 + 1 would silently alias
// to 2^53. Values above the ceiling are rejected, never clamped.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"

namespace flaml::wire {

// Largest double that still represents every smaller non-negative integer
// exactly (2^53). The strict decoders reject anything above it.
inline constexpr std::uint64_t kMaxSafeInteger = 1ull << 53;

// Object lookup; nullptr when absent. Throws InvalidArgument when `request`
// is not an object.
const JsonValue* opt(const JsonValue& request, const std::string& key);

// Optional typed fields with fallbacks; present-but-mistyped throws.
std::string opt_string(const JsonValue& request, const std::string& key,
                       const std::string& fallback);
bool opt_bool(const JsonValue& request, const std::string& key, bool fallback);
double opt_number(const JsonValue& request, const std::string& key,
                  double fallback);

// Strictly-integral optional field in [0, max]; fractional, negative,
// non-finite and > max values all throw. `max` defaults to the 2^53
// representability ceiling.
std::size_t opt_size(const JsonValue& request, const std::string& key,
                     std::size_t fallback,
                     std::uint64_t max = kMaxSafeInteger);

// Required strictly-integral field in [1, max] — job/model ids.
std::uint64_t req_id(const JsonValue& request, const std::string& key = "id",
                     std::uint64_t max = kMaxSafeInteger);

// Decode a bare number as a strict integer in [0, max] (array elements).
std::uint64_t strict_integer(const JsonValue& value, const std::string& what,
                             std::uint64_t max = kMaxSafeInteger);

// Canonical one-line response shells shared by every wire service.
JsonValue ok_response();
JsonValue error_response(const std::string& message);

}  // namespace flaml::wire
