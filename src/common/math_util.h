// Small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <vector>

namespace flaml {

// Numerically-stable sigmoid.
double sigmoid(double x);

// log(1 + exp(x)) without overflow.
double log1pexp(double x);

// log(sum_i exp(x_i)) of a non-empty vector.
double logsumexp(const std::vector<double>& x);

// In-place softmax of a non-empty vector.
void softmax_inplace(std::vector<double>& x);

// Arithmetic mean of a non-empty range.
double mean(const std::vector<double>& x);

// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(const std::vector<double>& x);

// Harmonic mean of strictly positive values.
double harmonic_mean(const std::vector<double>& x);

// Linear-interpolated quantile of an unsorted copy of x; q in [0, 1].
double quantile(std::vector<double> x, double q);

// Clamp helper that works for mixed numeric types.
double clamp(double v, double lo, double hi);

// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

// Pearson correlation of two equal-length vectors (0 if degenerate).
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace flaml
