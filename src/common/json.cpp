#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace flaml {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type = Type::Bool;
  v.boolean = b;
  return v;
}

JsonValue JsonValue::make_number(double x) {
  if (!std::isfinite(x)) throw std::runtime_error("JSON numbers must be finite");
  JsonValue v;
  v.type = Type::Number;
  v.number = x;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type = Type::String;
  v.str = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.type = Type::Array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.type = Type::Object;
  return v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("missing JSON object key '" + key + "'");
  }
  return *value;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (type != Type::Object) throw std::runtime_error("set() on non-object JSON value");
  for (auto& [k, v] : object) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object.emplace_back(key, std::move(value));
  return object.back().second;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (type != Type::Array) throw std::runtime_error("push() on non-array JSON value");
  array.push_back(std::move(value));
  return array.back();
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double x, std::string& out) {
  // Integers print without an exponent or trailing zeros; everything else
  // uses enough digits to round-trip.
  if (x == std::floor(x) && std::fabs(x) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", x);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  out += buf;
}

void dump_value_compact(const JsonValue& v, std::string& out) {
  switch (v.type) {
    case JsonValue::Type::Null: out += "null"; break;
    case JsonValue::Type::Bool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Type::Number: dump_number(v.number, out); break;
    case JsonValue::Type::String: dump_string(v.str, out); break;
    case JsonValue::Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ',';
        dump_value_compact(v.array[i], out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i > 0) out += ',';
        dump_string(v.object[i].first, out);
        out += ':';
        dump_value_compact(v.object[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

void dump_value(const JsonValue& v, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (v.type) {
    case JsonValue::Type::Null: out += "null"; break;
    case JsonValue::Type::Bool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Type::Number: dump_number(v.number, out); break;
    case JsonValue::Type::String: dump_string(v.str, out); break;
    case JsonValue::Type::Array: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += pad_in;
        dump_value(v.array[i], depth + 1, out);
        if (i + 1 < v.array.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      break;
    }
    case JsonValue::Type::Object: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += pad_in;
        dump_string(v.object[i].first, out);
        out += ": ";
        dump_value(v.object[i].second, depth + 1, out);
        if (i + 1 < v.object.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len] != '\0') ++len;
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // ASCII only (all the benches emit); others are replaced.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double x = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return JsonValue::make_number(x);
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string dump_json(const JsonValue& value) {
  std::string out;
  dump_value(value, 0, out);
  out += '\n';
  return out;
}

std::string dump_json_compact(const JsonValue& value) {
  std::string out;
  dump_value_compact(value, out);
  return out;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace flaml
