#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace flaml {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  FLAML_CHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FLAML_CHECK(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double lambda) {
  FLAML_CHECK(lambda > 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / lambda;
}

std::vector<double> Rng::unit_sphere(int d) {
  FLAML_CHECK(d >= 1);
  std::vector<double> v(static_cast<std::size_t>(d));
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (auto& x : v) {
      x = normal();
      norm2 += x * x;
    }
  } while (norm2 < 1e-24);
  double inv = 1.0 / std::sqrt(norm2);
  for (auto& x : v) x *= inv;
  return v;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    FLAML_CHECK_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  FLAML_CHECK_MSG(total > 0.0, "categorical needs a positive weight");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point edge: return last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

Rng::State Rng::snapshot() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::restore(const State& state) {
  // An all-zero state is xoshiro's one forbidden fixed point (the stream
  // would be constant 0 forever); no snapshot() can produce it, so seeing
  // one means the caller deserialized garbage.
  FLAML_REQUIRE(state.s[0] != 0 || state.s[1] != 0 || state.s[2] != 0 ||
                    state.s[3] != 0,
                "all-zero RNG state is invalid");
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace flaml
