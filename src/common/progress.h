// Streamed training-progress types shared by the trainers (src/boosting,
// src/forest) and the learner layer (src/learners/learner.h re-exports them
// on TrainContext). Lives in common/ because the trainers sit below the
// learner abstraction in the dependency graph.
#pragma once

#include <functional>

namespace flaml {

// One streamed point of a learner's validation learning curve: emitted after
// every completed training unit (boosting iteration; forest tree chunk) when
// the caller installed a progress callback and supplied validation rows.
// `valid_loss` is the learner family's internal streaming loss (boosting:
// objective loss on the incremental validation scores that early stopping
// already maintains; forests: misclassification rate / MSE of the trees
// built so far) — comparable across trials of the SAME learner, which is
// all the racing monitor ever compares.
struct TrainProgress {
  int iteration = 0;   // 1-based count of completed units
  int planned = 0;     // units this fit would run uninterrupted
  double valid_loss = 0.0;
};

// Return false to stop the fit: the trainer throws TrialRaced (common/
// error.h). Streaming is pure observation — installing a callback that
// always returns true must leave the trained model byte-identical.
using ProgressCallback = std::function<bool(const TrainProgress&)>;

// Why a fit returned when it did (TrainReport::stopped_by).
enum class TrainStop {
  Completed,     // ran every planned unit
  EarlyStopped,  // validation early stopping triggered
  Deadline,      // max_seconds cap (thrown or safety-capped partial model)
  Raced,         // progress callback vetoed (reported just before the throw)
};

// Out-of-band account of how much of a fit actually ran. Filled
// PROGRESSIVELY by trainers (iterations_completed is bumped as each unit
// finishes), so the counts are valid even when the fit exits by throwing
// (DeadlineExceeded, TrialRaced) or returns a partial model under the
// max_seconds safety cap — the racing monitor and traces need the true
// curve length, not the planned one.
struct TrainReport {
  int iterations_completed = 0;
  int iterations_planned = 0;
  TrainStop stopped_by = TrainStop::Completed;
};

}  // namespace flaml
