#include "common/clock.h"

#include "common/error.h"

namespace flaml {

WallClock::WallClock() : origin_(std::chrono::steady_clock::now()) {}

double WallClock::now() const {
  auto d = std::chrono::steady_clock::now() - origin_;
  return std::chrono::duration<double>(d).count();
}

BudgetMeter::BudgetMeter(const Clock& clock, double offset)
    : clock_(&clock), accumulated_(offset), last_now_(clock.now()) {
  FLAML_CHECK_MSG(offset >= 0.0, "budget offset cannot be negative");
}

double BudgetMeter::elapsed() {
  const double now = clock_->now();
  if (now > last_now_) accumulated_ += now - last_now_;
  last_now_ = now;
  return accumulated_;
}

void VirtualClock::advance(double seconds) {
  FLAML_CHECK_MSG(seconds >= 0.0, "virtual clock cannot move backwards");
  t_ += seconds;
}

void VirtualClock::set(double t) {
  FLAML_CHECK_MSG(t >= t_, "virtual clock cannot move backwards");
  t_ = t;
}

}  // namespace flaml
