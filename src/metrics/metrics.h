// Model quality metrics.
//
// Conventions: classification predictions are class probabilities, row-major
// n_rows × n_classes (binary convenience overloads take P(class 1) only);
// labels are class ids as doubles. All functions validate shapes.
#pragma once

#include <vector>

namespace flaml {

// Area under the ROC curve of score-ranked positives (ties handled by
// midrank). labels must contain only 0 and 1 with both classes present.
double roc_auc(const std::vector<double>& scores, const std::vector<double>& labels);

// Binary cross-entropy of P(class 1); probabilities are clipped to
// [eps, 1-eps] with eps = 1e-15.
double log_loss_binary(const std::vector<double>& prob1,
                       const std::vector<double>& labels);

// Multiclass cross-entropy. probs is row-major n × n_classes.
double log_loss_multi(const std::vector<double>& probs, int n_classes,
                      const std::vector<double>& labels);

// Fraction of rows whose argmax-probability class equals the label.
double accuracy_multi(const std::vector<double>& probs, int n_classes,
                      const std::vector<double>& labels);
// Binary accuracy at the 0.5 threshold.
double accuracy_binary(const std::vector<double>& prob1,
                       const std::vector<double>& labels);

// Regression metrics.
double mse(const std::vector<double>& pred, const std::vector<double>& truth);
double rmse(const std::vector<double>& pred, const std::vector<double>& truth);
double mae(const std::vector<double>& pred, const std::vector<double>& truth);
// Coefficient of determination; 0 for a constant-mean predictor, can be
// negative for worse-than-mean predictors, 1 for perfect.
double r2(const std::vector<double>& pred, const std::vector<double>& truth);

// q-error for selectivity estimation: max(pred/truth, truth/pred) with both
// sides floored at `floor_value` (cardinalities below one row are clamped,
// as in the selectivity-estimation literature). Always >= 1.
double q_error(double pred, double truth, double floor_value = 1.0);
// Elementwise q-error of two vectors.
std::vector<double> q_errors(const std::vector<double>& pred,
                             const std::vector<double>& truth,
                             double floor_value = 1.0);
// The q-th quantile (e.g. 0.95) of the elementwise q-errors.
double q_error_quantile(const std::vector<double>& pred,
                        const std::vector<double>& truth, double q,
                        double floor_value = 1.0);

}  // namespace flaml
