// Scaled-score calibration of the AutoML benchmark (Gijsbers et al. 2019).
//
// Raw errors are calibrated per dataset so that a constant class-prior
// predictor scores 0 and a tuned random forest (a strong, slow baseline)
// scores 1; a score above 1 beats the tuned forest. All Figure 5/6 and
// Table 9 numbers are in this calibrated unit.
#pragma once

namespace flaml {

struct ScoreCalibration {
  // Error (lower-better metric value) of the constant class-prior /
  // mean predictor on this dataset.
  double prior_error = 1.0;
  // Error of the tuned random-forest reference.
  double reference_error = 0.0;
};

// (prior_error - error) / (prior_error - reference_error).
// If the reference failed to beat the prior (degenerate calibration), the
// denominator is floored at `min_gap` to keep scores finite and ordered.
double scaled_score(double error, const ScoreCalibration& calibration,
                    double min_gap = 1e-6);

}  // namespace flaml
