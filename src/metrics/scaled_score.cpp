#include "metrics/scaled_score.h"

#include <algorithm>

#include "common/error.h"

namespace flaml {

double scaled_score(double error, const ScoreCalibration& calibration, double min_gap) {
  FLAML_REQUIRE(min_gap > 0.0, "min_gap must be positive");
  double gap = std::max(calibration.prior_error - calibration.reference_error, min_gap);
  return (calibration.prior_error - error) / gap;
}

}  // namespace flaml
