#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/math_util.h"

namespace flaml {

namespace {
constexpr double kEps = 1e-15;
}

double roc_auc(const std::vector<double>& scores, const std::vector<double>& labels) {
  FLAML_REQUIRE(scores.size() == labels.size() && !scores.empty(),
                "roc_auc: shape mismatch or empty input");
  std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  // Midranks for tied scores.
  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double mid = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based midrank
    for (std::size_t t = i; t <= j; ++t) rank[order[t]] = mid;
    i = j + 1;
  }

  double n_pos = 0.0, n_neg = 0.0, rank_sum_pos = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    double y = labels[t];
    FLAML_REQUIRE(y == 0.0 || y == 1.0, "roc_auc labels must be 0/1");
    if (y == 1.0) {
      n_pos += 1.0;
      rank_sum_pos += rank[t];
    } else {
      n_neg += 1.0;
    }
  }
  FLAML_REQUIRE(n_pos > 0 && n_neg > 0, "roc_auc needs both classes present");
  // Mann-Whitney U statistic.
  double u = rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0;
  return u / (n_pos * n_neg);
}

double log_loss_binary(const std::vector<double>& prob1,
                       const std::vector<double>& labels) {
  FLAML_REQUIRE(prob1.size() == labels.size() && !prob1.empty(),
                "log_loss_binary: shape mismatch or empty input");
  double total = 0.0;
  for (std::size_t i = 0; i < prob1.size(); ++i) {
    double p = clamp(prob1[i], kEps, 1.0 - kEps);
    total += labels[i] == 1.0 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(prob1.size());
}

double log_loss_multi(const std::vector<double>& probs, int n_classes,
                      const std::vector<double>& labels) {
  FLAML_REQUIRE(n_classes >= 2, "log_loss_multi needs >= 2 classes");
  FLAML_REQUIRE(probs.size() == labels.size() * static_cast<std::size_t>(n_classes),
                "log_loss_multi: probs shape mismatch");
  FLAML_REQUIRE(!labels.empty(), "log_loss_multi: empty input");
  double total = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    int y = static_cast<int>(labels[i]);
    FLAML_REQUIRE(y >= 0 && y < n_classes, "label out of range");
    double p = clamp(probs[i * static_cast<std::size_t>(n_classes) +
                           static_cast<std::size_t>(y)],
                     kEps, 1.0);
    total += -std::log(p);
  }
  return total / static_cast<double>(labels.size());
}

double accuracy_multi(const std::vector<double>& probs, int n_classes,
                      const std::vector<double>& labels) {
  FLAML_REQUIRE(n_classes >= 2, "accuracy_multi needs >= 2 classes");
  FLAML_REQUIRE(probs.size() == labels.size() * static_cast<std::size_t>(n_classes),
                "accuracy_multi: probs shape mismatch");
  FLAML_REQUIRE(!labels.empty(), "accuracy_multi: empty input");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double* row = probs.data() + i * static_cast<std::size_t>(n_classes);
    int best = 0;
    for (int c = 1; c < n_classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == static_cast<int>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double accuracy_binary(const std::vector<double>& prob1,
                       const std::vector<double>& labels) {
  FLAML_REQUIRE(prob1.size() == labels.size() && !prob1.empty(),
                "accuracy_binary: shape mismatch or empty input");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < prob1.size(); ++i) {
    int pred = prob1[i] >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(prob1.size());
}

double mse(const std::vector<double>& pred, const std::vector<double>& truth) {
  FLAML_REQUIRE(pred.size() == truth.size() && !pred.empty(),
                "mse: shape mismatch or empty input");
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - truth[i];
    total += d * d;
  }
  return total / static_cast<double>(pred.size());
}

double rmse(const std::vector<double>& pred, const std::vector<double>& truth) {
  return std::sqrt(mse(pred, truth));
}

double mae(const std::vector<double>& pred, const std::vector<double>& truth) {
  FLAML_REQUIRE(pred.size() == truth.size() && !pred.empty(),
                "mae: shape mismatch or empty input");
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) total += std::fabs(pred[i] - truth[i]);
  return total / static_cast<double>(pred.size());
}

double r2(const std::vector<double>& pred, const std::vector<double>& truth) {
  FLAML_REQUIRE(pred.size() == truth.size() && !pred.empty(),
                "r2: shape mismatch or empty input");
  double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double q_error(double pred, double truth, double floor_value) {
  FLAML_REQUIRE(floor_value > 0.0, "q_error floor must be positive");
  double p = std::max(pred, floor_value);
  double t = std::max(truth, floor_value);
  return std::max(p / t, t / p);
}

std::vector<double> q_errors(const std::vector<double>& pred,
                             const std::vector<double>& truth, double floor_value) {
  FLAML_REQUIRE(pred.size() == truth.size() && !pred.empty(),
                "q_errors: shape mismatch or empty input");
  std::vector<double> out(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    out[i] = q_error(pred[i], truth[i], floor_value);
  }
  return out;
}

double q_error_quantile(const std::vector<double>& pred,
                        const std::vector<double>& truth, double q,
                        double floor_value) {
  return quantile(q_errors(pred, truth, floor_value), q);
}

}  // namespace flaml
