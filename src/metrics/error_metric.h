// The error abstraction the AutoML layer optimizes.
//
// A trial produces Predictions on validation data; an ErrorMetric maps them
// to a scalar error where LOWER IS BETTER (the paper's \tilde{\epsilon}).
// Built-in metrics follow the AutoML benchmark: binary -> 1 - roc-auc,
// multiclass -> log-loss, regression -> 1 - r2. Users can register custom
// metrics (paper §3 API: `automl.fit(..., metric=mymetric)`).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace flaml {

// Model outputs on a set of rows. For classification `values` holds
// row-major n_rows × n_classes probabilities; for regression it holds the
// n_rows predicted targets.
struct Predictions {
  Task task = Task::Regression;
  int n_classes = 0;
  std::vector<double> values;

  std::size_t n_rows() const {
    return is_classification(task)
               ? values.size() / static_cast<std::size_t>(n_classes)
               : values.size();
  }
  // P(class 1) column for binary tasks.
  std::vector<double> prob1() const;
  // Probability of the given class.
  double prob(std::size_t row, int cls) const {
    return values[row * static_cast<std::size_t>(n_classes) +
                  static_cast<std::size_t>(cls)];
  }
};

using MetricFn =
    std::function<double(const Predictions&, const std::vector<double>& labels)>;

class ErrorMetric {
 public:
  ErrorMetric() = default;
  ErrorMetric(std::string name, MetricFn fn);

  // The benchmark default for a task: "auc" / "log_loss" / "r2".
  static ErrorMetric default_for(Task task);
  // Built-in by name: auc, log_loss, accuracy, mse, rmse, mae, r2, qerror95.
  // Throws InvalidArgument for unknown names or task/metric mismatches.
  static ErrorMetric by_name(const std::string& name);

  const std::string& name() const { return name_; }
  bool valid() const { return static_cast<bool>(fn_); }

  // Error of predictions vs labels; lower is better.
  double operator()(const Predictions& pred, const std::vector<double>& labels) const;

 private:
  std::string name_;
  MetricFn fn_;
};

}  // namespace flaml
