#include "metrics/error_metric.h"

#include "common/error.h"
#include "metrics/metrics.h"

namespace flaml {

std::vector<double> Predictions::prob1() const {
  FLAML_REQUIRE(task == Task::BinaryClassification && n_classes == 2,
                "prob1() requires binary predictions");
  std::size_t n = n_rows();
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = values[i * 2 + 1];
  return out;
}

ErrorMetric::ErrorMetric(std::string name, MetricFn fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  FLAML_REQUIRE(fn_ != nullptr, "metric function must be callable");
}

double ErrorMetric::operator()(const Predictions& pred,
                               const std::vector<double>& labels) const {
  FLAML_CHECK_MSG(fn_ != nullptr, "ErrorMetric used before initialization");
  return fn_(pred, labels);
}

ErrorMetric ErrorMetric::default_for(Task task) {
  switch (task) {
    case Task::BinaryClassification: return by_name("auc");
    case Task::MultiClassification: return by_name("log_loss");
    case Task::Regression: return by_name("r2");
  }
  throw InternalError("unreachable task");
}

ErrorMetric ErrorMetric::by_name(const std::string& name) {
  if (name == "auc") {
    return ErrorMetric("auc", [](const Predictions& p, const std::vector<double>& y) {
      return 1.0 - roc_auc(p.prob1(), y);
    });
  }
  if (name == "log_loss") {
    return ErrorMetric("log_loss", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(is_classification(p.task), "log_loss needs classification output");
      return log_loss_multi(p.values, p.n_classes, y);
    });
  }
  if (name == "accuracy") {
    return ErrorMetric("accuracy", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(is_classification(p.task), "accuracy needs classification output");
      return 1.0 - accuracy_multi(p.values, p.n_classes, y);
    });
  }
  if (name == "mse") {
    return ErrorMetric("mse", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(p.task == Task::Regression, "mse needs regression output");
      return mse(p.values, y);
    });
  }
  if (name == "rmse") {
    return ErrorMetric("rmse", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(p.task == Task::Regression, "rmse needs regression output");
      return rmse(p.values, y);
    });
  }
  if (name == "mae") {
    return ErrorMetric("mae", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(p.task == Task::Regression, "mae needs regression output");
      return mae(p.values, y);
    });
  }
  if (name == "r2") {
    return ErrorMetric("r2", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(p.task == Task::Regression, "r2 needs regression output");
      return 1.0 - r2(p.values, y);
    });
  }
  if (name == "qerror95") {
    return ErrorMetric("qerror95", [](const Predictions& p, const std::vector<double>& y) {
      FLAML_REQUIRE(p.task == Task::Regression, "qerror95 needs regression output");
      return q_error_quantile(p.values, y, 0.95);
    });
  }
  throw InvalidArgument("unknown metric '" + name + "'");
}

}  // namespace flaml
