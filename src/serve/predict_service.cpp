#include "serve/predict_service.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.h"
#include "common/wire.h"
#include "data/csv.h"
#include "resume/serial_util.h"

namespace flaml::serve {

namespace {

using wire::error_response;
using wire::ok_response;
using wire::opt;
using wire::opt_string;

JsonValue model_to_json(const PredictDaemon::ModelInfo& info) {
  JsonValue out = JsonValue::make_object();
  out.set("generation",
          resume::json_size(static_cast<std::size_t>(info.generation)));
  const char* kind = info.kind == CompiledKind::Gbdt     ? "gbdt"
                     : info.kind == CompiledKind::Forest ? "forest"
                                                         : "linear";
  out.set("kind", JsonValue::make_string(kind));
  out.set("task", JsonValue::make_string(task_name(info.task)));
  out.set("n_classes", JsonValue::make_number(info.n_classes));
  out.set("n_features", resume::json_size(info.n_features));
  out.set("n_trees", resume::json_size(info.n_trees));
  out.set("source", JsonValue::make_string(info.source));
  return out;
}

float decode_cell(const JsonValue& cell, std::size_t row, std::size_t col) {
  if (cell.is_null()) return std::numeric_limits<float>::quiet_NaN();
  FLAML_REQUIRE(cell.is_number(), "predict row " << row << " cell " << col
                                                 << " must be a number or null");
  return static_cast<float>(cell.number);
}

std::vector<std::vector<float>> decode_rows(const JsonValue& rows) {
  FLAML_REQUIRE(rows.is_array() && !rows.array.empty(),
                "\"rows\" must be a non-empty array of rows");
  std::vector<std::vector<float>> out;
  out.reserve(rows.array.size());
  for (std::size_t r = 0; r < rows.array.size(); ++r) {
    const JsonValue& row = rows.array[r];
    FLAML_REQUIRE(row.is_array(),
                  "predict row " << r << " must be an array of numbers");
    std::vector<float> values;
    values.reserve(row.array.size());
    for (std::size_t c = 0; c < row.array.size(); ++c) {
      values.push_back(decode_cell(row.array[c], r, c));
    }
    out.push_back(std::move(values));
  }
  return out;
}

// Prediction inputs are unlabeled: EVERY column is a feature
// (has_label = false), so the reader cannot silently claim one as a label.
std::vector<std::vector<float>> rows_from_csv(const std::string& path) {
  CsvOptions options;
  options.has_label = false;
  const Dataset data = read_csv_file(path, options);
  std::vector<std::vector<float>> rows(data.n_rows());
  for (std::size_t r = 0; r < data.n_rows(); ++r) {
    rows[r].resize(data.n_cols());
    for (std::size_t c = 0; c < data.n_cols(); ++c) {
      rows[r][c] = data.value(r, c);
    }
  }
  return rows;
}

}  // namespace

PredictService::PredictService(PredictDaemon& daemon) : daemon_(&daemon) {}

JsonValue PredictService::handle(const JsonValue& request) {
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::string PredictService::handle_line(const std::string& line) {
  JsonValue request;
  try {
    request = parse_json(line);
  } catch (const std::exception& e) {
    return dump_json_compact(
        error_response(std::string("bad request JSON: ") + e.what()));
  }
  return dump_json_compact(handle(request));
}

void PredictService::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n';
    out.flush();
  }
}

JsonValue PredictService::dispatch(const JsonValue& request) {
  FLAML_REQUIRE(request.is_object(), "request must be a JSON object");
  const std::string op = opt_string(request, "op", "");
  FLAML_REQUIRE(!op.empty(), "request needs an \"op\" field");

  if (op == "ping") {
    JsonValue out = ok_response();
    out.set("pong", JsonValue::make_bool(true));
    out.set("loaded", JsonValue::make_bool(daemon_->loaded()));
    return out;
  }
  if (op == "load" || op == "swap") {
    const std::string artifact = opt_string(request, "artifact", "");
    FLAML_REQUIRE(!artifact.empty(), op + " needs an \"artifact\" path");
    JsonValue out = ok_response();
    out.set("model", model_to_json(op == "load" ? daemon_->load(artifact)
                                                : daemon_->swap(artifact)));
    return out;
  }
  if (op == "reload") {
    JsonValue out = ok_response();
    const auto info = daemon_->poll_reload();
    out.set("swapped", JsonValue::make_bool(info.has_value()));
    if (info.has_value()) out.set("model", model_to_json(*info));
    return out;
  }
  if (op == "predict") return op_predict(request);
  if (op == "stats") {
    JsonValue out = ok_response();
    out.set("stats", daemon_->stats());
    return out;
  }
  if (op == "drain") {
    daemon_->drain();
    JsonValue out = ok_response();
    out.set("drained", JsonValue::make_bool(true));
    return out;
  }
  if (op == "shutdown") {
    daemon_->shutdown();
    shutdown_requested_.store(true);
    JsonValue out = ok_response();
    out.set("bye", JsonValue::make_bool(true));
    return out;
  }
  throw InvalidArgument("unknown op '" + op + "'");
}

JsonValue PredictService::op_predict(const JsonValue& request) {
  const JsonValue* rows_field = opt(request, "rows");
  const std::string csv = opt_string(request, "csv", "");
  FLAML_REQUIRE((rows_field != nullptr) != !csv.empty(),
                "predict needs exactly one of \"rows\" / \"csv\"");
  const std::vector<std::vector<float>> rows =
      rows_field != nullptr ? decode_rows(*rows_field) : rows_from_csv(csv);

  const PredictDaemon::Reply reply = daemon_->predict(rows);

  JsonValue out = ok_response();
  out.set("task", JsonValue::make_string(task_name(reply.pred.task)));
  out.set("generation",
          resume::json_size(static_cast<std::size_t>(reply.generation)));
  out.set("batch_rows", resume::json_size(reply.batch_rows));
  out.set("batch_requests", resume::json_size(reply.batch_requests));
  if (is_classification(reply.pred.task)) {
    out.set("n_classes", JsonValue::make_number(reply.pred.n_classes));
    JsonValue values = JsonValue::make_array();
    JsonValue classes = JsonValue::make_array();
    for (std::size_t r = 0; r < reply.pred.n_rows(); ++r) {
      JsonValue row = JsonValue::make_array();
      int best = 0;
      for (int c = 0; c < reply.pred.n_classes; ++c) {
        row.push(JsonValue::make_number(reply.pred.prob(r, c)));
        if (reply.pred.prob(r, c) > reply.pred.prob(r, best)) best = c;
      }
      values.push(std::move(row));
      classes.push(JsonValue::make_number(best));
    }
    out.set("values", std::move(values));
    out.set("classes", std::move(classes));
  } else {
    JsonValue values = JsonValue::make_array();
    for (double v : reply.pred.values) values.push(JsonValue::make_number(v));
    out.set("values", std::move(values));
  }
  return out;
}

}  // namespace flaml::serve
