// QuickScorer-style masked ensemble scoring (Lucchese et al., SIGIR'15) —
// the fast path of the compiled prediction engine.
//
// Instead of walking root-to-leaf per tree (a chain of dependent loads),
// every internal node of every tree becomes an AND-mask over a 64-bit
// per-tree leaf bitvector: the mask clears the leaves of the node's LEFT
// subtree and is applied exactly when the row would step RIGHT at that
// node. After all "false" nodes are applied, the lowest surviving bit of a
// tree's bitvector is its exit leaf — identical routing to the pointer
// walk, so downstream accumulation is bit-for-bit the interpreted result.
//
// The win is how "false" nodes are found: numeric nodes are grouped by
// feature and sorted by threshold, so the applied set is exactly the run
// prefix with threshold < value — one branchless binary search per feature,
// then a tight unconditional mask-apply loop (no per-node branch, no
// dependent loads). Categorical nodes are sorted by category; the applied
// set is everything outside the equal range. NaN values route by the
// missing-direction flag via a third per-feature list holding the nodes
// whose missing direction is right.
//
// Scope: trees with at most 64 leaves (one u64 bitvector per tree).
// build() reports false for wider trees — or for non-finite-unsortable
// (NaN) thresholds — and the caller keeps the flat-table walker
// (FlatForest::route_block) instead.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/flat_tree.h"

namespace flaml::serve {

class QuickScorer {
 public:
  // Build the mask tables from a flattened forest. Returns false (leaving
  // the scorer unusable) when any tree has more than 64 leaves or any
  // threshold is NaN; callers then fall back to route_block.
  bool build(const FlatForest& forest, std::size_t n_features);

  bool ok() const { return ok_; }
  std::size_t n_trees() const { return init_.size(); }

  // Exit leaves for one dense row: leaf_out[t] receives the global leaf id
  // (an index into FlatForest::leaf_value / leaf_dist) that row_vals
  // reaches in tree t — exactly the leaf route_block would report.
  // row_vals must hold the first n_features feature values contiguously.
  // bv_scratch is caller-owned space for n_trees() bitvectors (per-shard,
  // so concurrent score_row calls never share state).
  void score_row(const float* row_vals, std::uint64_t* bv_scratch,
                 std::int32_t* leaf_out) const;

 private:
  // One mask application: clear `mask` bits of tree `tree`'s bitvector.
  // `tree` is widened to u64 so a record is exactly 16 bytes.
  struct Apply {
    std::uint64_t mask;
    std::uint64_t tree;
  };

  bool ok_ = false;
  std::size_t n_features_ = 0;
  // Numeric nodes, feature-major, threshold ascending within a feature.
  std::vector<float> thr_;
  std::vector<Apply> num_;               // parallel to thr_
  std::vector<std::uint32_t> num_off_;   // n_features + 1 offsets
  // Categorical nodes, feature-major, category ascending within a feature.
  std::vector<std::int32_t> cat_code_;
  std::vector<Apply> cat_;               // parallel to cat_code_
  std::vector<std::uint32_t> cat_off_;
  // Nodes (numeric + categorical) whose missing direction is RIGHT —
  // the masks a NaN value applies.
  std::vector<Apply> miss_;
  std::vector<std::uint32_t> miss_off_;
  // Per tree: initial bitvector (low n_leaves bits set).
  std::vector<std::uint64_t> init_;
  // Per tree: 64 slots mapping bit position -> global leaf id, in the
  // tree's left-to-right leaf order.
  std::vector<std::int32_t> leaf_slot_;
};

}  // namespace flaml::serve
