// Flattened struct-of-arrays decision-tree tables — the serving-side
// representation of trained GBDT / forest / extra-trees models
// (compiled_model.h).
//
// A pointerless Tree walk: the internal nodes of every tree live in one set
// of parallel arrays (feature, threshold, category, flags, left, right);
// child entries >= 0 index another internal node, negative entries encode a
// leaf as ~leaf_id into the dense leaf-payload arrays. Traversal therefore
// stops on the edge INTO a leaf — one fewer node visit per tree than the
// interpreted walker — and the per-node footprint drops from
// sizeof(TreeNode) (48 bytes, plus a heap vector per classification leaf)
// to 17 bytes across the arrays with all leaf distributions in one
// contiguous block.
//
// Routing is BIT-compatible with Tree::leaf_index: numeric splits go left
// iff value <= threshold, categorical splits go left iff
// (int32)value == category, and NaN follows the kNodeMissingLeft flag.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.h"

namespace flaml::serve {

// Per-node flag bits.
inline constexpr std::uint8_t kNodeCategorical = 1u << 0;
inline constexpr std::uint8_t kNodeMissingLeft = 1u << 1;
inline constexpr std::uint8_t kNodeFlagMask = kNodeCategorical | kNodeMissingLeft;

// Hot-path node layout: the parallel arrays re-packed into one 16-byte
// record (4 per cache line), so a traversal step touches a single line
// instead of five. `aux` holds the threshold's float bits for numeric
// splits and the category code for categorical ones; `feat_flags` packs
// the feature index (<< 2) over the two flag bits. Derived, not
// serialized — pack() rebuilds it from the canonical arrays.
struct PackedNode {
  std::uint32_t feat_flags;
  std::int32_t aux;
  std::int32_t left;
  std::int32_t right;
};

struct FlatForest {
  // Parallel arrays over the internal nodes of all trees (tree-contiguous).
  std::vector<std::int32_t> feature;
  std::vector<float> threshold;
  std::vector<std::int32_t> category;
  std::vector<std::uint8_t> flags;
  // Child links: >= 0 is an internal-node index, < 0 encodes leaf ~child.
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  // Per-tree entry points (same encoding; a single-leaf tree has ~leaf root).
  std::vector<std::int32_t> roots;
  // Dense leaf payloads, indexed by leaf id.
  std::vector<double> leaf_value;
  // Row-major n_leaves × dist_width class distributions (classification
  // forests); empty with dist_width == 0 when unused.
  std::vector<double> leaf_dist;
  std::int32_t dist_width = 0;
  // Derived hot-path table (see PackedNode); rebuilt by pack().
  std::vector<PackedNode> packed;

  std::size_t n_trees() const { return roots.size(); }
  std::size_t n_internal() const { return feature.size(); }
  std::size_t n_leaves() const { return leaf_value.size(); }

  // Flatten `tree` and append it. When with_dist, every leaf must carry a
  // class distribution of exactly dist_width entries (set dist_width before
  // the first call).
  void add_tree(const Tree& tree, bool with_dist);

  // Rebuild the packed hot-path table from the canonical arrays. Call once
  // after the final add_tree (or after deserializing + validating); the
  // route_* methods walk the packed table.
  void pack();

  // Leaf ids for a tile of rows through tree `t`; identical routing to
  // Tree::leaf_index on the original trees. `block` holds the tile's
  // feature values row-major (row i's features at block[i * stride ..]),
  // so every traversal step reads from one hot cache line instead of
  // scattering across column arrays; out[i] corresponds to row i of the
  // block. This is the fallback engine for trees the QuickScorer tables
  // cannot cover (more than 64 leaves); see quick_scorer.h.
  void route_block(std::size_t t, const float* block, std::size_t stride,
                   std::size_t n, std::int32_t* out) const;

  // Structural validation of untrusted tables (artifact deserialization):
  // array lengths consistent, every child/root reference in range, internal
  // features inside [0, n_features), flags within the known mask, and every
  // internal node and leaf referenced exactly once — which makes any walk
  // from a root terminate (a cycle reachable from a root would need a
  // doubly-referenced node). Throws SerializationError on any violation.
  void validate(std::size_t n_features) const;
};

}  // namespace flaml::serve
