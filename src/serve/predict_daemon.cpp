#include "serve/predict_daemon.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"
#include "resume/checkpoint.h"
#include "resume/serial_util.h"
#include "serve/artifact.h"

namespace flaml::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

const char* kind_name(CompiledKind kind) {
  switch (kind) {
    case CompiledKind::Gbdt: return "gbdt";
    case CompiledKind::Forest: return "forest";
    case CompiledKind::Linear: return "linear";
  }
  return "unknown";
}

}  // namespace

PredictDaemon::PredictDaemon(PredictDaemonOptions options)
    : options_(std::move(options)), tracer_(options_.trace_sink) {
  FLAML_REQUIRE(options_.max_batch_rows >= 1,
                "predict daemon needs max_batch_rows >= 1");
  FLAML_REQUIRE(options_.max_batch_delay_ms >= 0.0,
                "predict daemon needs max_batch_delay_ms >= 0");
  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("max_batch_rows", resume::json_size(options_.max_batch_rows));
    fields.set("max_batch_delay_ms",
               JsonValue::make_number(options_.max_batch_delay_ms));
    fields.set("n_threads", JsonValue::make_number(options_.n_threads));
    tracer_.emit("predict_daemon_started", std::move(fields));
  }
  batcher_ = std::thread([this] { batcher_loop(); });
}

PredictDaemon::~PredictDaemon() { shutdown(); }

PredictDaemon::ModelInfo PredictDaemon::install_locked(
    std::shared_ptr<const CompiledModel> model, const std::string& source,
    std::uint64_t fingerprint) {
  model_ = std::move(model);
  ++generation_;
  artifact_path_ = source;
  artifact_fingerprint_ = fingerprint;
  metrics_.add("predict.model_loads");
  metrics_.set("predict.generation", static_cast<double>(generation_));
  return info_locked();
}

PredictDaemon::ModelInfo PredictDaemon::info_locked() const {
  FLAML_REQUIRE(model_ != nullptr, "no model loaded (use the load op first)");
  ModelInfo info;
  info.generation = generation_;
  info.kind = model_->kind();
  info.task = model_->task();
  info.n_classes = model_->n_classes();
  info.n_features = model_->n_features();
  info.n_trees = model_->n_trees();
  info.source = artifact_path_;
  return info;
}

PredictDaemon::ModelInfo PredictDaemon::load(const std::string& artifact_path) {
  // Read + checksum the bytes ONCE, so the installed model and the reload
  // fingerprint describe the same snapshot even if the file is rewritten
  // concurrently. Throws (SerializationError) before touching the hot slot.
  const std::string payload = read_artifact_file(artifact_path);
  const std::uint64_t fingerprint =
      resume::fnv1a64(payload.data(), payload.size()) ^ payload.size();
  auto model =
      std::make_shared<const CompiledModel>(CompiledModel::deserialize(payload));

  ModelInfo info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    info = install_locked(std::move(model), artifact_path, fingerprint);
  }
  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("generation", resume::json_size(static_cast<std::size_t>(info.generation)));
    fields.set("kind", JsonValue::make_string(kind_name(info.kind)));
    fields.set("task", JsonValue::make_string(task_name(info.task)));
    fields.set("n_classes", JsonValue::make_number(info.n_classes));
    fields.set("n_features", resume::json_size(info.n_features));
    fields.set("n_trees", resume::json_size(info.n_trees));
    fields.set("source", JsonValue::make_string(info.source));
    tracer_.emit("predict_model_loaded", std::move(fields));
  }
  return info;
}

PredictDaemon::ModelInfo PredictDaemon::swap(const std::string& artifact_path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FLAML_REQUIRE(model_ != nullptr,
                  "swap needs a serving model; use the load op first");
  }
  ModelInfo info = load(artifact_path);
  metrics_.add("predict.swaps");
  return info;
}

std::optional<PredictDaemon::ModelInfo> PredictDaemon::poll_reload() {
  std::string path;
  std::uint64_t last = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FLAML_REQUIRE(model_ != nullptr,
                  "reload needs a serving model; use the load op first");
    path = artifact_path_;
    last = artifact_fingerprint_;
  }
  const std::string payload = read_artifact_file(path);
  if ((resume::fnv1a64(payload.data(), payload.size()) ^ payload.size()) == last) {
    return std::nullopt;
  }
  ModelInfo info = load(path);
  metrics_.add("predict.swaps");
  return info;
}

bool PredictDaemon::loaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_ != nullptr;
}

PredictDaemon::ModelInfo PredictDaemon::info() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return info_locked();
}

PredictDaemon::Reply PredictDaemon::predict(
    const std::vector<std::vector<float>>& rows) {
  FLAML_REQUIRE(!rows.empty(), "predict needs at least one row");
  auto pending = std::make_shared<Pending>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FLAML_REQUIRE(!stop_, "predict daemon is shutting down");
    FLAML_REQUIRE(model_ != nullptr, "no model loaded (use the load op first)");
    pending->width = model_->n_features();
  }
  pending->n_rows = rows.size();
  pending->values.reserve(rows.size() * pending->width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    FLAML_REQUIRE(rows[r].size() == pending->width,
                  "predict row " << r << " has " << rows[r].size()
                                 << " values, model wants " << pending->width);
    pending->values.insert(pending->values.end(), rows[r].begin(),
                           rows[r].end());
  }
  pending->enqueued = Clock::now();

  std::unique_lock<std::mutex> lock(mutex_);
  FLAML_REQUIRE(!stop_, "predict daemon is shutting down");
  queue_.push_back(pending);
  queued_rows_ += pending->n_rows;
  cv_work_.notify_one();
  cv_done_.wait(lock, [&] { return pending->done; });
  if (pending->error) std::rethrow_exception(pending->error);
  return std::move(pending->reply);
}

void PredictDaemon::drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return queue_.empty() && !in_flight_; });
  }
  if (tracer_) tracer_.emit("predict_daemon_drained");
}

void PredictDaemon::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // Second call: the batcher is already joined (or being joined by the
      // first caller); nothing left to do.
      if (!batcher_.joinable()) return;
    }
    stop_ = true;
    cv_work_.notify_all();
  }
  if (batcher_.joinable()) batcher_.join();
  // The batcher exited; fail whatever it left behind.
  std::deque<std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(queue_);
    queued_rows_ = 0;
    for (auto& pending : orphans) {
      pending->error = std::make_exception_ptr(
          InvalidArgument("predict daemon is shutting down"));
      pending->done = true;
    }
    cv_done_.notify_all();
  }
  if (tracer_) tracer_.emit("predict_daemon_shutdown");
}

JsonValue PredictDaemon::stats() const {
  JsonValue out = metrics_.to_json();
  std::lock_guard<std::mutex> lock(mutex_);
  out.set("loaded", JsonValue::make_bool(model_ != nullptr));
  out.set("generation",
          resume::json_size(static_cast<std::size_t>(generation_)));
  out.set("queued_requests", resume::json_size(queue_.size()));
  out.set("queued_rows", resume::json_size(queued_rows_));
  return out;
}

void PredictDaemon::batcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;

    // The window: flush when enough rows accumulated, when the oldest
    // request has waited long enough, or on shutdown.
    const auto deadline =
        queue_.front()->enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(options_.max_batch_delay_ms));
    cv_work_.wait_until(lock, deadline, [&] {
      return stop_ || queued_rows_ >= options_.max_batch_rows;
    });
    if (stop_) return;

    // Take WHOLE requests from the front until the batch is full. The first
    // request is always taken, so an oversized request forms its own batch.
    std::vector<std::shared_ptr<Pending>> batch;
    std::size_t batch_rows = 0;
    while (!queue_.empty() &&
           (batch.empty() || batch_rows < options_.max_batch_rows)) {
      batch.push_back(queue_.front());
      queue_.pop_front();
      batch_rows += batch.back()->n_rows;
      queued_rows_ -= batch.back()->n_rows;
    }

    // Capture the serving snapshot ONCE: this whole batch — and therefore
    // every reply in it — is computed by exactly this generation, even if a
    // swap lands while it runs.
    std::shared_ptr<const CompiledModel> model = model_;
    const std::uint64_t generation = generation_;
    in_flight_ = true;
    lock.unlock();

    serve_batch(std::move(batch), std::move(model), generation);

    lock.lock();
    in_flight_ = false;
    cv_done_.notify_all();
  }
}

void PredictDaemon::serve_batch(std::vector<std::shared_ptr<Pending>> batch,
                                std::shared_ptr<const CompiledModel> model,
                                std::uint64_t generation) {
  const auto flush_time = Clock::now();
  const std::size_t width = model->n_features();

  // A request queued just before an incompatible swap carries the OLD
  // width; fail it with a typed error instead of feeding the new model a
  // misshapen matrix.
  std::vector<std::shared_ptr<Pending>> serving;
  for (auto& pending : batch) {
    if (pending->width != width) {
      pending->error = std::make_exception_ptr(InvalidArgument(
          "model was swapped to " + std::to_string(width) +
          " features while this " + std::to_string(pending->width) +
          "-feature request was queued; retry"));
      continue;
    }
    serving.push_back(pending);
  }

  std::size_t total_rows = 0;
  for (const auto& pending : serving) total_rows += pending->n_rows;

  Predictions all;
  std::exception_ptr batch_error;
  if (total_rows > 0) {
    // One column-major container for the whole batch. Task/labels are
    // irrelevant to predict_many (it only reads feature columns); the
    // regression container accepts any label vector.
    Dataset data(Task::Regression,
                 std::vector<ColumnInfo>(width, ColumnInfo{}));
    for (std::size_t c = 0; c < width; ++c) {
      std::vector<float> column(total_rows);
      std::size_t at = 0;
      for (const auto& pending : serving) {
        for (std::size_t r = 0; r < pending->n_rows; ++r) {
          column[at++] = pending->values[r * width + c];
        }
      }
      data.set_column(c, std::move(column));
    }
    data.set_labels(std::vector<double>(total_rows, 0.0));
    try {
      all = model->predict_many(DataView(data), options_.n_threads);
    } catch (...) {
      batch_error = std::current_exception();
    }
  }

  const auto done_time = Clock::now();
  const std::size_t out_width =
      is_classification(all.task) ? static_cast<std::size_t>(all.n_classes) : 1;

  // Scatter the batch result back per request, then publish under the lock.
  std::size_t at = 0;
  for (auto& pending : serving) {
    if (batch_error) {
      pending->error = batch_error;
      continue;
    }
    Reply& reply = pending->reply;
    reply.pred.task = all.task;
    reply.pred.n_classes = all.n_classes;
    reply.pred.values.assign(
        all.values.begin() + static_cast<std::ptrdiff_t>(at * out_width),
        all.values.begin() +
            static_cast<std::ptrdiff_t>((at + pending->n_rows) * out_width));
    at += pending->n_rows;
    reply.generation = generation;
    reply.batch_rows = total_rows;
    reply.batch_requests = serving.size();
    reply.queue_ms = ms_between(pending->enqueued, flush_time);
    metrics_.observe("predict.queue_ms", reply.queue_ms);
    metrics_.observe("predict.latency_ms",
                     ms_between(pending->enqueued, done_time));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& pending : batch) pending->done = true;
    cv_done_.notify_all();
  }

  metrics_.add("predict.requests", static_cast<double>(batch.size()));
  metrics_.add("predict.rows", static_cast<double>(total_rows));
  metrics_.add("predict.batches");
  metrics_.observe("predict.batch_rows", static_cast<double>(total_rows));
  metrics_.observe("predict.batch_requests",
                   static_cast<double>(serving.size()));
  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("generation",
               resume::json_size(static_cast<std::size_t>(generation)));
    fields.set("requests", resume::json_size(serving.size()));
    fields.set("rows", resume::json_size(total_rows));
    fields.set("predict_ms",
               JsonValue::make_number(ms_between(flush_time, done_time)));
    tracer_.emit("predict_batch", std::move(fields));
  }
}

}  // namespace flaml::serve
