#include "serve/compiled_model.h"

#include <algorithm>
#include <istream>
#include <sstream>

#include "boosting/gbdt.h"
#include "boosting/objectives.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "forest/forest.h"
#include "linear/linear_model.h"
#include "resume/checkpoint.h"
#include "serve/artifact.h"

namespace flaml::serve {

namespace {

// Rows per scoring tile: bounds the gathered row block (kTile × n_features
// floats) while staying large enough to amortize the per-tile transpose.
constexpr std::size_t kTile = 512;

// Loader caps, matching the text-model loaders' discipline.
constexpr int kMaxClasses = 1'000'000;
constexpr std::uint32_t kMaxFeatures = 100'000'000;
constexpr std::int32_t kMaxOutputs = 1'000'000;
constexpr std::uint32_t kMaxDim = 100'000'000;

std::uint32_t checked_u32(std::size_t n) {
  FLAML_CHECK(n <= 0xffffffffu);
  return static_cast<std::uint32_t>(n);
}

// Scores for one encoded row: w_k · x + b_k for each output k. Same
// expression order as the interpreted LinearModel::predict, so the sums
// match bit for bit.
void lin_row_scores(const std::vector<double>& weights, const std::vector<double>& x,
                    int n_outputs, std::size_t dim, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(n_outputs), 0.0);
  for (int k = 0; k < n_outputs; ++k) {
    const double* w = weights.data() + static_cast<std::size_t>(k) * (dim + 1);
    double s = w[dim];  // bias
    for (std::size_t j = 0; j < dim; ++j) s += w[j] * x[j];
    out[static_cast<std::size_t>(k)] = s;
  }
}

std::uint32_t used_features(const FlatForest& forest) {
  std::int32_t max_feature = -1;
  for (std::int32_t f : forest.feature) max_feature = std::max(max_feature, f);
  return static_cast<std::uint32_t>(max_feature + 1);
}

std::vector<const float*> column_pointers(const Dataset& data) {
  std::vector<const float*> cols(data.n_cols());
  for (std::size_t c = 0; c < data.n_cols(); ++c) cols[c] = data.column(c).data();
  return cols;
}

// Gather one tile of rows into a dense row-major block: row j's features
// land at block[j * n_feat ..], so every route_block traversal step reads
// from one hot cache line instead of scattering across the column arrays.
// The block is reused for every tree of the tile, amortizing the copy.
void fill_tile(const std::vector<const float*>& cols, std::uint32_t n_feat,
               const std::uint32_t* rows, std::size_t tn, float* block) {
  for (std::uint32_t f = 0; f < n_feat; ++f) {
    const float* src = cols[f];
    float* dst = block + f;
    for (std::size_t j = 0; j < tn; ++j) dst[j * n_feat] = src[rows[j]];
  }
}

void write_tables(ByteWriter& w, const FlatForest& f) {
  w.u32(checked_u32(f.roots.size()));
  w.u32(checked_u32(f.feature.size()));
  w.u32(checked_u32(f.leaf_value.size()));
  w.u32(static_cast<std::uint32_t>(f.dist_width));
  for (std::int32_t v : f.roots) w.i32(v);
  for (std::int32_t v : f.feature) w.i32(v);
  for (float v : f.threshold) w.f32(v);
  for (std::int32_t v : f.category) w.i32(v);
  for (std::uint8_t v : f.flags) w.u8(v);
  for (std::int32_t v : f.left) w.i32(v);
  for (std::int32_t v : f.right) w.i32(v);
  for (double v : f.leaf_value) w.f64(v);
  for (double v : f.leaf_dist) w.f64(v);
}

// Reject any count whose byte footprint exceeds the remaining payload
// BEFORE allocating for it — a corrupted count must not drive an oversized
// allocation (same rule as ByteReader::count, applied to derived sizes).
void guard_alloc(const ByteReader& r, std::uint64_t n, std::uint64_t elem_bytes,
                 const char* what) {
  FLAML_PARSE_REQUIRE(elem_bytes == 0 || n <= r.remaining() / elem_bytes,
                      "compiled artifact: " << what << " count " << n
                          << " exceeds the remaining " << r.remaining()
                          << " payload bytes");
}

FlatForest read_tables(ByteReader& r) {
  FlatForest f;
  const std::uint32_t n_trees = r.u32();
  const std::uint32_t n_internal = r.u32();
  const std::uint32_t n_leaves = r.u32();
  const std::uint32_t dist_width = r.u32();
  FLAML_PARSE_REQUIRE(dist_width <= static_cast<std::uint32_t>(kMaxClasses),
                      "compiled artifact: leaf-distribution width " << dist_width);
  // Byte footprint per internal node across the six parallel arrays.
  guard_alloc(r, n_trees, 4, "root");
  guard_alloc(r, n_internal, 4 + 4 + 4 + 1 + 4 + 4, "internal-node");
  guard_alloc(r, n_leaves, 8ull * (1 + dist_width), "leaf");
  f.dist_width = static_cast<std::int32_t>(dist_width);
  f.roots.resize(n_trees);
  for (auto& v : f.roots) v = r.i32();
  f.feature.resize(n_internal);
  for (auto& v : f.feature) v = r.i32();
  f.threshold.resize(n_internal);
  for (auto& v : f.threshold) v = r.f32();
  f.category.resize(n_internal);
  for (auto& v : f.category) v = r.i32();
  f.flags.resize(n_internal);
  for (auto& v : f.flags) v = r.u8();
  f.left.resize(n_internal);
  for (auto& v : f.left) v = r.i32();
  f.right.resize(n_internal);
  for (auto& v : f.right) v = r.i32();
  f.leaf_value.resize(n_leaves);
  for (auto& v : f.leaf_value) v = r.f64();
  f.leaf_dist.resize(static_cast<std::size_t>(n_leaves) * dist_width);
  for (auto& v : f.leaf_dist) v = r.f64();
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation

CompiledModel compile(const GBDTModel& model) {
  FLAML_REQUIRE(model.n_outputs() >= 1, "compile on an untrained GBDT model");
  CompiledModel out;
  out.kind_ = CompiledKind::Gbdt;
  out.task_ = model.task();
  out.n_classes_ = model.n_classes();
  out.base_scores_ = model.base_scores();
  out.tree_scales_ = model.tree_scales();
  for (const Tree& tree : model.trees()) out.forest_.add_tree(tree, false);
  out.forest_.pack();
  out.n_features_ = used_features(out.forest_);
  out.scorer_.build(out.forest_, out.n_features_);
  return out;
}

CompiledModel compile(const ForestModel& model) {
  FLAML_REQUIRE(model.n_trees() >= 1, "compile on an untrained forest model");
  CompiledModel out;
  out.kind_ = CompiledKind::Forest;
  out.task_ = model.task();
  out.n_classes_ = model.n_classes();
  const bool with_dist = is_classification(model.task());
  out.forest_.dist_width = with_dist ? model.n_classes() : 0;
  for (std::size_t t = 0; t < model.n_trees(); ++t) {
    out.forest_.add_tree(model.tree(t), with_dist);
  }
  out.forest_.pack();
  out.n_features_ = used_features(out.forest_);
  out.scorer_.build(out.forest_, out.n_features_);
  return out;
}

CompiledModel compile(const LinearModel& model) {
  FLAML_REQUIRE(!model.weights().empty(), "compile on an untrained linear model");
  CompiledModel out;
  out.kind_ = CompiledKind::Linear;
  out.task_ = model.task();
  out.n_classes_ = model.n_classes();
  out.lin_outputs_ = model.n_outputs();
  out.lin_dim_ = checked_u32(model.encoder().dim());
  out.lin_plans_ = model.encoder().plans();
  out.lin_weights_ = model.weights();
  out.n_features_ = checked_u32(out.lin_plans_.size());
  return out;
}

CompiledModel compile_saved(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  FLAML_REQUIRE(pos != std::istream::pos_type(-1),
                "compile_saved needs a seekable stream");
  std::string magic;
  in >> magic;
  in.clear();
  in.seekg(pos);
  if (magic == "gbdt") return compile(GBDTModel::load(in));
  if (magic == "forest") return compile(ForestModel::load(in));
  if (magic == "linear") return compile(LinearModel::load(in));
  if (magic == "flaml-model") {
    std::string wrapper, version, learner;
    in >> wrapper >> version >> learner;
    FLAML_REQUIRE(in.good() && version == "v1",
                  "unsupported flaml-model version '" << version << "'");
    return compile_saved(in);
  }
  FLAML_REQUIRE(false, "unknown saved-model format '" << magic << "'");
}

CompiledModel compile_blob(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic, version, learner;
  in >> magic >> version >> learner;
  FLAML_REQUIRE(in.good() && magic == "flaml-model" && version == "v1",
                "not a save_best_model blob");
  return compile_saved(in);
}

CompiledModel compile_checkpoint_file(const std::string& path) {
  const resume::SearchCheckpoint ckpt = resume::SearchCheckpoint::load(path);
  FLAML_REQUIRE(!ckpt.model_blob.empty(),
                "checkpoint '" << path << "' stores no best-model blob "
                    << "(mid-search snapshot, no successful trial, or "
                    << "ensemble mode)");
  return compile_blob(ckpt.model_blob);
}

// ---------------------------------------------------------------------------
// Prediction

Predictions CompiledModel::predict_many(const DataView& view, int n_threads) const {
  const std::size_t n = view.n_rows();
  if (n == 0) {
    Predictions out;
    out.task = task_;
    out.n_classes = is_classification(task_) ? n_classes_ : 0;
    return out;
  }
  FLAML_REQUIRE(view.data().n_cols() >= n_features_,
                "predict_many: view has " << view.data().n_cols()
                    << " columns, model needs " << n_features_);
  switch (kind_) {
    case CompiledKind::Gbdt:
      return predict_gbdt(view, n_threads);
    case CompiledKind::Forest:
      return predict_forest(view, n_threads);
    case CompiledKind::Linear:
      return predict_linear(view, n_threads);
  }
  FLAML_CHECK(false);
}

Predictions CompiledModel::predict_gbdt(const DataView& view, int n_threads) const {
  const std::size_t n = view.n_rows();
  const std::size_t k = base_scores_.size();
  std::vector<double> scores(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < k; ++c) scores[i * k + c] = base_scores_[c];
  }
  const std::vector<const float*> cols = column_pointers(view.data());
  const std::uint32_t* rows = view.rows().data();
  const std::size_t n_trees = forest_.n_trees();
  ThreadPool* pool = n_threads > 1 ? &shared_pool() : nullptr;
  // Rows sharded, trees in order within each tile: every score cell sums
  // base + its trees' contributions in tree order, matching the interpreted
  // raw_scores bit for bit for any thread count.
  const std::uint32_t n_feat = n_features_;
  const double* leaf_value = forest_.leaf_value.data();
  sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
    std::vector<std::int32_t> leaves(scorer_.ok() ? n_trees : kTile);
    std::vector<std::uint64_t> bv(scorer_.ok() ? n_trees : 0);
    std::vector<float> block(kTile * n_feat);
    for (std::size_t tb = begin; tb < end; tb += kTile) {
      const std::size_t tn = std::min(kTile, end - tb);
      fill_tile(cols, n_feat, rows + tb, tn, block.data());
      if (scorer_.ok()) {
        for (std::size_t j = 0; j < tn; ++j) {
          scorer_.score_row(block.data() + j * n_feat, bv.data(), leaves.data());
          double* dst = scores.data() + (tb + j) * k;
          for (std::size_t t = 0; t < n_trees; ++t) {
            dst[t % k] +=
                tree_scales_[t] * leaf_value[static_cast<std::size_t>(leaves[t])];
          }
        }
        continue;
      }
      for (std::size_t t = 0; t < n_trees; ++t) {
        forest_.route_block(t, block.data(), n_feat, tn, leaves.data());
        const double scale = tree_scales_[t];
        const std::size_t c = t % k;
        for (std::size_t j = 0; j < tn; ++j) {
          scores[(tb + j) * k + c] +=
              scale * leaf_value[static_cast<std::size_t>(leaves[j])];
        }
      }
    }
  });
  return make_objective(task_, n_classes_)->transform(scores);
}

Predictions CompiledModel::predict_forest(const DataView& view, int n_threads) const {
  const std::size_t n = view.n_rows();
  const std::uint32_t n_feat = n_features_;
  const std::vector<const float*> cols = column_pointers(view.data());
  const std::uint32_t* rows = view.rows().data();
  const std::size_t n_trees = forest_.n_trees();
  ThreadPool* pool = n_threads > 1 ? &shared_pool() : nullptr;
  Predictions out;
  out.task = task_;
  if (is_classification(task_)) {
    const std::size_t k = static_cast<std::size_t>(n_classes_);
    out.n_classes = n_classes_;
    out.values.assign(n * k, 0.0);
    sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
      std::vector<std::int32_t> leaves(scorer_.ok() ? n_trees : kTile);
      std::vector<std::uint64_t> bv(scorer_.ok() ? n_trees : 0);
      std::vector<float> block(kTile * n_feat);
      for (std::size_t tb = begin; tb < end; tb += kTile) {
        const std::size_t tn = std::min(kTile, end - tb);
        fill_tile(cols, n_feat, rows + tb, tn, block.data());
        if (scorer_.ok()) {
          for (std::size_t j = 0; j < tn; ++j) {
            scorer_.score_row(block.data() + j * n_feat, bv.data(),
                              leaves.data());
            double* dst = out.values.data() + (tb + j) * k;
            for (std::size_t t = 0; t < n_trees; ++t) {
              const double* dist =
                  forest_.leaf_dist.data() +
                  static_cast<std::size_t>(leaves[t]) * k;
              for (std::size_t c = 0; c < k; ++c) dst[c] += dist[c];
            }
          }
          continue;
        }
        for (std::size_t t = 0; t < n_trees; ++t) {
          forest_.route_block(t, block.data(), n_feat, tn, leaves.data());
          for (std::size_t j = 0; j < tn; ++j) {
            const double* dist =
                forest_.leaf_dist.data() + static_cast<std::size_t>(leaves[j]) * k;
            double* dst = out.values.data() + (tb + j) * k;
            for (std::size_t c = 0; c < k; ++c) dst[c] += dist[c];
          }
        }
      }
    });
    const double inv = 1.0 / static_cast<double>(n_trees);
    for (double& v : out.values) v *= inv;
    // Same smoothing constants as the interpreted ForestModel::predict.
    const double eps = 1e-3;
    const double uniform = 1.0 / static_cast<double>(n_classes_);
    for (double& v : out.values) v = (1.0 - eps) * v + eps * uniform;
  } else {
    out.n_classes = 0;
    out.values.assign(n, 0.0);
    sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
      std::vector<std::int32_t> leaves(scorer_.ok() ? n_trees : kTile);
      std::vector<std::uint64_t> bv(scorer_.ok() ? n_trees : 0);
      std::vector<float> block(kTile * n_feat);
      for (std::size_t tb = begin; tb < end; tb += kTile) {
        const std::size_t tn = std::min(kTile, end - tb);
        fill_tile(cols, n_feat, rows + tb, tn, block.data());
        if (scorer_.ok()) {
          for (std::size_t j = 0; j < tn; ++j) {
            scorer_.score_row(block.data() + j * n_feat, bv.data(),
                              leaves.data());
            double s = 0.0;
            for (std::size_t t = 0; t < n_trees; ++t) {
              s += forest_.leaf_value[static_cast<std::size_t>(leaves[t])];
            }
            out.values[tb + j] += s;
          }
          continue;
        }
        for (std::size_t t = 0; t < n_trees; ++t) {
          forest_.route_block(t, block.data(), n_feat, tn, leaves.data());
          for (std::size_t j = 0; j < tn; ++j) {
            out.values[tb + j] +=
                forest_.leaf_value[static_cast<std::size_t>(leaves[j])];
          }
        }
      }
    });
    const double inv = 1.0 / static_cast<double>(n_trees);
    for (double& v : out.values) v *= inv;
  }
  return out;
}

Predictions CompiledModel::predict_linear(const DataView& view, int n_threads) const {
  const std::size_t n = view.n_rows();
  const std::size_t dim = lin_dim_;
  Predictions out;
  out.task = task_;
  out.n_classes = is_classification(task_) ? n_classes_ : 0;
  out.values.resize(is_classification(task_)
                        ? n * static_cast<std::size_t>(n_classes_)
                        : n);
  ThreadPool* pool = n_threads > 1 ? &shared_pool() : nullptr;
  // Rows are independent (no cross-row accumulation), so sharding is
  // trivially bit-identical to the interpreted serial loop.
  sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
    std::vector<double> x, scores;
    for (std::size_t i = begin; i < end; ++i) {
      // FeatureEncoder::encode_row, replayed from the compiled plans.
      x.assign(dim, 0.0);
      for (std::size_t c = 0; c < lin_plans_.size(); ++c) {
        const FeatureEncoder::ColumnPlan& plan = lin_plans_[c];
        const float v = view.value(i, c);
        if (Dataset::is_missing(v)) continue;  // zero-encode missing
        if (plan.type == ColumnType::Categorical) {
          const int code = static_cast<int>(v);
          if (code >= 0 && code < plan.cardinality) {
            x[plan.offset + static_cast<std::size_t>(code)] = 1.0;
          }
        } else {
          x[plan.offset] = (static_cast<double>(v) - plan.mean) * plan.inv_std;
        }
      }
      if (task_ == Task::Regression) {
        lin_row_scores(lin_weights_, x, 1, dim, scores);
        out.values[i] = scores[0];
      } else if (task_ == Task::BinaryClassification) {
        lin_row_scores(lin_weights_, x, 1, dim, scores);
        const double p1 = sigmoid(scores[0]);
        out.values[i * 2] = 1.0 - p1;
        out.values[i * 2 + 1] = p1;
      } else {
        lin_row_scores(lin_weights_, x, n_classes_, dim, scores);
        softmax_inplace(scores);
        for (int c = 0; c < n_classes_; ++c) {
          out.values[i * static_cast<std::size_t>(n_classes_) +
                     static_cast<std::size_t>(c)] =
              scores[static_cast<std::size_t>(c)];
        }
      }
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Serialization

std::string CompiledModel::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind_));
  w.u8(static_cast<std::uint8_t>(task_));
  w.i32(n_classes_);
  w.u32(n_features_);
  switch (kind_) {
    case CompiledKind::Gbdt:
      w.u32(checked_u32(base_scores_.size()));
      for (double v : base_scores_) w.f64(v);
      w.u32(checked_u32(tree_scales_.size()));
      for (double v : tree_scales_) w.f64(v);
      write_tables(w, forest_);
      break;
    case CompiledKind::Forest:
      write_tables(w, forest_);
      break;
    case CompiledKind::Linear:
      w.i32(lin_outputs_);
      w.u32(lin_dim_);
      w.u32(checked_u32(lin_plans_.size()));
      for (const FeatureEncoder::ColumnPlan& plan : lin_plans_) {
        w.u8(plan.type == ColumnType::Categorical ? 1 : 0);
        w.u32(checked_u32(plan.offset));
        w.i32(plan.cardinality);
        w.f64(plan.mean);
        w.f64(plan.inv_std);
      }
      w.u32(checked_u32(lin_weights_.size()));
      for (double v : lin_weights_) w.f64(v);
      break;
  }
  return w.bytes();
}

CompiledModel CompiledModel::deserialize(const std::string& payload) {
  ByteReader r(payload);
  CompiledModel m;
  const std::uint8_t kind = r.u8();
  FLAML_PARSE_REQUIRE(kind <= 2, "compiled artifact: unknown model kind " << int(kind));
  m.kind_ = static_cast<CompiledKind>(kind);
  const std::uint8_t task = r.u8();
  FLAML_PARSE_REQUIRE(task <= 2, "compiled artifact: unknown task " << int(task));
  m.task_ = static_cast<Task>(task);
  m.n_classes_ = r.i32();
  if (is_classification(m.task_)) {
    FLAML_PARSE_REQUIRE(m.n_classes_ >= 2 && m.n_classes_ <= kMaxClasses,
                        "compiled artifact: class count " << m.n_classes_);
    FLAML_PARSE_REQUIRE(m.task_ != Task::BinaryClassification || m.n_classes_ == 2,
                        "compiled artifact: binary model with " << m.n_classes_
                            << " classes");
  } else {
    FLAML_PARSE_REQUIRE(m.n_classes_ == 0,
                        "compiled artifact: regression model with "
                            << m.n_classes_ << " classes");
  }
  m.n_features_ = r.u32();
  FLAML_PARSE_REQUIRE(m.n_features_ <= kMaxFeatures,
                      "compiled artifact: feature count " << m.n_features_);
  switch (m.kind_) {
    case CompiledKind::Gbdt: {
      const std::size_t k = r.count(8, "base-score");
      // The objective transform reads scores row-major n × n_outputs, so a
      // wrong column count would mis-shape that matrix.
      const std::size_t want_k =
          m.task_ == Task::MultiClassification
              ? static_cast<std::size_t>(m.n_classes_)
              : 1;
      FLAML_PARSE_REQUIRE(k == want_k, "compiled artifact: GBDT with " << k
                                           << " output columns, task needs "
                                           << want_k);
      m.base_scores_.resize(k);
      for (auto& v : m.base_scores_) v = r.f64();
      const std::size_t n_scales = r.count(8, "tree-scale");
      m.tree_scales_.resize(n_scales);
      for (auto& v : m.tree_scales_) v = r.f64();
      m.forest_ = read_tables(r);
      FLAML_PARSE_REQUIRE(m.forest_.dist_width == 0,
                          "compiled artifact: GBDT carries leaf distributions");
      FLAML_PARSE_REQUIRE(m.forest_.n_trees() == n_scales,
                          "compiled artifact: " << m.forest_.n_trees()
                              << " trees but " << n_scales << " scales");
      m.forest_.validate(m.n_features_);
      m.forest_.pack();
      m.scorer_.build(m.forest_, m.n_features_);
      break;
    }
    case CompiledKind::Forest: {
      m.forest_ = read_tables(r);
      FLAML_PARSE_REQUIRE(m.forest_.n_trees() >= 1,
                          "compiled artifact: forest with no trees");
      const std::int32_t want_dist =
          is_classification(m.task_) ? m.n_classes_ : 0;
      FLAML_PARSE_REQUIRE(m.forest_.dist_width == want_dist,
                          "compiled artifact: leaf-distribution width "
                              << m.forest_.dist_width << ", task needs "
                              << want_dist);
      m.forest_.validate(m.n_features_);
      m.forest_.pack();
      m.scorer_.build(m.forest_, m.n_features_);
      break;
    }
    case CompiledKind::Linear: {
      m.lin_outputs_ = r.i32();
      const std::int32_t want_outputs =
          m.task_ == Task::MultiClassification ? m.n_classes_ : 1;
      FLAML_PARSE_REQUIRE(m.lin_outputs_ >= 1 && m.lin_outputs_ <= kMaxOutputs,
                          "compiled artifact: output count " << m.lin_outputs_);
      FLAML_PARSE_REQUIRE(m.lin_outputs_ == want_outputs,
                          "compiled artifact: linear model with "
                              << m.lin_outputs_ << " outputs, task needs "
                              << want_outputs);
      m.lin_dim_ = r.u32();
      FLAML_PARSE_REQUIRE(m.lin_dim_ <= kMaxDim,
                          "compiled artifact: encoded dimension " << m.lin_dim_);
      const std::size_t n_plans = r.count(1 + 4 + 4 + 8 + 8, "column-plan");
      FLAML_PARSE_REQUIRE(n_plans >= 1 && n_plans == m.n_features_,
                          "compiled artifact: " << n_plans << " column plans for "
                              << m.n_features_ << " features");
      m.lin_plans_.resize(n_plans);
      for (FeatureEncoder::ColumnPlan& plan : m.lin_plans_) {
        const std::uint8_t cat = r.u8();
        FLAML_PARSE_REQUIRE(cat <= 1, "compiled artifact: bad column type " << int(cat));
        plan.type = cat ? ColumnType::Categorical : ColumnType::Numeric;
        plan.offset = r.u32();
        plan.cardinality = r.i32();
        plan.mean = r.f64();
        plan.inv_std = r.f64();
        // encode writes [offset, offset + width): bound it by dim so a
        // corrupted plan can never index out of the encoded row.
        FLAML_PARSE_REQUIRE(plan.cardinality >= 0,
                            "compiled artifact: negative cardinality "
                                << plan.cardinality);
        const std::size_t width =
            plan.type == ColumnType::Categorical
                ? static_cast<std::size_t>(plan.cardinality)
                : 1;
        FLAML_PARSE_REQUIRE(plan.offset <= m.lin_dim_ &&
                                width <= m.lin_dim_ - plan.offset,
                            "compiled artifact: column range [" << plan.offset
                                << ", " << plan.offset << "+" << width
                                << ") exceeds dimension " << m.lin_dim_);
      }
      const std::size_t n_weights = r.count(8, "weight");
      const std::uint64_t want_weights =
          static_cast<std::uint64_t>(m.lin_outputs_) * (m.lin_dim_ + 1ull);
      FLAML_PARSE_REQUIRE(n_weights == want_weights,
                          "compiled artifact: " << n_weights << " weights, "
                              << "layout needs " << want_weights);
      m.lin_weights_.resize(n_weights);
      for (auto& v : m.lin_weights_) v = r.f64();
      break;
    }
  }
  r.require_done();
  return m;
}

void CompiledModel::save_file(const std::string& path) const {
  write_artifact_file(path, serialize());
}

CompiledModel CompiledModel::load_file(const std::string& path) {
  return deserialize(read_artifact_file(path));
}

}  // namespace flaml::serve
