#include "serve/quick_scorer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.h"

namespace flaml::serve {

namespace {

// A node's mask entry before it is routed into a per-feature bucket.
struct BuildNode {
  std::uint64_t mask;
  float threshold;
  std::int32_t category;
  std::uint32_t tree;
  bool categorical;
  bool missing_left;
};

// In-order leaf enumeration: records each internal node's left-subtree
// leaf span [lo, hi) in left-to-right leaf order, and the leaf ids in that
// order. Iterative (explicit stack) so adversarially deep trees cannot
// overflow the call stack.
struct SpanWalker {
  const FlatForest& forest;
  std::vector<std::int32_t> order;  // bit position -> global leaf id
  // internal node index -> [lo, hi) of its left subtree's leaf bits
  std::vector<std::pair<std::int32_t, std::pair<std::size_t, std::size_t>>> spans;

  void walk(std::int32_t root) {
    // Frames: (node, stage). Stage 0 = descend left, 1 = record span and
    // descend right.
    std::vector<std::pair<std::int32_t, int>> stack;
    std::vector<std::size_t> lo_stack;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      auto [idx, stage] = stack.back();
      stack.pop_back();
      if (idx < 0) {
        order.push_back(~idx);
        continue;
      }
      const std::size_t i = static_cast<std::size_t>(idx);
      if (stage == 0) {
        lo_stack.push_back(order.size());
        stack.push_back({idx, 1});
        stack.push_back({forest.left[i], 0});
      } else {
        const std::size_t lo = lo_stack.back();
        lo_stack.pop_back();
        spans.push_back({idx, {lo, order.size()}});
        stack.push_back({forest.right[i], 0});
      }
    }
  }
};

}  // namespace

bool QuickScorer::build(const FlatForest& forest, std::size_t n_features) {
  ok_ = false;
  n_features_ = n_features;
  const std::size_t n_trees = forest.n_trees();
  init_.assign(n_trees, 0);
  leaf_slot_.assign(n_trees * 64, 0);
  // The threshold runs are sorted with operator<, which needs non-NaN keys.
  for (float t : forest.threshold) {
    if (std::isnan(t)) return false;
  }
  std::vector<std::vector<BuildNode>> by_feature(n_features);
  for (std::size_t t = 0; t < n_trees; ++t) {
    SpanWalker walker{forest, {}, {}};
    walker.walk(forest.roots[t]);
    const std::size_t n_leaves = walker.order.size();
    if (n_leaves > 64) return false;
    init_[t] = n_leaves == 64 ? ~0ull : ((1ull << n_leaves) - 1);
    for (std::size_t b = 0; b < n_leaves; ++b) {
      leaf_slot_[t * 64 + b] = walker.order[b];
    }
    for (const auto& [idx, span] : walker.spans) {
      std::uint64_t left_bits = 0;
      for (std::size_t b = span.first; b < span.second; ++b) {
        left_bits |= 1ull << b;
      }
      const std::size_t i = static_cast<std::size_t>(idx);
      by_feature[static_cast<std::size_t>(forest.feature[i])].push_back(
          {~left_bits, forest.threshold[i], forest.category[i],
           static_cast<std::uint32_t>(t),
           (forest.flags[i] & kNodeCategorical) != 0,
           (forest.flags[i] & kNodeMissingLeft) != 0});
    }
  }

  thr_.clear();
  num_.clear();
  cat_code_.clear();
  cat_.clear();
  miss_.clear();
  num_off_.assign(1, 0);
  cat_off_.assign(1, 0);
  miss_off_.assign(1, 0);
  std::vector<BuildNode> num_nodes, cat_nodes;
  for (std::size_t f = 0; f < n_features; ++f) {
    num_nodes.clear();
    cat_nodes.clear();
    for (const BuildNode& n : by_feature[f]) {
      (n.categorical ? cat_nodes : num_nodes).push_back(n);
      if (!n.missing_left) miss_.push_back({n.mask, n.tree});
    }
    std::sort(num_nodes.begin(), num_nodes.end(),
              [](const BuildNode& a, const BuildNode& b) {
                return a.threshold < b.threshold;
              });
    std::sort(cat_nodes.begin(), cat_nodes.end(),
              [](const BuildNode& a, const BuildNode& b) {
                return a.category < b.category;
              });
    for (const BuildNode& n : num_nodes) {
      thr_.push_back(n.threshold);
      num_.push_back({n.mask, n.tree});
    }
    for (const BuildNode& n : cat_nodes) {
      cat_code_.push_back(n.category);
      cat_.push_back({n.mask, n.tree});
    }
    num_off_.push_back(static_cast<std::uint32_t>(thr_.size()));
    cat_off_.push_back(static_cast<std::uint32_t>(cat_code_.size()));
    miss_off_.push_back(static_cast<std::uint32_t>(miss_.size()));
  }
  ok_ = true;
  return true;
}

void QuickScorer::score_row(const float* row_vals, std::uint64_t* bv,
                            std::int32_t* leaf_out) const {
  FLAML_CHECK(ok_);
  const std::size_t n_trees = init_.size();
  std::memcpy(bv, init_.data(), n_trees * sizeof(std::uint64_t));
  for (std::size_t f = 0; f < n_features_; ++f) {
    const float v = row_vals[f];
    if (std::isnan(v)) [[unlikely]] {
      // NaN steps right exactly at the nodes whose missing direction is
      // right — the precomputed miss_ list for this feature.
      for (std::uint32_t k = miss_off_[f]; k < miss_off_[f + 1]; ++k) {
        bv[miss_[k].tree] &= miss_[k].mask;
      }
      continue;
    }
    // Numeric: the row steps right at a node iff v > threshold, and the run
    // is threshold-ascending, so the applied set is the prefix with
    // threshold < v. Branchless binary search for its end, then a tight
    // unconditional apply loop.
    const std::uint32_t off = num_off_[f];
    std::uint32_t len = num_off_[f + 1] - off;
    const float* base = thr_.data() + off;
    std::uint32_t lo = 0;
    while (len > 1) {
      const std::uint32_t half = len / 2;
      lo += (base[lo + half - 1] < v) ? half : 0;
      len -= half;
    }
    const std::uint32_t cut = off + lo + ((len == 1 && base[lo] < v) ? 1 : 0);
    const Apply* num = num_.data();
    for (std::uint32_t k = off; k < cut; ++k) {
      bv[num[k].tree] &= num[k].mask;
    }
    // Categorical: the row steps right iff (int32)v != category; the run is
    // category-ascending, so the applied set is everything outside the
    // equal range — two unconditional loops around it. The cast matches
    // the walker's (step_node) for bit-identical routing.
    const std::uint32_t coff = cat_off_[f];
    const std::uint32_t cend = cat_off_[f + 1];
    if (coff != cend) {
      const std::int32_t code = static_cast<std::int32_t>(v);
      const std::int32_t* cats = cat_code_.data();
      std::uint32_t eq_lo = coff;
      std::uint32_t r = cend;
      while (eq_lo < r) {
        const std::uint32_t m = (eq_lo + r) / 2;
        if (cats[m] < code) eq_lo = m + 1; else r = m;
      }
      std::uint32_t eq_hi = eq_lo;
      r = cend;
      while (eq_hi < r) {
        const std::uint32_t m = (eq_hi + r) / 2;
        if (cats[m] <= code) eq_hi = m + 1; else r = m;
      }
      const Apply* cat = cat_.data();
      for (std::uint32_t k = coff; k < eq_lo; ++k) {
        bv[cat[k].tree] &= cat[k].mask;
      }
      for (std::uint32_t k = eq_hi; k < cend; ++k) {
        bv[cat[k].tree] &= cat[k].mask;
      }
    }
  }
  for (std::size_t t = 0; t < n_trees; ++t) {
    // Lowest surviving bit = leftmost reachable leaf = the exit leaf.
    leaf_out[t] = leaf_slot_[t * 64 + static_cast<std::size_t>(
                                          std::countr_zero(bv[t]))];
  }
}

}  // namespace flaml::serve
