// Line-delimited JSON wire protocol over the prediction daemon — the
// serving-side sibling of src/server/service.h, same framing rules: one
// request per line, one compact-JSON response per line, every response
// carries "ok": true|false, failures add "error" and never tear down the
// stream. Integer fields go through the strict decoders in common/wire.h.
//
// Requests:
//
//   {"op":"ping"}                       -> {"ok":true,"pong":true,"loaded":B}
//   {"op":"load","artifact":PATH}       -> {"ok":true,"model":{...}}
//   {"op":"swap","artifact":PATH}       -> {"ok":true,"model":{...}}
//       swap requires a model to already be serving; in-flight batches
//       finish on the old model, every reply reports its generation.
//   {"op":"reload"}                     -> {"ok":true,"swapped":B[,"model":..]}
//       re-reads the last loaded artifact path; swaps only when the payload
//       fingerprint changed (artifact-path watch without a watcher thread).
//   {"op":"predict","rows":[[..],..]}   -> see below
//   {"op":"predict","csv":PATH}        — every CSV column is a feature (the
//       file is read with CsvOptions::has_label = false, so no column is
//       silently claimed as a label; prediction inputs are unlabeled)
//   {"op":"stats"}                      -> {"ok":true,"stats":{...}}
//   {"op":"drain"}                      -> {"ok":true,"drained":true}
//   {"op":"shutdown"}                   -> {"ok":true,"bye":true}
//
// predict responses:
//   regression:      {"ok":true,"task":"regression","generation":G,
//                     "batch_rows":N,"values":[v,...]}
//   classification:  {"ok":true,"task":...,"n_classes":K,"generation":G,
//                     "batch_rows":N,"values":[[p0..pK-1],...],
//                     "classes":[argmax,...]}
// Row cells are JSON numbers; null encodes a missing value (NaN). Values
// round-trip: the JSON writer emits 17 significant digits.
//
// handle()/handle_line() are safe to call from multiple threads — that is
// the point: the CLI serves each AF_UNIX connection on its own thread, so
// the daemon's micro-batching window spans concurrent clients.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>

#include "serve/predict_daemon.h"

namespace flaml::serve {

class PredictService {
 public:
  explicit PredictService(PredictDaemon& daemon);

  // Handle one decoded request; never throws (errors become
  // {"ok":false,"error":...} responses). Thread-safe.
  JsonValue handle(const JsonValue& request);

  // Handle one raw request line (parse errors become error responses too).
  std::string handle_line(const std::string& line);

  // Serve `in` until EOF or a shutdown op (stdio mode).
  void serve_stream(std::istream& in, std::ostream& out);

  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  JsonValue dispatch(const JsonValue& request);
  JsonValue op_predict(const JsonValue& request);

  PredictDaemon* daemon_;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace flaml::serve
