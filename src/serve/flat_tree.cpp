#include "serve/flat_tree.h"

#include <bit>
#include <cmath>

#include "common/error.h"

namespace flaml::serve {

void FlatForest::add_tree(const Tree& tree, bool with_dist) {
  const std::size_t n_nodes = tree.n_nodes();
  const std::size_t internal_base = n_internal();
  const std::size_t leaf_base = n_leaves();
  FLAML_CHECK(with_dist == (dist_width > 0));

  // First pass: assign compact ids — internal nodes and leaves each get
  // consecutive ids in node-array order.
  std::vector<std::int32_t> id(n_nodes);
  std::int32_t next_internal = static_cast<std::int32_t>(internal_base);
  std::int32_t next_leaf = static_cast<std::int32_t>(leaf_base);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    id[i] = tree.node(i).is_leaf() ? ~next_leaf++ : next_internal++;
  }

  // Second pass: emit the arrays with children translated to compact ids.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const TreeNode& node = tree.node(i);
    if (node.is_leaf()) {
      leaf_value.push_back(node.leaf_value);
      if (with_dist) {
        const auto& dists = tree.leaf_distributions();
        FLAML_CHECK_MSG(i < dists.size() &&
                            dists[i].size() == static_cast<std::size_t>(dist_width),
                        "leaf " << i << " lacks a " << dist_width
                                << "-class distribution");
        leaf_dist.insert(leaf_dist.end(), dists[i].begin(), dists[i].end());
      }
      continue;
    }
    FLAML_CHECK(node.feature >= 0);
    feature.push_back(node.feature);
    threshold.push_back(node.threshold);
    category.push_back(node.category);
    flags.push_back(static_cast<std::uint8_t>(
        (node.categorical ? kNodeCategorical : 0) |
        (node.missing_left ? kNodeMissingLeft : 0)));
    left.push_back(id[static_cast<std::size_t>(node.left)]);
    right.push_back(id[static_cast<std::size_t>(node.right)]);
  }
  roots.push_back(id[0]);
}

void FlatForest::pack() {
  packed.clear();
  packed.reserve(feature.size());
  for (std::size_t i = 0; i < feature.size(); ++i) {
    // The feature index must leave room for the two flag bits; the loader
    // cap (kMaxFeatures, 1e8) is far below 2^29 already.
    FLAML_CHECK((static_cast<std::uint32_t>(feature[i]) >> 29) == 0);
    PackedNode node;
    node.feat_flags =
        (static_cast<std::uint32_t>(feature[i]) << 2) | (flags[i] & kNodeFlagMask);
    node.aux = (flags[i] & kNodeCategorical) != 0
                   ? category[i]
                   : std::bit_cast<std::int32_t>(threshold[i]);
    node.left = left[i];
    node.right = right[i];
    packed.push_back(node);
  }
}

namespace {

// One traversal step over the packed table; `row_vals` is the row's dense
// feature array inside a route_block tile. Bit-compatible with
// Tree::leaf_index without an isnan test on the numeric path:
//   missing_left: !(v > t) — true for NaN and for v <= t;
//   missing_right: v <= t  — false for NaN.
// Both compare identically to `v <= t` for every finite v, ±0 and ±inf.
// Categorical nodes still need the explicit NaN test (casting NaN to int
// is undefined).
inline std::int32_t step_node(const PackedNode* nodes, std::int32_t idx,
                              const float* row_vals) {
  const PackedNode n = nodes[static_cast<std::size_t>(idx)];
  const float v = row_vals[n.feat_flags >> 2];
  bool go_left;
  if ((n.feat_flags & kNodeCategorical) != 0) {
    go_left = std::isnan(v) ? (n.feat_flags & kNodeMissingLeft) != 0
                            : static_cast<std::int32_t>(v) == n.aux;
  } else {
    const float t = std::bit_cast<float>(n.aux);
    go_left = (n.feat_flags & kNodeMissingLeft) != 0 ? !(v > t) : v <= t;
  }
  return go_left ? n.left : n.right;
}

}  // namespace

void FlatForest::route_block(std::size_t t, const float* block,
                             std::size_t stride, std::size_t n,
                             std::int32_t* out) const {
  const PackedNode* nodes = packed.data();
  const std::int32_t root = roots[t];
  if (root < 0) {  // single-leaf tree
    for (std::size_t i = 0; i < n; ++i) out[i] = ~root;
    return;
  }

  // Plain scalar walks: the out-of-order core already overlaps the
  // dependent node loads of successive (independent) rows, and measured
  // throughput beats software lane-interleaving schemes at every model
  // scale tried — the packed 16-byte nodes plus the row-major tile keep
  // each step to two L1 lines.
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t idx = root;
    const float* row_vals = block + i * stride;
    while (idx >= 0) idx = step_node(nodes, idx, row_vals);
    out[i] = ~idx;
  }
}

void FlatForest::validate(std::size_t n_features) const {
  const std::size_t internal = n_internal();
  const std::size_t leaves = n_leaves();
  FLAML_PARSE_REQUIRE(threshold.size() == internal && category.size() == internal &&
                          flags.size() == internal && left.size() == internal &&
                          right.size() == internal,
                      "flat forest: inconsistent node-array lengths");
  FLAML_PARSE_REQUIRE(dist_width >= 0, "flat forest: negative dist width");
  const std::size_t want_dist =
      leaves * static_cast<std::size_t>(dist_width);
  FLAML_PARSE_REQUIRE(leaf_dist.size() == want_dist,
                      "flat forest: leaf distribution block is "
                          << leaf_dist.size() << " values, expected " << want_dist);
  // Exactly-one-reference counting over roots + children. This both catches
  // corrupt links and guarantees traversal terminates: a cycle reachable
  // from a root would require some node on it to be referenced twice (by
  // the cycle edge and by the path in), and an unreachable subgraph would
  // leave other nodes unreferenced.
  std::vector<std::uint8_t> internal_refs(internal, 0);
  std::vector<std::uint8_t> leaf_refs(leaves, 0);
  auto take_ref = [&](std::int32_t child) {
    if (child >= 0) {
      const std::size_t i = static_cast<std::size_t>(child);
      FLAML_PARSE_REQUIRE(i < internal,
                          "flat forest: node reference " << child << " out of range");
      FLAML_PARSE_REQUIRE(internal_refs[i] == 0,
                          "flat forest: node " << child << " referenced twice");
      internal_refs[i] = 1;
    } else {
      const std::size_t i = static_cast<std::size_t>(~child);
      FLAML_PARSE_REQUIRE(i < leaves,
                          "flat forest: leaf reference " << ~child << " out of range");
      FLAML_PARSE_REQUIRE(leaf_refs[i] == 0,
                          "flat forest: leaf " << ~child << " referenced twice");
      leaf_refs[i] = 1;
    }
  };
  for (std::int32_t root : roots) take_ref(root);
  for (std::size_t i = 0; i < internal; ++i) {
    FLAML_PARSE_REQUIRE(feature[i] >= 0 &&
                            static_cast<std::size_t>(feature[i]) < n_features,
                        "flat forest: split feature " << feature[i]
                            << " outside [0, " << n_features << ")");
    FLAML_PARSE_REQUIRE((flags[i] & ~kNodeFlagMask) == 0,
                        "flat forest: unknown flag bits in node " << i);
    take_ref(left[i]);
    take_ref(right[i]);
  }
  for (std::size_t i = 0; i < internal; ++i) {
    FLAML_PARSE_REQUIRE(internal_refs[i] != 0,
                        "flat forest: orphaned internal node " << i);
  }
  for (std::size_t i = 0; i < leaves; ++i) {
    FLAML_PARSE_REQUIRE(leaf_refs[i] != 0, "flat forest: orphaned leaf " << i);
  }
}

}  // namespace flaml::serve
