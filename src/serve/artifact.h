// Versioned + checksummed on-disk container for compiled serving models,
// reusing the `flaml-checkpoint` header / FNV-1a discipline from
// src/resume/checkpoint.*:
//
//   flaml-compiled v1 <nbytes> <fnv64hex>\n
//   <exactly nbytes bytes of binary little-endian payload>
//
// The checksum covers the payload bytes, so ANY truncation or bit flip —
// header or payload — surfaces as a typed SerializationError, never as UB
// or a silently different model. Writes go to "<path>.tmp" and rename into
// place, so a crash mid-write leaves the previous artifact intact.
//
// ByteWriter/ByteReader are the payload codec: explicit little-endian
// integer/IEEE-754 encoding (independent of host endianness), with every
// read bounds-checked against the remaining payload before it happens.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace flaml::serve {

inline constexpr int kArtifactVersion = 1;
// Allocation cap for a declared payload size (matches the checkpoint
// loader's discipline: reject absurd sizes before touching memory).
inline constexpr std::uint64_t kMaxArtifactBytes = 1ull << 31;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  // Read an element count and reject any value whose `elem_size`-byte
  // elements could not fit in the remaining payload — so a corrupted count
  // can never drive an oversized allocation.
  std::size_t count(std::size_t elem_size, const char* what) {
    const std::uint32_t n = u32();
    FLAML_PARSE_REQUIRE(elem_size == 0 || n <= remaining() / elem_size,
                        "compiled artifact: " << what << " count " << n
                            << " exceeds the remaining " << remaining()
                            << " payload bytes");
    return n;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

  // Reject trailing bytes: a valid artifact is consumed exactly.
  void require_done() const {
    FLAML_PARSE_REQUIRE(pos_ == bytes_.size(),
                        "compiled artifact: " << remaining()
                            << " trailing payload bytes");
  }

 private:
  void need(std::size_t n, const char* what) {
    FLAML_PARSE_REQUIRE(remaining() >= n,
                        "compiled artifact: truncated payload reading " << what);
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

// Envelope layer, exposed separately so tests can corrupt payloads.
std::string wrap_artifact(const std::string& payload);
// Verifies magic, version, declared size and checksum; returns the payload.
// Throws SerializationError on any damage.
std::string unwrap_artifact(const std::string& text);

// Atomic file I/O (tmp + rename) in the envelope format.
void write_artifact_file(const std::string& path, const std::string& payload);
std::string read_artifact_file(const std::string& path);

}  // namespace flaml::serve
