// Post-search model compilation for the serving path (ROADMAP: "compiled
// predictor — flatten the best model for serving-side latency").
//
// compile() flattens a trained GBDT / random-forest / extra-trees model
// into the contiguous struct-of-arrays tables of flat_tree.h (linear models
// keep their weight matrix plus the encoder's column plans), and
// predict_many() is the batched serving engine on top: rows are sharded
// over src/common/thread_pool and each shard scores tile by tile. When
// every tree fits a 64-bit leaf bitvector the tiles run through the
// QuickScorer mask tables (quick_scorer.h — branchless, no dependent node
// loads); wider trees fall back to the packed-node walker
// (FlatForest::route_block). Either way per-row accumulation stays in tree
// order — so any n_threads in 1..N is byte-identical to serial AND to the
// interpreted Model::predict, per the PR 1–2 determinism contract. The
// differential suite (tests/test_compiled_predict.cpp) pins that equality
// across the whole learner zoo, all tasks, and NaN-bearing inputs.
//
// serialize()/deserialize() persist the compiled form in the checksummed
// `flaml-compiled v1` container (artifact.h); deserialize validates every
// structural invariant before use, so a corrupt or adversarial artifact can
// only produce SerializationError (tests/test_compiled_artifact.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "linear/encoder.h"
#include "metrics/error_metric.h"
#include "serve/flat_tree.h"
#include "serve/quick_scorer.h"

namespace flaml {
class GBDTModel;
class ForestModel;
class LinearModel;
}  // namespace flaml

namespace flaml::serve {

enum class CompiledKind : std::uint8_t { Gbdt = 0, Forest = 1, Linear = 2 };

class CompiledModel {
 public:
  CompiledModel() = default;

  CompiledKind kind() const { return kind_; }
  Task task() const { return task_; }
  int n_classes() const { return n_classes_; }
  // Minimum column count a prediction view must provide.
  std::size_t n_features() const { return n_features_; }
  std::size_t n_trees() const { return forest_.n_trees(); }
  std::size_t n_nodes() const { return forest_.n_internal() + forest_.n_leaves(); }

  // Batched prediction, bit-identical to the interpreted model's predict for
  // every n_threads (and to serial). The view's dataset needs at least
  // n_features() columns.
  Predictions predict_many(const DataView& view, int n_threads = 1) const;

  // Binary payload <-> compiled model (the artifact.h envelope is applied by
  // save_file/load_file; serialize returns the raw payload so tests can
  // target payload bytes directly). deserialize validates structurally and
  // throws SerializationError on any damage.
  std::string serialize() const;
  static CompiledModel deserialize(const std::string& payload);

  // Envelope + atomic file I/O.
  void save_file(const std::string& path) const;
  static CompiledModel load_file(const std::string& path);

 private:
  CompiledKind kind_ = CompiledKind::Gbdt;
  Task task_ = Task::Regression;
  int n_classes_ = 0;
  std::uint32_t n_features_ = 0;

  // Tree kinds. scorer_ holds the QuickScorer mask tables when every tree
  // has <= 64 leaves (scorer_.ok()); otherwise predict falls back to
  // forest_.route_block. Derived from forest_, never serialized.
  FlatForest forest_;
  QuickScorer scorer_;
  std::vector<double> base_scores_;  // GBDT: per output column
  std::vector<double> tree_scales_;  // GBDT: learning rate per tree

  // Linear kind.
  std::int32_t lin_outputs_ = 0;
  std::uint32_t lin_dim_ = 0;
  std::vector<double> lin_weights_;  // row-major n_outputs × (dim + 1)
  std::vector<FeatureEncoder::ColumnPlan> lin_plans_;

  Predictions predict_gbdt(const DataView& view, int n_threads) const;
  Predictions predict_forest(const DataView& view, int n_threads) const;
  Predictions predict_linear(const DataView& view, int n_threads) const;

  friend CompiledModel compile(const GBDTModel& model);
  friend CompiledModel compile(const ForestModel& model);
  friend CompiledModel compile(const LinearModel& model);
};

// Flatten a trained model. Throws InvalidArgument on an untrained model.
CompiledModel compile(const GBDTModel& model);
CompiledModel compile(const ForestModel& model);
CompiledModel compile(const LinearModel& model);

// Compile from a model's text serialization (`gbdt v1` / `forest v1` /
// `linear v1`): peeks the magic token and dispatches to the right loader.
// A `flaml-model v1 <learner>` wrapper (the save_best_model file format,
// what `flaml_train --model-out` writes) is unwrapped transparently.
// The stream must be seekable (string streams and files are).
CompiledModel compile_saved(std::istream& in);

// Compile the save_best_model blob format (`flaml-model v1 <learner>\n` +
// model text) — the bytes AutoML::save_best_model writes and resume
// checkpoints carry.
CompiledModel compile_blob(const std::string& blob);

// Compile the best-model blob stored in a search checkpoint file. Throws
// InvalidArgument when the checkpoint has no blob (mid-search snapshot or
// ensemble mode).
CompiledModel compile_checkpoint_file(const std::string& path);

}  // namespace flaml::serve
