// Long-running prediction daemon over compiled artifacts (ROADMAP:
// "serving path" — the deployment counterpart of the search daemon).
//
// A PredictDaemon owns one hot CompiledModel slot plus a single batcher
// thread. Callers (one per client connection) enqueue whole requests with
// predict(); the batcher accumulates queued requests until either
// `max_batch_rows` rows are waiting or the OLDEST queued request has waited
// `max_batch_delay_ms`, then serves the accumulated requests as ONE
// row-sharded CompiledModel::predict_many call over the shared ThreadPool
// and scatters the per-row results back to each caller. Because
// predict_many computes every row independently and in row order
// (compiled_model.h determinism contract), batching requests together is
// BIT-identical to predicting each request alone — at every batch window,
// thread count and request interleaving. tests/test_predict_daemon.cpp
// pins that equality.
//
// Hot swap: load()/swap()/poll_reload() atomically replace the
// shared_ptr<const CompiledModel> under the queue mutex and bump a
// generation counter. A batch captures (model, generation) once, before it
// predicts, so every reply is computed WHOLLY by exactly one generation and
// says which (Reply::generation) — in-flight batches finish on the old
// model, queued requests behind them see the new one. No request is ever
// split across models. tests/stress/stress_predict_serve.cpp hammers this
// under TSan: concurrent clients + a swapper thread, every reply must be
// bit-identical to exactly the generation it claims.
//
// Requests are never split across batches either: a request larger than
// `max_batch_rows` simply forms an oversized batch of its own. A request
// whose row width does not match the CURRENT model's n_features() (e.g. it
// was queued just before an incompatible swap) fails with a typed
// InvalidArgument instead of predicting garbage.
//
// Observability: a MetricsRegistry tracks request/row/batch/swap counters,
// per-request latency and queue-time histograms and batch-occupancy
// histograms (stats()); with a trace sink attached the daemon emits
// predict_daemon_started / predict_model_loaded / predict_batch /
// predict_daemon_drained / predict_daemon_shutdown events in the
// src/observe schema (trace_check validates them in serving mode).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "observe/metrics.h"
#include "observe/trace.h"
#include "serve/compiled_model.h"

namespace flaml::serve {

struct PredictDaemonOptions {
  // Flush the pending queue once this many rows are waiting...
  std::size_t max_batch_rows = 256;
  // ...or once the oldest queued request has waited this long.
  double max_batch_delay_ms = 2.0;
  // Threads per predict_many call (0 = hardware concurrency).
  int n_threads = 0;
  // Optional structured trace sink (predict_* events).
  observe::TraceSinkPtr trace_sink;
};

class PredictDaemon {
 public:
  explicit PredictDaemon(PredictDaemonOptions options = {});
  ~PredictDaemon();

  PredictDaemon(const PredictDaemon&) = delete;
  PredictDaemon& operator=(const PredictDaemon&) = delete;

  struct ModelInfo {
    std::uint64_t generation = 0;
    CompiledKind kind = CompiledKind::Gbdt;
    Task task = Task::Regression;
    int n_classes = 0;
    std::size_t n_features = 0;
    std::size_t n_trees = 0;
    std::string source;  // artifact path the model came from
  };

  struct Reply {
    Predictions pred;
    // Generation of the model that computed this reply — all of it.
    std::uint64_t generation = 0;
    // Occupancy of the batch that served this request.
    std::size_t batch_rows = 0;
    std::size_t batch_requests = 0;
    // Time the request spent queued before its batch flushed.
    double queue_ms = 0.0;
  };

  // Load (or replace) the hot model from a `flaml-compiled v1` artifact
  // file. Reads + checksums the bytes once, validates structurally, then
  // swaps atomically (generation + 1). Throws SerializationError on a
  // damaged artifact — the current model, if any, stays serving.
  ModelInfo load(const std::string& artifact_path);

  // Same as load() but requires a model to already be serving — the
  // explicit zero-downtime replacement op.
  ModelInfo swap(const std::string& artifact_path);

  // Artifact-path watch: re-read the artifact load()/swap() last installed
  // and swap only when its payload fingerprint changed. Returns the new
  // info after a swap, nullopt when the file is unchanged.
  std::optional<ModelInfo> poll_reload();

  bool loaded() const;
  ModelInfo info() const;  // throws InvalidArgument when nothing is loaded

  // Blocking batched prediction. Every row must have exactly
  // info().n_features values (NaN = missing). Throws InvalidArgument when
  // no model is loaded, on a width mismatch, or after shutdown began.
  Reply predict(const std::vector<std::vector<float>>& rows);

  // Block until every queued request has been answered.
  void drain();

  // Stop the batcher; queued requests fail with a typed error. Idempotent;
  // the destructor calls it.
  void shutdown();

  const observe::MetricsRegistry& metrics() const { return metrics_; }
  JsonValue stats() const;

 private:
  struct Pending {
    std::vector<float> values;  // row-major n_rows × width
    std::size_t n_rows = 0;
    std::size_t width = 0;
    std::chrono::steady_clock::time_point enqueued;
    bool done = false;
    std::exception_ptr error;
    Reply reply;
  };

  void batcher_loop();
  void serve_batch(std::vector<std::shared_ptr<Pending>> batch,
                   std::shared_ptr<const CompiledModel> model,
                   std::uint64_t generation);
  ModelInfo install_locked(std::shared_ptr<const CompiledModel> model,
                           const std::string& source,
                           std::uint64_t fingerprint);
  ModelInfo info_locked() const;

  const PredictDaemonOptions options_;
  observe::MetricsRegistry metrics_;
  observe::Tracer tracer_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  // wakes the batcher
  std::condition_variable cv_done_;  // wakes predict()/drain() waiters
  std::deque<std::shared_ptr<Pending>> queue_;
  std::size_t queued_rows_ = 0;
  bool in_flight_ = false;  // a batch is being served right now
  bool stop_ = false;

  std::shared_ptr<const CompiledModel> model_;
  std::uint64_t generation_ = 0;
  std::string artifact_path_;        // source of the current model
  std::uint64_t artifact_fingerprint_ = 0;

  std::thread batcher_;  // constructed last, joined by shutdown()
};

}  // namespace flaml::serve
