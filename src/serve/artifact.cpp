#include "serve/artifact.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "resume/checkpoint.h"

namespace flaml::serve {

namespace {

constexpr const char* kMagic = "flaml-compiled";

// Strict 16-digit lowercase hex (the exact shape serialize emits): a looser
// parse would let bit-flipped checksum characters alias to the same value.
bool parse_checksum(const std::string& token, std::uint64_t& out) {
  if (token.size() != 16) return false;
  out = 0;
  for (char c : token) {
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else {
      return false;
    }
    out = (out << 4) | static_cast<std::uint64_t>(nibble);
  }
  return true;
}

}  // namespace

std::string wrap_artifact(const std::string& payload) {
  std::ostringstream out;
  out << kMagic << " v" << kArtifactVersion << ' ' << payload.size() << ' ';
  char checksum[17];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(
                    resume::fnv1a64(payload.data(), payload.size())));
  out << checksum << '\n' << payload;
  return out.str();
}

std::string unwrap_artifact(const std::string& text) {
  const std::size_t eol = text.find('\n');
  FLAML_PARSE_REQUIRE(eol != std::string::npos, "compiled artifact: header line missing");
  std::istringstream header(text.substr(0, eol));
  std::string magic, version, checksum_hex, extra;
  std::uint64_t nbytes = 0;
  header >> magic >> version >> nbytes >> checksum_hex;
  FLAML_PARSE_REQUIRE(!header.fail(), "compiled artifact: malformed header");
  FLAML_PARSE_REQUIRE(!(header >> extra), "compiled artifact: trailing header tokens");
  FLAML_PARSE_REQUIRE(magic == kMagic, "not a compiled-model artifact");
  FLAML_PARSE_REQUIRE(version == "v" + std::to_string(kArtifactVersion),
                      "unsupported compiled-artifact version '" << version << "'");
  // Reject absurd declared sizes before the substr below can allocate.
  FLAML_PARSE_REQUIRE(nbytes <= kMaxArtifactBytes, "compiled artifact: payload too large");
  std::uint64_t declared = 0;
  FLAML_PARSE_REQUIRE(parse_checksum(checksum_hex, declared),
                      "compiled artifact: malformed checksum '" << checksum_hex << "'");
  std::string payload = text.substr(eol + 1);
  FLAML_PARSE_REQUIRE(payload.size() == nbytes,
                      "compiled artifact: payload has " << payload.size()
                          << " bytes, header declares " << nbytes);
  const std::uint64_t actual = resume::fnv1a64(payload.data(), payload.size());
  FLAML_PARSE_REQUIRE(declared == actual, "compiled artifact: checksum mismatch");
  return payload;
}

void write_artifact_file(const std::string& path, const std::string& payload) {
  FLAML_REQUIRE(!path.empty(), "artifact path must be non-empty");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FLAML_REQUIRE(out.good(), "cannot open '" << tmp << "' for writing");
    out << wrap_artifact(payload);
    out.flush();
    FLAML_REQUIRE(out.good(), "failed writing artifact to '" << tmp << "'");
  }
  // Atomic replace: a crash between write and rename leaves the previous
  // artifact untouched.
  FLAML_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                "failed to rename '" << tmp << "' to '" << path << "'");
}

std::string read_artifact_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLAML_PARSE_REQUIRE(in.good(), "cannot open artifact file '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FLAML_PARSE_REQUIRE(!in.bad(), "failed reading artifact file '" << path << "'");
  return unwrap_artifact(buffer.str());
}

}  // namespace flaml::serve
