#include "server/dataset_cache.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "data/csv.h"
#include "resume/checkpoint.h"

namespace flaml::server {

namespace {

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLAML_REQUIRE(in.good(), "cannot open CSV file '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FLAML_REQUIRE(!in.bad(), "failed reading CSV file '" << path << "'");
  return buffer.str();
}

}  // namespace

DatasetCache::DatasetCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  FLAML_REQUIRE(max_entries_ >= 1, "dataset cache needs capacity >= 1");
}

std::shared_ptr<const Dataset> DatasetCache::load_csv(
    const std::string& path, Task task, const std::string& label_column) {
  // Read the bytes up front: the fingerprint must describe what a reparse
  // WOULD see, so hit detection and the parse consume the same snapshot
  // even when the file is rewritten concurrently.
  const std::string bytes = read_file_bytes(path);
  const std::uint64_t fingerprint =
      resume::fnv1a64(bytes.data(), bytes.size()) ^ bytes.size();
  const std::string key =
      "csv:" + path + "|" + task_name(task) + "|" + label_column;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.fingerprint == fingerprint) {
      touch_locked(it->second, key);
      return it->second.data;
    }
  }

  CsvOptions csv_options;
  csv_options.task = task;
  csv_options.label_column = label_column;
  std::istringstream in(bytes);
  auto data = std::make_shared<const Dataset>(read_csv(in, csv_options));

  std::lock_guard<std::mutex> lock(mutex_);
  return insert_locked(key, fingerprint, std::move(data));
}

std::shared_ptr<const Dataset> DatasetCache::load_synthetic(
    const SyntheticSpec& spec) {
  std::ostringstream key_out;
  key_out << "syn:" << task_name(spec.task) << "|" << spec.n_rows << "|"
          << spec.n_features << "|" << spec.n_classes << "|" << spec.seed;
  const std::string key = key_out.str();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      touch_locked(it->second, key);
      return it->second.data;
    }
  }
  auto data = std::make_shared<const Dataset>(make_synthetic(spec));
  std::lock_guard<std::mutex> lock(mutex_);
  return insert_locked(key, 0, std::move(data));
}

std::size_t DatasetCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void DatasetCache::touch_locked(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

std::shared_ptr<const Dataset> DatasetCache::insert_locked(
    const std::string& key, std::uint64_t fingerprint,
    std::shared_ptr<const Dataset> data) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Same key, new content: replace in place (covers the concurrent-miss
    // race too — last parse wins, both snapshots were valid datasets).
    it->second.fingerprint = fingerprint;
    it->second.data = std::move(data);
    touch_locked(it->second, key);
    return it->second.data;
  }
  if (entries_.size() >= max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.data = std::move(data);
  entry.lru_pos = lru_.begin();
  return entries_.emplace(key, std::move(entry)).first->second.data;
}

}  // namespace flaml::server
