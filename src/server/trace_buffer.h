// Bounded per-job trace buffer for the search daemon.
//
// Each daemon job gets one RingTraceSink as its AutoMLOptions::trace_sink:
// the search emits the normal src/observe event stream (the same schema
// tools/trace_inspect validates) and clients page through it with the
// `events` wire op — {"id", "since": <sequence>} returns every retained
// event with sequence >= since plus the next cursor, so a client can poll
// without re-reading or missing anything that is still retained. The ring
// keeps the most recent `capacity` events; older ones are dropped and
// reported through Window::dropped so a slow client knows its cursor fell
// off the tail instead of silently skipping.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "observe/trace.h"

namespace flaml::server {

class RingTraceSink final : public observe::TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity = 4096);

  // Thread-safe (TraceSink contract): the search emits from its segment
  // thread while clients read windows from the service thread.
  void emit(const observe::TraceEvent& event) override;

  struct Window {
    std::vector<observe::TraceEvent> events;
    std::uint64_t first = 0;    // sequence of events.front() (when any)
    std::uint64_t next = 0;     // cursor for the following poll
    std::uint64_t dropped = 0;  // events in [since, first) already evicted
  };

  // All retained events with sequence >= since.
  Window since(std::uint64_t since) const;

  // Total events ever emitted (== the next sequence number).
  std::uint64_t total() const;

 private:
  mutable std::mutex mutex_;
  const std::size_t capacity_;
  std::uint64_t base_ = 0;  // sequence number of events_.front()
  std::deque<observe::TraceEvent> events_;
};

}  // namespace flaml::server
