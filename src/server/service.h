// Line-delimited JSON wire protocol over the search daemon.
//
// One request per line, one response per line (compact JSON, both
// directions). Every response carries "ok": true|false; failures add
// "error" with a human-readable message and never tear down the stream.
// Requests:
//
//   {"op":"ping"}
//   {"op":"submit", "csv":PATH, "task":"binary|multiclass|regression",
//    ["label":COLUMN,] ...}                      — or —
//   {"op":"submit", "synthetic":{"task":...,["rows":N,"features":N,
//    "classes":N,"seed":N]}, ...}
//      common submit fields (all optional): "budget_seconds", "metric",
//      "estimators":[names], "max_iterations", "seed", "name", "priority",
//      "quantum_trials", "deadline_seconds"      -> {"ok":true,"id":N}
//   {"op":"status","id":N}                       -> {"ok":true,"job":{...}}
//   {"op":"list"}                                -> {"ok":true,"jobs":[...]}
//   {"op":"cancel","id":N}                       -> {"ok":true,"cancelled":B}
//   {"op":"preempt","id":N}                      -> {"ok":true,"preempted":B}
//   {"op":"result","id":N}                       -> {"ok":true,"result":{...}}
//   {"op":"events","id":N,["since":SEQ]}         -> {"ok":true,"events":[...],
//                                                    "first":S,"next":S,
//                                                    "dropped":N}
//   {"op":"wait","id":N} / {"op":"wait_all"}     — blocks, then status/list
//   {"op":"shutdown"}                            — cancels everything
//
// Job ids are dense and deterministic (1, 2, 3, ... in submission order),
// so scripted clients — the CI smoke test — need no response parsing
// beyond grep. "events" returns the job's retained trace window in the
// src/observe JSONL schema (each element additionally carries "seq").
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "server/daemon.h"
#include "server/dataset_cache.h"

namespace flaml::server {

class SearchService {
 public:
  explicit SearchService(SearchDaemon& daemon);

  // Test seam, applied to every submit after the request is decoded: inject
  // extra learners (stubs) or override options (deterministic cost models)
  // without widening the wire protocol.
  using Customize =
      std::function<void(AutoMLOptions& options,
                         std::vector<LearnerPtr>& extra_learners)>;
  void set_customize(Customize customize) { customize_ = std::move(customize); }

  // Handle one decoded request; never throws (errors become
  // {"ok":false,"error":...} responses).
  JsonValue handle(const JsonValue& request);

  // Handle one raw request line (parse errors become error responses too).
  std::string handle_line(const std::string& line);

  // Serve `in` until EOF or a shutdown op: one request line -> one response
  // line on `out` (flushed per response). Blank lines are ignored.
  void serve_stream(std::istream& in, std::ostream& out);

  // True once a shutdown op was handled (the daemon is already down).
  bool shutdown_requested() const { return shutdown_requested_; }

  // The dataset cache (bounded, content-fingerprinted — dataset_cache.h):
  // N jobs over the same data share one immutable Dataset, and a CSV file
  // rewritten between submits is re-parsed instead of served stale.
  DatasetCache& dataset_cache() { return dataset_cache_; }

 private:
  JsonValue dispatch(const JsonValue& request);
  JsonValue op_submit(const JsonValue& request);
  std::shared_ptr<const Dataset> load_dataset(const JsonValue& request);

  SearchDaemon* daemon_;
  Customize customize_;
  DatasetCache dataset_cache_;
  bool shutdown_requested_ = false;
};

}  // namespace flaml::server
