#include "server/trace_buffer.h"

#include <algorithm>

#include "common/error.h"

namespace flaml::server {

RingTraceSink::RingTraceSink(std::size_t capacity) : capacity_(capacity) {
  FLAML_REQUIRE(capacity_ > 0, "trace ring capacity must be positive");
}

void RingTraceSink::emit(const observe::TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++base_;
  }
  events_.push_back(event);
}

RingTraceSink::Window RingTraceSink::since(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Window window;
  window.next = base_ + events_.size();
  const std::uint64_t begin = std::max(since, base_);
  window.first = begin;
  window.dropped = begin > since ? begin - since : 0;
  for (std::uint64_t seq = begin; seq < window.next; ++seq) {
    window.events.push_back(events_[static_cast<std::size_t>(seq - base_)]);
  }
  return window;
}

std::uint64_t RingTraceSink::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_ + events_.size();
}

}  // namespace flaml::server
