// The multi-job search daemon core (service layer of ROADMAP's
// "AutoML-as-a-service").
//
// A SearchDaemon schedules many budgeted AutoML searches (SearchJob
// segments) over one shared common/thread_pool with `slots` workers.
// Scheduling is cooperative and checkpoint-based:
//
//   * Fair-share slots. Runnable jobs (queued or preempted) are granted
//     slots by (priority desc, submission order). With more runnable jobs
//     than slots, a running job yields after `quantum_trials` committed
//     trials of its current segment whenever a peer of equal-or-higher
//     priority is waiting — round-robin timeslicing at trial granularity.
//   * Priority preemption. A newly submitted job that strictly outranks a
//     running one evicts it: the victim receives SearchSignal::Preempt at
//     its next trial boundary, captures an in-memory checkpoint
//     (src/resume) and re-enters the queue; the stitched run is
//     byte-identical to an uninterrupted one (stress_server proves it).
//   * Budgets and deadlines. Each job's AutoMLOptions::time_budget_seconds
//     only ticks while its segments run (eviction time is free — the
//     checkpoint carries spent budget). JobOptions::deadline_seconds is the
//     opposite: a wall-clock bound from submission, including queue wait;
//     a job past its deadline is cancelled at its next boundary (or before
//     its next segment starts).
//
// All mutable scheduling state lives behind one mutex. Job progress fields
// (trials, best error) are snapshotted into the job table from the control
// callback — which runs on the segment thread at trial boundaries — so
// status queries never touch a live AutoML from a second thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "automl/search_job.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "server/trace_buffer.h"

namespace flaml::server {

// Queued: runnable, never ran. Running: a segment is on a slot. Preempted:
// runnable, waiting with a checkpoint. Finished/Cancelled/Failed: terminal.
enum class JobState { Queued, Running, Preempted, Finished, Cancelled, Failed };

const char* job_state_name(JobState state);

// Per-job scheduling knobs (the search knobs live in AutoMLOptions).
struct JobOptions {
  std::string name;  // for humans; empty = "job-<id>"
  // Higher runs first; a STRICTLY higher waiting job preempts a running one.
  int priority = 0;
  // Fair-share timeslice: with peers (priority >= ours) waiting, yield the
  // slot after this many trials in the current segment. 0 = never yield
  // voluntarily (still preemptible by strictly higher priority).
  std::size_t quantum_trials = 8;
  // Cancel the job once this many wall-clock seconds passed since
  // submission (queue wait included). 0 = no deadline.
  double deadline_seconds = 0.0;
  // Test hook, composed with the scheduler's own signal at every trial
  // boundary (most severe wins; it cannot override a pending Cancel). The
  // preemption sweeps evict a job at chosen boundaries through this.
  std::function<SearchSignal(std::size_t iteration)> test_control;
};

class SearchDaemon {
 public:
  struct Options {
    // Concurrent job segments (worker threads of the daemon's pool).
    std::size_t slots = 2;
    // Per-job trace ring capacity (see trace_buffer.h).
    std::size_t trace_capacity = 4096;
  };

  explicit SearchDaemon(Options options);
  ~SearchDaemon();  // shutdown()

  SearchDaemon(const SearchDaemon&) = delete;
  SearchDaemon& operator=(const SearchDaemon&) = delete;

  // Queue a search. `data` is shared so the daemon outlives caller-side
  // handles; `automl_options.trace_sink` is replaced by the job's ring
  // buffer, and `search_control` by the scheduler's own control. Returns
  // the job id (dense, starting at 1). Throws InvalidArgument after
  // shutdown() began.
  std::uint64_t submit(std::shared_ptr<const Dataset> data,
                       AutoMLOptions automl_options, JobOptions job_options = {},
                       std::vector<LearnerPtr> extra_learners = {});

  // Cooperative cancel: a running job stops at its next trial boundary, a
  // waiting one immediately. False when unknown or already terminal.
  bool cancel(std::uint64_t id);

  // Explicit eviction: ask a RUNNING job to checkpoint and requeue at its
  // next trial boundary (it resumes automatically when a slot frees —
  // possibly immediately, when no other job wants the slot). False when
  // the job is not running.
  bool preempt(std::uint64_t id);

  JobState state(std::uint64_t id) const;  // throws InvalidArgument: unknown id

  // One status object ({id, name, state, priority, trials, best_error,
  // best_learner, segments, preemptions, ...}) / the whole table.
  JsonValue status(std::uint64_t id) const;
  JsonValue list() const;

  // Search outcome of a FINISHED job ({best_learner, best_config,
  // best_error, best_sample_size, n_trials, resampling}). Throws
  // InvalidArgument for non-finished jobs (status() tells why).
  JsonValue result(std::uint64_t id) const;

  // Streamed progress: the job's retained trace events with seq >= since.
  RingTraceSink::Window events(std::uint64_t id, std::uint64_t since) const;

  // Block until the job (all jobs) reach a terminal state.
  void wait(std::uint64_t id);
  void wait_all();

  // Cancel every non-terminal job, wait for running segments to stop at
  // their next boundary, stop accepting submissions. Idempotent.
  void shutdown();

  // Post-completion introspection for tests: the job's search. Only valid
  // once the job is terminal (the segment thread has released it).
  const AutoML& automl(std::uint64_t id) const;

  std::size_t slots() const { return options_.slots; }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobOptions job_options;
    std::shared_ptr<const Dataset> data;
    std::unique_ptr<SearchJob> search;
    std::shared_ptr<RingTraceSink> trace;
    JobState state = JobState::Queued;
    // Scheduler -> segment request, delivered at the next trial boundary.
    SearchSignal signal = SearchSignal::Run;
    double submitted_at = 0.0;  // daemon clock
    // Global start-order stamp; the scheduler grants a slot to the least
    // recently scheduled runnable job within a priority level (0 = never
    // ran, so fresh jobs go first in submission order), which is what makes
    // the quantum yield a true round-robin instead of the yielding job
    // winning its own slot back.
    std::uint64_t last_scheduled = 0;
    // Progress snapshot, written under the daemon mutex from the segment
    // thread (control callback / segment end) and read by status queries.
    std::size_t trials = 0;
    double best_error = std::numeric_limits<double>::infinity();
    std::string best_learner;
    std::size_t segment_start_trials = 0;
    std::size_t segments = 0;
    std::size_t preemptions = 0;
    std::string reason;  // why Cancelled/Failed (empty otherwise)
  };

  // All *_locked members require mutex_ held.
  Job* find_locked(std::uint64_t id);
  const Job* find_locked(std::uint64_t id) const;
  bool runnable_locked(const Job& job) const;
  // A runnable job that would be granted a slot before `ahead_of` keeps
  // the fair-share quantum honest: any waiting peer at >= its priority.
  bool peer_waiting_locked(int priority) const;
  void schedule_locked();
  void start_segment_locked(Job& job);
  JsonValue status_locked(const Job& job) const;
  SearchSignal control_poll(Job& job, std::size_t iteration);
  void run_segment_task(Job& job);
  void snapshot_progress_locked(Job& job);

  Options options_;
  WallClock clock_;
  mutable std::mutex mutex_;
  std::condition_variable terminal_cv_;
  // One shared pool; each worker slot runs one job segment at a time.
  std::unique_ptr<ThreadPool> pool_;
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t schedule_seq_ = 0;
  std::size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace flaml::server
