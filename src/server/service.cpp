#include "server/service.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "data/csv.h"
#include "data/generators.h"
#include "observe/trace.h"
#include "resume/serial_util.h"

namespace flaml::server {

namespace {

Task parse_task(const std::string& name) {
  if (name == "binary") return Task::BinaryClassification;
  if (name == "multiclass") return Task::MultiClassification;
  if (name == "regression") return Task::Regression;
  throw InvalidArgument("unknown task '" + name +
                        "' (binary|multiclass|regression)");
}

const JsonValue* opt(const JsonValue& request, const std::string& key) {
  return request.find(key);
}

std::string opt_string(const JsonValue& request, const std::string& key,
                       const std::string& fallback) {
  const JsonValue* v = opt(request, key);
  if (v == nullptr) return fallback;
  FLAML_REQUIRE(v->is_string(), "field '" << key << "' must be a string");
  return v->str;
}

double opt_number(const JsonValue& request, const std::string& key,
                  double fallback) {
  const JsonValue* v = opt(request, key);
  if (v == nullptr) return fallback;
  FLAML_REQUIRE(v->is_number(), "field '" << key << "' must be a number");
  return v->number;
}

std::size_t opt_size(const JsonValue& request, const std::string& key,
                     std::size_t fallback) {
  const double n = opt_number(request, key, static_cast<double>(fallback));
  FLAML_REQUIRE(n >= 0, "field '" << key << "' must be >= 0");
  return static_cast<std::size_t>(n);
}

std::uint64_t req_id(const JsonValue& request) {
  const JsonValue* v = opt(request, "id");
  FLAML_REQUIRE(v != nullptr && v->is_number() && v->number >= 1,
                "request needs a numeric job \"id\"");
  return static_cast<std::uint64_t>(v->number);
}

JsonValue ok_response() {
  JsonValue out = JsonValue::make_object();
  out.set("ok", JsonValue::make_bool(true));
  return out;
}

JsonValue error_response(const std::string& message) {
  JsonValue out = JsonValue::make_object();
  out.set("ok", JsonValue::make_bool(false));
  out.set("error", JsonValue::make_string(message));
  return out;
}

JsonValue window_to_json(const RingTraceSink::Window& window) {
  JsonValue out = ok_response();
  JsonValue events = JsonValue::make_array();
  std::uint64_t seq = window.first;
  for (const observe::TraceEvent& event : window.events) {
    JsonValue e = observe::to_json(event);
    e.set("seq", resume::json_size(static_cast<std::size_t>(seq++)));
    events.push(std::move(e));
  }
  out.set("events", std::move(events));
  out.set("first", resume::json_size(static_cast<std::size_t>(window.first)));
  out.set("next", resume::json_size(static_cast<std::size_t>(window.next)));
  out.set("dropped",
          resume::json_size(static_cast<std::size_t>(window.dropped)));
  return out;
}

}  // namespace

SearchService::SearchService(SearchDaemon& daemon) : daemon_(&daemon) {}

JsonValue SearchService::handle(const JsonValue& request) {
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::string SearchService::handle_line(const std::string& line) {
  JsonValue request;
  try {
    request = parse_json(line);
  } catch (const std::exception& e) {
    return dump_json_compact(
        error_response(std::string("bad request JSON: ") + e.what()));
  }
  return dump_json_compact(handle(request));
}

void SearchService::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_requested_ && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n';
    out.flush();
  }
}

JsonValue SearchService::dispatch(const JsonValue& request) {
  FLAML_REQUIRE(request.is_object(), "request must be a JSON object");
  const std::string op = opt_string(request, "op", "");
  FLAML_REQUIRE(!op.empty(), "request needs an \"op\" field");

  if (op == "ping") {
    JsonValue out = ok_response();
    out.set("pong", JsonValue::make_bool(true));
    out.set("slots", resume::json_size(daemon_->slots()));
    return out;
  }
  if (op == "submit") return op_submit(request);
  if (op == "status") {
    JsonValue out = ok_response();
    out.set("job", daemon_->status(req_id(request)));
    return out;
  }
  if (op == "list") {
    JsonValue out = ok_response();
    out.set("jobs", daemon_->list());
    return out;
  }
  if (op == "cancel") {
    JsonValue out = ok_response();
    out.set("cancelled", JsonValue::make_bool(daemon_->cancel(req_id(request))));
    return out;
  }
  if (op == "preempt") {
    JsonValue out = ok_response();
    out.set("preempted", JsonValue::make_bool(daemon_->preempt(req_id(request))));
    return out;
  }
  if (op == "result") {
    JsonValue out = ok_response();
    out.set("result", daemon_->result(req_id(request)));
    return out;
  }
  if (op == "events") {
    const std::uint64_t since =
        static_cast<std::uint64_t>(opt_number(request, "since", 0.0));
    return window_to_json(daemon_->events(req_id(request), since));
  }
  if (op == "wait") {
    const std::uint64_t id = req_id(request);
    daemon_->wait(id);
    JsonValue out = ok_response();
    out.set("job", daemon_->status(id));
    return out;
  }
  if (op == "wait_all") {
    daemon_->wait_all();
    JsonValue out = ok_response();
    out.set("jobs", daemon_->list());
    return out;
  }
  if (op == "shutdown") {
    daemon_->shutdown();
    shutdown_requested_ = true;
    JsonValue out = ok_response();
    out.set("bye", JsonValue::make_bool(true));
    return out;
  }
  throw InvalidArgument("unknown op '" + op + "'");
}

std::shared_ptr<const Dataset> SearchService::load_dataset(
    const JsonValue& request) {
  std::string key;
  if (opt(request, "csv") != nullptr) {
    const std::string path = opt_string(request, "csv", "");
    const std::string task = opt_string(request, "task", "binary");
    const std::string label = opt_string(request, "label", "");
    key = "csv:" + path + "|" + task + "|" + label;
    auto it = dataset_cache_.find(key);
    if (it != dataset_cache_.end()) return it->second;
    CsvOptions csv_options;
    csv_options.task = parse_task(task);
    csv_options.label_column = label;
    auto data =
        std::make_shared<const Dataset>(read_csv_file(path, csv_options));
    dataset_cache_.emplace(key, data);
    return data;
  }
  const JsonValue* synthetic = opt(request, "synthetic");
  FLAML_REQUIRE(synthetic != nullptr,
                "submit needs either \"csv\" or \"synthetic\"");
  FLAML_REQUIRE(synthetic->is_object(), "\"synthetic\" must be an object");
  SyntheticSpec spec;
  spec.task = parse_task(opt_string(*synthetic, "task", "binary"));
  spec.n_rows = opt_size(*synthetic, "rows", 600);
  spec.n_features = static_cast<int>(opt_size(*synthetic, "features", 8));
  spec.n_classes = static_cast<int>(opt_size(*synthetic, "classes", 2));
  spec.seed = opt_size(*synthetic, "seed", 1);
  std::ostringstream fingerprint;
  fingerprint << "syn:" << task_name(spec.task) << "|" << spec.n_rows << "|"
              << spec.n_features << "|" << spec.n_classes << "|" << spec.seed;
  key = fingerprint.str();
  auto it = dataset_cache_.find(key);
  if (it != dataset_cache_.end()) return it->second;
  auto data = std::make_shared<const Dataset>(make_synthetic(spec));
  dataset_cache_.emplace(key, data);
  return data;
}

JsonValue SearchService::op_submit(const JsonValue& request) {
  std::shared_ptr<const Dataset> data = load_dataset(request);

  AutoMLOptions options;
  options.time_budget_seconds = opt_number(request, "budget_seconds", 5.0);
  options.metric = opt_string(request, "metric", "");
  options.max_iterations = opt_size(request, "max_iterations", 0);
  options.seed = opt_size(request, "seed", 1);
  if (const JsonValue* estimators = opt(request, "estimators")) {
    FLAML_REQUIRE(estimators->is_array(),
                  "field 'estimators' must be an array of names");
    for (const JsonValue& name : estimators->array) {
      FLAML_REQUIRE(name.is_string(), "estimator names must be strings");
      options.estimator_list.push_back(name.str);
    }
  }

  JobOptions job_options;
  job_options.name = opt_string(request, "name", "");
  job_options.priority =
      static_cast<int>(opt_number(request, "priority", 0.0));
  job_options.quantum_trials = opt_size(request, "quantum_trials", 8);
  job_options.deadline_seconds = opt_number(request, "deadline_seconds", 0.0);

  std::vector<LearnerPtr> extra_learners;
  if (customize_) customize_(options, extra_learners);

  const std::uint64_t id = daemon_->submit(std::move(data), std::move(options),
                                           std::move(job_options),
                                           std::move(extra_learners));
  JsonValue out = ok_response();
  out.set("id", resume::json_size(static_cast<std::size_t>(id)));
  return out;
}

}  // namespace flaml::server
