#include "server/service.h"

#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/wire.h"
#include "observe/trace.h"
#include "resume/serial_util.h"

namespace flaml::server {

namespace {

using wire::error_response;
using wire::ok_response;
using wire::opt;
using wire::opt_number;
using wire::opt_size;
using wire::opt_string;
using wire::req_id;

Task parse_task(const std::string& name) {
  if (name == "binary") return Task::BinaryClassification;
  if (name == "multiclass") return Task::MultiClassification;
  if (name == "regression") return Task::Regression;
  throw InvalidArgument("unknown task '" + name +
                        "' (binary|multiclass|regression)");
}

JsonValue window_to_json(const RingTraceSink::Window& window) {
  JsonValue out = ok_response();
  JsonValue events = JsonValue::make_array();
  std::uint64_t seq = window.first;
  for (const observe::TraceEvent& event : window.events) {
    JsonValue e = observe::to_json(event);
    e.set("seq", resume::json_size(static_cast<std::size_t>(seq++)));
    events.push(std::move(e));
  }
  out.set("events", std::move(events));
  out.set("first", resume::json_size(static_cast<std::size_t>(window.first)));
  out.set("next", resume::json_size(static_cast<std::size_t>(window.next)));
  out.set("dropped",
          resume::json_size(static_cast<std::size_t>(window.dropped)));
  return out;
}

}  // namespace

SearchService::SearchService(SearchDaemon& daemon) : daemon_(&daemon) {}

JsonValue SearchService::handle(const JsonValue& request) {
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::string SearchService::handle_line(const std::string& line) {
  JsonValue request;
  try {
    request = parse_json(line);
  } catch (const std::exception& e) {
    return dump_json_compact(
        error_response(std::string("bad request JSON: ") + e.what()));
  }
  return dump_json_compact(handle(request));
}

void SearchService::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_requested_ && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n';
    out.flush();
  }
}

JsonValue SearchService::dispatch(const JsonValue& request) {
  FLAML_REQUIRE(request.is_object(), "request must be a JSON object");
  const std::string op = opt_string(request, "op", "");
  FLAML_REQUIRE(!op.empty(), "request needs an \"op\" field");

  if (op == "ping") {
    JsonValue out = ok_response();
    out.set("pong", JsonValue::make_bool(true));
    out.set("slots", resume::json_size(daemon_->slots()));
    return out;
  }
  if (op == "submit") return op_submit(request);
  if (op == "status") {
    JsonValue out = ok_response();
    out.set("job", daemon_->status(req_id(request)));
    return out;
  }
  if (op == "list") {
    JsonValue out = ok_response();
    out.set("jobs", daemon_->list());
    return out;
  }
  if (op == "cancel") {
    JsonValue out = ok_response();
    out.set("cancelled", JsonValue::make_bool(daemon_->cancel(req_id(request))));
    return out;
  }
  if (op == "preempt") {
    JsonValue out = ok_response();
    out.set("preempted", JsonValue::make_bool(daemon_->preempt(req_id(request))));
    return out;
  }
  if (op == "result") {
    JsonValue out = ok_response();
    out.set("result", daemon_->result(req_id(request)));
    return out;
  }
  if (op == "events") {
    const std::uint64_t since =
        static_cast<std::uint64_t>(opt_size(request, "since", 0));
    return window_to_json(daemon_->events(req_id(request), since));
  }
  if (op == "wait") {
    const std::uint64_t id = req_id(request);
    daemon_->wait(id);
    JsonValue out = ok_response();
    out.set("job", daemon_->status(id));
    return out;
  }
  if (op == "wait_all") {
    daemon_->wait_all();
    JsonValue out = ok_response();
    out.set("jobs", daemon_->list());
    return out;
  }
  if (op == "shutdown") {
    daemon_->shutdown();
    shutdown_requested_ = true;
    JsonValue out = ok_response();
    out.set("bye", JsonValue::make_bool(true));
    return out;
  }
  throw InvalidArgument("unknown op '" + op + "'");
}

std::shared_ptr<const Dataset> SearchService::load_dataset(
    const JsonValue& request) {
  if (opt(request, "csv") != nullptr) {
    const std::string path = opt_string(request, "csv", "");
    const Task task = parse_task(opt_string(request, "task", "binary"));
    const std::string label = opt_string(request, "label", "");
    return dataset_cache_.load_csv(path, task, label);
  }
  const JsonValue* synthetic = opt(request, "synthetic");
  FLAML_REQUIRE(synthetic != nullptr,
                "submit needs either \"csv\" or \"synthetic\"");
  FLAML_REQUIRE(synthetic->is_object(), "\"synthetic\" must be an object");
  SyntheticSpec spec;
  spec.task = parse_task(opt_string(*synthetic, "task", "binary"));
  spec.n_rows = opt_size(*synthetic, "rows", 600);
  spec.n_features = static_cast<int>(opt_size(*synthetic, "features", 8));
  spec.n_classes = static_cast<int>(opt_size(*synthetic, "classes", 2));
  spec.seed = opt_size(*synthetic, "seed", 1);
  return dataset_cache_.load_synthetic(spec);
}

JsonValue SearchService::op_submit(const JsonValue& request) {
  std::shared_ptr<const Dataset> data = load_dataset(request);

  AutoMLOptions options;
  options.time_budget_seconds = opt_number(request, "budget_seconds", 5.0);
  options.metric = opt_string(request, "metric", "");
  options.max_iterations = opt_size(request, "max_iterations", 0);
  options.seed = opt_size(request, "seed", 1);
  if (const JsonValue* estimators = opt(request, "estimators")) {
    FLAML_REQUIRE(estimators->is_array(),
                  "field 'estimators' must be an array of names");
    for (const JsonValue& name : estimators->array) {
      FLAML_REQUIRE(name.is_string(), "estimator names must be strings");
      options.estimator_list.push_back(name.str);
    }
  }

  JobOptions job_options;
  job_options.name = opt_string(request, "name", "");
  job_options.priority =
      static_cast<int>(opt_number(request, "priority", 0.0));
  job_options.quantum_trials = opt_size(request, "quantum_trials", 8);
  job_options.deadline_seconds = opt_number(request, "deadline_seconds", 0.0);

  std::vector<LearnerPtr> extra_learners;
  if (customize_) customize_(options, extra_learners);

  const std::uint64_t id = daemon_->submit(std::move(data), std::move(options),
                                           std::move(job_options),
                                           std::move(extra_learners));
  JsonValue out = ok_response();
  out.set("id", resume::json_size(static_cast<std::size_t>(id)));
  return out;
}

}  // namespace flaml::server
