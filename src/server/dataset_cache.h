// Bounded, content-aware dataset cache for the wire services.
//
// The search service caches datasets so N jobs over the same data share one
// immutable Dataset. The original cache keyed CSV entries by path|task|label
// only — a file edited between two submits kept serving the FIRST parse
// forever — and grew without bound. This cache fixes both:
//
//   * CSV entries are validated against a content fingerprint (byte count +
//     FNV-1a 64 over the file bytes, read fresh on every lookup). A changed
//     file yields a reparse that REPLACES the stale entry in place; an
//     unchanged file is still parsed only once.
//   * The cache holds at most `max_entries` datasets, evicted least
//     recently used, so a long-running daemon fed many distinct files (or
//     synthetic specs) cannot grow its resident set without bound.
//
// Thread-safe: lookups take one internal mutex (file I/O and parsing happen
// outside it only in the sense that concurrent misses may parse twice; the
// last one wins — acceptable for immutable values).
#pragma once

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "data/dataset.h"
#include "data/generators.h"

namespace flaml::server {

class DatasetCache {
 public:
  explicit DatasetCache(std::size_t max_entries = 16);

  // CSV-backed dataset for (path, task, label). Reads the file bytes on
  // every call; reparses only when the content fingerprint changed.
  // Propagates read_csv's InvalidArgument on unreadable/malformed files.
  std::shared_ptr<const Dataset> load_csv(const std::string& path, Task task,
                                          const std::string& label_column);

  // Synthetic dataset keyed by the full spec (a spec IS its content).
  std::shared_ptr<const Dataset> load_synthetic(const SyntheticSpec& spec);

  std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;  // CSV: content hash; synthetic: 0
    std::shared_ptr<const Dataset> data;
    std::list<std::string>::iterator lru_pos;
  };

  // Both require mutex_ held.
  void touch_locked(Entry& entry, const std::string& key);
  std::shared_ptr<const Dataset> insert_locked(const std::string& key,
                                               std::uint64_t fingerprint,
                                               std::shared_ptr<const Dataset> data);

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
};

}  // namespace flaml::server
