#include "server/daemon.h"

#include <utility>

#include "automl/trial_runner.h"
#include "common/error.h"
#include "resume/serial_util.h"

namespace flaml::server {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Preempted: return "preempted";
    case JobState::Finished: return "finished";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "unknown";
}

namespace {

bool terminal_state(JobState state) {
  return state == JobState::Finished || state == JobState::Cancelled ||
         state == JobState::Failed;
}

}  // namespace

SearchDaemon::SearchDaemon(Options options) : options_(options) {
  FLAML_REQUIRE(options_.slots > 0, "daemon needs at least one slot");
  pool_ = std::make_unique<ThreadPool>(options_.slots);
}

SearchDaemon::~SearchDaemon() { shutdown(); }

std::uint64_t SearchDaemon::submit(std::shared_ptr<const Dataset> data,
                                   AutoMLOptions automl_options,
                                   JobOptions job_options,
                                   std::vector<LearnerPtr> extra_learners) {
  FLAML_REQUIRE(data != nullptr, "submit() needs a dataset");
  std::lock_guard<std::mutex> lock(mutex_);
  FLAML_REQUIRE(!shutdown_, "submit() on a daemon that is shutting down");
  const std::uint64_t id = next_id_++;
  Job& job = jobs_[id];
  job.id = id;
  job.job_options = std::move(job_options);
  if (job.job_options.name.empty()) {
    job.job_options.name = "job-" + std::to_string(id);
  }
  job.data = std::move(data);
  job.trace = std::make_shared<RingTraceSink>(options_.trace_capacity);
  automl_options.trace_sink = job.trace;
  automl_options.search_control = nullptr;  // run_segment installs its own
  job.search = std::make_unique<SearchJob>(*job.data, std::move(automl_options),
                                           std::move(extra_learners));
  job.submitted_at = clock_.now();
  schedule_locked();
  return id;
}

bool SearchDaemon::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr || terminal_state(job->state)) return false;
  if (job->state == JobState::Running) {
    // Delivered at the next trial boundary by control_poll (or, when the
    // segment is already past its last boundary, applied when it lands).
    job->signal = SearchSignal::Cancel;
    return true;
  }
  job->state = JobState::Cancelled;
  if (job->reason.empty()) job->reason = "cancelled";
  terminal_cv_.notify_all();
  return true;
}

bool SearchDaemon::preempt(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr || job->state != JobState::Running) return false;
  if (job->signal == SearchSignal::Run) job->signal = SearchSignal::Preempt;
  return true;
}

JobState SearchDaemon::state(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  FLAML_REQUIRE(job != nullptr, "unknown job id " << id);
  return job->state;
}

JsonValue SearchDaemon::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  FLAML_REQUIRE(job != nullptr, "unknown job id " << id);
  return status_locked(*job);
}

JsonValue SearchDaemon::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::make_array();
  for (const auto& [id, job] : jobs_) out.push(status_locked(job));
  return out;
}

JsonValue SearchDaemon::result(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  FLAML_REQUIRE(job != nullptr, "unknown job id " << id);
  FLAML_REQUIRE(job->state == JobState::Finished,
                "result() on job " << id << " in state '"
                                   << job_state_name(job->state) << "'");
  const AutoML& automl = job->search->automl();
  JsonValue out = JsonValue::make_object();
  out.set("id", resume::json_size(static_cast<std::size_t>(id)));
  out.set("best_learner", JsonValue::make_string(automl.best_learner()));
  out.set("best_config", resume::json_config(automl.best_config()));
  out.set("best_error", resume::json_double(automl.best_error()));
  out.set("best_sample_size", resume::json_size(automl.best_sample_size()));
  out.set("n_trials", resume::json_size(automl.history().size()));
  out.set("resampling",
          JsonValue::make_string(resampling_name(automl.resampling_used())));
  return out;
}

RingTraceSink::Window SearchDaemon::events(std::uint64_t id,
                                           std::uint64_t since) const {
  std::shared_ptr<RingTraceSink> trace;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Job* job = find_locked(id);
    FLAML_REQUIRE(job != nullptr, "unknown job id " << id);
    trace = job->trace;
  }
  return trace->since(since);
}

void SearchDaemon::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  FLAML_REQUIRE(find_locked(id) != nullptr, "unknown job id " << id);
  terminal_cv_.wait(lock, [&] {
    const Job* job = find_locked(id);
    return job == nullptr || terminal_state(job->state);
  });
}

void SearchDaemon::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_) {
      if (!terminal_state(job.state)) return false;
    }
    return true;
  });
}

void SearchDaemon::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!shutdown_) {
      shutdown_ = true;
      for (auto& [id, job] : jobs_) {
        if (terminal_state(job.state)) continue;
        if (job.state == JobState::Running) {
          job.signal = SearchSignal::Cancel;
        } else {
          job.state = JobState::Cancelled;
          if (job.reason.empty()) job.reason = "daemon shutdown";
        }
      }
      terminal_cv_.notify_all();
    }
    // Running segments stop at their next trial boundary (control_poll sees
    // the Cancel signal); wait for the last one to land before joining the
    // pool so no segment task is left holding a dangling daemon pointer.
    terminal_cv_.wait(lock, [&] { return running_ == 0; });
  }
  pool_->shutdown();
}

const AutoML& SearchDaemon::automl(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  FLAML_REQUIRE(job != nullptr, "unknown job id " << id);
  FLAML_REQUIRE(terminal_state(job->state),
                "automl() on job " << id << " in non-terminal state '"
                                   << job_state_name(job->state) << "'");
  return job->search->automl();
}

SearchDaemon::Job* SearchDaemon::find_locked(std::uint64_t id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const SearchDaemon::Job* SearchDaemon::find_locked(std::uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

bool SearchDaemon::runnable_locked(const Job& job) const {
  return job.state == JobState::Queued || job.state == JobState::Preempted;
}

bool SearchDaemon::peer_waiting_locked(int priority) const {
  for (const auto& [id, job] : jobs_) {
    if (runnable_locked(job) && job.job_options.priority >= priority) {
      return true;
    }
  }
  return false;
}

void SearchDaemon::schedule_locked() {
  if (shutdown_) return;
  // Fill free slots: best runnable job first — priority desc, then least
  // recently scheduled (round-robin within a level), then id asc (the
  // std::map iterates ids ascending, so the strictly-better scan keeps
  // submission order among never-scheduled jobs).
  while (running_ < options_.slots) {
    Job* best = nullptr;
    for (auto& [id, job] : jobs_) {
      if (!runnable_locked(job)) continue;
      if (best == nullptr ||
          job.job_options.priority > best->job_options.priority ||
          (job.job_options.priority == best->job_options.priority &&
           job.last_scheduled < best->last_scheduled)) {
        best = &job;
      }
    }
    if (best == nullptr) break;
    const double deadline = best->job_options.deadline_seconds;
    if (deadline > 0.0 && clock_.now() - best->submitted_at >= deadline) {
      best->state = JobState::Cancelled;
      best->reason = "deadline exceeded";
      terminal_cv_.notify_all();
      continue;
    }
    start_segment_locked(*best);
  }
  // All slots busy: a strictly higher-priority waiter evicts the weakest
  // running job (its checkpoint requeues it for when a slot frees).
  int top_waiting = 0;
  bool any_waiting = false;
  for (const auto& [id, job] : jobs_) {
    if (!runnable_locked(job)) continue;
    if (!any_waiting || job.job_options.priority > top_waiting) {
      top_waiting = job.job_options.priority;
      any_waiting = true;
    }
  }
  if (!any_waiting) return;
  Job* victim = nullptr;
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::Running || job.signal != SearchSignal::Run) {
      continue;
    }
    if (victim == nullptr ||
        job.job_options.priority < victim->job_options.priority) {
      victim = &job;
    }
  }
  if (victim != nullptr && top_waiting > victim->job_options.priority) {
    victim->signal = SearchSignal::Preempt;
  }
}

void SearchDaemon::start_segment_locked(Job& job) {
  job.state = JobState::Running;
  job.signal = SearchSignal::Run;
  job.segment_start_trials = job.trials;
  job.last_scheduled = ++schedule_seq_;
  ++running_;
  // `jobs_` is a std::map — node addresses are stable, so the task may hold
  // the Job reference across the whole segment. shutdown() keeps `this`
  // alive until running_ drops to zero.
  auto submitted = pool_->try_submit([this, &job] { run_segment_task(job); });
  if (!submitted.has_value()) {
    // Only reachable when the pool is stopping, i.e. mid-shutdown.
    --running_;
    job.state = JobState::Cancelled;
    job.reason = "daemon shutdown";
    terminal_cv_.notify_all();
  }
}

JsonValue SearchDaemon::status_locked(const Job& job) const {
  JsonValue out = JsonValue::make_object();
  out.set("id", resume::json_size(static_cast<std::size_t>(job.id)));
  out.set("name", JsonValue::make_string(job.job_options.name));
  out.set("state", JsonValue::make_string(job_state_name(job.state)));
  out.set("priority", JsonValue::make_number(job.job_options.priority));
  out.set("trials", resume::json_size(job.trials));
  out.set("best_error", resume::json_double(job.best_error));
  out.set("best_learner", JsonValue::make_string(job.best_learner));
  out.set("segments", resume::json_size(job.segments));
  out.set("preemptions", resume::json_size(job.preemptions));
  out.set("trace_events", resume::json_size(
                              static_cast<std::size_t>(job.trace->total())));
  if (!job.reason.empty()) {
    out.set("reason", JsonValue::make_string(job.reason));
  }
  return out;
}

void SearchDaemon::snapshot_progress_locked(Job& job) {
  const AutoML& automl = job.search->automl();
  job.best_error = automl.best_error();
  job.best_learner = automl.best_learner();
  job.segments = job.search->segments();
}

SearchSignal SearchDaemon::control_poll(Job& job, std::size_t iteration) {
  std::lock_guard<std::mutex> lock(mutex_);
  job.trials = iteration;
  snapshot_progress_locked(job);
  // Severity order Cancel > Preempt > Run; the test hook (every-boundary
  // preemption sweeps) composes with the scheduler's own signal.
  SearchSignal signal = job.signal;
  if (signal != SearchSignal::Cancel) {
    const double deadline = job.job_options.deadline_seconds;
    if (deadline > 0.0 && clock_.now() - job.submitted_at >= deadline) {
      signal = SearchSignal::Cancel;
      job.reason = "deadline exceeded";
    }
  }
  if (signal == SearchSignal::Run) {
    const std::size_t quantum = job.job_options.quantum_trials;
    if (quantum > 0 && iteration >= job.segment_start_trials + quantum &&
        peer_waiting_locked(job.job_options.priority)) {
      signal = SearchSignal::Preempt;
    }
  }
  if (signal != SearchSignal::Cancel && job.job_options.test_control) {
    const SearchSignal test = job.job_options.test_control(iteration);
    if (test == SearchSignal::Cancel ||
        (test == SearchSignal::Preempt && signal == SearchSignal::Run)) {
      signal = test;
    }
  }
  return signal;
}

void SearchDaemon::run_segment_task(Job& job) {
  const auto control = [this, &job](std::size_t iteration) {
    return control_poll(job, iteration);
  };
  SearchJob::State outcome = SearchJob::State::Failed;
  std::string crash;
  try {
    outcome = job.search->run_segment(control);
  } catch (const std::exception& e) {
    // run_segment only throws on contract violations (terminal job) —
    // never expected here, but a worker must not die with it.
    crash = e.what();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_progress_locked(job);
  switch (outcome) {
    case SearchJob::State::Finished:
      job.trials = job.search->automl().history().size();
      job.state = JobState::Finished;
      break;
    case SearchJob::State::Preempted:
      if (job.signal == SearchSignal::Cancel) {
        // A cancel landed after the boundary had already answered Preempt;
        // honor it instead of requeueing.
        job.state = JobState::Cancelled;
        if (job.reason.empty()) job.reason = "cancelled";
      } else {
        job.state = JobState::Preempted;
        ++job.preemptions;
      }
      break;
    case SearchJob::State::Cancelled:
      job.state = JobState::Cancelled;
      if (job.reason.empty()) job.reason = "cancelled";
      break;
    case SearchJob::State::Failed:
      job.state = JobState::Failed;
      job.reason = crash.empty() ? job.search->error() : crash;
      break;
    case SearchJob::State::Fresh:
      job.state = JobState::Failed;
      job.reason = "segment ended in an impossible state";
      break;
  }
  job.signal = SearchSignal::Run;
  --running_;
  terminal_cv_.notify_all();
  schedule_locked();
}

}  // namespace flaml::server
