// Random forest and extremely-randomized trees.
//
// Classification trees are grown with the impurity criterion of Table 5
// ({gini, entropy}) and predict by averaging per-leaf class distributions;
// regression trees reuse the gradient grower (variance-reduction splits,
// mean-target leaves) and predict by averaging leaf values. Random forest
// bootstraps rows per tree; extra trees uses the full sample with one
// random threshold per candidate feature.
#pragma once

#include <iosfwd>
#include <vector>

#include "common/progress.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "metrics/error_metric.h"
#include "tree/class_grower.h"
#include "tree/tree.h"

namespace flaml {

struct ForestParams {
  int n_trees = 100;
  // Fraction of features considered at each split.
  double max_features = 1.0;
  SplitCriterion criterion = SplitCriterion::Gini;
  // Extra-trees mode: no bootstrap, random thresholds.
  bool extra_trees = false;
  int max_leaves = 256;
  int min_samples_leaf = 1;
  int max_bin = 255;
  // Wall-clock training budget in seconds (0 = unlimited). When
  // fail_on_deadline, crossing it throws DeadlineExceeded; otherwise stops
  // after the offending tree, keeping at least one tree.
  double max_seconds = 0.0;
  bool fail_on_deadline = false;
  std::uint64_t seed = 0;
  // Trees trained concurrently on the shared_pool(). Each tree draws from
  // its own pre-derived rng stream, so any n_threads yields the identical
  // forest (deadline-limited runs excepted: wall-clock cutoffs are
  // inherently schedule-dependent).
  int n_threads = 1;
  // Optional prebuilt fit+encode of exactly the training rows at max_bin
  // (tree/binning.h). Null return or a rows/max_bin mismatch falls back to
  // a fresh fit; either way the model is byte-identical.
  SubstrateProvider substrate;
  // Streamed learning-curve observer (common/progress.h). When set, trees
  // are trained in fixed-size chunks (size independent of n_threads, so the
  // streamed curve is thread-count-invariant) and after each chunk the
  // callback receives the validation loss of the forest so far
  // (classification: misclassification rate of the averaged+smoothed
  // distributions; regression: MSE of the averaged predictions). Requires
  // `valid`. Returning false throws TrialRaced. Pure observation: the
  // per-tree rng streams are pre-split, so a callback that always returns
  // true leaves the forest byte-identical.
  const DataView* valid = nullptr;
  ProgressCallback progress;
  // Optional out-param filled with trees built / planned and the stop
  // reason — valid even when the fit exits by throwing.
  TrainReport* report = nullptr;
};

class ForestModel {
 public:
  ForestModel() = default;
  ForestModel(Task task, int n_classes) : task_(task), n_classes_(n_classes) {}

  Task task() const { return task_; }
  int n_classes() const { return n_classes_; }
  std::size_t n_trees() const { return trees_.size(); }
  const Tree& tree(std::size_t i) const { return trees_[i]; }
  void add_tree(Tree tree) { trees_.push_back(std::move(tree)); }

  // Row-sharded over n_threads; per-row accumulation stays in tree order,
  // so any thread count gives bit-identical predictions.
  Predictions predict(const DataView& view, int n_threads = 1) const;

  // Text serialization (round-trips via load()).
  void save(std::ostream& out) const;
  static ForestModel load(std::istream& in);

  // Gain-based feature importance (total split gain per feature).
  std::vector<double> feature_importance(std::size_t n_features) const;

 private:
  Task task_ = Task::Regression;
  int n_classes_ = 0;
  std::vector<Tree> trees_;
};

ForestModel train_forest(const DataView& train, const ForestParams& params);

}  // namespace flaml
