#include "forest/forest.h"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "tree/grower.h"
#include "tree/tree_io.h"

namespace flaml {

Predictions ForestModel::predict(const DataView& view, int n_threads) const {
  FLAML_REQUIRE(!trees_.empty(), "predict on an untrained forest");
  const std::size_t n = view.n_rows();
  const Dataset& data = view.data();
  ThreadPool* pool = n_threads > 1 ? &shared_pool() : nullptr;
  Predictions out;
  out.task = task_;
  // Rows are sharded across threads; within a shard every row accumulates
  // its trees in tree order, so the float sums match the serial path bit
  // for bit.
  if (is_classification(task_)) {
    out.n_classes = n_classes_;
    out.values.assign(n * static_cast<std::size_t>(n_classes_), 0.0);
    sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
      for (const Tree& tree : trees_) {
        const auto& dists = tree.leaf_distributions();
        for (std::size_t i = begin; i < end; ++i) {
          std::int32_t leaf = tree.leaf_index(data, view.row_index(i));
          const auto& dist = dists[static_cast<std::size_t>(leaf)];
          FLAML_CHECK(!dist.empty());
          for (int c = 0; c < n_classes_; ++c) {
            out.values[i * static_cast<std::size_t>(n_classes_) +
                       static_cast<std::size_t>(c)] += dist[static_cast<std::size_t>(c)];
          }
        }
      }
    });
    const double inv = 1.0 / static_cast<double>(trees_.size());
    for (double& v : out.values) v *= inv;
    // Smooth toward uniform so no class has exactly zero probability (a
    // handful of trees would otherwise produce 0s that blow up log-loss).
    const double eps = 1e-3;
    const double uniform = 1.0 / static_cast<double>(n_classes_);
    for (double& v : out.values) v = (1.0 - eps) * v + eps * uniform;
  } else {
    out.n_classes = 0;
    out.values.assign(n, 0.0);
    sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
      for (const Tree& tree : trees_) {
        for (std::size_t i = begin; i < end; ++i) {
          out.values[i] += tree.predict_row(data, view.row_index(i));
        }
      }
    });
    const double inv = 1.0 / static_cast<double>(trees_.size());
    for (double& v : out.values) v *= inv;
  }
  return out;
}

std::vector<double> ForestModel::feature_importance(std::size_t n_features) const {
  std::vector<double> gains(n_features, 0.0);
  for (const Tree& tree : trees_) tree.add_feature_gains(gains);
  return gains;
}

void ForestModel::save(std::ostream& out) const {
  out << "forest v1\n";
  out << static_cast<int>(task_) << ' ' << n_classes_ << ' ' << trees_.size() << '\n';
  out.precision(17);
  for (const Tree& tree : trees_) write_tree(out, tree);
}

ForestModel ForestModel::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  FLAML_REQUIRE(magic == "forest" && version == "v1", "bad forest model header");
  int task_int = 0, n_classes = 0;
  std::size_t n_trees = 0;
  in >> task_int >> n_classes >> n_trees;
  FLAML_REQUIRE(in.good() && n_trees >= 1, "truncated forest model");
  // Untrusted input: validate the enum and cap the counts before allocating.
  FLAML_REQUIRE(task_int >= 0 && task_int <= 2,
                "corrupt forest model: unknown task " << task_int);
  FLAML_REQUIRE(n_classes >= 0 && n_classes <= 1'000'000,
                "corrupt forest model: class count " << n_classes);
  FLAML_REQUIRE(n_trees <= 10'000'000,
                "corrupt forest model: oversized tree count " << n_trees);
  ForestModel model(static_cast<Task>(task_int), n_classes);
  for (std::size_t t = 0; t < n_trees; ++t) model.add_tree(read_tree(in));
  return model;
}

namespace {
// Chunk size for streamed (racing) forest training. A constant independent
// of n_threads, so the streamed learning curve — and any racing kill point —
// is identical at every thread count.
constexpr int kForestStreamChunk = 8;
}  // namespace

ForestModel train_forest(const DataView& train, const ForestParams& params) {
  FLAML_REQUIRE(train.n_rows() >= 2, "forest needs at least 2 training rows");
  FLAML_REQUIRE(params.n_trees >= 1, "n_trees must be >= 1");
  const bool stream = static_cast<bool>(params.progress);
  FLAML_REQUIRE(!stream || params.valid != nullptr,
                "streamed progress requires a validation view");
  const Dataset& dataset = train.data();
  const Task task = dataset.task();
  const std::size_t n = train.n_rows();
  Rng rng(params.seed == 0 ? 0xf0e57ULL : params.seed);
  WallClock clock;

  TrainReport local_report;
  TrainReport& report = params.report != nullptr ? *params.report : local_report;
  report = TrainReport{};
  report.iterations_planned = params.n_trees;
  auto out_of_time = [&](int built) {
    if (params.max_seconds <= 0.0 || clock.now() <= params.max_seconds) return false;
    if (params.fail_on_deadline) {
      throw DeadlineExceeded("forest fit exceeded its deadline");
    }
    return built >= 1;
  };

  // Shared cross-trial substrate when available for exactly these rows at
  // this max_bin; otherwise fit fresh. Byte-identical either way.
  std::shared_ptr<const BinnedSubstrate> shared =
      params.substrate ? params.substrate(params.max_bin) : nullptr;
  if (shared != nullptr && (shared->max_bin != params.max_bin ||
                            shared->binned.n_rows() != train.n_rows())) {
    shared = nullptr;
  }
  BinnedSubstrate local;
  if (shared == nullptr) local = build_substrate(train, params.max_bin);
  const BinMapper& mapper = shared ? shared->mapper : local.mapper;
  const BinnedMatrix& binned = shared ? shared->binned : local.binned;
  // The substrate's packed row-major layout (empty when the scalar kernel
  // is forced; growers then pack locally or fall back to columns).
  const PackedBins& packed = shared ? shared->packed : local.packed;
  const PackedBins* packed_ptr = packed.empty() ? nullptr : &packed;

  ForestModel model(task, dataset.n_classes());

  // Each tree gets its own rng stream, derived serially up front, so tree t
  // draws the same bootstrap sample and split randomness whether trees are
  // trained one by one or concurrently.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(static_cast<std::size_t>(params.n_trees));
  for (int t = 0; t < params.n_trees; ++t) tree_rngs.push_back(rng.split());

  std::vector<Tree> trees(static_cast<std::size_t>(params.n_trees));
  std::vector<char> built(static_cast<std::size_t>(params.n_trees), 0);
  ThreadPool* pool = params.n_threads > 1 ? &shared_pool() : nullptr;
  auto run_range = [&](int begin, int end, const std::function<void(int)>& build_tree) {
    const std::size_t count = static_cast<std::size_t>(end - begin);
    if (pool != nullptr && count > 1) {
      pool->parallel_for(count, static_cast<std::size_t>(params.n_threads),
                         [&](std::size_t i) { build_tree(begin + static_cast<int>(i)); });
    } else {
      for (int t = begin; t < end; ++t) build_tree(t);
    }
  };

  // Streaming state: validation prediction sums accumulated over the scored
  // contiguous tree prefix, updated serially in tree order between chunks
  // (deterministic at every thread count; the valid set never feeds back
  // into training).
  const int n_classes = dataset.n_classes();
  const std::size_t n_valid = stream ? params.valid->n_rows() : 0;
  std::vector<double> valid_sums;
  std::vector<double> valid_labels;
  if (stream) {
    valid_sums.assign(is_classification(task)
                          ? n_valid * static_cast<std::size_t>(n_classes)
                          : n_valid,
                      0.0);
    valid_labels = params.valid->labels();
  }
  auto add_valid_scores = [&](int t) {
    const Tree& tree = trees[static_cast<std::size_t>(t)];
    const Dataset& vdata = params.valid->data();
    if (is_classification(task)) {
      const auto& dists = tree.leaf_distributions();
      for (std::size_t i = 0; i < n_valid; ++i) {
        std::int32_t leaf = tree.leaf_index(vdata, params.valid->row_index(i));
        const auto& dist = dists[static_cast<std::size_t>(leaf)];
        for (int c = 0; c < n_classes; ++c) {
          valid_sums[i * static_cast<std::size_t>(n_classes) +
                     static_cast<std::size_t>(c)] += dist[static_cast<std::size_t>(c)];
        }
      }
    } else {
      for (std::size_t i = 0; i < n_valid; ++i) {
        valid_sums[i] += tree.predict_row(vdata, params.valid->row_index(i));
      }
    }
  };
  auto valid_loss_now = [&](int n_built) -> double {
    if (is_classification(task)) {
      // Misclassification rate of the argmax (ties -> lowest class index);
      // the averaging + smoothing of predict() is monotone per row, so the
      // raw sums give the same argmax.
      std::size_t wrong = 0;
      for (std::size_t i = 0; i < n_valid; ++i) {
        int best_c = 0;
        double best_v = valid_sums[i * static_cast<std::size_t>(n_classes)];
        for (int c = 1; c < n_classes; ++c) {
          const double v = valid_sums[i * static_cast<std::size_t>(n_classes) +
                                      static_cast<std::size_t>(c)];
          if (v > best_v) {
            best_v = v;
            best_c = c;
          }
        }
        if (best_c != static_cast<int>(valid_labels[i])) ++wrong;
      }
      return n_valid == 0 ? 0.0
                          : static_cast<double>(wrong) / static_cast<double>(n_valid);
    }
    const double inv = 1.0 / static_cast<double>(n_built);
    double sq = 0.0;
    for (std::size_t i = 0; i < n_valid; ++i) {
      const double d = valid_sums[i] * inv - valid_labels[i];
      sq += d * d;
    }
    return n_valid == 0 ? 0.0 : sq / static_cast<double>(n_valid);
  };

  auto train_trees = [&](const std::function<void(int)>& build_tree) {
    // build_tree checks the deadline itself (so parallel workers stop too)
    // and leaves built[t] == 0 when it runs out of time.
    if (!stream) {
      run_range(0, params.n_trees, build_tree);
      return;
    }
    // Streamed: fixed-size chunks with a barrier per chunk; after each the
    // callback sees the loss of the contiguous built prefix. The per-tree
    // rng streams are pre-split, so chunking cannot change any tree.
    int scored = 0;
    for (int c0 = 0; c0 < params.n_trees; c0 += kForestStreamChunk) {
      const int c1 = std::min(c0 + kForestStreamChunk, params.n_trees);
      run_range(c0, c1, build_tree);
      int prefix = scored;
      while (prefix < c1 && built[static_cast<std::size_t>(prefix)] != 0) ++prefix;
      for (int t = scored; t < prefix; ++t) add_valid_scores(t);
      scored = prefix;
      report.iterations_completed = scored;
      if (scored > 0) {
        TrainProgress point;
        point.iteration = scored;
        point.planned = params.n_trees;
        point.valid_loss = valid_loss_now(scored);
        if (!params.progress(point)) {
          report.stopped_by = TrainStop::Raced;
          throw TrialRaced("forest fit raced at tree " + std::to_string(scored));
        }
      }
      if (prefix < c1) break;  // deadline skipped a tree: keep the prefix
    }
  };
  auto sample_rows = [&](Rng& tree_rng) {
    std::vector<std::uint32_t> rows(n);
    if (params.extra_trees) {
      std::iota(rows.begin(), rows.end(), 0u);
    } else {
      for (auto& r : rows) r = static_cast<std::uint32_t>(tree_rng.uniform_index(n));
    }
    return rows;
  };

  const bool weighted = dataset.has_weights();
  if (is_classification(task)) {
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(train.label(i));
    std::vector<double> weights = weighted ? train.weights() : std::vector<double>{};
    ClassTreeGrower grower(mapper, binned, dataset.n_classes(), packed_ptr);
    ClassGrowerParams gp;
    gp.max_leaves = params.max_leaves;
    gp.min_samples_leaf = params.min_samples_leaf;
    gp.max_features = params.max_features;
    gp.criterion = params.criterion;
    gp.extra_random = params.extra_trees;
    gp.n_threads = params.n_threads;
    train_trees([&](int t) {
      if (out_of_time(t)) return;
      Rng& tree_rng = tree_rngs[static_cast<std::size_t>(t)];
      std::vector<std::uint32_t> rows = sample_rows(tree_rng);
      trees[static_cast<std::size_t>(t)] =
          grower.grow(rows, labels, weights, gp, tree_rng);
      built[static_cast<std::size_t>(t)] = 1;
    });
  } else {
    // Regression: gradient grower with grad = -w·y, hess = w makes splits
    // maximize (weighted) variance reduction and leaves predict the
    // weighted target mean.
    std::vector<double> grad(n), hess(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      double w = weighted ? train.weight(i) : 1.0;
      grad[i] = -w * train.label(i);
      hess[i] = w;
    }
    GradientTreeGrower grower(mapper, binned, packed_ptr);
    GrowerParams gp;
    gp.max_leaves = params.max_leaves;
    gp.min_samples_leaf = std::max(1, params.min_samples_leaf);
    gp.min_child_weight = 0.0;
    gp.reg_lambda = 1e-9;
    gp.reg_alpha = 0.0;
    gp.colsample_bylevel = params.max_features;
    gp.n_threads = params.n_threads;
    std::vector<int> features(dataset.n_cols());
    std::iota(features.begin(), features.end(), 0);
    train_trees([&](int t) {
      if (out_of_time(t)) return;
      Rng& tree_rng = tree_rngs[static_cast<std::size_t>(t)];
      std::vector<std::uint32_t> rows = sample_rows(tree_rng);
      trees[static_cast<std::size_t>(t)] =
          grower.grow(rows, grad, hess, features, gp, tree_rng);
      built[static_cast<std::size_t>(t)] = 1;
    });
  }
  // Keep the contiguous prefix of finished trees: a deadline skip at tree t
  // invalidates everything after it (those trees may be half a schedule
  // ahead), matching the serial early-break semantics.
  for (int t = 0; t < params.n_trees; ++t) {
    if (!built[static_cast<std::size_t>(t)]) break;
    model.add_tree(std::move(trees[static_cast<std::size_t>(t)]));
  }
  report.iterations_completed = static_cast<int>(model.n_trees());
  if (report.iterations_completed < params.n_trees &&
      report.stopped_by == TrainStop::Completed) {
    report.stopped_by = TrainStop::Deadline;  // safety-cap partial model
  }
  return model;
}

}  // namespace flaml
