#include "forest/forest.h"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/clock.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "tree/grower.h"
#include "tree/tree_io.h"

namespace flaml {

Predictions ForestModel::predict(const DataView& view, int n_threads) const {
  FLAML_REQUIRE(!trees_.empty(), "predict on an untrained forest");
  const std::size_t n = view.n_rows();
  const Dataset& data = view.data();
  ThreadPool* pool = n_threads > 1 ? &shared_pool() : nullptr;
  Predictions out;
  out.task = task_;
  // Rows are sharded across threads; within a shard every row accumulates
  // its trees in tree order, so the float sums match the serial path bit
  // for bit.
  if (is_classification(task_)) {
    out.n_classes = n_classes_;
    out.values.assign(n * static_cast<std::size_t>(n_classes_), 0.0);
    sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
      for (const Tree& tree : trees_) {
        const auto& dists = tree.leaf_distributions();
        for (std::size_t i = begin; i < end; ++i) {
          std::int32_t leaf = tree.leaf_index(data, view.row_index(i));
          const auto& dist = dists[static_cast<std::size_t>(leaf)];
          FLAML_CHECK(!dist.empty());
          for (int c = 0; c < n_classes_; ++c) {
            out.values[i * static_cast<std::size_t>(n_classes_) +
                       static_cast<std::size_t>(c)] += dist[static_cast<std::size_t>(c)];
          }
        }
      }
    });
    const double inv = 1.0 / static_cast<double>(trees_.size());
    for (double& v : out.values) v *= inv;
    // Smooth toward uniform so no class has exactly zero probability (a
    // handful of trees would otherwise produce 0s that blow up log-loss).
    const double eps = 1e-3;
    const double uniform = 1.0 / static_cast<double>(n_classes_);
    for (double& v : out.values) v = (1.0 - eps) * v + eps * uniform;
  } else {
    out.n_classes = 0;
    out.values.assign(n, 0.0);
    sharded_for(pool, n_threads, n, [&](std::size_t begin, std::size_t end) {
      for (const Tree& tree : trees_) {
        for (std::size_t i = begin; i < end; ++i) {
          out.values[i] += tree.predict_row(data, view.row_index(i));
        }
      }
    });
    const double inv = 1.0 / static_cast<double>(trees_.size());
    for (double& v : out.values) v *= inv;
  }
  return out;
}

std::vector<double> ForestModel::feature_importance(std::size_t n_features) const {
  std::vector<double> gains(n_features, 0.0);
  for (const Tree& tree : trees_) tree.add_feature_gains(gains);
  return gains;
}

void ForestModel::save(std::ostream& out) const {
  out << "forest v1\n";
  out << static_cast<int>(task_) << ' ' << n_classes_ << ' ' << trees_.size() << '\n';
  out.precision(17);
  for (const Tree& tree : trees_) write_tree(out, tree);
}

ForestModel ForestModel::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  FLAML_REQUIRE(magic == "forest" && version == "v1", "bad forest model header");
  int task_int = 0, n_classes = 0;
  std::size_t n_trees = 0;
  in >> task_int >> n_classes >> n_trees;
  FLAML_REQUIRE(in.good() && n_trees >= 1, "truncated forest model");
  // Untrusted input: validate the enum and cap the counts before allocating.
  FLAML_REQUIRE(task_int >= 0 && task_int <= 2,
                "corrupt forest model: unknown task " << task_int);
  FLAML_REQUIRE(n_classes >= 0 && n_classes <= 1'000'000,
                "corrupt forest model: class count " << n_classes);
  FLAML_REQUIRE(n_trees <= 10'000'000,
                "corrupt forest model: oversized tree count " << n_trees);
  ForestModel model(static_cast<Task>(task_int), n_classes);
  for (std::size_t t = 0; t < n_trees; ++t) model.add_tree(read_tree(in));
  return model;
}

ForestModel train_forest(const DataView& train, const ForestParams& params) {
  FLAML_REQUIRE(train.n_rows() >= 2, "forest needs at least 2 training rows");
  FLAML_REQUIRE(params.n_trees >= 1, "n_trees must be >= 1");
  const Dataset& dataset = train.data();
  const Task task = dataset.task();
  const std::size_t n = train.n_rows();
  Rng rng(params.seed == 0 ? 0xf0e57ULL : params.seed);
  WallClock clock;
  auto out_of_time = [&](int built) {
    if (params.max_seconds <= 0.0 || clock.now() <= params.max_seconds) return false;
    if (params.fail_on_deadline) {
      throw DeadlineExceeded("forest fit exceeded its deadline");
    }
    return built >= 1;
  };

  // Shared cross-trial substrate when available for exactly these rows at
  // this max_bin; otherwise fit fresh. Byte-identical either way.
  std::shared_ptr<const BinnedSubstrate> shared =
      params.substrate ? params.substrate(params.max_bin) : nullptr;
  if (shared != nullptr && (shared->max_bin != params.max_bin ||
                            shared->binned.n_rows() != train.n_rows())) {
    shared = nullptr;
  }
  BinnedSubstrate local;
  if (shared == nullptr) local = build_substrate(train, params.max_bin);
  const BinMapper& mapper = shared ? shared->mapper : local.mapper;
  const BinnedMatrix& binned = shared ? shared->binned : local.binned;
  // The substrate's packed row-major layout (empty when the scalar kernel
  // is forced; growers then pack locally or fall back to columns).
  const PackedBins& packed = shared ? shared->packed : local.packed;
  const PackedBins* packed_ptr = packed.empty() ? nullptr : &packed;

  ForestModel model(task, dataset.n_classes());

  // Each tree gets its own rng stream, derived serially up front, so tree t
  // draws the same bootstrap sample and split randomness whether trees are
  // trained one by one or concurrently.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(static_cast<std::size_t>(params.n_trees));
  for (int t = 0; t < params.n_trees; ++t) tree_rngs.push_back(rng.split());

  std::vector<Tree> trees(static_cast<std::size_t>(params.n_trees));
  std::vector<char> built(static_cast<std::size_t>(params.n_trees), 0);
  ThreadPool* pool = params.n_threads > 1 ? &shared_pool() : nullptr;
  auto train_trees = [&](const std::function<void(int)>& build_tree) {
    // build_tree checks the deadline itself (so parallel workers stop too)
    // and leaves built[t] == 0 when it runs out of time.
    if (pool != nullptr && params.n_trees > 1) {
      pool->parallel_for(static_cast<std::size_t>(params.n_trees),
                         static_cast<std::size_t>(params.n_threads),
                         [&](std::size_t t) { build_tree(static_cast<int>(t)); });
    } else {
      for (int t = 0; t < params.n_trees; ++t) build_tree(t);
    }
  };
  auto sample_rows = [&](Rng& tree_rng) {
    std::vector<std::uint32_t> rows(n);
    if (params.extra_trees) {
      std::iota(rows.begin(), rows.end(), 0u);
    } else {
      for (auto& r : rows) r = static_cast<std::uint32_t>(tree_rng.uniform_index(n));
    }
    return rows;
  };

  const bool weighted = dataset.has_weights();
  if (is_classification(task)) {
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(train.label(i));
    std::vector<double> weights = weighted ? train.weights() : std::vector<double>{};
    ClassTreeGrower grower(mapper, binned, dataset.n_classes(), packed_ptr);
    ClassGrowerParams gp;
    gp.max_leaves = params.max_leaves;
    gp.min_samples_leaf = params.min_samples_leaf;
    gp.max_features = params.max_features;
    gp.criterion = params.criterion;
    gp.extra_random = params.extra_trees;
    gp.n_threads = params.n_threads;
    train_trees([&](int t) {
      if (out_of_time(t)) return;
      Rng& tree_rng = tree_rngs[static_cast<std::size_t>(t)];
      std::vector<std::uint32_t> rows = sample_rows(tree_rng);
      trees[static_cast<std::size_t>(t)] =
          grower.grow(rows, labels, weights, gp, tree_rng);
      built[static_cast<std::size_t>(t)] = 1;
    });
  } else {
    // Regression: gradient grower with grad = -w·y, hess = w makes splits
    // maximize (weighted) variance reduction and leaves predict the
    // weighted target mean.
    std::vector<double> grad(n), hess(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      double w = weighted ? train.weight(i) : 1.0;
      grad[i] = -w * train.label(i);
      hess[i] = w;
    }
    GradientTreeGrower grower(mapper, binned, packed_ptr);
    GrowerParams gp;
    gp.max_leaves = params.max_leaves;
    gp.min_samples_leaf = std::max(1, params.min_samples_leaf);
    gp.min_child_weight = 0.0;
    gp.reg_lambda = 1e-9;
    gp.reg_alpha = 0.0;
    gp.colsample_bylevel = params.max_features;
    gp.n_threads = params.n_threads;
    std::vector<int> features(dataset.n_cols());
    std::iota(features.begin(), features.end(), 0);
    train_trees([&](int t) {
      if (out_of_time(t)) return;
      Rng& tree_rng = tree_rngs[static_cast<std::size_t>(t)];
      std::vector<std::uint32_t> rows = sample_rows(tree_rng);
      trees[static_cast<std::size_t>(t)] =
          grower.grow(rows, grad, hess, features, gp, tree_rng);
      built[static_cast<std::size_t>(t)] = 1;
    });
  }
  // Keep the contiguous prefix of finished trees: a deadline skip at tree t
  // invalidates everything after it (those trees may be half a schedule
  // ahead), matching the serial early-break semantics.
  for (int t = 0; t < params.n_trees; ++t) {
    if (!built[static_cast<std::size_t>(t)]) break;
    model.add_tree(std::move(trees[static_cast<std::size_t>(t)]));
  }
  return model;
}

}  // namespace flaml
