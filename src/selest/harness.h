// The Table-4 selectivity-estimation benchmark harness.
//
// Each benchmark instance ("2D-Forest", "7D-Power", ...) is a table family
// + dimensionality; the harness generates the table, a labeled train/test
// query workload, runs an AutoML method (or the 'Manual' configuration —
// XGBoost-style with 16 trees × 16 leaves, the recommendation of Dutt et
// al.) on the train queries, and reports the 95th-percentile q-error of the
// predicted cardinalities on the held-out test queries.
#pragma once

#include <string>
#include <vector>

#include "automl/automl.h"
#include "automl/baselines.h"
#include "selest/workload.h"

namespace flaml::selest {

struct SelestInstance {
  std::string name;      // "2D-Forest" etc.
  TableFamily family = TableFamily::Forest;
  int n_dims = 2;
  std::size_t table_rows = 20000;
  std::size_t train_queries = 1500;
  std::size_t test_queries = 500;
  std::uint64_t seed = 1;
};

// The ten Table-4 instances.
std::vector<SelestInstance> table4_instances();

struct SelestData {
  Dataset train;  // log-cardinality regression over train queries
  Dataset test;
  std::vector<double> test_truth;  // true cardinalities of test queries
};

SelestData make_selest_data(const SelestInstance& instance);

struct SelestResult {
  double q95 = 0.0;           // 95th-percentile q-error on test queries
  double search_seconds = 0;  // total search time (Table 4 reports overruns)
};

// Run FLAML on the instance with the given budget.
SelestResult run_flaml(const SelestData& data, double budget_seconds,
                       std::uint64_t seed);
// Run a baseline driver.
SelestResult run_baseline(const SelestData& data, BaselineKind kind,
                          double budget_seconds, std::uint64_t seed);
// The 'Manual' configuration: XGBoost-style, 16 trees, 16 leaves.
SelestResult run_manual(const SelestData& data, std::uint64_t seed);

}  // namespace flaml::selest
