#include "selest/tables.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace flaml::selest {

const char* family_name(TableFamily family) {
  switch (family) {
    case TableFamily::Forest: return "Forest";
    case TableFamily::Power: return "Power";
    case TableFamily::Tpch: return "TPCH";
    case TableFamily::Higgs: return "Higgs";
    case TableFamily::Weather: return "Weather";
  }
  return "?";
}

namespace {

Table make_forest(std::size_t n, int d, Rng& rng) {
  // Correlated Gaussian clusters: k terrain types, each with its own center
  // and per-dimension spread; adjacent dimensions correlated.
  const int k = 6;
  std::vector<std::vector<double>> centers(k, std::vector<double>(static_cast<std::size_t>(d)));
  std::vector<std::vector<double>> spreads(k, std::vector<double>(static_cast<std::size_t>(d)));
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < d; ++j) {
      centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] = rng.uniform(-4.0, 4.0);
      spreads[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] = rng.uniform(0.3, 1.5);
    }
  }
  Table t;
  t.columns.assign(static_cast<std::size_t>(d), std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    int c = static_cast<int>(rng.uniform_index(k));
    double shared = rng.normal();  // induces cross-column correlation
    for (int j = 0; j < d; ++j) {
      double v = centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] +
                 spreads[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] *
                     (0.7 * rng.normal() + 0.3 * shared);
      t.columns[static_cast<std::size_t>(j)][i] = v;
    }
  }
  return t;
}

Table make_power(std::size_t n, int d, Rng& rng) {
  // Power-law magnitudes (Pareto alpha ~1.6) with shared load factor.
  Table t;
  t.columns.assign(static_cast<std::size_t>(d), std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double load = std::pow(1.0 - rng.uniform(), -1.0 / 1.6);  // Pareto(1.6)
    for (int j = 0; j < d; ++j) {
      double own = std::pow(1.0 - rng.uniform(), -1.0 / 2.0);
      t.columns[static_cast<std::size_t>(j)][i] =
          0.6 * load + 0.4 * own + 0.05 * rng.normal();
    }
  }
  return t;
}

Table make_tpch(std::size_t n, int d, Rng& rng) {
  // Lineitem-ish: uniform price, discrete quantity, small discount levels,
  // correlated tax; repeats the pattern across dimensions.
  Table t;
  t.columns.assign(static_cast<std::size_t>(d), std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double quantity = 1.0 + static_cast<double>(rng.uniform_index(50));
    double price = rng.uniform(900.0, 105000.0) / 100.0;
    double discount = static_cast<double>(rng.uniform_index(11)) / 100.0;
    for (int j = 0; j < d; ++j) {
      switch (j % 4) {
        case 0: t.columns[static_cast<std::size_t>(j)][i] = quantity; break;
        case 1: t.columns[static_cast<std::size_t>(j)][i] = price; break;
        case 2: t.columns[static_cast<std::size_t>(j)][i] = discount; break;
        default:
          t.columns[static_cast<std::size_t>(j)][i] =
              price * quantity * (1.0 - discount) / 1000.0;
          break;
      }
    }
  }
  return t;
}

Table make_higgs(std::size_t n, int d, Rng& rng) {
  // Physics-like: symmetric heavy tails (student-t-ish via normal ratio)
  // plus derived quadratic combinations.
  Table t;
  t.columns.assign(static_cast<std::size_t>(d), std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double a = rng.normal(), b = rng.normal();
    for (int j = 0; j < d; ++j) {
      double v;
      if (j % 3 == 0) {
        v = rng.normal() / std::max(0.3, std::fabs(rng.normal()));  // heavy tail
      } else if (j % 3 == 1) {
        v = std::sqrt(a * a + b * b) + 0.3 * rng.normal();  // momentum-like
      } else {
        v = a * b + rng.normal();
      }
      t.columns[static_cast<std::size_t>(j)][i] = v;
    }
  }
  return t;
}

Table make_weather(std::size_t n, int d, Rng& rng) {
  // Seasonal signal + station offset + noise; columns are different
  // measurements of the same timestamp, hence strongly correlated.
  Table t;
  t.columns.assign(static_cast<std::size_t>(d), std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double day = rng.uniform(0.0, 365.0);
    double season = std::sin(2.0 * M_PI * day / 365.0);
    double station = rng.normal() * 3.0;
    for (int j = 0; j < d; ++j) {
      double phase = 0.5 * static_cast<double>(j);
      t.columns[static_cast<std::size_t>(j)][i] =
          10.0 * std::sin(2.0 * M_PI * day / 365.0 + phase) + 5.0 * season +
          station + rng.normal() * 2.0;
    }
  }
  return t;
}

}  // namespace

Table make_table(TableFamily family, std::size_t n_rows, int n_cols,
                 std::uint64_t seed) {
  FLAML_REQUIRE(n_rows >= 10 && n_cols >= 1, "table too small");
  Rng rng(seed);
  switch (family) {
    case TableFamily::Forest: return make_forest(n_rows, n_cols, rng);
    case TableFamily::Power: return make_power(n_rows, n_cols, rng);
    case TableFamily::Tpch: return make_tpch(n_rows, n_cols, rng);
    case TableFamily::Higgs: return make_higgs(n_rows, n_cols, rng);
    case TableFamily::Weather: return make_weather(n_rows, n_cols, rng);
  }
  throw InternalError("unreachable family");
}

}  // namespace flaml::selest
