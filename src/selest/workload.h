// Range-query workload generation and labeling for selectivity estimation.
//
// Following Dutt et al. 2019, queries are conjunctions of per-column range
// predicates lo_j <= x_j <= hi_j. Queries are centered on random data rows
// with random widths (mixing narrow and wide ranges, and leaving some
// columns unconstrained), which produces the skewed selectivity
// distribution real workloads show. The regression target is
// log(max(count, 1)); q-error is evaluated on the de-logged cardinality.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "selest/tables.h"

namespace flaml::selest {

struct RangeQuery {
  // Per-column bounds; an unconstrained column has lo = -inf, hi = +inf.
  std::vector<double> lo;
  std::vector<double> hi;
  // True matching-row count.
  std::size_t count = 0;
};

struct WorkloadOptions {
  std::size_t n_queries = 2000;
  // Probability a column is left unconstrained in a query.
  double unconstrained_prob = 0.2;
  std::uint64_t seed = 7;
};

// Generate labeled range queries over the table.
std::vector<RangeQuery> make_workload(const Table& table, const WorkloadOptions& options);

// Exact number of table rows satisfying the query (the labeler).
std::size_t count_matches(const Table& table, const RangeQuery& query);

// Encode the workload as a regression dataset: features are the 2·d bounds
// (clamped to the column's observed min/max for unconstrained sides),
// label = log(max(count, 1)).
Dataset workload_to_dataset(const Table& table, const std::vector<RangeQuery>& queries);

// De-logged predicted cardinalities (floored at 1) from model predictions.
std::vector<double> predicted_cardinalities(const std::vector<double>& log_predictions);
// True cardinalities of a query list.
std::vector<double> true_cardinalities(const std::vector<RangeQuery>& queries);

}  // namespace flaml::selest
