#include "selest/workload.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace flaml::selest {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::size_t count_matches(const Table& table, const RangeQuery& query) {
  FLAML_REQUIRE(query.lo.size() == table.n_cols() && query.hi.size() == table.n_cols(),
                "query arity mismatch");
  const std::size_t n = table.n_rows();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool match = true;
    for (std::size_t j = 0; j < table.n_cols() && match; ++j) {
      double v = table.columns[j][i];
      match = v >= query.lo[j] && v <= query.hi[j];
    }
    count += match ? 1u : 0u;
  }
  return count;
}

std::vector<RangeQuery> make_workload(const Table& table,
                                      const WorkloadOptions& options) {
  FLAML_REQUIRE(table.n_rows() > 0, "empty table");
  Rng rng(options.seed);
  const std::size_t d = table.n_cols();

  // Column spreads drive the width distribution.
  std::vector<double> col_min(d, kInf), col_max(d, -kInf);
  for (std::size_t j = 0; j < d; ++j) {
    for (double v : table.columns[j]) {
      col_min[j] = std::min(col_min[j], v);
      col_max[j] = std::max(col_max[j], v);
    }
  }

  std::vector<RangeQuery> queries;
  queries.reserve(options.n_queries);
  for (std::size_t q = 0; q < options.n_queries; ++q) {
    RangeQuery query;
    query.lo.assign(d, -kInf);
    query.hi.assign(d, kInf);
    // Center on a random data row so narrow queries still match something.
    std::size_t center_row = rng.uniform_index(table.n_rows());
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.bernoulli(options.unconstrained_prob)) continue;
      double span = col_max[j] - col_min[j];
      // Log-uniform width between 0.1% and 100% of the column span.
      double width = span * std::pow(10.0, rng.uniform(-3.0, 0.0));
      double center = table.columns[j][center_row] + rng.normal() * 0.05 * span;
      query.lo[j] = center - 0.5 * width;
      query.hi[j] = center + 0.5 * width;
    }
    query.count = count_matches(table, query);
    queries.push_back(std::move(query));
  }
  return queries;
}

Dataset workload_to_dataset(const Table& table,
                            const std::vector<RangeQuery>& queries) {
  FLAML_REQUIRE(!queries.empty(), "empty workload");
  const std::size_t d = table.n_cols();
  std::vector<double> col_min(d, kInf), col_max(d, -kInf);
  for (std::size_t j = 0; j < d; ++j) {
    for (double v : table.columns[j]) {
      col_min[j] = std::min(col_min[j], v);
      col_max[j] = std::max(col_max[j], v);
    }
  }

  std::vector<ColumnInfo> columns(2 * d);
  for (std::size_t j = 0; j < d; ++j) {
    columns[2 * j].name = "lo" + std::to_string(j);
    columns[2 * j + 1].name = "hi" + std::to_string(j);
  }
  Dataset data(Task::Regression, std::move(columns));
  std::vector<std::vector<float>> cols(2 * d, std::vector<float>(queries.size()));
  std::vector<double> labels(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t j = 0; j < d; ++j) {
      double lo = std::max(queries[q].lo[j], col_min[j]);
      double hi = std::min(queries[q].hi[j], col_max[j]);
      cols[2 * j][q] = static_cast<float>(lo);
      cols[2 * j + 1][q] = static_cast<float>(hi);
    }
    labels[q] = std::log(static_cast<double>(std::max<std::size_t>(queries[q].count, 1)));
  }
  for (std::size_t c = 0; c < 2 * d; ++c) data.set_column(c, std::move(cols[c]));
  data.set_labels(std::move(labels));
  data.validate();
  return data;
}

std::vector<double> predicted_cardinalities(const std::vector<double>& log_predictions) {
  std::vector<double> out(log_predictions.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::max(1.0, std::exp(log_predictions[i]));
  }
  return out;
}

std::vector<double> true_cardinalities(const std::vector<RangeQuery>& queries) {
  std::vector<double> out(queries.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<double>(std::max<std::size_t>(queries[i].count, 1));
  }
  return out;
}

}  // namespace flaml::selest
