// Synthetic relational tables for the selectivity-estimation study
// (paper §5.3 / Table 4).
//
// The original study (Dutt et al. 2019) uses columns of the Forest, Power,
// TPC-H, Higgs and Weather datasets. We generate tables whose marginal and
// joint shapes match those families:
//   Forest  — mixture of correlated Gaussian clusters (terrain features),
//   Power   — heavy-tailed power-law marginals with pairwise correlation
//             (household power readings),
//   TPCH    — uniform prices with discrete quantity/discount levels,
//   Higgs   — heavy-tailed symmetric physics-like features,
//   Weather — seasonal sinusoidal signals with noise and drift.
// Range-query selectivity over such tables exercises the same regression
// problem shape (skew, correlation, empty ranges) as the real data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flaml::selest {

// Column-major numeric table.
struct Table {
  std::vector<std::vector<double>> columns;

  std::size_t n_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  std::size_t n_cols() const { return columns.size(); }
};

enum class TableFamily { Forest, Power, Tpch, Higgs, Weather };

const char* family_name(TableFamily family);

Table make_table(TableFamily family, std::size_t n_rows, int n_cols,
                 std::uint64_t seed);

}  // namespace flaml::selest
