#include "selest/harness.h"

#include "common/clock.h"
#include "common/error.h"
#include "metrics/metrics.h"

namespace flaml::selest {

std::vector<SelestInstance> table4_instances() {
  auto make = [](const std::string& name, TableFamily family, int dims,
                 std::uint64_t seed) {
    SelestInstance inst;
    inst.name = name;
    inst.family = family;
    inst.n_dims = dims;
    // Higher dimensionality → fewer rows to keep the exact labeler cheap.
    inst.table_rows = dims <= 4 ? 20000 : 12000;
    inst.seed = seed;
    return inst;
  };
  return {
      make("2D-Forest", TableFamily::Forest, 2, 11),
      make("2D-Power", TableFamily::Power, 2, 12),
      make("2D-TPCH", TableFamily::Tpch, 2, 13),
      make("4D-Forest1", TableFamily::Forest, 4, 14),
      make("4D-Forest2", TableFamily::Forest, 4, 15),
      make("4D-Power", TableFamily::Power, 4, 16),
      make("7D-Higgs", TableFamily::Higgs, 7, 17),
      make("7D-Power", TableFamily::Power, 7, 18),
      make("7D-Weather", TableFamily::Weather, 7, 19),
      make("10D-Forest", TableFamily::Forest, 10, 20),
  };
}

SelestData make_selest_data(const SelestInstance& instance) {
  Table table = make_table(instance.family, instance.table_rows, instance.n_dims,
                           instance.seed);
  WorkloadOptions wo;
  wo.n_queries = instance.train_queries + instance.test_queries;
  wo.seed = instance.seed ^ 0x9e3779b97f4a7c15ULL;
  std::vector<RangeQuery> queries = make_workload(table, wo);

  std::vector<RangeQuery> train_q(queries.begin(),
                                  queries.begin() +
                                      static_cast<std::ptrdiff_t>(instance.train_queries));
  std::vector<RangeQuery> test_q(queries.begin() +
                                     static_cast<std::ptrdiff_t>(instance.train_queries),
                                 queries.end());
  SelestData data{workload_to_dataset(table, train_q),
                  workload_to_dataset(table, test_q), true_cardinalities(test_q)};
  return data;
}

namespace {

double evaluate_q95(const Predictions& predictions, const SelestData& data) {
  std::vector<double> cards = predicted_cardinalities(predictions.values);
  return q_error_quantile(cards, data.test_truth, 0.95);
}

}  // namespace

SelestResult run_flaml(const SelestData& data, double budget_seconds,
                       std::uint64_t seed) {
  WallClock clock;
  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = budget_seconds;
  options.metric = "mse";  // log-cardinality regression
  options.seed = seed;
  automl.fit(data.train, options);
  SelestResult result;
  result.search_seconds = clock.now();
  result.q95 = evaluate_q95(automl.predict(DataView(data.test)), data);
  return result;
}

SelestResult run_baseline(const SelestData& data, BaselineKind kind,
                          double budget_seconds, std::uint64_t seed) {
  WallClock clock;
  BaselineAutoML automl(kind);
  BaselineOptions options;
  options.time_budget_seconds = budget_seconds;
  options.metric = "mse";
  options.seed = seed;
  automl.fit(data.train, options);
  SelestResult result;
  result.search_seconds = clock.now();
  result.q95 = evaluate_q95(automl.predict(DataView(data.test)), data);
  return result;
}

SelestResult run_manual(const SelestData& data, std::uint64_t seed) {
  // Dutt et al.'s recommended configuration: XGBoost, 16 trees, 16 leaves.
  WallClock clock;
  LearnerPtr xgb = builtin_learner("xgboost");
  ConfigSpace space = xgb->space(Task::Regression, data.train.n_rows());
  Config config = space.initial_config();
  config["tree_num"] = 16;
  config["leaf_num"] = 16;
  config["min_child_weight"] = 1.0;
  config["learning_rate"] = 0.3;
  TrainContext ctx;
  DataView train_view(data.train);
  ctx.train = train_view;
  ctx.seed = seed;
  auto model = xgb->train(ctx, config);
  SelestResult result;
  result.search_seconds = clock.now();
  result.q95 = evaluate_q95(model->predict(DataView(data.test)), data);
  return result;
}

}  // namespace flaml::selest
