// Lightweight run metrics for the AutoML search: named counters, gauges and
// histograms, aggregated by the controller while it commits trials and
// snapshotted into the run_summary trace event at the end of fit().
//
// Counters the controller maintains (docs/TESTING.md):
//   trials_total / trials_ok / trials_killed / trials_failed
//   trials.<learner>        trials committed per learner
//   sample_doublings        sample-size growth decisions
//   flow2_restarts          tuner restarts (FairChance escapes)
// Gauges: best_error, time_to_best_seconds, iteration_of_best.
// Histograms: trial_cost (all trials), trial_error (successful only).
// Kill rate = trials_killed / trials_total; derived by consumers.
//
// Thread-safe (a single mutex): cheap at search granularity — hundreds to
// thousands of trials per run, never inside a model fit's hot loop.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace flaml::observe {

struct HistogramStats {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

class MetricsRegistry {
 public:
  // Counters accumulate; gauges overwrite; histograms keep raw samples.
  void add(const std::string& name, double delta = 1.0);
  void set(const std::string& name, double value);
  void observe(const std::string& name, double sample);

  // 0 when the counter/gauge was never touched.
  double value(const std::string& name) const;
  // Zeroed stats when the histogram was never observed.
  HistogramStats histogram(const std::string& name) const;

  // {"counters": {name: value}, "histograms": {name: {n, min, max, sum,
  //  mean, p50, p90}}} — insertion order is the map's sorted key order.
  JsonValue to_json() const;

  // Checkpoint/resume (src/resume): unlike to_json(), which summarizes
  // histograms to stats, the state form keeps the RAW samples so a resumed
  // run's final percentiles equal the uninterrupted run's. state_from_json
  // replaces the registry contents; throws SerializationError on corrupt
  // input.
  JsonValue state_to_json() const;
  void state_from_json(const JsonValue& value);

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> scalars_;
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace flaml::observe
