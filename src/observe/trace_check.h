// Trace validation shared by `tools/trace_inspect --check`, the unit tests
// and the stress suite: parse a JSONL trace and verify the structural
// invariants every AutoML::fit run must satisfy (see the schema in
// trace.h / docs/TESTING.md).
//
// Checked invariants:
//   * every line is a JSON object with a string "type" and a number "t" ≥ 0;
//   * the first event is run_started; exactly one run_summary event exists
//     and it is the last event;
//   * trial_started and trial_finished counts balance PER SEGMENT, where a
//     segment starts at each run_started event: the final segment must
//     match exactly (every launched trial is committed), earlier segments —
//     fits killed mid-search and stitched together with their resumed
//     continuation (src/resume) — may have launched trials they never got
//     to commit (started >= finished; the resume re-runs them);
//   * every trial_finished carries learner/iteration/sample_size/cost, a
//     status in {ok, killed, failed}, and an error that is finite exactly
//     when status == ok;
//   * every learner_proposed carries the full per-learner ECI vector with
//     numeric eci/eci1 (eci2 and best_error may be "inf");
//   * every sample_doubled grows the sample (from < to);
//   * run_summary's n_trials equals the number of trial_finished events and
//     its best_error equals the running minimum over successful trials.
// Unknown event types are allowed (forward compatibility) but counted.
//
// Serving traces: a trace whose FIRST event is predict_daemon_started (the
// prediction daemon, src/serve/predict_daemon.h) is validated against the
// predict_* schema instead — model-load generations increase strictly by
// 1, every predict_batch names a generation that has been loaded and has
// requests <= rows, and the search-run rules above do not apply.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "observe/trace.h"

namespace flaml::observe {

struct TraceCheckResult {
  bool ok() const { return errors.empty(); }

  std::vector<std::string> errors;
  std::vector<TraceEvent> events;               // parsed, in file order
  std::map<std::string, std::size_t> by_type;   // event counts per type
  std::size_t n_trials = 0;                     // trial_finished events
  double best_error = 0.0;  // running min over successful trials (inf if none)
};

// Validate already-parsed events (the in-memory sink path).
TraceCheckResult check_trace_events(const std::vector<TraceEvent>& events);

// Parse one JSONL document per line, then validate. Parse failures are
// reported as errors with their line number; blank lines are ignored.
TraceCheckResult check_trace(std::istream& in);
TraceCheckResult check_trace_file(const std::string& path);

}  // namespace flaml::observe
