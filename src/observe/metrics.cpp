#include "observe/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flaml::observe {

namespace {

// Nearest-rank quantile on a sorted sample vector.
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  FLAML_REQUIRE(std::isfinite(sample),
                "histogram sample for '" << name << "' must be finite");
  std::lock_guard<std::mutex> lock(mutex_);
  samples_[name].push_back(sample);
}

double MetricsRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = scalars_.find(name);
  return it == scalars_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::histogram(const std::string& name) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = samples_.find(name);
    if (it == samples_.end()) return {};
    sorted = it->second;
  }
  std::sort(sorted.begin(), sorted.end());
  HistogramStats stats;
  stats.n = sorted.size();
  stats.min = sorted.front();
  stats.max = sorted.back();
  for (double v : sorted) stats.sum += v;
  stats.mean = stats.sum / static_cast<double>(stats.n);
  stats.p50 = quantile(sorted, 0.5);
  stats.p90 = quantile(sorted, 0.9);
  return stats;
}

JsonValue MetricsRegistry::to_json() const {
  std::map<std::string, double> scalars;
  std::vector<std::string> histogram_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scalars = scalars_;
    for (const auto& [name, values] : samples_) {
      if (!values.empty()) histogram_names.push_back(name);
    }
  }
  JsonValue out = JsonValue::make_object();
  JsonValue& counters = out.set("counters", JsonValue::make_object());
  for (const auto& [name, value] : scalars) {
    counters.set(name, JsonValue::make_number(value));
  }
  JsonValue& histograms = out.set("histograms", JsonValue::make_object());
  for (const auto& name : histogram_names) {
    const HistogramStats stats = histogram(name);
    JsonValue h = JsonValue::make_object();
    h.set("n", JsonValue::make_number(static_cast<double>(stats.n)));
    h.set("min", JsonValue::make_number(stats.min));
    h.set("max", JsonValue::make_number(stats.max));
    h.set("sum", JsonValue::make_number(stats.sum));
    h.set("mean", JsonValue::make_number(stats.mean));
    h.set("p50", JsonValue::make_number(stats.p50));
    h.set("p90", JsonValue::make_number(stats.p90));
    histograms.set(name, std::move(h));
  }
  return out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_.clear();
  samples_.clear();
}

}  // namespace flaml::observe
