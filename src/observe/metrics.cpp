#include "observe/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "resume/serial_util.h"

namespace flaml::observe {

namespace {

// Nearest-rank quantile on a sorted sample vector.
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  FLAML_REQUIRE(std::isfinite(sample),
                "histogram sample for '" << name << "' must be finite");
  std::lock_guard<std::mutex> lock(mutex_);
  samples_[name].push_back(sample);
}

double MetricsRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = scalars_.find(name);
  return it == scalars_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::histogram(const std::string& name) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = samples_.find(name);
    if (it == samples_.end()) return {};
    sorted = it->second;
  }
  std::sort(sorted.begin(), sorted.end());
  HistogramStats stats;
  stats.n = sorted.size();
  stats.min = sorted.front();
  stats.max = sorted.back();
  for (double v : sorted) stats.sum += v;
  stats.mean = stats.sum / static_cast<double>(stats.n);
  stats.p50 = quantile(sorted, 0.5);
  stats.p90 = quantile(sorted, 0.9);
  return stats;
}

JsonValue MetricsRegistry::to_json() const {
  std::map<std::string, double> scalars;
  std::vector<std::string> histogram_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scalars = scalars_;
    for (const auto& [name, values] : samples_) {
      if (!values.empty()) histogram_names.push_back(name);
    }
  }
  JsonValue out = JsonValue::make_object();
  JsonValue& counters = out.set("counters", JsonValue::make_object());
  for (const auto& [name, value] : scalars) {
    counters.set(name, JsonValue::make_number(value));
  }
  JsonValue& histograms = out.set("histograms", JsonValue::make_object());
  for (const auto& name : histogram_names) {
    const HistogramStats stats = histogram(name);
    JsonValue h = JsonValue::make_object();
    h.set("n", JsonValue::make_number(static_cast<double>(stats.n)));
    h.set("min", JsonValue::make_number(stats.min));
    h.set("max", JsonValue::make_number(stats.max));
    h.set("sum", JsonValue::make_number(stats.sum));
    h.set("mean", JsonValue::make_number(stats.mean));
    h.set("p50", JsonValue::make_number(stats.p50));
    h.set("p90", JsonValue::make_number(stats.p90));
    histograms.set(name, std::move(h));
  }
  return out;
}

JsonValue MetricsRegistry::state_to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::make_object();
  JsonValue& scalars = out.set("scalars", JsonValue::make_object());
  for (const auto& [name, value] : scalars_) {
    scalars.set(name, resume::json_double(value));
  }
  JsonValue& samples = out.set("samples", JsonValue::make_object());
  for (const auto& [name, values] : samples_) {
    JsonValue arr = JsonValue::make_array();
    for (double v : values) arr.push(resume::json_double(v));
    samples.set(name, std::move(arr));
  }
  return out;
}

void MetricsRegistry::state_from_json(const JsonValue& value) {
  // Caps bound what a corrupt checkpoint can make us allocate: the search
  // keeps a handful of metric names and one sample per trial.
  constexpr std::size_t kMaxNames = 100000;
  constexpr std::size_t kMaxSamples = 10000000;
  const JsonValue& scalars = resume::req_object(value, "scalars");
  FLAML_PARSE_REQUIRE(scalars.object.size() <= kMaxNames,
                      "metrics scalar map too large");
  const JsonValue& samples = resume::req_object(value, "samples");
  FLAML_PARSE_REQUIRE(samples.object.size() <= kMaxNames,
                      "metrics sample map too large");
  std::map<std::string, double> new_scalars;
  for (const auto& [name, v] : scalars.object) {
    FLAML_PARSE_REQUIRE(!name.empty(), "metrics scalar name must be non-empty");
    const bool inserted =
        new_scalars.emplace(name, resume::double_value(v, name.c_str())).second;
    FLAML_PARSE_REQUIRE(inserted, "duplicate metrics scalar '" << name << "'");
  }
  std::map<std::string, std::vector<double>> new_samples;
  for (const auto& [name, arr] : samples.object) {
    FLAML_PARSE_REQUIRE(!name.empty(), "metrics histogram name must be non-empty");
    FLAML_PARSE_REQUIRE(arr.is_array(),
                        "metrics histogram '" << name << "' must be an array");
    FLAML_PARSE_REQUIRE(arr.array.size() <= kMaxSamples,
                        "metrics histogram '" << name << "' too large");
    std::vector<double> values;
    values.reserve(arr.array.size());
    for (const JsonValue& sample : arr.array) {
      // observe() only ever stores finite samples; mirror that on load.
      const double decoded = resume::double_value(sample, name.c_str());
      FLAML_PARSE_REQUIRE(std::isfinite(decoded),
                          "metrics histogram '" << name
                                                << "' sample must be finite");
      values.push_back(decoded);
    }
    const bool inserted = new_samples.emplace(name, std::move(values)).second;
    FLAML_PARSE_REQUIRE(inserted,
                        "duplicate metrics histogram '" << name << "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_ = std::move(new_scalars);
  samples_ = std::move(new_samples);
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_.clear();
  samples_.clear();
}

}  // namespace flaml::observe
