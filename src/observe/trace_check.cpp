#include "observe/trace_check.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace flaml::observe {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Checker {
 public:
  explicit Checker(TraceCheckResult& result) : result_(result) {}

  void run() {
    result_.best_error = kInf;
    if (result_.events.empty()) {
      fail(0, "trace is empty");
      return;
    }
    // A serving trace (prediction daemon) opens with predict_daemon_started
    // and follows the predict_* schema — no trials, no run_summary.
    if (result_.events.front().type == "predict_daemon_started") {
      run_serving();
      return;
    }
    for (std::size_t i = 0; i < result_.events.size(); ++i) {
      check_event(i, result_.events[i]);
    }
    if (result_.events.front().type != "run_started") {
      fail(0, "first event must be run_started, got '" +
                  result_.events.front().type + "'");
    }
    const std::size_t n_summaries = count("run_summary");
    if (n_summaries != 1) {
      fail(result_.events.size() - 1,
           "expected exactly one run_summary event, got " +
               std::to_string(n_summaries));
    } else if (result_.events.back().type != "run_summary") {
      fail(result_.events.size() - 1, "run_summary must be the last event");
    }
    check_segments();
  }

  // Started/finished accounting, per SEGMENT. A segment starts at each
  // run_started event; a multi-segment trace is the stitched JSONL of a
  // crash-and-resume sequence (each killed fit() plus the final resumed
  // one). A killed segment may have launched trials it never committed, so
  // it is allowed started >= finished — the resume re-runs those, emitting
  // fresh trial_started events in its own segment. The FINAL segment ran to
  // completion and must balance exactly.
  void check_segments() {
    std::vector<std::size_t> begins;
    for (std::size_t i = 0; i < result_.events.size(); ++i) {
      if (result_.events[i].type == "run_started") begins.push_back(i);
    }
    if (begins.empty()) return;  // already failed "first event" above
    begins.push_back(result_.events.size());
    for (std::size_t s = 0; s + 1 < begins.size(); ++s) {
      std::size_t started = 0;
      std::size_t finished = 0;
      for (std::size_t i = begins[s]; i < begins[s + 1]; ++i) {
        if (result_.events[i].type == "trial_started") ++started;
        if (result_.events[i].type == "trial_finished") ++finished;
      }
      const bool final_segment = s + 2 == begins.size();
      const bool balanced = final_segment ? started == finished
                                          : started >= finished;
      if (!balanced) {
        fail(begins[s], "segment " + std::to_string(s) + ": trial_started count (" +
                            std::to_string(started) + ") " +
                            (final_segment ? "!=" : "<") +
                            " trial_finished count (" + std::to_string(finished) +
                            ")");
      }
    }
  }

  // Serving-mode invariants: every predict_model_loaded carries the full
  // model descriptor with generations strictly increasing from 1; every
  // predict_batch names a generation that has been loaded and carries
  // request/row counts with requests <= rows (requests are whole and
  // non-empty); a batch before the first load is impossible.
  void run_serving() {
    std::uint64_t last_generation = 0;
    for (std::size_t i = 0; i < result_.events.size(); ++i) {
      const TraceEvent& event = result_.events[i];
      ++result_.by_type[event.type];
      if (!(event.time >= 0.0)) {
        fail(i, "timestamp must be >= 0, got " + std::to_string(event.time));
      }
      if (event.type == "predict_daemon_started") {
        if (i != 0) fail(i, "predict_daemon_started must be the first event");
        require(i, event, "max_batch_rows", JsonValue::Type::Number);
        require(i, event, "max_batch_delay_ms", JsonValue::Type::Number);
      } else if (event.type == "predict_model_loaded") {
        require(i, event, "kind", JsonValue::Type::String);
        require(i, event, "task", JsonValue::Type::String);
        require(i, event, "n_features", JsonValue::Type::Number);
        require(i, event, "n_trees", JsonValue::Type::Number);
        require(i, event, "source", JsonValue::Type::String);
        const JsonValue* gen =
            require(i, event, "generation", JsonValue::Type::Number);
        if (gen != nullptr) {
          if (!(gen->number == last_generation + 1.0)) {
            fail(i, "predict_model_loaded generation must increase by 1 (got " +
                        std::to_string(gen->number) + " after " +
                        std::to_string(last_generation) + ")");
          }
          last_generation = static_cast<std::uint64_t>(gen->number);
        }
      } else if (event.type == "predict_batch") {
        const JsonValue* gen =
            require(i, event, "generation", JsonValue::Type::Number);
        const JsonValue* requests =
            require(i, event, "requests", JsonValue::Type::Number);
        const JsonValue* rows =
            require(i, event, "rows", JsonValue::Type::Number);
        require(i, event, "predict_ms", JsonValue::Type::Number);
        if (gen != nullptr &&
            !(gen->number >= 1.0 && gen->number <= last_generation)) {
          fail(i, "predict_batch generation " + std::to_string(gen->number) +
                      " was never loaded");
        }
        if (requests != nullptr && rows != nullptr &&
            requests->number > rows->number) {
          fail(i, "predict_batch has more requests than rows");
        }
      }
      // predict_daemon_drained / predict_daemon_shutdown are field-less;
      // unknown types stay allowed for forward compatibility.
    }
  }

 private:
  std::size_t count(const std::string& type) const {
    const auto it = result_.by_type.find(type);
    return it == result_.by_type.end() ? 0 : it->second;
  }

  void fail(std::size_t index, const std::string& what) {
    result_.errors.push_back("event " + std::to_string(index) + ": " + what);
  }

  const JsonValue* require(std::size_t index, const TraceEvent& event,
                           const char* key, JsonValue::Type type) {
    const JsonValue* field = event.fields.find(key);
    if (field == nullptr || field->type != type) {
      fail(index, event.type + " is missing the required field '" +
                      std::string(key) + "'");
      return nullptr;
    }
    return field;
  }

  // An error-like field: finite number, or the string "inf".
  bool read_error_field(std::size_t index, const TraceEvent& event,
                        const char* key, double& out) {
    const JsonValue* field = event.fields.find(key);
    if (field != nullptr &&
        (field->is_number() || (field->is_string() && field->str == "inf"))) {
      out = error_field_value(*field);
      return true;
    }
    fail(index, event.type + " field '" + std::string(key) +
                    "' must be a number or \"inf\"");
    return false;
  }

  void check_event(std::size_t index, const TraceEvent& event) {
    ++result_.by_type[event.type];
    if (!(event.time >= 0.0)) {
      fail(index, "timestamp must be >= 0, got " + std::to_string(event.time));
    }
    if (event.type == "trial_finished") {
      check_trial_finished(index, event);
    } else if (event.type == "learner_proposed") {
      check_learner_proposed(index, event);
    } else if (event.type == "sample_doubled") {
      const JsonValue* from = require(index, event, "from", JsonValue::Type::Number);
      const JsonValue* to = require(index, event, "to", JsonValue::Type::Number);
      require(index, event, "learner", JsonValue::Type::String);
      if (from != nullptr && to != nullptr && !(from->number < to->number)) {
        fail(index, "sample_doubled must grow the sample");
      }
    } else if (event.type == "trial_started") {
      require(index, event, "learner", JsonValue::Type::String);
      require(index, event, "sample_size", JsonValue::Type::Number);
    } else if (event.type == "trial_raced") {
      // Racing kill: iteration = streamed points consumed up to the kill,
      // planned = the learner's full training length (0 when unreported).
      require(index, event, "learner", JsonValue::Type::String);
      require(index, event, "sample_size", JsonValue::Type::Number);
      require(index, event, "best", JsonValue::Type::Number);
      const JsonValue* it = require(index, event, "iteration", JsonValue::Type::Number);
      const JsonValue* planned = require(index, event, "planned", JsonValue::Type::Number);
      if (it != nullptr && !(it->number >= 1.0)) {
        fail(index, "trial_raced iteration must be >= 1");
      }
      if (it != nullptr && planned != nullptr && planned->number > 0.0 &&
          !(it->number <= planned->number)) {
        fail(index, "trial_raced iteration exceeds the planned iterations");
      }
    } else if (event.type == "substrate_cache") {
      const JsonValue* scope =
          require(index, event, "scope", JsonValue::Type::String);
      require(index, event, "sample_size", JsonValue::Type::Number);
      require(index, event, "max_bin", JsonValue::Type::Number);
      require(index, event, "bytes", JsonValue::Type::Number);
      require(index, event, "packed_bytes", JsonValue::Type::Number);
      const JsonValue* packed_width =
          require(index, event, "packed_width", JsonValue::Type::String);
      if (scope != nullptr && scope->str != "prefix" && scope->str != "fold") {
        fail(index, "substrate_cache scope must be 'prefix' or 'fold', got '" +
                        scope->str + "'");
      }
      if (packed_width != nullptr && packed_width->str != "none" &&
          packed_width->str != "u8" && packed_width->str != "u16") {
        fail(index,
             "substrate_cache packed_width must be none/u8/u16, got '" +
                 packed_width->str + "'");
      }
    } else if (event.type == "run_interrupted") {
      // Cooperative preempt/cancel at a trial boundary (search daemon).
      const JsonValue* signal =
          require(index, event, "signal", JsonValue::Type::String);
      require(index, event, "iteration", JsonValue::Type::Number);
      if (signal != nullptr && signal->str != "preempt" &&
          signal->str != "cancel") {
        fail(index, "run_interrupted signal must be 'preempt' or 'cancel', "
                    "got '" + signal->str + "'");
      }
    } else if (event.type == "run_summary") {
      check_run_summary(index, event);
    }
  }

  void check_trial_finished(std::size_t index, const TraceEvent& event) {
    ++result_.n_trials;
    require(index, event, "learner", JsonValue::Type::String);
    require(index, event, "iteration", JsonValue::Type::Number);
    require(index, event, "sample_size", JsonValue::Type::Number);
    require(index, event, "cost", JsonValue::Type::Number);
    const JsonValue* status = require(index, event, "status", JsonValue::Type::String);
    double error = kInf;
    if (!read_error_field(index, event, "error", error)) return;
    if (status == nullptr) return;
    if (status->str != "ok" && status->str != "killed" &&
        status->str != "failed" && status->str != "raced") {
      fail(index, "unknown trial status '" + status->str + "'");
      return;
    }
    if ((status->str == "ok") != std::isfinite(error)) {
      fail(index, "trial error must be finite exactly when status is ok");
    }
    if (status->str == "ok") result_.best_error = std::min(result_.best_error, error);
  }

  void check_learner_proposed(std::size_t index, const TraceEvent& event) {
    require(index, event, "learner", JsonValue::Type::String);
    const JsonValue* eci = require(index, event, "eci", JsonValue::Type::Array);
    if (eci == nullptr) return;
    if (eci->array.empty()) {
      fail(index, "learner_proposed eci vector is empty");
      return;
    }
    for (const JsonValue& entry : eci->array) {
      if (!entry.is_object() || entry.find("learner") == nullptr ||
          entry.find("eci") == nullptr || entry.find("eci1") == nullptr ||
          entry.find("eci2") == nullptr) {
        fail(index, "eci vector entries need learner/eci/eci1/eci2");
        return;
      }
    }
  }

  void check_run_summary(std::size_t index, const TraceEvent& event) {
    const JsonValue* n = require(index, event, "n_trials", JsonValue::Type::Number);
    require(index, event, "best_learner", JsonValue::Type::String);
    require(index, event, "metrics", JsonValue::Type::Object);
    if (n != nullptr &&
        static_cast<std::size_t>(n->number) != result_.n_trials) {
      fail(index, "run_summary n_trials (" + std::to_string(n->number) +
                      ") != trial_finished count (" +
                      std::to_string(result_.n_trials) + ")");
    }
    double best = kInf;
    if (read_error_field(index, event, "best_error", best)) {
      // Exact match: both sides round-trip through the same double values.
      if (!(best == result_.best_error ||
            (std::isinf(best) && std::isinf(result_.best_error)))) {
        fail(index, "run_summary best_error does not match the running "
                    "minimum over successful trials");
      }
    }
  }

  TraceCheckResult& result_;
};

}  // namespace

TraceCheckResult check_trace_events(const std::vector<TraceEvent>& events) {
  TraceCheckResult result;
  result.events = events;
  Checker(result).run();
  return result;
}

TraceCheckResult check_trace(std::istream& in) {
  TraceCheckResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      result.events.push_back(event_from_json(parse_json(line)));
    } catch (const std::exception& e) {
      result.errors.push_back("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  if (!result.errors.empty()) return result;  // line numbers beat indices
  Checker(result).run();
  return result;
}

TraceCheckResult check_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    TraceCheckResult result;
    result.errors.push_back("cannot open trace file '" + path + "'");
    return result;
  }
  return check_trace(in);
}

}  // namespace flaml::observe
