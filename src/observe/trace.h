// Structured trial tracing for the AutoML search loop.
//
// The paper's contribution is *how* the search spends its budget — ECI-driven
// learner choice, FLOW2 moves, sample-size doubling — so the reproduction
// emits every one of those decisions as a structured TraceEvent when a sink
// is attached (AutoMLOptions::trace_sink). With no sink attached the search
// loop only pays a null-pointer check: event payloads are built inside
// `if (tracer)` guards.
//
// Event schema (field set per type; docs/TESTING.md documents it in full):
//   run_started          task, metric, resampling, budget_seconds, learners,
//                        n_parallel, seed
//   resampling_proposed  n_rows, n_cols, budget_seconds, chosen, forced
//   learner_proposed     slot, learner, mode, eci: [{learner, eci, eci1,
//                        eci2, best_error, n_trials, sample_size}, ...]
//   sample_doubled       learner, from, to
//   trial_started        learner, sample_size, max_seconds
//   trial_raced          learner, sample_size, iteration, planned, best,
//                        envelope (racing kill: streamed curve dominated)
//   trial_finished       iteration, learner, trial, sample_size, config,
//                        error, cost, status (ok|killed|failed|raced),
//                        improved, best_error_so_far
//   flow2_tell           learner, phase, error, improved, step, stall
//   flow2_shrink         learner, step_before, step_after, ratio
//   flow2_converged      learner, step
//   flow2_restart        learner, n_restarts, step
//   run_summary          n_trials, best_learner, best_error, best_config,
//                        elapsed_seconds, metrics (registry snapshot)
//
// Sinks must be thread-safe: with n_parallel > 1 the trial runner emits
// trial_started from pool threads while the controller emits from its own.
// Infinite errors (killed/failed trials) are encoded as the string "inf"
// because JSON numbers must be finite; json_error_field()/error_field_value()
// convert in both directions.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"

namespace flaml::observe {

struct TraceEvent {
  std::string type;
  double time = 0.0;  // seconds since the run (Tracer) started
  JsonValue fields;   // object payload; never holds "type"/"t" keys
};

// JSONL form: {"t": <time>, "type": "...", ...fields}. event_from_json
// accepts any object with a string "type" and a number "t".
JsonValue to_json(const TraceEvent& event);
TraceEvent event_from_json(const JsonValue& value);

// Encode a possibly-infinite validation error for a JSON field.
JsonValue json_error_field(double error);
// Decode it back: numbers pass through, the string "inf" maps to +infinity.
double error_field_value(const JsonValue& value);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // Must be safe to call from multiple threads concurrently.
  virtual void emit(const TraceEvent& event) = 0;
};

using TraceSinkPtr = std::shared_ptr<TraceSink>;

// Accumulates events in memory; the introspection backend tests and the
// metrics assertions use. snapshot() copies under the lock.
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent& event) override;
  std::vector<TraceEvent> snapshot() const;
  std::vector<TraceEvent> of_type(const std::string& type) const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

// Writes one compact JSON object per line (JSONL), flushing on every event
// so a crashed run still leaves a readable trace prefix.
class JsonlTraceSink final : public TraceSink {
 public:
  // Borrow an existing stream (kept open; caller owns lifetime).
  explicit JsonlTraceSink(std::ostream& out);
  // Open `path` for writing; throws InvalidArgument when that fails.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void emit(const TraceEvent& event) override;
  std::size_t n_events() const;

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  std::size_t n_events_ = 0;
};

// The cheap handle the search threads through the controller, trial runner
// and tuners. A default-constructed Tracer is "off": operator bool is false
// and emit() is a no-op. Timestamps are seconds since construction (= run
// start). Copies share the sink and the time origin.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSinkPtr sink);

  explicit operator bool() const { return sink_ != nullptr; }

  // Returns a tracer that stamps `key: value` into every event it emits —
  // how per-learner FLOW2 tuners get their "learner" field without knowing
  // about the lineup.
  Tracer with(std::string key, std::string value) const;

  // `fields` must be a JSON object (or null for field-less events).
  void emit(const char* type, JsonValue fields) const;
  void emit(const char* type) const { emit(type, JsonValue::make_object()); }

  double now() const;

 private:
  TraceSinkPtr sink_;
  std::shared_ptr<WallClock> clock_;
  std::vector<std::pair<std::string, std::string>> context_;
};

}  // namespace flaml::observe
