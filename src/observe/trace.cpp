#include "observe/trace.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/error.h"

namespace flaml::observe {

JsonValue to_json(const TraceEvent& event) {
  JsonValue v = JsonValue::make_object();
  v.set("t", JsonValue::make_number(event.time));
  v.set("type", JsonValue::make_string(event.type));
  FLAML_CHECK_MSG(event.fields.is_object() || event.fields.is_null(),
                  "trace event fields must be a JSON object");
  if (event.fields.is_object()) {
    for (const auto& [key, value] : event.fields.object) {
      v.set(key, value);
    }
  }
  return v;
}

TraceEvent event_from_json(const JsonValue& value) {
  FLAML_REQUIRE(value.is_object(), "trace event must be a JSON object");
  const JsonValue* type = value.find("type");
  const JsonValue* time = value.find("t");
  FLAML_REQUIRE(type != nullptr && type->is_string(),
                "trace event is missing the string field 'type'");
  FLAML_REQUIRE(time != nullptr && time->is_number(),
                "trace event is missing the number field 't'");
  TraceEvent event;
  event.type = type->str;
  event.time = time->number;
  event.fields = JsonValue::make_object();
  for (const auto& [key, field] : value.object) {
    if (key == "type" || key == "t") continue;
    event.fields.set(key, field);
  }
  return event;
}

JsonValue json_error_field(double error) {
  if (std::isfinite(error)) return JsonValue::make_number(error);
  return JsonValue::make_string("inf");
}

double error_field_value(const JsonValue& value) {
  if (value.is_number()) return value.number;
  FLAML_REQUIRE(value.is_string() && value.str == "inf",
                "error field must be a finite number or \"inf\"");
  return std::numeric_limits<double>::infinity();
}

void MemoryTraceSink::emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> MemoryTraceSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<TraceEvent> MemoryTraceSink::of_type(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

std::size_t MemoryTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  FLAML_REQUIRE(file->good(), "cannot open trace file '" << path << "' for writing");
  out_ = file.get();
  owned_ = std::move(file);
}

JsonlTraceSink::~JsonlTraceSink() = default;

void JsonlTraceSink::emit(const TraceEvent& event) {
  const std::string line = dump_json_compact(to_json(event));
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
  ++n_events_;
}

std::size_t JsonlTraceSink::n_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return n_events_;
}

Tracer::Tracer(TraceSinkPtr sink) : sink_(std::move(sink)) {
  if (sink_ != nullptr) clock_ = std::make_shared<WallClock>();
}

Tracer Tracer::with(std::string key, std::string value) const {
  Tracer out = *this;
  if (sink_ != nullptr) out.context_.emplace_back(std::move(key), std::move(value));
  return out;
}

void Tracer::emit(const char* type, JsonValue fields) const {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.type = type;
  event.time = clock_->now();
  if (!fields.is_object()) fields = JsonValue::make_object();
  // Context fields go first so every event of a tuner leads with its
  // learner; explicit fields win on a key clash (set() overwrites).
  if (!context_.empty()) {
    JsonValue merged = JsonValue::make_object();
    for (const auto& [key, value] : context_) {
      merged.set(key, JsonValue::make_string(value));
    }
    for (auto& [key, value] : fields.object) {
      merged.set(key, std::move(value));
    }
    fields = std::move(merged);
  }
  event.fields = std::move(fields);
  sink_->emit(event);
}

double Tracer::now() const { return clock_ == nullptr ? 0.0 : clock_->now(); }

}  // namespace flaml::observe
