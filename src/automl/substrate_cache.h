// Cross-trial binned-substrate cache for the trial hot loop.
//
// Every histogram trial used to open with the same ritual: fit a BinMapper
// on its training rows and encode them into a BinnedMatrix. The search loop
// re-evaluates the same sample sizes hundreds of times (FLOW2 proposes many
// configs per (learner, sample_size) rung), so that fit+encode — O(n·d) with
// a sort per feature — was pure re-computation. This cache, owned by the
// TrialRunner, builds each substrate once and serves every later trial the
// shared immutable copy.
//
// Keying is by EXACT row set: (sample_size, k, fold, max_bin), where
// holdout/prefix entries use k = 0, fold = -1. A substrate is only correct
// for the precise rows it was fit on — fitting at a different size moves
// quantile bin edges — so there is no cross-size reuse; the win is
// cross-TRIAL reuse at repeated keys. For CV the k-fold partition of each
// sample prefix is memoized too (it is a pure function of the runner's fold
// seed), and each fold's train side gets its own substrate entry.
//
// Concurrency: a mutex guards the key maps and counters; the expensive
// build runs under a per-entry std::call_once OUTSIDE that lock, so
// concurrent trials asking for different keys build in parallel while
// concurrent trials asking for the same key build it exactly once. Entries
// are immutable after construction and live as shared_ptr<const ...>, so
// trainers can hold references for the duration of a fit with no further
// synchronization.
//
// Determinism contract: cache on vs off is byte-identical — the cache runs
// the same BinMapper::fit + encode (see build_substrate) and the same
// kfold_split with the same seed the uncached path uses, and trainers
// verify rows/max_bin before accepting a substrate. Pinned by the golden
// digest equality tests and the property suite in
// tests/test_substrate_cache.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "data/split.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "tree/binning.h"

namespace flaml {

class SubstrateCache {
 public:
  struct Counters {
    std::uint64_t hits = 0;    // lookups served from an existing entry
    std::uint64_t misses = 0;  // lookups that created (and built) the entry
    std::size_t bytes = 0;     // total encoded-matrix bytes held
  };

  // `train_view` is the runner's shuffled training view (samples are its
  // prefixes); it must outlive the cache. `fold_seed` must equal the seed
  // the uncached path hands kfold_split, so memoized folds are
  // bit-identical to freshly drawn ones. `tracer`/`metrics` may be
  // off/null; when attached, builds emit `substrate_cache` trace events and
  // lookups maintain the substrate_cache.{hits,misses,bytes} metrics.
  SubstrateCache(const DataView* train_view, std::uint64_t fold_seed,
                 observe::Tracer tracer, observe::MetricsRegistry* metrics);

  // Substrate fit+encoded on exactly the first `sample_size` rows of the
  // train view (the holdout-mode training sample; also the final-retrain
  // rows when sample_size == n_rows).
  std::shared_ptr<const BinnedSubstrate> prefix(std::size_t sample_size,
                                                int max_bin);

  // Memoized k-fold partition of the first `sample_size` rows, drawn with
  // the cache's fold seed.
  std::shared_ptr<const std::vector<Fold>> folds(std::size_t sample_size, int k);

  // Substrate for the TRAIN side of fold `fold_index` of
  // folds(sample_size, k).
  std::shared_ptr<const BinnedSubstrate> fold_train(std::size_t sample_size,
                                                    int k, int fold_index,
                                                    int max_bin);

  Counters counters() const;

 private:
  // (sample_size, k, fold, max_bin); prefix entries use k = 0, fold = -1.
  using SubstrateKey = std::tuple<std::size_t, int, int, int>;
  using FoldsKey = std::pair<std::size_t, int>;

  struct SubstrateEntry {
    std::once_flag once;
    std::shared_ptr<const BinnedSubstrate> value;
  };
  struct FoldsEntry {
    std::once_flag once;
    std::shared_ptr<const std::vector<Fold>> value;
  };

  // Find-or-insert under the lock, counting a hit (found) or miss
  // (inserted) and mirroring the counters into the metrics registry.
  std::shared_ptr<SubstrateEntry> substrate_entry(const SubstrateKey& key);

  // Build accounting shared by prefix() and fold_train(): bytes counters,
  // metrics gauge, trace event.
  void record_build(const SubstrateKey& key, const BinnedSubstrate& built);

  const DataView* train_view_;
  std::uint64_t fold_seed_;
  observe::Tracer tracer_;
  observe::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  std::map<SubstrateKey, std::shared_ptr<SubstrateEntry>> substrates_;
  std::map<FoldsKey, std::shared_ptr<FoldsEntry>> folds_;
  Counters counters_;
};

}  // namespace flaml
