// Trial execution: evaluate one configuration χ = (l, h, s, r) and report
// its validation error and cost (paper §3.1).
//
// The runner owns the resampling setup for a training dataset:
//   * holdout (r = holdout, ratio ρ = 0.1): a fixed stratified holdout set
//     is carved once; a trial trains on the first s rows of the shuffled
//     remainder and validates on the fixed set (so errors are comparable
//     across sample sizes);
//   * cross-validation (r = cv, k = 5): a trial k-folds its s-row sample
//     and averages the per-fold validation errors.
// Trial cost is the measured wall-clock seconds of training + validation —
// the κ(χ) the AutoML layer budgets against.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "automl/racing.h"
#include "automl/substrate_cache.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/rng.h"
#include "data/split.h"
#include "learners/learner.h"
#include "metrics/error_metric.h"
#include "observe/metrics.h"
#include "observe/trace.h"

namespace flaml {

enum class Resampling { CV, Holdout };

const char* resampling_name(Resampling r);

// Paper §4.2 Step 0 thresholds: cross-validation iff BOTH hold, holdout
// otherwise. Named so the rule reads as the paper states it (the cell rate
// was once the literal `10e6`, which is 1e7 but is routinely misread as
// 1e6 — see tests/test_trial_runner.cpp for the boundary coverage).
inline constexpr std::size_t kCvMaxInstances = 100000;       // n < 100K
inline constexpr double kCvMaxCellRatePerHour = 1e7;         // n·d/hours < 10M

// `budget_seconds` should be the paper-equivalent budget (benches divide
// the real scaled-down budget by their budget scale).
Resampling propose_resampling(std::size_t n_instances, std::size_t n_features,
                              double budget_seconds);

// Pick a usable fold count for k-fold CV over `view`: every fold non-empty
// and every fold's TRAIN side at least 2 rows (the trainers' floor). Fold
// sizes under the stratified dealing are a pure function of (per-class row
// counts, k) — never the shuffle — so usability is decided analytically.
// Prefers requested_k clamped to [2, n]; failing that, the nearest usable k
// above it, then below. Returns 0 when NO k in [2, n] works (e.g. a 3-row
// classification view with class counts {2, 1}).
int choose_cv_k(const DataView& view, int requested_k);

// How a trial ended: Ok = a model was trained and scored; Killed = the fit
// overran max_seconds and was aborted (DeadlineExceeded); Failed = the
// learner threw anything else; Raced = the racing monitor killed it because
// its streamed learning curve was dominated by the incumbent envelope
// (TrialRaced). Killed/Failed/Raced trials report an infinite error but
// their cost is still charged, so the ECI bookkeeping keeps de-prioritizing
// learners that burn budget without finishing (their cost records as
// not-ok, so it never becomes the learner's κ — the last_ok_cost rule).
enum class TrialStatus { Ok, Killed, Failed, Raced };

const char* trial_status_name(TrialStatus status);

struct TrialResult {
  double error = 0.0;  // validation error \tilde{ε}(χ); +inf unless ok
  double cost = 0.0;   // seconds κ(χ); charged even for killed/failed trials
  // Measured wall-clock seconds of the trial, regardless of any cost model
  // (with one, `cost` is the modeled charge; this is what really elapsed).
  // Killed trials in particular: cost ≤ the wall cap they were given, while
  // elapsed_seconds reports the true measurement.
  double elapsed_seconds = 0.0;
  bool ok = true;      // status == TrialStatus::Ok
  TrialStatus status = TrialStatus::Ok;
  // Streamed validation learning curve (holdout trials run under a racing
  // plan only; empty otherwise). Ok curves feed the RacingMonitor envelope.
  std::vector<double> curve;
  // True training-unit counts from the learner's TrainReport (holdout
  // trials; 0 when the learner does not report). A raced/deadline-capped
  // trial reports how far it actually got — the true curve length.
  int iterations_completed = 0;
  int iterations_planned = 0;
};

// Deterministic substitute for measured wall-clock trial cost (tests and
// simulation): κ(χ) = model(learner, config, sample_size). Replacing the
// clock makes the whole search — including ECI bookkeeping and the
// sample-size schedule — a pure function of the seed, which is what lets
// the stress suite compare parallel and serial runs record by record.
using TrialCostModel = std::function<double(
    const Learner& learner, const Config& config, std::size_t sample_size)>;

class TrialRunner {
 public:
  struct Options {
    Resampling resampling = Resampling::Holdout;
    int cv_folds = 5;
    double holdout_ratio = 0.1;
    std::uint64_t seed = 1;
    // Intra-trial worker threads handed to every TrainContext (1 = serial;
    // models are bit-identical for any value).
    int n_threads = 1;
    // When set, trial cost comes from the model instead of the wall clock.
    TrialCostModel cost_model;
    // Off by default. When attached, run() emits trial_started events —
    // from the calling thread, so in parallel search mode the sink sees
    // concurrent emissions (sinks are thread-safe by contract).
    observe::Tracer tracer;
    // Serve trials a shared cross-trial binned substrate (substrate_cache.h)
    // instead of letting every histogram fit re-bin its rows. Byte-identical
    // either way (the determinism contract the golden tests pin); off only
    // trades speed for a smaller resident footprint.
    bool reuse_binned_data = true;
    // When set, the substrate cache mirrors its hit/miss/bytes counters
    // here (names prefixed "substrate_cache."). May be null.
    observe::MetricsRegistry* metrics = nullptr;
  };

  // Throws DatasetTooSmall when the resampling setup cannot produce a
  // trainable split: holdout leaving fewer than 2 training rows, or a CV
  // view where no fold count yields non-empty folds with >= 2 training
  // rows per fold.
  TrialRunner(const Dataset& data, ErrorMetric metric, Options options);

  // Number of rows available for training samples (full data minus the
  // fixed holdout set when r = holdout). This is the "full size" the
  // sample-size schedule converges to.
  std::size_t max_sample_size() const { return train_view_.n_rows(); }
  Resampling resampling() const { return options_.resampling; }
  const ErrorMetric& metric() const { return metric_; }
  const Dataset& data() const { return *data_; }

  // Evaluate (learner, config) on the first `sample_size` rows.
  // `max_seconds` caps the training time of each model fit — 0 means
  // UNLIMITED (see TrainContext::max_seconds), so a zero budget never kills
  // a trial; in CV mode the cap is split evenly across the k folds, and an
  // unlimited budget maps to an unlimited per-fold cap.
  // `seed_salt` selects the training seed: 0 draws a fresh id from an
  // internal counter (seed depends on global call order); a nonzero salt
  // makes the trial seed a pure function of (runner seed, salt), so callers
  // that derive the salt from per-learner state get order-independent —
  // hence parallel-vs-serial reproducible — trials. The two id domains are
  // disjoint (salted ids carry a tag bit the counter ids never set), so a
  // counter-issued id can NEVER collide with a caller salt and silently
  // reuse another trial's training seed.
  // `racing` (may be null) is the launch-time racing plan: when enabled and
  // resampling is holdout (CV trials are never raced — per-fold curves are
  // not comparable to the fixed-holdout envelopes), the trial streams its
  // validation curve, is killed (TrialStatus::Raced, `trial_raced` trace
  // event) as soon as racing_dominated() fires against the plan's envelope
  // snapshot, and returns its curve in TrialResult::curve either way.
  // Thread-safe: concurrent run() calls are allowed (parallel search mode).
  TrialResult run(const Learner& learner, const Config& config,
                  std::size_t sample_size, double max_seconds = 0.0,
                  std::uint64_t seed_salt = 0,
                  const RacingPlan* racing = nullptr);

  // Train a final model on ALL available training rows (used to retrain the
  // best configuration at the end of fit()). `max_seconds` caps the fit
  // (0 = unlimited); callers pass the search budget so the retrain costs at
  // most one extra budget's worth of time.
  std::unique_ptr<Model> train_final(const Learner& learner, const Config& config,
                                     double max_seconds = 0.0);

  // Checkpoint/resume (src/resume): the runner's only mutable state is the
  // trial-id counter (everything else is rebuilt deterministically from the
  // dataset + options by the constructor). The snapshot also carries a
  // compatibility fingerprint — seed, resampling, folds/ratio and
  // max_sample_size — and from_json rejects a checkpoint whose fingerprint
  // does not match THIS runner (resuming against a different dataset or
  // split would silently change every trial seed). Throws SerializationError.
  JsonValue to_json() const;
  void from_json(const JsonValue& value);

  // Null when Options::reuse_binned_data is off. Exposed for tests and
  // benches that assert on hit/miss/bytes counters.
  const SubstrateCache* substrate_cache() const { return substrate_cache_.get(); }

 private:
  const Dataset* data_;
  ErrorMetric metric_;
  Options options_;
  Rng rng_;
  WallClock clock_;
  DataView train_view_;    // shuffled; samples are prefixes of this
  DataView holdout_view_;  // empty when resampling == CV
  // Built in the constructor (reuse_binned_data); no checkpoint state —
  // contents are rebuilt on demand, a resumed run just starts cold.
  std::unique_ptr<SubstrateCache> substrate_cache_;
  std::atomic<std::uint64_t> trial_counter_{0};
};

}  // namespace flaml
