// A re-entrant handle over one budgeted AutoML search — the unit the
// multi-job daemon (src/server) schedules.
//
// The AutoML controller runs a search from start to finish inside fit().
// SearchJob re-cuts that into SEGMENTS: run_segment() runs the search until
// it either completes or a cooperative control callback asks it to yield at
// a trial boundary (SearchSignal::Preempt). A preempted job captures a full
// search checkpoint (src/resume) in memory; the next run_segment() resumes
// from it and the stitched run is byte-identical to an uninterrupted one —
// the same kill-anywhere contract tests/stress/stress_resume.cpp proves for
// crash recovery, reused here for scheduling. Budget accounting composes
// the same way: each segment measures only its own running time on a
// steady clock (or AutoMLOptions::clock), and the checkpoint carries the
// spent budget across segments, so a job is never charged for the time it
// spends evicted.
//
// Thread affinity: a SearchJob is NOT internally synchronized. One thread
// at a time may call run_segment(); the introspection accessors are safe
// only between segments (the daemon snapshots progress from inside the
// control callback, which runs on the segment thread).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "automl/automl.h"

namespace flaml {

class SearchJob {
 public:
  // Fresh: never ran. Preempted: yielded at a trial boundary, checkpoint
  // held, resumable. Finished/Cancelled/Failed: terminal.
  enum class State { Fresh, Preempted, Finished, Cancelled, Failed };

  static const char* state_name(State state);

  // `data` is borrowed and must outlive the job. `options.search_control`
  // is ignored (run_segment installs its own per-segment control).
  SearchJob(const Dataset& data, AutoMLOptions options,
            std::vector<LearnerPtr> extra_learners = {});

  // Run one segment: from scratch (Fresh) or from the held checkpoint
  // (Preempted), until the search completes, `control` answers Preempt or
  // Cancel at a trial boundary, or the search's own budget/target/iteration
  // limits stop it. A null `control` runs the segment to completion.
  // Throws InvalidArgument when called on a terminal job; a learner/setup
  // exception inside the search marks the job Failed (see error()) rather
  // than propagating.
  State run_segment(
      const std::function<SearchSignal(std::size_t iteration)>& control = nullptr);

  State state() const { return state_; }
  bool terminal() const {
    return state_ == State::Finished || state_ == State::Cancelled ||
           state_ == State::Failed;
  }

  // The underlying search — results (history, best_*, metrics) are
  // meaningful once terminal; mid-preemption they reflect the last segment.
  const AutoML& automl() const { return automl_; }

  // Why a Failed job failed (empty otherwise).
  const std::string& error() const { return error_; }

  // The resume point held between segments (Preempted only).
  bool has_checkpoint() const { return checkpoint_.has_value(); }
  const resume::SearchCheckpoint& checkpoint() const;

  // Segments started so far (= 1 + number of resumes attempted).
  std::size_t segments() const { return segments_; }

  const AutoMLOptions& options() const { return options_; }

 private:
  const Dataset* data_;
  AutoMLOptions options_;
  AutoML automl_;
  std::optional<resume::SearchCheckpoint> checkpoint_;
  State state_ = State::Fresh;
  std::string error_;
  std::size_t segments_ = 0;
};

}  // namespace flaml
