#include "automl/automl.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <future>

#include "common/error.h"
#include "common/thread_pool.h"
#include "common/log.h"
#include "common/math_util.h"

namespace flaml {

namespace {

// Per-trial seed salt: FNV-1a of the learner name mixed with the learner's
// own proposal index. A pure function of (learner, per-learner trial count),
// so a trial's training seed does not depend on how concurrent trials of
// OTHER learners interleave — the keystone of parallel-search determinism.
std::uint64_t trial_salt(const std::string& learner, std::uint64_t index) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : learner) {
    h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
  }
  h ^= index + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h == 0 ? 1 : h;  // 0 means "use the runner's internal counter"
}

}  // namespace

const char* search_signal_name(SearchSignal signal) {
  switch (signal) {
    case SearchSignal::Run: return "run";
    case SearchSignal::Preempt: return "preempt";
    case SearchSignal::Cancel: return "cancel";
  }
  return "unknown";
}

AutoML::AutoML() = default;

void AutoML::add_learner(LearnerPtr learner) {
  FLAML_REQUIRE(learner != nullptr, "learner must not be null");
  for (const auto& existing : extra_learners_) {
    FLAML_REQUIRE(existing->name() != learner->name(),
                  "duplicate learner '" << learner->name() << "'");
  }
  extra_learners_.push_back(std::move(learner));
}

std::size_t AutoML::choose_learner(Rng& rng, bool greedy, double c) const {
  // Cold start: the caller guarantees the fastest learner runs first, which
  // calibrates every other learner's initial ECI1.
  std::vector<double> weights(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const LearnerState& s = states_[i];
    const bool can_grow = s.sample_size < runner_->max_sample_size();
    double eci = s.eci.eci(best_error_, c, can_grow);
    weights[i] = 1.0 / std::max(eci, 1e-9);
  }
  if (greedy) {
    return static_cast<std::size_t>(
        std::max_element(weights.begin(), weights.end()) - weights.begin());
  }
  return rng.categorical(weights);
}

void AutoML::fit(const Dataset& data, const AutoMLOptions& options) {
  run_search(data, options, nullptr);
}

void AutoML::resume_from(const Dataset& data, const AutoMLOptions& options,
                         const resume::SearchCheckpoint& checkpoint) {
  run_search(data, options, &checkpoint);
}

void AutoML::resume_from_file(const Dataset& data, const AutoMLOptions& options,
                              const std::string& path) {
  const resume::SearchCheckpoint checkpoint = resume::SearchCheckpoint::load(path);
  run_search(data, options, &checkpoint);
}

void AutoML::run_search(const Dataset& data, const AutoMLOptions& options,
                        const resume::SearchCheckpoint* checkpoint) {
  FLAML_REQUIRE(options.time_budget_seconds > 0.0, "time budget must be positive");
  FLAML_REQUIRE(options.sample_multiplier > 1.0, "sample multiplier must be > 1");
  FLAML_REQUIRE(options.budget_scale > 0.0, "budget_scale must be positive");
  FLAML_REQUIRE(options.n_parallel >= 1, "n_parallel must be >= 1");
  FLAML_REQUIRE(options.n_threads >= 1, "n_threads must be >= 1");
  FLAML_REQUIRE(options.checkpoint_every_n_trials == 0 ||
                    !options.checkpoint_path.empty(),
                "checkpoint_every_n_trials needs a checkpoint_path");
  data.validate();
  data_ = &data;
  history_.clear();
  states_.clear();
  best_model_.reset();
  ensemble_models_.clear();
  ensemble_weights_.clear();
  best_error_ = std::numeric_limits<double>::infinity();
  best_learner_.clear();
  best_config_.clear();
  best_sample_size_ = 0;
  metrics_.clear();
  racing_monitor_.clear();
  iteration_ = 0;
  calibrated_ = false;
  elapsed_offset_ = 0.0;
  elapsed_seconds_ = 0.0;
  interrupt_ = SearchSignal::Run;
  seed_ = options.seed;

  const Task task = data.task();
  rng_ = Rng(options.seed);
  Rng& rng = rng_;
  observe::Tracer tracer(options.trace_sink);

  // --- Metric ---
  ErrorMetric metric = options.custom_metric.has_value()
                           ? *options.custom_metric
                           : (options.metric.empty()
                                  ? ErrorMetric::default_for(task)
                                  : ErrorMetric::by_name(options.metric));
  metric_name_ = metric.name();

  if (tracer) {
    JsonValue fields = JsonValue::make_object();
    fields.set("task", JsonValue::make_string(task_name(task)));
    fields.set("metric", JsonValue::make_string(metric.name()));
    fields.set("budget_seconds", JsonValue::make_number(options.time_budget_seconds));
    fields.set("n_parallel", JsonValue::make_number(options.n_parallel));
    fields.set("n_threads", JsonValue::make_number(options.n_threads));
    fields.set("max_iterations",
               JsonValue::make_number(static_cast<double>(options.max_iterations)));
    fields.set("seed", JsonValue::make_number(static_cast<double>(options.seed)));
    fields.set("resumed", JsonValue::make_bool(checkpoint != nullptr));
    tracer.emit("run_started", std::move(fields));
  }

  // --- Step 0: resampling strategy proposer ---
  Resampling resampling;
  switch (options.resampling) {
    case ResamplingPolicy::ForceCV: resampling = Resampling::CV; break;
    case ResamplingPolicy::ForceHoldout: resampling = Resampling::Holdout; break;
    case ResamplingPolicy::Auto:
    default:
      resampling = propose_resampling(
          data.n_rows(), data.n_cols(),
          options.time_budget_seconds / options.budget_scale);
      break;
  }
  resampling_used_ = resampling;
  if (tracer) {
    JsonValue fields = JsonValue::make_object();
    fields.set("n_rows", JsonValue::make_number(static_cast<double>(data.n_rows())));
    fields.set("n_cols", JsonValue::make_number(static_cast<double>(data.n_cols())));
    fields.set("budget_seconds",
               JsonValue::make_number(options.time_budget_seconds /
                                      options.budget_scale));
    fields.set("chosen", JsonValue::make_string(resampling_name(resampling)));
    fields.set("forced",
               JsonValue::make_bool(options.resampling != ResamplingPolicy::Auto));
    tracer.emit("resampling_proposed", std::move(fields));
  }

  TrialRunner::Options runner_options;
  runner_options.resampling = resampling;
  runner_options.cv_folds = options.cv_folds;
  runner_options.holdout_ratio = options.holdout_ratio;
  runner_options.seed = options.seed;
  runner_options.n_threads = options.n_threads;
  runner_options.cost_model = options.trial_cost_model;
  runner_options.tracer = tracer;
  runner_options.reuse_binned_data = options.reuse_binned_data;
  runner_options.metrics = &metrics_;
  runner_ = std::make_unique<TrialRunner>(data, metric, runner_options);
  const std::size_t full_size = runner_->max_sample_size();

  // Racing applies only under holdout resampling: CV per-fold curves are
  // not comparable to a fixed-holdout envelope, so a CV search silently
  // runs with racing off even when options.racing.enabled is set.
  const bool racing_on =
      options.racing.enabled && resampling == Resampling::Holdout;

  // --- Learner lineup ---
  std::vector<LearnerPtr> lineup;
  {
    std::vector<LearnerPtr> pool = default_learners(task);
    for (const auto& l : extra_learners_) {
      if (l->supports(task)) pool.push_back(l);
    }
    if (options.estimator_list.empty()) {
      lineup = pool;
    } else {
      for (const auto& name : options.estimator_list) {
        bool found = false;
        for (const auto& l : pool) {
          if (l->name() == name) {
            lineup.push_back(l);
            found = true;
            break;
          }
        }
        FLAML_REQUIRE(found, "estimator '" << name << "' unknown or unsupported for "
                                           << task_name(task));
      }
    }
  }
  FLAML_REQUIRE(!lineup.empty(), "no learners available for this task");

  const std::size_t init_sample =
      options.sample_policy == SamplePolicy::FullData
          ? full_size
          : std::min(full_size, std::max<std::size_t>(options.initial_sample_size, 10));

  for (const auto& learner : lineup) {
    LearnerState state;
    state.learner = learner;
    state.space = std::make_unique<ConfigSpace>(learner->space(task, full_size));
    state.tuner = std::make_unique<Flow2>(*state.space, rng.next());
    state.tuner->set_tracer(tracer.with("learner", learner->name()));
    if (auto it = options.starting_points.find(learner->name());
        it != options.starting_points.end()) {
      state.tuner->set_start_point(it->second);
    }
    state.tuner->set_adaptation(init_sample >= full_size);
    state.sample_size = init_sample;
    states_.push_back(std::move(state));
  }

  // Cold-start order: the learner with the smallest cost multiplier first.
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < states_.size(); ++i) {
    if (states_[i].learner->initial_cost_multiplier() <
        states_[fastest].learner->initial_cost_multiplier()) {
      fastest = i;
    }
  }

  const double budget = options.time_budget_seconds;
  const double c = options.sample_multiplier;
  // Budget accounting that survives a crash: `elapsed()` includes the time
  // already spent before the checkpoint this run resumed from
  // (elapsed_offset_, restored below). The time source is injectable
  // (options.clock; a private steady-clock WallClock by default) and every
  // reading goes through a BudgetMeter, which accumulates only forward
  // motion — a source that jumps backwards cannot make the budget math
  // immortalize the search, and the steady default is immune to
  // system-time jumps in the first place.
  WallClock wall_clock;
  const Clock* clock_source =
      options.clock != nullptr ? options.clock : &wall_clock;
  BudgetMeter budget_meter(*clock_source);
  auto elapsed = [&]() { return budget_meter.elapsed() + elapsed_offset_; };

  // Cooperative yield points: polled at every trial boundary. A Preempt or
  // Cancel answer stops the search at that boundary (after draining any
  // in-flight parallel trials) without training a final model.
  auto poll_control = [&]() {
    if (!options.search_control) return false;
    const SearchSignal signal =
        options.search_control(static_cast<std::size_t>(iteration_));
    if (signal == SearchSignal::Run) return false;
    interrupt_ = signal;
    return true;
  };

  // --- Restore a checkpointed search (resume_from) ---
  // Everything constructed above is a deterministic function of (data,
  // options): metric, split, runner, lineup, spaces. The checkpoint supplies
  // the mutable state on top, after its fingerprint is cross-checked — a
  // checkpoint from a different search must throw, never silently diverge.
  if (checkpoint != nullptr) {
    const resume::SearchCheckpoint& ckpt = *checkpoint;
    FLAML_PARSE_REQUIRE(ckpt.task == task_name(task),
                        "checkpoint task '" << ckpt.task << "' != '"
                                            << task_name(task) << "'");
    FLAML_PARSE_REQUIRE(ckpt.metric == metric.name(),
                        "checkpoint metric '" << ckpt.metric << "' != '"
                                              << metric.name() << "'");
    FLAML_PARSE_REQUIRE(ckpt.seed == options.seed,
                        "checkpoint seed does not match options.seed");
    FLAML_PARSE_REQUIRE(ckpt.resampling == resampling_name(resampling),
                        "checkpoint resampling '" << ckpt.resampling << "' != '"
                                                  << resampling_name(resampling)
                                                  << "'");
    FLAML_PARSE_REQUIRE(ckpt.learners.size() == states_.size(),
                        "checkpoint has " << ckpt.learners.size()
                                          << " learners, this search has "
                                          << states_.size());
    runner_->from_json(ckpt.runner);
    for (std::size_t i = 0; i < states_.size(); ++i) {
      LearnerState& state = states_[i];
      const resume::LearnerCheckpoint& saved = ckpt.learners[i];
      FLAML_PARSE_REQUIRE(saved.name == state.learner->name(),
                          "checkpoint learner " << i << " is '" << saved.name
                                                << "', lineup has '"
                                                << state.learner->name() << "'");
      state.eci = EciState::from_json(saved.eci);
      state.tuner->from_json(saved.tuner);
      FLAML_PARSE_REQUIRE(saved.sample_size <= full_size,
                          "checkpoint sample_size for '"
                              << saved.name << "' exceeds the training size");
      state.sample_size = saved.sample_size;
      state.best_error = saved.best_error;
      state.best_config = saved.best_config;
      state.n_proposed = saved.n_proposed;
      state.tuner->set_adaptation(state.sample_size >= full_size);
    }
    iteration_ = static_cast<int>(ckpt.iteration);
    calibrated_ = ckpt.calibrated;
    elapsed_offset_ = ckpt.elapsed_seconds;
    elapsed_seconds_ = ckpt.elapsed_seconds;
    resume::restore_rng_value(rng_, ckpt.rng);
    best_learner_ = ckpt.best_learner;
    best_error_ = ckpt.best_error;
    best_sample_size_ = ckpt.best_sample_size;
    best_config_ = ckpt.best_config;
    history_ = ckpt.history;
    metrics_.state_from_json(ckpt.metrics);
    // Semantic validation (monotone envelopes, finite losses, no duplicate
    // keys) lives in RacingMonitor::from_json — checkpoint.cpp only checks
    // structure, because flaml_resume cannot link against flaml_automl.
    if (ckpt.racing.is_object()) {
      racing_monitor_.from_json(ckpt.racing);
    } else {
      racing_monitor_.clear();
    }
    for (const resume::PendingTrial& p : ckpt.pending) {
      // Re-derive the salt the original launch used: a pure function of
      // (learner, per-learner index), so a tampered salt is detectable.
      FLAML_PARSE_REQUIRE(p.seed_salt == trial_salt(p.learner, p.trial_index),
                          "pending trial seed_salt does not match its learner "
                          "and index");
      FLAML_PARSE_REQUIRE(p.sample_size <= full_size,
                          "pending trial sample_size exceeds the training size");
      bool found = false;
      for (const LearnerState& state : states_) {
        if (state.learner->name() != p.learner) continue;
        found = true;
        FLAML_PARSE_REQUIRE(p.trial_index <= state.n_proposed,
                            "pending trial_index exceeds the learner's "
                            "proposal count");
      }
      FLAML_PARSE_REQUIRE(found, "pending trial learner '" << p.learner
                                                           << "' not in lineup");
    }
  }

  // --- Step 2: hyperparameter & sample size proposer (for one learner) ---
  struct Proposal {
    Config config;
    bool grow_sample = false;
    std::uint64_t seed_salt = 0;
    std::uint64_t trial_index = 0;  // per-learner, 1-based
  };
  auto propose = [&](LearnerState& state) {
    Proposal p;
    p.trial_index = ++state.n_proposed;
    p.seed_salt = trial_salt(state.learner->name(), p.trial_index);
    const bool can_grow = options.sample_policy == SamplePolicy::Adaptive &&
                          state.sample_size < full_size;
    if (state.eci.tried() && can_grow &&
        state.eci.eci1() >= state.eci.eci2(c, can_grow) && state.tuner->has_best()) {
      p.grow_sample = true;
      const std::size_t previous = state.sample_size;
      state.sample_size = std::min(
          full_size, static_cast<std::size_t>(std::lround(
                         static_cast<double>(state.sample_size) * c)));
      p.config = state.tuner->best_config();
      metrics_.add("sample_doublings");
      if (tracer) {
        JsonValue fields = JsonValue::make_object();
        fields.set("learner", JsonValue::make_string(state.learner->name()));
        fields.set("from", JsonValue::make_number(static_cast<double>(previous)));
        fields.set("to",
                   JsonValue::make_number(static_cast<double>(state.sample_size)));
        tracer.emit("sample_doubled", std::move(fields));
      }
    } else {
      p.config = state.tuner->ask();
    }
    return p;
  };

  // One entry per learner: the full ECI / ECI1 / ECI2 picture the proposer
  // decided from (infinities encode "not computable yet" before the
  // cold-start calibration, and "cannot grow" for ECI2).
  auto eci_vector_json = [&]() {
    JsonValue arr = JsonValue::make_array();
    for (const auto& s : states_) {
      const bool can_grow = s.sample_size < runner_->max_sample_size();
      const bool known = s.eci.tried() || s.eci.initial_eci1 > 0.0;
      const double inf = std::numeric_limits<double>::infinity();
      JsonValue e = JsonValue::make_object();
      e.set("learner", JsonValue::make_string(s.learner->name()));
      e.set("eci", observe::json_error_field(
                       known ? s.eci.eci(best_error_, c, can_grow) : inf));
      e.set("eci1", observe::json_error_field(known ? s.eci.eci1() : inf));
      e.set("eci2", observe::json_error_field(known ? s.eci.eci2(c, can_grow) : inf));
      e.set("best_error", observe::json_error_field(s.eci.best_error));
      e.set("n_trials", JsonValue::make_number(s.eci.n_trials));
      e.set("sample_size",
            JsonValue::make_number(static_cast<double>(s.sample_size)));
      arr.push(std::move(e));
    }
    return arr;
  };
  auto trace_learner_proposed = [&](std::size_t idx, std::size_t slot) {
    if (!tracer) return;
    const char* mode = "cold_start";
    if (calibrated_) {
      switch (options.learner_choice) {
        case LearnerChoice::RoundRobin: mode = "round_robin"; break;
        case LearnerChoice::EciGreedy: mode = "eci_greedy"; break;
        case LearnerChoice::EciSampling:
        default: mode = "eci_sampling"; break;
      }
    }
    JsonValue fields = JsonValue::make_object();
    fields.set("slot", JsonValue::make_number(static_cast<double>(slot)));
    fields.set("learner", JsonValue::make_string(states_[idx].learner->name()));
    fields.set("mode", JsonValue::make_string(mode));
    fields.set("eci", eci_vector_json());
    tracer.emit("learner_proposed", std::move(fields));
  };

  // --- Step 3 bookkeeping after a trial finished ---
  // `run_sample` is the launch-time sample size the trial actually trained
  // on (commit-time state.sample_size may differ after a FLOW2 restart);
  // it keys the racing envelope the trial's curve feeds.
  auto commit = [&](LearnerState& state, const Proposal& proposal,
                    const TrialResult& trial, std::size_t run_sample) {
    ++iteration_;
    elapsed_seconds_ = elapsed();
    state.eci.record(trial.cost, trial.error, trial.ok);
    if (proposal.grow_sample) {
      state.tuner->update_incumbent_error(trial.error);
    } else {
      state.tuner->tell(trial.error);
    }
    state.tuner->set_adaptation(state.sample_size >= full_size);

    // Restart on convergence at full sample size (escape local optima,
    // FairChance); the sample size resets with the restart.
    if (state.tuner->converged() && state.sample_size >= full_size) {
      state.tuner->restart();
      metrics_.add("flow2_restarts");
      if (options.sample_policy == SamplePolicy::Adaptive) {
        state.sample_size = init_sample;
        state.tuner->set_adaptation(init_sample >= full_size);
      }
    }

    if (trial.ok && trial.error < state.best_error) {
      state.best_error = trial.error;
      state.best_config = proposal.config;
    }
    const bool improved_global = trial.ok && trial.error < best_error_;
    if (improved_global) {
      best_error_ = trial.error;
      best_config_ = proposal.config;
      best_learner_ = state.learner->name();
      best_sample_size_ = state.sample_size;
      metrics_.set("best_error", best_error_);
      metrics_.set("time_to_best_seconds", elapsed_seconds_);
      metrics_.set("iteration_of_best", iteration_);
    }
    metrics_.add("trials_total");
    metrics_.add("trials." + state.learner->name());
    switch (trial.status) {
      case TrialStatus::Ok: metrics_.add("trials_ok"); break;
      case TrialStatus::Killed: metrics_.add("trials_killed"); break;
      case TrialStatus::Failed: metrics_.add("trials_failed"); break;
      case TrialStatus::Raced: metrics_.add("trials_raced"); break;
    }
    metrics_.observe("trial_cost", trial.cost);
    if (trial.ok) metrics_.observe("trial_error", trial.error);
    if (racing_on && trial.ok && !trial.curve.empty()) {
      // Only completed trials set envelopes: a raced trial's truncated curve
      // would otherwise look artificially strong at its kill point.
      racing_monitor_.record(state.learner->name(), run_sample, trial.curve);
    }
    if (tracer) {
      JsonValue config = JsonValue::make_object();
      for (const auto& [name, value] : proposal.config) {
        config.set(name, JsonValue::make_number(value));
      }
      JsonValue fields = JsonValue::make_object();
      fields.set("iteration", JsonValue::make_number(iteration_));
      fields.set("learner", JsonValue::make_string(state.learner->name()));
      fields.set("trial",
                 JsonValue::make_number(static_cast<double>(proposal.trial_index)));
      fields.set("sample_size",
                 JsonValue::make_number(static_cast<double>(state.sample_size)));
      fields.set("config", std::move(config));
      fields.set("error", observe::json_error_field(trial.error));
      fields.set("cost", JsonValue::make_number(trial.cost));
      fields.set("elapsed_seconds",
                 JsonValue::make_number(trial.elapsed_seconds));
      fields.set("status", JsonValue::make_string(trial_status_name(trial.status)));
      fields.set("improved", JsonValue::make_bool(improved_global));
      fields.set("best_error_so_far", observe::json_error_field(best_error_));
      tracer.emit("trial_finished", std::move(fields));
    }

    TrialRecord record;
    record.iteration = iteration_;
    record.finished_at = elapsed_seconds_;
    record.learner = state.learner->name();
    record.config = proposal.config;
    record.sample_size = state.sample_size;
    record.error = trial.error;
    record.cost = trial.cost;
    record.best_error_so_far = best_error_;
    history_.push_back(std::move(record));

    if (!calibrated_) {
      // Calibrate cold-start ECI1 of the other learners from the fastest
      // learner's first (smallest) cost.
      const double base_cost =
          trial.cost / states_[fastest].learner->initial_cost_multiplier();
      for (auto& other : states_) {
        other.eci.initial_eci1 =
            base_cost * other.learner->initial_cost_multiplier();
      }
      calibrated_ = true;
    }
    FLAML_LOG(Debug) << "iter " << iteration_ << " learner=" << state.learner->name()
                     << " s=" << state.sample_size << " err=" << trial.error
                     << " cost=" << trial.cost;
  };

  // `pending` = trials launched but not yet committed (0 in serial mode):
  // round-robin rotates over the slot index iteration + pending so that a
  // parallel launch sequence visits learners in exactly the serial order.
  auto pick_learner = [&](std::size_t pending) -> std::size_t {
    if (!calibrated_) return fastest;  // appendix rule: fastest learner first
    if (options.learner_choice == LearnerChoice::RoundRobin) {
      return (static_cast<std::size_t>(iteration_) + pending) % states_.size();
    }
    return choose_learner(rng, options.learner_choice == LearnerChoice::EciGreedy, c);
  };

  auto target_reached = [&]() {
    return options.target_error >= 0.0 && best_error_ <= options.target_error;
  };
  auto iterations_left = [&](std::size_t pending) {
    return options.max_iterations == 0 ||
           static_cast<std::size_t>(iteration_) + pending < options.max_iterations;
  };

  // Runs after every commit: write the checkpoint when one is due, then
  // fire the test hook. `pending` = trials launched but not yet committed
  // at this boundary (what a resume must re-run first).
  auto after_commit = [&](const std::vector<resume::PendingTrial>& pending) {
    if (options.checkpoint_every_n_trials > 0 &&
        static_cast<std::size_t>(iteration_) %
                options.checkpoint_every_n_trials ==
            0) {
      make_checkpoint(pending, false).save(options.checkpoint_path);
    }
    if (options.on_trial_committed) {
      options.on_trial_committed(static_cast<std::size_t>(iteration_));
    }
  };

  // Launch-time racing plan: a snapshot of the incumbent envelope for this
  // (learner, sample size). A trial races against exactly the envelopes
  // known when it LAUNCHED, never ones committed while it runs — that makes
  // racing decisions a pure function of the (deterministic) launch/commit
  // interleaving, and is also what a checkpoint's pending list must carry so
  // a resumed re-run of an in-flight trial races the same envelope.
  auto racing_plan_for = [&](const std::string& learner,
                             std::size_t sample_size) {
    RacingPlan plan;
    if (!racing_on) return plan;
    plan.enabled = true;
    plan.options = options.racing;
    plan.envelope = racing_monitor_.envelope(learner, sample_size);
    return plan;
  };
  auto plan_from_pending = [&](const resume::PendingTrial& p) {
    RacingPlan plan;
    plan.enabled = p.racing_enabled;
    plan.options = options.racing;
    plan.envelope = p.envelope;
    return plan;
  };

  // A proposal reconstructed from (or destined for) a checkpoint's pending
  // list. Launch order is the commit order, so resume re-runs these FIFO.
  auto to_pending = [&](const LearnerState& state, const Proposal& proposal,
                        std::size_t sample_size, const RacingPlan& plan) {
    resume::PendingTrial p;
    p.learner = state.learner->name();
    p.trial_index = proposal.trial_index;
    p.seed_salt = proposal.seed_salt;
    p.grow_sample = proposal.grow_sample;
    p.sample_size = sample_size;
    p.config = proposal.config;
    p.racing_enabled = plan.enabled;
    p.envelope = plan.envelope;
    return p;
  };
  auto from_pending = [&](const resume::PendingTrial& p) {
    Proposal proposal;
    proposal.config = p.config;
    proposal.grow_sample = p.grow_sample;
    proposal.seed_salt = p.seed_salt;
    proposal.trial_index = p.trial_index;
    return proposal;
  };
  auto state_index = [&](const std::string& learner) {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i].learner->name() == learner) return i;
    }
    FLAML_CHECK_MSG(false, "learner '" << learner << "' vanished from lineup");
    return states_.size();
  };

  if (options.n_parallel <= 1) {
    if (checkpoint != nullptr && !checkpoint->pending.empty()) {
      // Trials that were in flight when the checkpoint was written (the
      // original run was parallel): re-run them first, in launch order —
      // commits happen in exactly the order the parallel controller would
      // have consumed them.
      std::vector<resume::PendingTrial> queue = checkpoint->pending;
      while (!queue.empty()) {
        const resume::PendingTrial p = queue.front();
        queue.erase(queue.begin());
        LearnerState& state = states_[state_index(p.learner)];
        Proposal proposal = from_pending(p);
        const RacingPlan plan = plan_from_pending(p);
        const double remaining = std::max(budget - elapsed(), 0.0);
        TrialResult trial = runner_->run(*state.learner, proposal.config,
                                         p.sample_size, remaining,
                                         proposal.seed_salt, &plan);
        commit(state, proposal, trial, p.sample_size);
        after_commit(queue);
      }
    }
    while (elapsed() < budget && !target_reached() && iterations_left(0)) {
      if (poll_control()) break;
      const std::size_t idx = pick_learner(0);
      trace_learner_proposed(idx, static_cast<std::size_t>(iteration_));
      LearnerState& state = states_[idx];
      Proposal proposal = propose(state);
      const std::size_t run_sample = state.sample_size;
      const RacingPlan plan =
          racing_plan_for(state.learner->name(), run_sample);
      const double remaining = budget - elapsed();
      if (remaining <= 0.0) break;
      TrialResult trial = runner_->run(*state.learner, proposal.config,
                                       run_sample, remaining,
                                       proposal.seed_salt, &plan);
      commit(state, proposal, trial, run_sample);
      after_commit({});
    }
  } else {
    // Parallel mode (paper appendix): up to n_parallel trials in flight, at
    // most one per learner (FLOW2's ask/tell is sequential per learner).
    // Proposals and bookkeeping stay on this thread; only the trials run on
    // the pool. Completions are consumed in launch order, which keeps the
    // history deterministic given the trial outcomes.
    struct InFlight {
      std::size_t state_idx = 0;
      Proposal proposal;
      std::size_t sample_size = 0;  // at launch (== commit-time state value)
      RacingPlan plan;              // envelope snapshot at launch
      std::future<TrialResult> future;
    };
    ThreadPool pool(static_cast<std::size_t>(options.n_parallel));
    std::vector<InFlight> inflight;
    std::vector<bool> busy(states_.size(), false);

    // The still-uncommitted launches, for the checkpoint written after each
    // commit: a resume re-runs exactly these before proposing anything new.
    auto inflight_pending = [&]() {
      std::vector<resume::PendingTrial> pending;
      pending.reserve(inflight.size());
      for (const InFlight& entry : inflight) {
        pending.push_back(to_pending(states_[entry.state_idx], entry.proposal,
                                     entry.sample_size, entry.plan));
      }
      return pending;
    };

    auto launch = [&](std::size_t idx, Proposal proposal,
                      std::size_t sample_size, double remaining,
                      RacingPlan plan) {
      busy[idx] = true;
      const Learner* learner = states_[idx].learner.get();
      Config config = proposal.config;
      const std::uint64_t salt = proposal.seed_salt;
      InFlight entry;
      entry.state_idx = idx;
      entry.proposal = std::move(proposal);
      entry.sample_size = sample_size;
      entry.plan = plan;  // kept for the checkpoint's pending list
      entry.future = pool.submit(
          // The worker races against its own copy of the plan — the
          // inflight vector may reallocate while the trial runs.
          [this, learner, config, sample_size, remaining, salt,
           plan = std::move(plan)] {
            return runner_->run(*learner, config, sample_size, remaining, salt,
                                &plan);
          });
      inflight.push_back(std::move(entry));
    };

    if (checkpoint != nullptr) {
      // Re-launch the trials that were in flight when the checkpoint was
      // written, in their original launch order; the commit loop below
      // consumes them FIFO exactly as the uninterrupted run would have.
      for (const resume::PendingTrial& p : checkpoint->pending) {
        const std::size_t idx = state_index(p.learner);
        FLAML_PARSE_REQUIRE(!busy[idx], "two pending trials for learner '"
                                            << p.learner << "'");
        launch(idx, from_pending(p), p.sample_size,
               std::max(budget - elapsed(), 0.0), plan_from_pending(p));
      }
    }

    auto launch_one = [&]() -> bool {
      const double remaining = budget - elapsed();
      if (remaining <= 0.0 || !iterations_left(inflight.size())) return false;
      for (int attempt = 0; attempt < 16; ++attempt) {
        std::size_t idx = pick_learner(inflight.size());
        if (busy[idx]) {
          // One outstanding trial per learner. Round-robin always maps the
          // current slot to the same learner, so retrying cannot help.
          if (options.learner_choice == LearnerChoice::RoundRobin) return false;
          continue;
        }
        trace_learner_proposed(idx,
                               static_cast<std::size_t>(iteration_) + inflight.size());
        LearnerState& state = states_[idx];
        Proposal proposal = propose(state);
        const std::size_t run_sample = state.sample_size;
        launch(idx, std::move(proposal), run_sample, remaining,
               racing_plan_for(state.learner->name(), run_sample));
        return true;
      }
      return false;
    };

    while (elapsed() < budget && !target_reached() &&
           (!inflight.empty() || iterations_left(0))) {
      if (poll_control()) break;
      // The calibration trial runs alone (its cost seeds every ECI).
      const int cap = calibrated_ ? options.n_parallel : 1;
      while (static_cast<int>(inflight.size()) < cap && launch_one()) {
      }
      if (inflight.empty()) break;
      InFlight front = std::move(inflight.front());
      inflight.erase(inflight.begin());
      TrialResult trial = front.future.get();
      busy[front.state_idx] = false;
      commit(states_[front.state_idx], front.proposal, trial,
             front.sample_size);
      after_commit(inflight_pending());
    }
    // Drain: runs after a normal exit AND after a Preempt/Cancel break, so
    // an interrupted search always stops at a clean trial boundary with an
    // empty in-flight list — exactly the state checkpoint_to() snapshots.
    while (!inflight.empty()) {
      InFlight front = std::move(inflight.front());
      inflight.erase(inflight.begin());
      TrialResult trial = front.future.get();
      busy[front.state_idx] = false;
      commit(states_[front.state_idx], front.proposal, trial,
             front.sample_size);
      after_commit(inflight_pending());
    }
  }

  if (interrupt_ != SearchSignal::Run) {
    // Cooperative stop (preempt/cancel): no final model, no ensemble, no
    // run_summary — the segment may continue later via resume_from().
    // elapsed_seconds_ keeps its last-commit value so checkpoint_to()
    // writes exactly what the after-commit auto-writer would have written
    // at this boundary (the contract stress_resume proves byte-exact).
    if (tracer) {
      JsonValue fields = JsonValue::make_object();
      fields.set("signal", JsonValue::make_string(search_signal_name(interrupt_)));
      fields.set("iteration", JsonValue::make_number(iteration_));
      fields.set("elapsed_seconds", JsonValue::make_number(elapsed_seconds_));
      tracer.emit("run_interrupted", std::move(fields));
    }
    return;
  }

  // --- Final model ---
  if (best_learner_.empty()) {
    // Budget too small for even one trial: fall back to the fastest
    // learner's initial configuration so predict() always works.
    LearnerState& state = states_[fastest];
    best_learner_ = state.learner->name();
    best_config_ = state.space->initial_config();
    best_sample_size_ = init_sample;
  }
  for (auto& state : states_) {
    if (state.learner->name() == best_learner_) {
      // With retrain_full the final fit uses all training rows; otherwise
      // only the best trial's sample size (cheaper, slightly less accurate).
      if (options.retrain_full) {
        best_model_ = runner_->train_final(*state.learner, best_config_, 2.0 * budget);
      } else {
        TrainContext ctx;
        DataView all_rows(data);
        ctx.train = all_rows.prefix(std::max<std::size_t>(best_sample_size_, 2));
        ctx.seed = options.seed;
        ctx.n_threads = options.n_threads;
        best_model_ = state.learner->train(ctx, best_config_);
      }
      break;
    }
  }
  FLAML_CHECK(best_model_ != nullptr);

  if (options.enable_ensemble) {
    // Simplified stacked ensemble (paper appendix): blend the per-learner
    // best models with weights decaying in validation error.
    std::vector<std::pair<double, const LearnerState*>> ranked;
    for (const auto& state : states_) {
      if (std::isfinite(state.best_error)) ranked.emplace_back(state.best_error, &state);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [error, state] : ranked) {
      ensemble_models_.push_back(
          runner_->train_final(*state->learner, state->best_config, budget));
      ensemble_weights_.push_back(1.0 / (1.0 + error - ranked.front().first));
    }
    double total = 0.0;
    for (double w : ensemble_weights_) total += w;
    for (double& w : ensemble_weights_) w /= total;
  }

  if (tracer) {
    JsonValue config = JsonValue::make_object();
    for (const auto& [name, value] : best_config_) {
      config.set(name, JsonValue::make_number(value));
    }
    JsonValue fields = JsonValue::make_object();
    fields.set("n_trials",
               JsonValue::make_number(static_cast<double>(history_.size())));
    fields.set("best_learner", JsonValue::make_string(best_learner_));
    fields.set("best_error", observe::json_error_field(best_error_));
    fields.set("best_config", std::move(config));
    fields.set("best_sample_size",
               JsonValue::make_number(static_cast<double>(best_sample_size_)));
    fields.set("resampling", JsonValue::make_string(resampling_name(resampling)));
    fields.set("elapsed_seconds", JsonValue::make_number(elapsed()));
    fields.set("metrics", metrics_.to_json());
    tracer.emit("run_summary", std::move(fields));
  }
  elapsed_seconds_ = elapsed();
}

resume::SearchCheckpoint AutoML::make_checkpoint(
    const std::vector<resume::PendingTrial>& pending, bool include_model) const {
  resume::SearchCheckpoint ckpt;
  ckpt.task = task_name(data_->task());
  ckpt.metric = metric_name_;
  ckpt.seed = seed_;
  ckpt.resampling = resampling_name(resampling_used_);
  ckpt.iteration = static_cast<std::uint64_t>(iteration_);
  ckpt.calibrated = calibrated_;
  ckpt.elapsed_seconds = elapsed_seconds_;
  ckpt.rng = resume::json_rng(rng_);
  // The checkpoint's best is the SEARCH-found best: when no trial succeeded,
  // best_learner_ may still name the fallback (fastest learner, initial
  // config) after fit() returns — a resume re-derives that fallback itself.
  if (std::isfinite(best_error_)) {
    ckpt.best_learner = best_learner_;
    ckpt.best_error = best_error_;
    ckpt.best_sample_size = best_sample_size_;
    ckpt.best_config = best_config_;
  }
  for (const LearnerState& state : states_) {
    resume::LearnerCheckpoint l;
    l.name = state.learner->name();
    l.eci = state.eci.to_json();
    l.tuner = state.tuner->to_json();
    l.sample_size = state.sample_size;
    l.best_error = state.best_error;
    l.best_config = state.best_config;
    l.n_proposed = state.n_proposed;
    ckpt.learners.push_back(std::move(l));
  }
  ckpt.pending = pending;
  ckpt.history = history_;
  ckpt.runner = runner_->to_json();
  ckpt.metrics = metrics_.state_to_json();
  ckpt.racing = racing_monitor_.to_json();
  if (include_model && best_model_ != nullptr && ensemble_models_.empty()) {
    try {
      std::ostringstream blob;
      save_best_model(blob);
      ckpt.model_blob = blob.str();
    } catch (const InvalidArgument&) {
      // Custom learners without model serialization still get a full search
      // checkpoint — just no predictor blob (same as ensemble mode).
    }
  }
  return ckpt;
}

resume::SearchCheckpoint AutoML::checkpoint_to() const {
  FLAML_REQUIRE(runner_ != nullptr, "checkpoint_to() before fit()");
  return make_checkpoint({}, true);
}

void AutoML::checkpoint_to_file(const std::string& path) const {
  checkpoint_to().save(path);
}

Predictions AutoML::predict(const DataView& view) const {
  FLAML_REQUIRE(best_model_ != nullptr, "predict() before fit()");
  if (ensemble_models_.empty()) return best_model_->predict(view);
  // Weighted average of ensemble member predictions.
  Predictions blended = ensemble_models_[0]->predict(view);
  for (double& v : blended.values) v *= ensemble_weights_[0];
  for (std::size_t m = 1; m < ensemble_models_.size(); ++m) {
    Predictions p = ensemble_models_[m]->predict(view);
    FLAML_CHECK(p.values.size() == blended.values.size());
    for (std::size_t i = 0; i < p.values.size(); ++i) {
      blended.values[i] += ensemble_weights_[m] * p.values[i];
    }
  }
  return blended;
}

void AutoML::save_best_model(std::ostream& out) const {
  FLAML_REQUIRE(best_model_ != nullptr, "save_best_model() before fit()");
  FLAML_REQUIRE(ensemble_models_.empty(),
                "ensemble models are not serializable; disable enable_ensemble");
  out << "flaml-model v1 " << best_learner_ << '\n';
  best_model_->save(out);
}

void AutoML::save_best_model_file(const std::string& path) const {
  std::ofstream out(path);
  FLAML_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  save_best_model(out);
}

std::unique_ptr<Model> load_automl_model(std::istream& in,
                                         const std::vector<LearnerPtr>& extra_learners) {
  std::string magic, version, learner_name;
  in >> magic >> version >> learner_name;
  FLAML_REQUIRE(magic == "flaml-model" && version == "v1",
                "bad flaml model header");
  for (const auto& l : extra_learners) {
    if (l->name() == learner_name) return l->load_model(in);
  }
  return builtin_learner(learner_name)->load_model(in);
}

std::unique_ptr<Model> load_automl_model_file(
    const std::string& path, const std::vector<LearnerPtr>& extra_learners) {
  std::ifstream in(path);
  FLAML_REQUIRE(in.good(), "cannot open model file '" << path << "'");
  return load_automl_model(in, extra_learners);
}

void write_history_csv(std::ostream& out, const TrialHistory& history) {
  out << "iteration,finished_at,learner,sample_size,cost,error,best_error,config\n";
  out.precision(12);
  for (const auto& r : history) {
    out << r.iteration << ',' << r.finished_at << ',' << r.learner << ','
        << r.sample_size << ',' << r.cost << ',' << r.error << ','
        << r.best_error_so_far << ',';
    bool first = true;
    for (const auto& [name, value] : r.config) {
      out << (first ? "" : "|") << name << '=' << value;
      first = false;
    }
    out << '\n';
  }
}

std::vector<std::pair<std::string, double>> AutoML::per_learner_best() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(states_.size());
  for (const auto& state : states_) {
    out.emplace_back(state.learner->name(), state.best_error);
  }
  return out;
}

}  // namespace flaml
