#include "automl/substrate_cache.h"

#include "common/error.h"
#include "common/rng.h"

namespace flaml {

SubstrateCache::SubstrateCache(const DataView* train_view,
                               std::uint64_t fold_seed, observe::Tracer tracer,
                               observe::MetricsRegistry* metrics)
    : train_view_(train_view),
      fold_seed_(fold_seed),
      tracer_(std::move(tracer)),
      metrics_(metrics) {
  FLAML_REQUIRE(train_view_ != nullptr, "substrate cache needs a train view");
}

std::shared_ptr<SubstrateCache::SubstrateEntry> SubstrateCache::substrate_entry(
    const SubstrateKey& key) {
  bool miss = false;
  std::shared_ptr<SubstrateEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = substrates_.try_emplace(key);
    if (inserted) it->second = std::make_shared<SubstrateEntry>();
    entry = it->second;
    miss = inserted;
    if (miss) {
      ++counters_.misses;
    } else {
      ++counters_.hits;
    }
  }
  // The registry has its own mutex; keep the two locks disjoint.
  if (metrics_ != nullptr) {
    metrics_->add(miss ? "substrate_cache.misses" : "substrate_cache.hits");
  }
  return entry;
}

void SubstrateCache::record_build(const SubstrateKey& key,
                                  const BinnedSubstrate& built) {
  const std::size_t built_bytes = built.bytes();
  std::size_t total_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.bytes += built_bytes;
    total_bytes = counters_.bytes;
  }
  if (metrics_ != nullptr) {
    metrics_->set("substrate_cache.bytes", static_cast<double>(total_bytes));
  }
  if (tracer_) {
    const auto& [sample_size, k, fold, max_bin] = key;
    JsonValue fields = JsonValue::make_object();
    fields.set("scope", JsonValue::make_string(k == 0 ? "prefix" : "fold"));
    fields.set("sample_size",
               JsonValue::make_number(static_cast<double>(sample_size)));
    fields.set("k", JsonValue::make_number(k));
    fields.set("fold", JsonValue::make_number(fold));
    fields.set("max_bin", JsonValue::make_number(max_bin));
    fields.set("rows", JsonValue::make_number(
                           static_cast<double>(built.binned.n_rows())));
    fields.set("bytes", JsonValue::make_number(static_cast<double>(built_bytes)));
    fields.set("total_bytes",
               JsonValue::make_number(static_cast<double>(total_bytes)));
    // Packed-layout accounting: 0 bytes when the scalar kernel is forced,
    // otherwise the row-major code plane served to the SIMD kernels
    // ("u8" at the default max_bin = 255 — half the column matrix).
    fields.set("packed_bytes", JsonValue::make_number(
                                   static_cast<double>(built.packed.bytes())));
    fields.set("packed_width",
               JsonValue::make_string(built.packed.empty()  ? "none"
                                      : built.packed.wide() ? "u16"
                                                            : "u8"));
    tracer_.emit("substrate_cache", std::move(fields));
  }
}

std::shared_ptr<const BinnedSubstrate> SubstrateCache::prefix(
    std::size_t sample_size, int max_bin) {
  FLAML_REQUIRE(sample_size >= 1 && sample_size <= train_view_->n_rows(),
                "substrate prefix size out of range");
  const SubstrateKey key{sample_size, 0, -1, max_bin};
  auto entry = substrate_entry(key);
  std::call_once(entry->once, [&] {
    entry->value = std::make_shared<const BinnedSubstrate>(
        build_substrate(train_view_->prefix(sample_size), max_bin));
    record_build(key, *entry->value);
  });
  return entry->value;
}

std::shared_ptr<const std::vector<Fold>> SubstrateCache::folds(
    std::size_t sample_size, int k) {
  const FoldsKey key{sample_size, k};
  std::shared_ptr<FoldsEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = folds_.try_emplace(key);
    if (inserted) it->second = std::make_shared<FoldsEntry>();
    entry = it->second;
  }
  std::call_once(entry->once, [&] {
    // Exactly the uncached path: a FRESH rng from the fold seed per
    // partition, so the memoized folds equal what run() would draw.
    Rng fold_rng(fold_seed_);
    entry->value = std::make_shared<const std::vector<Fold>>(
        kfold_split(train_view_->prefix(sample_size), k, fold_rng));
  });
  return entry->value;
}

std::shared_ptr<const BinnedSubstrate> SubstrateCache::fold_train(
    std::size_t sample_size, int k, int fold_index, int max_bin) {
  FLAML_REQUIRE(k >= 2 && fold_index >= 0 && fold_index < k,
                "substrate fold index out of range");
  const SubstrateKey key{sample_size, k, fold_index, max_bin};
  auto entry = substrate_entry(key);
  std::call_once(entry->once, [&] {
    auto parts = folds(sample_size, k);
    entry->value = std::make_shared<const BinnedSubstrate>(build_substrate(
        (*parts)[static_cast<std::size_t>(fold_index)].train, max_bin));
    record_build(key, *entry->value);
  });
  return entry->value;
}

SubstrateCache::Counters SubstrateCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace flaml
