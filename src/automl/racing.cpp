#include "automl/racing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "resume/serial_util.h"

namespace flaml {

bool racing_dominated(const RacingOptions& options,
                      const std::vector<double>& envelope,
                      std::size_t iteration, double running_best) {
  if (envelope.empty() || iteration == 0) return false;
  if (options.grace_iterations > 0 &&
      iteration <= static_cast<std::size_t>(options.grace_iterations)) {
    return false;
  }
  const std::size_t idx = std::min(iteration, envelope.size()) - 1;
  const double ref = envelope[idx];
  if (!std::isfinite(ref) || !std::isfinite(running_best)) return false;
  const double threshold =
      ref + options.slack_abs + options.slack_rel * std::fabs(ref);
  return running_best > threshold;
}

namespace {

std::vector<double> running_min(const std::vector<double>& curve) {
  std::vector<double> out;
  out.reserve(curve.size());
  double best = std::numeric_limits<double>::infinity();
  for (double v : curve) {
    best = std::min(best, v);
    out.push_back(best);
  }
  return out;
}

// Caps on what a corrupt checkpoint can make from_json allocate.
constexpr std::size_t kMaxEnvelopes = 100000;
constexpr std::size_t kMaxCurvePoints = 1u << 20;

}  // namespace

void RacingMonitor::record(const std::string& learner, std::size_t sample_size,
                           const std::vector<double>& curve) {
  if (curve.empty()) return;
  std::vector<double> env = running_min(curve);
  const double final_best = env.back();
  if (!std::isfinite(final_best)) return;
  Entry* entry = find(learner, sample_size);
  if (entry == nullptr) {
    entries_.push_back(Entry{learner, sample_size, std::move(env), final_best});
    return;
  }
  if (final_best < entry->best) {
    entry->curve = std::move(env);
    entry->best = final_best;
  }
}

std::vector<double> RacingMonitor::envelope(const std::string& learner,
                                            std::size_t sample_size) const {
  const Entry* entry = find(learner, sample_size);
  return entry != nullptr ? entry->curve : std::vector<double>{};
}

JsonValue RacingMonitor::to_json() const {
  JsonValue out = JsonValue::make_object();
  JsonValue envelopes = JsonValue::make_array();
  for (const Entry& entry : entries_) {
    JsonValue e = JsonValue::make_object();
    e.set("learner", JsonValue::make_string(entry.learner));
    e.set("sample_size", resume::json_size(entry.sample_size));
    e.set("best", resume::json_double(entry.best));
    JsonValue curve = JsonValue::make_array();
    for (double v : entry.curve) curve.push(resume::json_double(v));
    e.set("curve", std::move(curve));
    envelopes.push(std::move(e));
  }
  out.set("envelopes", std::move(envelopes));
  return out;
}

void RacingMonitor::from_json(const JsonValue& value) {
  FLAML_PARSE_REQUIRE(value.is_object(), "racing state must be an object");
  const JsonValue& envelopes =
      resume::req_array(value, "envelopes", kMaxEnvelopes);
  std::vector<Entry> loaded;
  loaded.reserve(envelopes.array.size());
  for (const JsonValue& e : envelopes.array) {
    FLAML_PARSE_REQUIRE(e.is_object(), "racing envelope must be an object");
    Entry entry;
    entry.learner = resume::req_string(e, "learner");
    FLAML_PARSE_REQUIRE(!entry.learner.empty(),
                        "racing envelope learner name empty");
    entry.sample_size = resume::req_size(e, "sample_size",
                                         std::numeric_limits<std::size_t>::max() / 2);
    entry.best = resume::req_finite(e, "best");
    const JsonValue& curve = resume::req_array(e, "curve", kMaxCurvePoints);
    FLAML_PARSE_REQUIRE(!curve.array.empty(), "racing envelope curve empty");
    entry.curve.reserve(curve.array.size());
    double prev = std::numeric_limits<double>::infinity();
    for (const JsonValue& v : curve.array) {
      const double x = resume::double_value(v, "racing envelope curve point");
      FLAML_PARSE_REQUIRE(std::isfinite(x),
                          "racing envelope curve point not finite");
      FLAML_PARSE_REQUIRE(x <= prev,
                          "racing envelope curve not monotone non-increasing");
      entry.curve.push_back(x);
      prev = x;
    }
    FLAML_PARSE_REQUIRE(entry.best == entry.curve.back(),
                        "racing envelope best != final curve point");
    for (const Entry& seen : loaded) {
      FLAML_PARSE_REQUIRE(seen.learner != entry.learner ||
                              seen.sample_size != entry.sample_size,
                          "duplicate racing envelope key");
    }
    loaded.push_back(std::move(entry));
  }
  entries_ = std::move(loaded);
}

RacingMonitor::Entry* RacingMonitor::find(const std::string& learner,
                                          std::size_t sample_size) {
  for (Entry& e : entries_) {
    if (e.learner == learner && e.sample_size == sample_size) return &e;
  }
  return nullptr;
}

const RacingMonitor::Entry* RacingMonitor::find(
    const std::string& learner, std::size_t sample_size) const {
  for (const Entry& e : entries_) {
    if (e.learner == learner && e.sample_size == sample_size) return &e;
  }
  return nullptr;
}

}  // namespace flaml
