// The FLAML AutoML facade (paper §3 API) and its controller (§4).
//
//   AutoML automl;
//   AutoMLOptions options;
//   options.time_budget_seconds = 60;
//   automl.fit(data, options);
//   Predictions pred = automl.predict(test_view);
//
// fit() runs the four-component loop of Figure 3: the resampling proposer
// picks cv/holdout once (step 0); each iteration the learner proposer
// samples a learner with probability ∝ 1/ECI (step 1), the hyperparameter &
// sample-size proposer either doubles the sample or asks FLOW2 for a new
// config (step 2), and the controller runs the trial and updates the ECI
// bookkeeping (step 3). Custom learners and metrics plug in through
// add_learner() and options.metric.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "automl/eci.h"
#include "automl/history.h"
#include "automl/trial_runner.h"
#include "learners/registry.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "resume/checkpoint.h"
#include "tuners/flow2.h"

namespace flaml {

// Ablation switches (paper §5.2), plus EciGreedy — always pick the
// argmin-ECI learner instead of sampling ∝ 1/ECI — to quantify the value of
// the FairChance randomization (Property 3).
enum class LearnerChoice { EciSampling, EciGreedy, RoundRobin };
enum class SamplePolicy { Adaptive, FullData };
enum class ResamplingPolicy { Auto, ForceCV, ForceHoldout };

// Answer of AutoMLOptions::search_control, polled at every trial boundary
// (the controller's cooperative yield points). Run continues the search;
// Preempt stops it cleanly at the boundary — no final model is trained,
// checkpoint_to() captures the state for a later byte-exact resume_from();
// Cancel stops the same way but marks the search as abandoned. The search
// daemon (src/server) is the primary caller: Preempt is how a scheduler
// evicts a low-priority job mid-flight and resumes it later.
enum class SearchSignal { Run, Preempt, Cancel };

const char* search_signal_name(SearchSignal signal);

struct AutoMLOptions {
  double time_budget_seconds = 60.0;
  // Empty = the task default (auc / log_loss / r2); or any built-in name.
  std::string metric;
  // Custom metric (overrides `metric` when set).
  std::optional<ErrorMetric> custom_metric;
  // Empty = all supported built-ins + learners added via add_learner().
  std::vector<std::string> estimator_list;

  // Sample-size schedule (paper: start 10K, multiply by c = 2). The start
  // size is scaled down with our dataset sizes; see DESIGN.md.
  std::size_t initial_sample_size = 1000;
  double sample_multiplier = 2.0;

  LearnerChoice learner_choice = LearnerChoice::EciSampling;
  SamplePolicy sample_policy = SamplePolicy::Adaptive;
  ResamplingPolicy resampling = ResamplingPolicy::Auto;
  int cv_folds = 5;
  double holdout_ratio = 0.1;

  // Frugal trial racing (src/automl/racing.h), default OFF. When enabled
  // (holdout resampling only; CV trials are never raced), iterative
  // learners stream per-iteration validation losses, and a trial whose
  // curve is dominated by the per-(learner, sample-size) incumbent envelope
  // beyond the configured slack is killed with TrialStatus::Raced — its
  // partial cost is charged (and, being not-ok, never becomes the learner's
  // κ under the ECI last_ok_cost rule). Racing legitimately changes the
  // search history: with `racing.enabled == false` the search is
  // byte-identical to the pre-racing goldens; racing-on runs pin their own
  // golden digests (tests/test_racing.cpp).
  RacingOptions racing;

  // Cross-trial binned-substrate cache (src/automl/substrate_cache.h): the
  // trial runner fits+encodes each (sample rows, max_bin) histogram
  // substrate once and shares it across trials, instead of every tree fit
  // re-binning from scratch. Byte-identical search either way — pinned by
  // the golden digest tests — so turning it off only trades speed for a
  // smaller resident footprint. Counters surface in metrics() under
  // "substrate_cache.*".
  bool reuse_binned_data = true;

  // Paper-equivalent budget used by the resampling rule = real budget /
  // budget_scale (benches run at scaled-down budgets; the rule's thresholds
  // are calibrated for paper-scale budgets).
  double budget_scale = 1.0;

  // Retrain the best configuration on all training rows after the search.
  bool retrain_full = true;

  // Optional stacked-ensemble post-processing (paper appendix): blend the
  // per-learner best models, weighted by validation error.
  //
  // Interaction with checkpointing: a blended ensemble is NOT serializable
  // (save_best_model throws; each member would need its own blob plus the
  // weights). Mid-search checkpoints are unaffected — they never carry a
  // model — and resuming re-trains the ensemble when the resumed fit()
  // finishes; but a post-fit checkpoint_to() omits the model blob when the
  // ensemble is enabled, so such a checkpoint restores the search state
  // only, not the predictor.
  bool enable_ensemble = false;

  // Parallel search threads (paper appendix): when > 1, up to n_parallel
  // trials run concurrently, each learner keeping at most one outstanding
  // trial; learners are sampled by ECI as workers free up. Trial costs are
  // still wall-clock per trial, so total CPU spent is ~n_parallel × budget.
  int n_parallel = 1;

  // Intra-trial worker threads: each model fit parallelizes histogram
  // build, split finding, bagging and prediction over up to n_threads on
  // the process-wide shared pool. Orthogonal to n_parallel (which runs
  // whole trials concurrently); the two compose. Any value produces
  // bit-identical models and search history.
  int n_threads = 1;

  // Warm-start configurations per learner name: FLOW2 starts its walk from
  // this config instead of the low-cost default (e.g. the best config of a
  // previous fit on related data).
  std::map<std::string, Config> starting_points;

  // Stop the search as soon as the best validation error reaches this value
  // (paper appendix: "search for the cheapest model with error below a
  // threshold"). Negative = disabled.
  double target_error = -1.0;

  // Stop after this many finished trials (0 = unlimited). Unlike the wall
  // budget this is deterministic, which the stress suite relies on: with a
  // trial_cost_model set and the same seed, the whole search is a pure
  // function of the options.
  std::size_t max_iterations = 0;

  // Testing/simulation: deterministic trial costs instead of measured
  // wall-clock seconds (see TrialCostModel in trial_runner.h).
  TrialCostModel trial_cost_model;

  // Structured search tracing (src/observe): every decision the paper
  // describes — learner proposals with the full ECI vector, FLOW2 moves,
  // sample-size doublings, trial outcomes — is emitted to this sink, plus a
  // run_summary event when fit() finishes. Null (the default) disables
  // tracing; the search loop then pays only a null check. With
  // n_parallel > 1 the sink receives events from multiple threads (the
  // provided sinks are thread-safe). See docs/TESTING.md for the schema and
  // tools/trace_inspect for rendering/validating a JSONL trace.
  observe::TraceSinkPtr trace_sink;

  // Crash-safe checkpointing (src/resume/checkpoint.h): when both are set,
  // fit() atomically rewrites `checkpoint_path` after every
  // checkpoint_every_n_trials-th committed trial (write to "<path>.tmp",
  // rename into place — a crash mid-write never clobbers the previous
  // checkpoint). Resume with AutoML::resume_from_file(), passing the SAME
  // dataset and options: the resumed search replays in-flight trials and
  // continues, producing the identical trial history and best model as the
  // never-interrupted run (tests/stress/stress_resume.cpp proves this at
  // every trial boundary). 0 / empty (the defaults) disable the writer.
  std::string checkpoint_path;
  std::size_t checkpoint_every_n_trials = 0;

  // Test hook: invoked after every committed trial, AFTER any due
  // checkpoint write, with the 1-based iteration number. Throwing from it
  // aborts fit() — the kill-anywhere replay suite simulates a crash at
  // trial boundary k by throwing on the k-th call.
  std::function<void(std::size_t iteration)> on_trial_committed;

  // Cooperative preemption hook, polled at every trial boundary (before
  // each new proposal, and after every commit in parallel mode) with the
  // committed-trial count. Returning Preempt or Cancel stops the search at
  // that boundary: in-flight parallel trials are drained and committed
  // first (so the stop point is a clean boundary the checkpoint/resume
  // machinery already proves byte-exact), then fit() returns WITHOUT
  // training a final model — fitted() stays false, interrupt_status()
  // reports the signal, and checkpoint_to() snapshots the state so
  // resume_from() can continue the search later as if never interrupted.
  // Null (the default) means the search only stops on budget/target/
  // iteration limits. Latency is one trial: a signal lands at the next
  // boundary, exactly like the kill-anywhere contract.
  std::function<SearchSignal(std::size_t iteration)> search_control;

  // Time source for the budget accounting (elapsed_seconds_ and the
  // per-trial remaining-budget caps). Null = a private steady-clock
  // WallClock, which is immune to system-time jumps (NTP steps, suspend);
  // inject a VirtualClock for deterministic tests, or a per-job clock in
  // daemon mode so each job is only charged for the time its own segments
  // actually run. Whatever the source, elapsed time is accumulated through
  // a BudgetMeter (common/clock.h): only forward motion counts, so even a
  // misbehaving clock that jumps backwards can neither kill the search
  // early nor immortalize it. Borrowed; must outlive fit().
  const Clock* clock = nullptr;

  std::uint64_t seed = 1;
};

class AutoML {
 public:
  AutoML();

  // Register a custom learner (paper §3: automl.add_learner(...)). Must be
  // called before fit(); the learner participates when its name appears in
  // options.estimator_list, or always when the list is empty.
  void add_learner(LearnerPtr learner);

  // Search for the best (learner, hyperparameters, sample size) under the
  // time budget. `data` must outlive this object (views are kept for
  // prediction-time schema checks).
  void fit(const Dataset& data, const AutoMLOptions& options);

  // Continue a search from a checkpoint, as if the original fit() had never
  // been interrupted. Pass the SAME dataset and options as the original run
  // (the checkpoint's task/metric/seed/resampling/lineup fingerprint is
  // cross-checked and a mismatch throws SerializationError); already-spent
  // budget carries over, so a resumed run stops at the same total
  // time_budget_seconds / max_iterations as the original would have.
  void resume_from(const Dataset& data, const AutoMLOptions& options,
                   const resume::SearchCheckpoint& checkpoint);
  void resume_from_file(const Dataset& data, const AutoMLOptions& options,
                        const std::string& path);

  // Snapshot the state after fit() returned (no in-flight trials), e.g. to
  // warm-start a later run with a larger budget. Includes the best-model
  // blob (loadable with load_automl_model) unless the ensemble is enabled
  // (see enable_ensemble) or the model does not support serialization.
  resume::SearchCheckpoint checkpoint_to() const;
  void checkpoint_to_file(const std::string& path) const;

  // Predict with the best model found. fit() must have been called.
  Predictions predict(const DataView& view) const;

  // Persist the best model (learner name + model blob). The saved file can
  // be loaded later with load_automl_model() — no dataset needed. Ensemble
  // mode is not serializable (save the underlying options instead).
  void save_best_model(std::ostream& out) const;
  void save_best_model_file(const std::string& path) const;

  // --- introspection (used by benches, examples and tests) ---
  bool fitted() const { return best_model_ != nullptr; }
  // How the last fit()/resume_from() ended: Run = ran to its budget/target/
  // iteration limit (a final model was trained); Preempt/Cancel = stopped
  // early by options.search_control at a trial boundary (no final model).
  SearchSignal interrupt_status() const { return interrupt_; }
  const std::string& best_learner() const { return best_learner_; }
  const Config& best_config() const { return best_config_; }
  double best_error() const { return best_error_; }
  std::size_t best_sample_size() const { return best_sample_size_; }
  Resampling resampling_used() const { return resampling_used_; }
  const TrialHistory& history() const { return history_; }
  // Search metrics of the last fit(): trial counters (total/ok/killed/
  // failed, per learner), sample doublings, FLOW2 restarts, trial cost and
  // error histograms, time-to-best. Always populated (independent of
  // trace_sink); reset at the start of every fit.
  const observe::MetricsRegistry& metrics() const { return metrics_; }
  // Best error achieved by each learner (learner name -> error), for the
  // Figure 4 per-learner trajectories.
  std::vector<std::pair<std::string, double>> per_learner_best() const;

 private:
  struct LearnerState {
    LearnerPtr learner;
    // Heap-allocated: the FLOW2 tuner keeps a pointer to this space, which
    // must stay stable while the states vector grows.
    std::unique_ptr<ConfigSpace> space;
    std::unique_ptr<Flow2> tuner;
    EciState eci;
    std::size_t sample_size = 0;
    double best_error = std::numeric_limits<double>::infinity();
    Config best_config;
    // Trials proposed for this learner so far; combined with the learner
    // name it salts the per-trial training seed, making each learner's
    // trial sequence independent of the global (parallel) launch order.
    std::uint64_t n_proposed = 0;
  };

  std::size_t choose_learner(Rng& rng, bool greedy, double c) const;

  // fit() and resume_from() share this; `checkpoint` restores the search
  // state after the (deterministic) setup phase and before the loop.
  void run_search(const Dataset& data, const AutoMLOptions& options,
                  const resume::SearchCheckpoint* checkpoint);
  resume::SearchCheckpoint make_checkpoint(
      const std::vector<resume::PendingTrial>& pending, bool include_model) const;

  std::vector<LearnerPtr> extra_learners_;

  // Fit results.
  const Dataset* data_ = nullptr;
  std::vector<LearnerState> states_;
  // Declared before runner_: the runner's substrate cache holds a pointer
  // to this registry, so the registry must outlive the runner.
  observe::MetricsRegistry metrics_;
  std::unique_ptr<TrialRunner> runner_;
  // Racing envelopes (racing.h): mutated only on the controller thread at
  // commit time; snapshotted into each trial's RacingPlan at launch.
  RacingMonitor racing_monitor_;
  std::unique_ptr<Model> best_model_;
  std::vector<std::unique_ptr<Model>> ensemble_models_;
  std::vector<double> ensemble_weights_;
  std::string best_learner_;
  Config best_config_;
  double best_error_ = std::numeric_limits<double>::infinity();
  std::size_t best_sample_size_ = 0;
  Resampling resampling_used_ = Resampling::Holdout;
  TrialHistory history_;

  // Search-loop state promoted to members so it can be checkpointed mid-fit
  // and restored on resume (formerly fit() locals).
  Rng rng_{1};                   // controller stream (learner sampling)
  int iteration_ = 0;            // committed trials
  bool calibrated_ = false;      // cold-start ECI1s seeded
  double elapsed_offset_ = 0.0;  // budget spent before this fit (resume)
  double elapsed_seconds_ = 0.0; // total elapsed at the last commit
  SearchSignal interrupt_ = SearchSignal::Run;  // how the last fit() ended
  std::string metric_name_;
  std::uint64_t seed_ = 1;
};

// Load a model saved by AutoML::save_best_model. The learner is resolved
// among the built-ins plus `extra_learners`.
std::unique_ptr<Model> load_automl_model(
    std::istream& in, const std::vector<LearnerPtr>& extra_learners = {});
std::unique_ptr<Model> load_automl_model_file(
    const std::string& path, const std::vector<LearnerPtr>& extra_learners = {});

// Write a trial history as CSV (header + one row per trial); configs are
// flattened as "name=value|name=value".
void write_history_csv(std::ostream& out, const TrialHistory& history);

}  // namespace flaml
