// Frugal trial racing on streaming learning curves (ROADMAP "frugal trial
// racing"; Frugal Algorithm Selection / Auto-Sklearn 2.0 intensification in
// PAPERS.md).
//
// The search's only mid-trial kill used to be the ECI-priced wall-clock cap:
// a clearly-dominated config still burned its full slice. Racing adds a
// curve-based kill. Iterative learners stream their per-unit validation loss
// through TrainContext::progress (the scoring early stopping already runs);
// the RacingMonitor keeps, per (learner, sample_size), the ENVELOPE of the
// incumbent trial — the running-minimum curve of the trial whose streamed
// loss ended lowest — and a running trial is killed (typed TrialRaced ->
// TrialStatus::Raced) as soon as its own running-best loss exceeds the
// envelope at the same iteration by more than the configured slack.
//
// Design rules, pinned by tests/test_racing.cpp property + golden suites:
//   * envelopes are running minima, hence monotone non-increasing;
//   * the kill rule is slack-respecting: with slack >= 0 a curve within
//     slack of the envelope is never killed;
//   * the incumbent never races itself: replaying the envelope-owning curve
//     reproduces the envelope pointwise, so it can never exceed it;
//   * grace_iterations streamed points are always free — early curve noise
//     must not kill a config that finishes strong;
//   * racing is default-OFF and the off path is byte-identical to the
//     pre-racing goldens; the on path carries its own golden digests.
//
// Determinism: the controller snapshots the envelope ON LAUNCH (controller
// thread) into a RacingPlan that travels with the trial; envelopes advance
// only at commit time. Launch/commit interleaving is a pure function of the
// options, so racing-on histories are reproducible run-to-run at any worker
// count (they legitimately differ ACROSS worker counts, like ECI sampling:
// a parallel launch sees fewer committed envelopes than the serial one).
// The same snapshot rides in checkpoint pending entries (format v3) so a
// killed-and-resumed search replays in-flight trials against exactly the
// envelope they originally raced.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"

namespace flaml {

// AutoMLOptions::racing. Slack is relative+absolute: a trial is dominated at
// iteration k iff
//   running_best > env[k] + slack_abs + slack_rel * |env[k]|
// (env clamped to its last point past the incumbent's curve length).
struct RacingOptions {
  bool enabled = false;
  // Streamed points that are always free before the kill rule applies.
  int grace_iterations = 3;
  double slack_rel = 0.10;
  double slack_abs = 0.0;
};

// Pure kill rule over an envelope snapshot. `iteration` is the 1-based count
// of streamed points of the running trial; `running_best` its best streamed
// loss so far. Exposed for the seeded property suite.
bool racing_dominated(const RacingOptions& options,
                      const std::vector<double>& envelope,
                      std::size_t iteration, double running_best);

// Everything a single trial needs to race: computed by the controller at
// launch, carried (by value) into the trial runner and into checkpoint
// pending entries. An empty envelope means "no incumbent yet" — the trial
// streams its curve but can never be killed.
struct RacingPlan {
  bool enabled = false;
  RacingOptions options;
  std::vector<double> envelope;
};

// Per-(learner, sample_size) incumbent learning-curve envelopes. Owned by
// the AutoML controller, mutated only on its thread (at commit), and a pure
// function of the committed (learner, sample_size, curve) sequence — which
// is what makes racing-on searches deterministic and checkpointable.
class RacingMonitor {
 public:
  void clear() { entries_.clear(); }

  // Commit a finished trial's streamed curve. If its final running-best
  // loss beats the stored incumbent's, the envelope for that key becomes
  // the running-minimum of `curve`. Empty curves are ignored.
  void record(const std::string& learner, std::size_t sample_size,
              const std::vector<double>& curve);

  // Copy of the envelope for a key (empty when no incumbent yet).
  std::vector<double> envelope(const std::string& learner,
                               std::size_t sample_size) const;

  std::size_t n_envelopes() const { return entries_.size(); }

  // Exact (17-significant-digit doubles, resume/serial_util.h conventions)
  // round-trip for checkpointing; from_json throws SerializationError on
  // any missing/ill-typed/non-monotone content and replaces this monitor's
  // state wholesale.
  JsonValue to_json() const;
  void from_json(const JsonValue& value);

 private:
  struct Entry {
    std::string learner;
    std::size_t sample_size = 0;
    std::vector<double> curve;  // running-minimum of the incumbent's curve
    double best = 0.0;          // == curve.back()
  };
  Entry* find(const std::string& learner, std::size_t sample_size);
  const Entry* find(const std::string& learner, std::size_t sample_size) const;

  // Deterministic insertion order; searches hold a handful of keys, so a
  // linear scan beats a map and keeps serialization order stable.
  std::vector<Entry> entries_;
};

}  // namespace flaml
