// Joint (learner + hyperparameters) search space for the baseline drivers.
//
// Baselines like auto-sklearn, TPOT and HpBandSter search the concatenated
// space: a categorical "learner" dimension plus every learner's parameters
// with names prefixed "<learner>.", so parameters of different learners
// never collide. split() recovers the chosen learner and its un-prefixed
// config from a joint configuration.
#pragma once

#include <utility>
#include <vector>

#include "learners/learner.h"
#include "tuners/config_space.h"

namespace flaml {

class JointSpace {
 public:
  JointSpace(std::vector<LearnerPtr> learners, Task task, std::size_t full_size);

  const ConfigSpace& space() const { return space_; }
  const std::vector<LearnerPtr>& learners() const { return learners_; }

  // Recover (learner index, per-learner config) from a joint config.
  std::pair<std::size_t, Config> split(const Config& joint) const;

 private:
  std::vector<LearnerPtr> learners_;
  std::vector<ConfigSpace> per_learner_;
  ConfigSpace space_;
};

}  // namespace flaml
