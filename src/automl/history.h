// Trial history shared by FLAML and the baseline drivers; the raw material
// for Figure 1 (cost/error scatter), Table 3 (case study) and Figure 4
// (per-learner best-error trajectories).
#pragma once

#include <string>
#include <vector>

#include "tuners/config_space.h"

namespace flaml {

struct TrialRecord {
  int iteration = 0;          // 1-based
  double finished_at = 0.0;   // seconds since search start when trial ended
  std::string learner;
  Config config;
  std::size_t sample_size = 0;
  double error = 0.0;         // validation error of this trial
  double cost = 0.0;          // seconds spent on this trial
  double best_error_so_far = 0.0;  // global best after this trial
};

using TrialHistory = std::vector<TrialRecord>;

}  // namespace flaml
