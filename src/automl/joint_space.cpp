#include "automl/joint_space.h"

#include "common/error.h"

namespace flaml {

JointSpace::JointSpace(std::vector<LearnerPtr> learners, Task task,
                       std::size_t full_size)
    : learners_(std::move(learners)) {
  FLAML_REQUIRE(!learners_.empty(), "joint space needs at least one learner");
  std::vector<std::string> names;
  names.reserve(learners_.size());
  for (const auto& l : learners_) names.push_back(l->name());
  if (names.size() >= 2) {
    space_.add_categorical("learner", names, 0);
  } else {
    // A single learner: no choice dimension; split() always returns 0.
    space_.add_categorical("learner", {names[0], names[0] + "_"}, 0);
  }
  for (const auto& l : learners_) {
    per_learner_.push_back(l->space(task, full_size));
    const ConfigSpace& sub = per_learner_.back();
    for (const auto& p : sub.params()) {
      ParamDomain prefixed = p;
      prefixed.name = l->name() + "." + p.name;
      if (p.type == ParamDomain::Type::Categorical) {
        space_.add_categorical(prefixed.name, p.categories,
                               static_cast<int>(p.init));
      } else if (p.type == ParamDomain::Type::Int) {
        space_.add_int(prefixed.name, p.lo, p.hi, p.init, p.log_scale,
                       p.cost_related);
      } else {
        space_.add_float(prefixed.name, p.lo, p.hi, p.init, p.log_scale);
      }
    }
  }
}

std::pair<std::size_t, Config> JointSpace::split(const Config& joint) const {
  auto it = joint.find("learner");
  FLAML_REQUIRE(it != joint.end(), "joint config missing 'learner'");
  std::size_t idx = static_cast<std::size_t>(it->second);
  idx = std::min(idx, learners_.size() - 1);
  const std::string prefix = learners_[idx]->name() + ".";
  Config config;
  for (const auto& [name, value] : joint) {
    if (name.rfind(prefix, 0) == 0) {
      config[name.substr(prefix.size())] = value;
    }
  }
  return {idx, config};
}

}  // namespace flaml
