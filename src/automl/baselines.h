// Baseline AutoML drivers (paper §5 comparisons), built from scratch over
// the same learner set and trial runner as FLAML:
//
//   Bohb      — HpBandSter analogue: TPE + Hyperband over the sample-size
//               fidelity, sharing FLAML's exact search space & resampling.
//   Tpe       — auto-sklearn analogue: Bayesian optimization (TPE) over the
//               joint (learner, hyperparameters) space on full data.
//   Grid      — H2O AutoML analogue: fixed manual learner order, randomized
//               grid search per learner, full data.
//   Evolution — TPOT analogue: evolutionary search over the joint space.
//   Random    — cloud-automl analogue: random search over the joint space.
//
// Every driver obeys the same wall-clock budget accounting and produces the
// same TrialHistory as FLAML, so Figures 1/5/6 and Tables 3/4/9 compare
// like with like.
#pragma once

#include <memory>
#include <string>

#include "automl/history.h"
#include "automl/trial_runner.h"
#include "learners/registry.h"

namespace flaml {

enum class BaselineKind { Bohb, Tpe, Grid, Evolution, Random };

const char* baseline_name(BaselineKind kind);

struct BaselineOptions {
  double time_budget_seconds = 60.0;
  // Hard cap on finished trials (0 = unlimited). Gives tests a termination
  // condition that does not depend on wall-clock speed (e.g. under TSan).
  std::size_t max_iterations = 0;
  std::string metric;  // empty = task default
  std::vector<std::string> estimator_list;
  // Resampling: Auto applies FLAML's step-0 rule (fair shared setup).
  bool force_holdout = false;
  bool force_cv = false;
  int cv_folds = 5;
  double holdout_ratio = 0.1;
  double budget_scale = 1.0;
  // BOHB fidelity floor (sample size of the lowest rung).
  std::size_t min_fidelity = 1000;
  std::uint64_t seed = 1;
};

class BaselineAutoML {
 public:
  explicit BaselineAutoML(BaselineKind kind) : kind_(kind) {}

  void fit(const Dataset& data, const BaselineOptions& options);
  Predictions predict(const DataView& view) const;

  bool fitted() const { return best_model_ != nullptr; }
  double best_error() const { return best_error_; }
  const std::string& best_learner() const { return best_learner_; }
  const Config& best_config() const { return best_config_; }
  const TrialHistory& history() const { return history_; }
  // Total wall-clock seconds spent by fit(), including any overrun of the
  // final trial (Table 4 reports these overruns).
  double search_seconds() const { return search_seconds_; }

 private:
  BaselineKind kind_;
  std::unique_ptr<Model> best_model_;
  double best_error_ = std::numeric_limits<double>::infinity();
  std::string best_learner_;
  Config best_config_;
  TrialHistory history_;
  double search_seconds_ = 0.0;
};

}  // namespace flaml
