// ECI: Estimated Cost for Improvement (paper §4.2, Eq. 1).
//
// Per learner l the controller tracks the cost bookkeeping behind
//   ECI1(l) = max(K0 − K1, K1 − K2)      cost to improve at current sample
//   ECI2(l) = c · κ_l                    cost to double the sample size
//   ECI(l)  = l is global best
//               ? min(ECI1, ECI2)
//               : max((ε_l − ε*)(K0 − K2)/δ, min(ECI1, ECI2))
// where K0 is the total cost spent on l so far, K1/K2 the totals at the two
// most recent best-config updates for l, κ_l the cost of l's current
// config, δ the error reduction between the two best updates (δ = ε_l and
// τ = K0 when l has had only one best), and ε*/ε_l the global/l-local best
// validation errors. Untried learners get ECI1 = cost-multiplier × the
// fastest learner's smallest observed cost (appendix cold-start rule).
#pragma once

#include <limits>

#include "common/json.h"

namespace flaml {

struct EciState {
  // Totals (seconds of trial cost spent on this learner).
  double k0 = 0.0;  // total so far
  double k1 = 0.0;  // total at the most recent best update
  double k2 = 0.0;  // total at the previous best update
  // Best validation error of this learner and its value before the most
  // recent improvement (for δ).
  double best_error = std::numeric_limits<double>::infinity();
  double prev_best_error = std::numeric_limits<double>::infinity();
  // Cost of the learner's current configuration (κ_l = last trial's cost).
  double last_trial_cost = 0.0;
  // κ_l as ECI2 wants it: the cost of the most recent trial that actually
  // FINISHED (status Ok). A killed trial's charged cost is the budget it
  // burned before the kill at its own sample size — using it as κ in
  // ECI2 = c·κ would estimate the doubling cost from an aborted fit.
  // 0 until the learner has an Ok trial.
  double last_ok_cost = 0.0;
  int n_trials = 0;
  // Cold-start ECI1 (multiplier × fastest learner's smallest cost);
  // negative until initialized.
  double initial_eci1 = -1.0;

  bool tried() const { return n_trials > 0; }

  // Record a finished trial of cost `cost` with validation error `error`.
  // `ok` = the trial trained and scored a model (TrialStatus::Ok); killed
  // and failed trials pass false so their charged-but-unfinished cost never
  // becomes the κ of ECI2.
  void record(double cost, double error, bool ok = true);

  double eci1() const;
  // c = sample-size multiplier; at full sample size pass can_grow = false.
  double eci2(double c, bool can_grow) const;
  // Combined ECI against the global best error.
  double eci(double global_best_error, double c, bool can_grow) const;

  // Checkpoint/resume (src/resume): the full bookkeeping round-trips
  // exactly, so a resumed search computes bit-identical ECI values.
  // from_json throws SerializationError on missing/ill-typed/out-of-range
  // fields (a corrupt checkpoint must never produce a silently-wrong state).
  JsonValue to_json() const;
  static EciState from_json(const JsonValue& value);
};

}  // namespace flaml
