#include "automl/trial_runner.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/log.h"
#include "resume/serial_util.h"

namespace flaml {

namespace {

// Salted trial ids (derived from per-learner state by the AutoML layer)
// and counter-issued ids (seed_salt == 0 call paths) must never collide:
// a collision hands two distinct trials the identical training seed and
// silently breaks the parallel==serial determinism contract. The domains
// are separated with a tag bit — salted ids always carry it, counter ids
// never do.
constexpr std::uint64_t kSaltedTrialTag = 1ULL << 63;

// Domain separator for the k-fold partition rng: folds for a given
// (sample_size, k) are a pure function of (runner seed, this salt), which
// is what lets the substrate cache memoize them.
constexpr std::uint64_t kFoldSeedSalt = 0xc5f01d5ULL;

// Domain separator for per-fold training seeds: fold f trains with
// seed ^ ((f+1) * salt) so folds of one CV trial no longer share a seed,
// while fold "none" (holdout, f = -1 conceptually) keeps the unsalted
// value — holdout trials and their pinned golden digests are untouched.
constexpr std::uint64_t kFoldSeedMix = 0xbf58476d1ce4e5b9ULL;

// Per-class row counts (regression: one pseudo-class holding every row);
// the only input fold sizes depend on.
std::vector<std::size_t> class_row_counts(const DataView& view) {
  if (is_classification(view.data().task())) {
    std::vector<std::size_t> counts(
        static_cast<std::size_t>(view.data().n_classes()), 0);
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      ++counts[static_cast<std::size_t>(view.label(i))];
    }
    return counts;
  }
  return {view.n_rows()};
}

// Mirrors fold_assignment's dealing (row j of a class goes to fold j % k):
// fold f receives ceil((n_c - f) / k) rows of a class with n_c > f members.
bool cv_k_usable(const std::vector<std::size_t>& class_counts, std::size_t n,
                 int k) {
  if (k < 2 || n < static_cast<std::size_t>(k)) return false;
  const std::size_t uk = static_cast<std::size_t>(k);
  std::size_t max_fold = 0;      // fold 0 is always the largest
  std::size_t last_fold = 0;     // fold k-1 is always the smallest
  for (std::size_t n_c : class_counts) {
    max_fold += (n_c + uk - 1) / uk;
    if (n_c >= uk) last_fold += (n_c - (uk - 1) + uk - 1) / uk;
  }
  // Every fold non-empty (enough that the smallest is) and the largest
  // fold's complement — the smallest TRAIN side — still trains a model.
  return last_fold >= 1 && n - max_fold >= 2;
}

}  // namespace

int choose_cv_k(const DataView& view, int requested_k) {
  const std::size_t n = view.n_rows();
  if (n < 3) return 0;  // no split leaves >= 2 train rows + a valid row
  const std::vector<std::size_t> counts = class_row_counts(view);
  const int n_int = static_cast<int>(std::min<std::size_t>(
      n, static_cast<std::size_t>(std::numeric_limits<int>::max())));
  const int base = std::clamp(requested_k, 2, n_int);
  for (int k = base; k <= n_int; ++k) {
    if (cv_k_usable(counts, n, k)) return k;
  }
  for (int k = base - 1; k >= 2; --k) {
    if (cv_k_usable(counts, n, k)) return k;
  }
  return 0;
}

const char* resampling_name(Resampling r) {
  return r == Resampling::CV ? "cv" : "holdout";
}

const char* trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::Ok: return "ok";
    case TrialStatus::Killed: return "killed";
    case TrialStatus::Raced: return "raced";
    case TrialStatus::Failed:
    default: return "failed";
  }
}

Resampling propose_resampling(std::size_t n_instances, std::size_t n_features,
                              double budget_seconds) {
  FLAML_REQUIRE(budget_seconds > 0.0, "budget must be positive");
  const double budget_hours = budget_seconds / 3600.0;
  const double cell_rate =
      static_cast<double>(n_instances) * static_cast<double>(n_features) / budget_hours;
  if (n_instances < kCvMaxInstances && cell_rate < kCvMaxCellRatePerHour) {
    return Resampling::CV;
  }
  return Resampling::Holdout;
}

TrialRunner::TrialRunner(const Dataset& data, ErrorMetric metric, Options options)
    : data_(&data), metric_(std::move(metric)), options_(options), rng_(options.seed) {
  data.validate();
  FLAML_REQUIRE(options_.cv_folds >= 2, "cv_folds must be >= 2");
  FLAML_REQUIRE(options_.holdout_ratio > 0.0 && options_.holdout_ratio < 1.0,
                "holdout_ratio must be in (0,1)");
  // One stratified shuffle up front; samples are prefixes of it (§4.2).
  std::vector<std::uint32_t> order = task_shuffled_indices(data, rng_);
  DataView shuffled(data, std::move(order));
  if (options_.resampling == Resampling::Holdout) {
    // Fixed validation set: the TAIL of the shuffle keeps prefixes valid as
    // training samples; the stratified shuffle makes the tail stratified.
    std::size_t n_holdout = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(data.n_rows()) *
                                    options_.holdout_ratio));
    n_holdout = std::min(n_holdout, data.n_rows() - 1);
    const std::size_t n_train = data.n_rows() - n_holdout;
    std::vector<std::uint32_t> train_rows(shuffled.rows().begin(),
                                          shuffled.rows().begin() +
                                              static_cast<std::ptrdiff_t>(n_train));
    std::vector<std::uint32_t> holdout_rows(shuffled.rows().begin() +
                                                static_cast<std::ptrdiff_t>(n_train),
                                            shuffled.rows().end());
    // Validate up front instead of letting a 1-row training view surface
    // later as an opaque trainer error on every single trial.
    if (n_train < 2) {
      std::ostringstream os;
      os << "holdout resampling on " << data.n_rows()
         << " rows leaves only " << n_train
         << " training row(s); need at least 2 (use more data or CV)";
      throw DatasetTooSmall(os.str());
    }
    train_view_ = DataView(data, std::move(train_rows));
    holdout_view_ = DataView(data, std::move(holdout_rows));
  } else {
    train_view_ = shuffled;
    if (choose_cv_k(train_view_, options_.cv_folds) == 0) {
      std::ostringstream os;
      os << "cross-validation on " << data.n_rows()
         << " rows: no fold count yields non-empty folds with >= 2 training "
            "rows per fold (use more data or holdout)";
      throw DatasetTooSmall(os.str());
    }
  }
  if (options_.reuse_binned_data) {
    substrate_cache_ = std::make_unique<SubstrateCache>(
        &train_view_, options_.seed ^ kFoldSeedSalt, options_.tracer,
        options_.metrics);
  }
}

TrialResult TrialRunner::run(const Learner& learner, const Config& config,
                             std::size_t sample_size, double max_seconds,
                             std::uint64_t seed_salt, const RacingPlan* racing) {
  FLAML_REQUIRE(sample_size >= 2, "sample size must be >= 2");
  sample_size = std::min(sample_size, train_view_.n_rows());
  const double start = clock_.now();
  TrialResult result;
  // Racing applies to holdout trials only: their curves are scored against
  // one fixed validation set, so envelopes are comparable across trials.
  const bool race = racing != nullptr && racing->enabled &&
                    options_.resampling == Resampling::Holdout;
  std::vector<double> curve;
  double running_best = std::numeric_limits<double>::infinity();
  TrainReport train_report;
  const std::uint64_t trial_id =
      seed_salt != 0 ? (seed_salt | kSaltedTrialTag)
                     : ((trial_counter_.fetch_add(1) + 1) & ~kSaltedTrialTag);
  if (options_.tracer) {
    JsonValue fields = JsonValue::make_object();
    fields.set("learner", JsonValue::make_string(learner.name()));
    fields.set("sample_size",
               JsonValue::make_number(static_cast<double>(sample_size)));
    fields.set("max_seconds", JsonValue::make_number(std::max(max_seconds, 0.0)));
    options_.tracer.emit("trial_started", std::move(fields));
  }
  try {
    DataView sample = train_view_.prefix(sample_size);
    SubstrateCache* cache = substrate_cache_.get();
    if (options_.resampling == Resampling::Holdout) {
      TrainContext ctx;
      ctx.train = sample;
      ctx.valid = &holdout_view_;
      ctx.max_seconds = max_seconds;
      ctx.fail_on_deadline = true;
      ctx.seed = options_.seed ^ (trial_id * 0x9e3779b97f4a7c15ULL);
      ctx.n_threads = options_.n_threads;
      if (cache != nullptr) {
        ctx.substrate = [cache, sample_size](int max_bin) {
          return cache->prefix(sample_size, max_bin);
        };
      }
      ctx.report = &train_report;
      if (race) {
        ctx.progress = [&](const TrainProgress& point) {
          curve.push_back(point.valid_loss);
          if (point.valid_loss < running_best) running_best = point.valid_loss;
          return !racing_dominated(racing->options, racing->envelope,
                                   curve.size(), running_best);
        };
      }
      auto model = learner.train(ctx, config);
      result.error = metric_(model->predict(holdout_view_), holdout_view_.labels());
    } else {
      // k-fold CV over the sample; average fold errors. The fold count is
      // chosen analytically so every fold is non-empty and trainable —
      // naive clamping to the sample size can still deal empty folds under
      // stratification (e.g. 3 rows with class counts {2, 1} at k = 3).
      const int k = choose_cv_k(sample, options_.cv_folds);
      if (k == 0) {
        // Inside the try: surfaces as a cleanly Failed trial, not a crash.
        std::ostringstream os;
        os << "no usable fold count for a " << sample.n_rows() << "-row sample";
        throw DatasetTooSmall(os.str());
      }
      std::shared_ptr<const std::vector<Fold>> shared_folds;
      std::vector<Fold> local_folds;
      if (cache != nullptr) {
        shared_folds = cache->folds(sample.n_rows(), k);
      } else {
        Rng fold_rng(options_.seed ^ kFoldSeedSalt);
        local_folds = kfold_split(sample, k, fold_rng);
      }
      const std::vector<Fold>& folds =
          shared_folds != nullptr ? *shared_folds : local_folds;
      double total_error = 0.0;
      // max_seconds == 0 means UNLIMITED (the TrainContext contract), so an
      // unlimited trial budget must map to an unlimited per-fold cap — not
      // to a zero cap that would kill every fold instantly.
      const double per_fold_cap =
          max_seconds > 0.0 ? max_seconds / static_cast<double>(k) : 0.0;
      for (std::size_t f = 0; f < folds.size(); ++f) {
        const Fold& fold = folds[f];
        TrainContext ctx;
        ctx.train = fold.train;
        ctx.valid = &fold.valid;
        ctx.max_seconds = per_fold_cap;
        ctx.fail_on_deadline = true;
        // Salt the training seed with the fold index: without it every
        // fold of a CV trial trains with the IDENTICAL seed, so seeded
        // randomness (bootstraps, column sampling) is correlated across
        // folds and the averaged error under-estimates variance.
        ctx.seed = options_.seed ^ (trial_id * 0x9e3779b97f4a7c15ULL) ^
                   ((static_cast<std::uint64_t>(f) + 1) * kFoldSeedMix);
        ctx.n_threads = options_.n_threads;
        if (cache != nullptr) {
          const std::size_t n_sample = sample.n_rows();
          const int fold_index = static_cast<int>(f);
          ctx.substrate = [cache, n_sample, k, fold_index](int max_bin) {
            return cache->fold_train(n_sample, k, fold_index, max_bin);
          };
        }
        auto model = learner.train(ctx, config);
        total_error += metric_(model->predict(fold.valid), fold.valid.labels());
      }
      result.error = total_error / static_cast<double>(folds.size());
    }
  } catch (const TrialRaced&) {
    // Curve-dominated: the racing monitor vetoed further iterations. Like a
    // deadline kill, no model comes back and the error is infinite — but
    // only the budget actually burned is charged (see the cost rule below).
    FLAML_LOG(Debug) << "trial raced for learner '" << learner.name()
                     << "' at iteration " << curve.size();
    result.ok = false;
    result.status = TrialStatus::Raced;
    result.error = std::numeric_limits<double>::infinity();
    if (options_.tracer) {
      JsonValue fields = JsonValue::make_object();
      fields.set("learner", JsonValue::make_string(learner.name()));
      fields.set("sample_size",
                 JsonValue::make_number(static_cast<double>(sample_size)));
      fields.set("iteration",
                 JsonValue::make_number(static_cast<double>(curve.size())));
      fields.set("planned", JsonValue::make_number(static_cast<double>(
                                train_report.iterations_planned)));
      fields.set("best", JsonValue::make_number(running_best));
      if (racing != nullptr && !racing->envelope.empty()) {
        const std::size_t idx =
            std::min(curve.size(), racing->envelope.size()) - 1;
        fields.set("envelope", JsonValue::make_number(racing->envelope[idx]));
      }
      options_.tracer.emit("trial_raced", std::move(fields));
    }
  } catch (const DeadlineExceeded&) {
    // Killed-trial semantics: the budget is charged, no model comes back.
    FLAML_LOG(Debug) << "trial killed at deadline for learner '" << learner.name()
                     << "'";
    result.ok = false;
    result.status = TrialStatus::Killed;
    result.error = std::numeric_limits<double>::infinity();
  } catch (const std::exception& e) {
    FLAML_LOG(Warn) << "trial failed for learner '" << learner.name()
                    << "': " << e.what();
    result.ok = false;
    result.status = TrialStatus::Failed;
    result.error = std::numeric_limits<double>::infinity();
  }
  result.curve = std::move(curve);
  result.iterations_completed = train_report.iterations_completed;
  result.iterations_planned = train_report.iterations_planned;
  const double elapsed = std::max(clock_.now() - start, 1e-9);
  result.elapsed_seconds = elapsed;
  if (!options_.cost_model) {
    result.cost = elapsed;
  } else {
    const double estimate =
        std::max(options_.cost_model(learner, config, sample_size), 1e-9);
    switch (result.status) {
      case TrialStatus::Killed:
        // A deadline kill burned (at most) its wall cap, not the model's
        // full-trial estimate — charging the estimate made traces claim
        // more budget than the trial could possibly have consumed. The cap
        // (not measured elapsed) keeps modeled searches deterministic AND
        // keeps charging killed learners enough that ECI de-prioritizes
        // them; measured wall time rides in elapsed_seconds.
        result.cost =
            max_seconds > 0.0 ? std::min(estimate, max_seconds) : estimate;
        break;
      case TrialStatus::Raced:
        // Deterministic partial charge: the race decision (hence the
        // completed-iteration count) is a pure function of the seed and the
        // envelope snapshot, so modeled searches stay reproducible.
        result.cost = std::max(
            estimate * static_cast<double>(result.iterations_completed) /
                static_cast<double>(std::max(result.iterations_planned, 1)),
            1e-9);
        break;
      default:
        result.cost = estimate;
        break;
    }
  }
  return result;
}

std::unique_ptr<Model> TrialRunner::train_final(const Learner& learner,
                                                const Config& config,
                                                double max_seconds) {
  TrainContext ctx;
  ctx.train = train_view_;
  ctx.valid = options_.resampling == Resampling::Holdout ? &holdout_view_ : nullptr;
  ctx.max_seconds = max_seconds;
  ctx.seed = options_.seed;
  ctx.n_threads = options_.n_threads;
  if (SubstrateCache* cache = substrate_cache_.get()) {
    // The full training view is the n_rows prefix of itself, so the final
    // retrain reuses the search's largest-sample substrate when one exists.
    const std::size_t n = train_view_.n_rows();
    ctx.substrate = [cache, n](int max_bin) { return cache->prefix(n, max_bin); };
  }
  return learner.train(ctx, config);
}

JsonValue TrialRunner::to_json() const {
  JsonValue out = JsonValue::make_object();
  out.set("trial_counter", resume::json_u64(trial_counter_.load()));
  out.set("seed", resume::json_u64(options_.seed));
  out.set("resampling",
          JsonValue::make_string(resampling_name(options_.resampling)));
  out.set("cv_folds", JsonValue::make_number(options_.cv_folds));
  out.set("holdout_ratio", resume::json_double(options_.holdout_ratio));
  out.set("max_sample_size", resume::json_size(max_sample_size()));
  return out;
}

void TrialRunner::from_json(const JsonValue& value) {
  // The fingerprint must match THIS runner: the trial seed is a pure
  // function of (runner seed, trial id), and the sample prefixes depend on
  // the split — resuming onto a different dataset or resampling setup would
  // silently re-score every remaining trial.
  FLAML_PARSE_REQUIRE(resume::req_u64(value, "seed") == options_.seed,
                      "checkpoint runner seed does not match this runner");
  FLAML_PARSE_REQUIRE(resume::req_string(value, "resampling") ==
                          resampling_name(options_.resampling),
                      "checkpoint resampling does not match this runner");
  FLAML_PARSE_REQUIRE(
      resume::req_int(value, "cv_folds", 2, 1000000) == options_.cv_folds,
      "checkpoint cv_folds does not match this runner");
  FLAML_PARSE_REQUIRE(resume::req_finite(value, "holdout_ratio") ==
                          options_.holdout_ratio,
                      "checkpoint holdout_ratio does not match this runner");
  FLAML_PARSE_REQUIRE(
      resume::req_size(value, "max_sample_size",
                       std::numeric_limits<std::size_t>::max() >> 1) ==
          max_sample_size(),
      "checkpoint max_sample_size does not match this runner's dataset");
  const std::uint64_t counter = resume::req_u64(value, "trial_counter");
  FLAML_PARSE_REQUIRE((counter & kSaltedTrialTag) == 0,
                      "checkpoint trial_counter has the salted-id tag bit set");
  trial_counter_.store(counter);
}

}  // namespace flaml
