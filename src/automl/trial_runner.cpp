#include "automl/trial_runner.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/log.h"
#include "resume/serial_util.h"

namespace flaml {

namespace {

// Salted trial ids (derived from per-learner state by the AutoML layer)
// and counter-issued ids (seed_salt == 0 call paths) must never collide:
// a collision hands two distinct trials the identical training seed and
// silently breaks the parallel==serial determinism contract. The domains
// are separated with a tag bit — salted ids always carry it, counter ids
// never do.
constexpr std::uint64_t kSaltedTrialTag = 1ULL << 63;

}  // namespace

const char* resampling_name(Resampling r) {
  return r == Resampling::CV ? "cv" : "holdout";
}

const char* trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::Ok: return "ok";
    case TrialStatus::Killed: return "killed";
    case TrialStatus::Failed:
    default: return "failed";
  }
}

Resampling propose_resampling(std::size_t n_instances, std::size_t n_features,
                              double budget_seconds) {
  FLAML_REQUIRE(budget_seconds > 0.0, "budget must be positive");
  const double budget_hours = budget_seconds / 3600.0;
  const double cell_rate =
      static_cast<double>(n_instances) * static_cast<double>(n_features) / budget_hours;
  if (n_instances < kCvMaxInstances && cell_rate < kCvMaxCellRatePerHour) {
    return Resampling::CV;
  }
  return Resampling::Holdout;
}

TrialRunner::TrialRunner(const Dataset& data, ErrorMetric metric, Options options)
    : data_(&data), metric_(std::move(metric)), options_(options), rng_(options.seed) {
  data.validate();
  FLAML_REQUIRE(options_.cv_folds >= 2, "cv_folds must be >= 2");
  FLAML_REQUIRE(options_.holdout_ratio > 0.0 && options_.holdout_ratio < 1.0,
                "holdout_ratio must be in (0,1)");
  // One stratified shuffle up front; samples are prefixes of it (§4.2).
  std::vector<std::uint32_t> order = task_shuffled_indices(data, rng_);
  DataView shuffled(data, std::move(order));
  if (options_.resampling == Resampling::Holdout) {
    // Fixed validation set: the TAIL of the shuffle keeps prefixes valid as
    // training samples; the stratified shuffle makes the tail stratified.
    std::size_t n_holdout = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(data.n_rows()) *
                                    options_.holdout_ratio));
    n_holdout = std::min(n_holdout, data.n_rows() - 1);
    const std::size_t n_train = data.n_rows() - n_holdout;
    std::vector<std::uint32_t> train_rows(shuffled.rows().begin(),
                                          shuffled.rows().begin() +
                                              static_cast<std::ptrdiff_t>(n_train));
    std::vector<std::uint32_t> holdout_rows(shuffled.rows().begin() +
                                                static_cast<std::ptrdiff_t>(n_train),
                                            shuffled.rows().end());
    train_view_ = DataView(data, std::move(train_rows));
    holdout_view_ = DataView(data, std::move(holdout_rows));
  } else {
    train_view_ = shuffled;
  }
}

TrialResult TrialRunner::run(const Learner& learner, const Config& config,
                             std::size_t sample_size, double max_seconds,
                             std::uint64_t seed_salt) {
  FLAML_REQUIRE(sample_size >= 2, "sample size must be >= 2");
  sample_size = std::min(sample_size, train_view_.n_rows());
  const double start = clock_.now();
  TrialResult result;
  const std::uint64_t trial_id =
      seed_salt != 0 ? (seed_salt | kSaltedTrialTag)
                     : ((trial_counter_.fetch_add(1) + 1) & ~kSaltedTrialTag);
  if (options_.tracer) {
    JsonValue fields = JsonValue::make_object();
    fields.set("learner", JsonValue::make_string(learner.name()));
    fields.set("sample_size",
               JsonValue::make_number(static_cast<double>(sample_size)));
    fields.set("max_seconds", JsonValue::make_number(std::max(max_seconds, 0.0)));
    options_.tracer.emit("trial_started", std::move(fields));
  }
  try {
    DataView sample = train_view_.prefix(sample_size);
    if (options_.resampling == Resampling::Holdout) {
      TrainContext ctx;
      ctx.train = sample;
      ctx.valid = &holdout_view_;
      ctx.max_seconds = max_seconds;
      ctx.fail_on_deadline = true;
      ctx.seed = options_.seed ^ (trial_id * 0x9e3779b97f4a7c15ULL);
      ctx.n_threads = options_.n_threads;
      auto model = learner.train(ctx, config);
      result.error = metric_(model->predict(holdout_view_), holdout_view_.labels());
    } else {
      // k-fold CV over the sample; average fold errors.
      Rng fold_rng(options_.seed ^ 0xc5f01d5ULL);
      int k = options_.cv_folds;
      // Guard tiny samples: k can never exceed the sample size.
      k = std::min<int>(k, static_cast<int>(sample.n_rows()));
      if (k < 2) k = 2;
      auto folds = kfold_split(sample, k, fold_rng);
      double total_error = 0.0;
      // max_seconds == 0 means UNLIMITED (the TrainContext contract), so an
      // unlimited trial budget must map to an unlimited per-fold cap — not
      // to a zero cap that would kill every fold instantly.
      const double per_fold_cap =
          max_seconds > 0.0 ? max_seconds / static_cast<double>(k) : 0.0;
      for (const auto& fold : folds) {
        TrainContext ctx;
        ctx.train = fold.train;
        ctx.valid = &fold.valid;
        ctx.max_seconds = per_fold_cap;
        ctx.fail_on_deadline = true;
        ctx.seed = options_.seed ^ (trial_id * 0x9e3779b97f4a7c15ULL);
        ctx.n_threads = options_.n_threads;
        auto model = learner.train(ctx, config);
        total_error += metric_(model->predict(fold.valid), fold.valid.labels());
      }
      result.error = total_error / static_cast<double>(folds.size());
    }
  } catch (const DeadlineExceeded&) {
    // Killed-trial semantics: the budget is charged, no model comes back.
    FLAML_LOG(Debug) << "trial killed at deadline for learner '" << learner.name()
                     << "'";
    result.ok = false;
    result.status = TrialStatus::Killed;
    result.error = std::numeric_limits<double>::infinity();
  } catch (const std::exception& e) {
    FLAML_LOG(Warn) << "trial failed for learner '" << learner.name()
                    << "': " << e.what();
    result.ok = false;
    result.status = TrialStatus::Failed;
    result.error = std::numeric_limits<double>::infinity();
  }
  result.cost = options_.cost_model
                    ? std::max(options_.cost_model(learner, config, sample_size), 1e-9)
                    : std::max(clock_.now() - start, 1e-9);
  return result;
}

std::unique_ptr<Model> TrialRunner::train_final(const Learner& learner,
                                                const Config& config,
                                                double max_seconds) {
  TrainContext ctx;
  ctx.train = train_view_;
  ctx.valid = options_.resampling == Resampling::Holdout ? &holdout_view_ : nullptr;
  ctx.max_seconds = max_seconds;
  ctx.seed = options_.seed;
  ctx.n_threads = options_.n_threads;
  return learner.train(ctx, config);
}

JsonValue TrialRunner::to_json() const {
  JsonValue out = JsonValue::make_object();
  out.set("trial_counter", resume::json_u64(trial_counter_.load()));
  out.set("seed", resume::json_u64(options_.seed));
  out.set("resampling",
          JsonValue::make_string(resampling_name(options_.resampling)));
  out.set("cv_folds", JsonValue::make_number(options_.cv_folds));
  out.set("holdout_ratio", resume::json_double(options_.holdout_ratio));
  out.set("max_sample_size", resume::json_size(max_sample_size()));
  return out;
}

void TrialRunner::from_json(const JsonValue& value) {
  // The fingerprint must match THIS runner: the trial seed is a pure
  // function of (runner seed, trial id), and the sample prefixes depend on
  // the split — resuming onto a different dataset or resampling setup would
  // silently re-score every remaining trial.
  FLAML_PARSE_REQUIRE(resume::req_u64(value, "seed") == options_.seed,
                      "checkpoint runner seed does not match this runner");
  FLAML_PARSE_REQUIRE(resume::req_string(value, "resampling") ==
                          resampling_name(options_.resampling),
                      "checkpoint resampling does not match this runner");
  FLAML_PARSE_REQUIRE(
      resume::req_int(value, "cv_folds", 2, 1000000) == options_.cv_folds,
      "checkpoint cv_folds does not match this runner");
  FLAML_PARSE_REQUIRE(resume::req_finite(value, "holdout_ratio") ==
                          options_.holdout_ratio,
                      "checkpoint holdout_ratio does not match this runner");
  FLAML_PARSE_REQUIRE(
      resume::req_size(value, "max_sample_size",
                       std::numeric_limits<std::size_t>::max() >> 1) ==
          max_sample_size(),
      "checkpoint max_sample_size does not match this runner's dataset");
  const std::uint64_t counter = resume::req_u64(value, "trial_counter");
  FLAML_PARSE_REQUIRE((counter & kSaltedTrialTag) == 0,
                      "checkpoint trial_counter has the salted-id tag bit set");
  trial_counter_.store(counter);
}

}  // namespace flaml
