#include "automl/baselines.h"

#include <algorithm>

#include "automl/joint_space.h"
#include "common/error.h"
#include "common/log.h"
#include "tuners/evolution.h"
#include "tuners/grid_search.h"
#include "tuners/hyperband.h"
#include "tuners/random_search.h"
#include "tuners/tpe.h"

namespace flaml {

const char* baseline_name(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::Bohb: return "bohb";
    case BaselineKind::Tpe: return "bo-tpe";
    case BaselineKind::Grid: return "grid";
    case BaselineKind::Evolution: return "evolution";
    case BaselineKind::Random: return "random";
  }
  return "?";
}

void BaselineAutoML::fit(const Dataset& data, const BaselineOptions& options) {
  FLAML_REQUIRE(options.time_budget_seconds > 0.0, "time budget must be positive");
  FLAML_REQUIRE(!(options.force_cv && options.force_holdout),
                "cannot force both cv and holdout");
  data.validate();
  history_.clear();
  best_model_.reset();
  best_error_ = std::numeric_limits<double>::infinity();
  best_learner_.clear();
  best_config_.clear();

  const Task task = data.task();
  ErrorMetric metric = options.metric.empty() ? ErrorMetric::default_for(task)
                                              : ErrorMetric::by_name(options.metric);

  Resampling resampling =
      options.force_cv
          ? Resampling::CV
          : (options.force_holdout
                 ? Resampling::Holdout
                 : propose_resampling(data.n_rows(), data.n_cols(),
                                      options.time_budget_seconds /
                                          options.budget_scale));

  TrialRunner::Options runner_options;
  runner_options.resampling = resampling;
  runner_options.cv_folds = options.cv_folds;
  runner_options.holdout_ratio = options.holdout_ratio;
  runner_options.seed = options.seed;
  TrialRunner runner(data, metric, runner_options);
  const std::size_t full = runner.max_sample_size();

  std::vector<LearnerPtr> lineup;
  if (options.estimator_list.empty()) {
    lineup = default_learners(task);
  } else {
    for (const auto& name : options.estimator_list) {
      LearnerPtr l = builtin_learner(name);
      FLAML_REQUIRE(l->supports(task),
                    "estimator '" << name << "' unsupported for " << task_name(task));
      lineup.push_back(std::move(l));
    }
  }
  FLAML_REQUIRE(!lineup.empty(), "no learners for this task");

  JointSpace joint(lineup, task, full);

  // Salt the tuner seed by method so different baselines do not share the
  // same early random draws (the data split seed stays shared for fairness).
  const std::uint64_t tuner_seed =
      options.seed * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(kind_) + 1) * 0x2545f4914f6cdd1dULL;

  const double budget = options.time_budget_seconds;
  WallClock clock;
  int iteration = 0;

  // Baselines are not cost-aware; like the paper's libraries, a single
  // expensive model fit may overrun the budget (Table 4 reports overruns).
  // We cap each fit at remaining + budget/2 to keep benches bounded.
  auto trial_cap = [&]() {
    return std::max(budget - clock.now(), 0.0) + 0.5 * budget;
  };

  auto keep_going = [&]() {
    return clock.now() < budget &&
           (options.max_iterations == 0 ||
            static_cast<std::size_t>(iteration) < options.max_iterations);
  };

  auto run_trial = [&](std::size_t learner_idx, const Config& config,
                       std::size_t sample_size) {
    ++iteration;
    TrialResult trial = runner.run(*lineup[learner_idx], config, sample_size,
                                   trial_cap());
    if (trial.ok && trial.error < best_error_) {
      best_error_ = trial.error;
      best_config_ = config;
      best_learner_ = lineup[learner_idx]->name();
    }
    TrialRecord record;
    record.iteration = iteration;
    record.finished_at = clock.now();
    record.learner = lineup[learner_idx]->name();
    record.config = config;
    record.sample_size = sample_size;
    record.error = trial.error;
    record.cost = trial.cost;
    record.best_error_so_far = best_error_;
    history_.push_back(std::move(record));
    return trial;
  };

  switch (kind_) {
    case BaselineKind::Bohb: {
      const std::size_t min_f = std::min(std::max<std::size_t>(options.min_fidelity, 10), full);
      BohbScheduler scheduler(joint.space(), min_f, full, tuner_seed);
      while (keep_going()) {
        auto assignment = scheduler.next();
        auto [idx, config] = joint.split(assignment.config);
        TrialResult trial = run_trial(idx, config, assignment.fidelity);
        scheduler.report(assignment, trial.error);
      }
      break;
    }
    case BaselineKind::Tpe: {
      Tpe tuner(joint.space(), tuner_seed);
      while (keep_going()) {
        Config jc = tuner.ask();
        auto [idx, config] = joint.split(jc);
        TrialResult trial = run_trial(idx, config, full);
        tuner.tell(jc, trial.error);
      }
      break;
    }
    case BaselineKind::Grid: {
      // H2O-style: manual learner order, one randomized-grid searcher per
      // learner, equal allocation via round-robin. The spaces must outlive
      // the searchers (which hold pointers to them).
      std::vector<std::unique_ptr<ConfigSpace>> spaces;
      std::vector<std::unique_ptr<RandomizedGridSearch>> grids;
      for (std::size_t i = 0; i < lineup.size(); ++i) {
        spaces.push_back(
            std::make_unique<ConfigSpace>(lineup[i]->space(task, full)));
        grids.push_back(
            std::make_unique<RandomizedGridSearch>(*spaces.back(), tuner_seed + i, 5, /*start_from_default=*/false));
      }
      std::size_t turn = 0;
      while (keep_going()) {
        std::size_t idx = turn % lineup.size();
        ++turn;
        Config config = grids[idx]->ask();
        TrialResult trial = run_trial(idx, config, full);
        grids[idx]->tell(config, trial.error);
      }
      break;
    }
    case BaselineKind::Evolution: {
      EvolutionSearch tuner(joint.space(), tuner_seed, {}, /*start_from_default=*/false);
      while (keep_going()) {
        Config jc = tuner.ask();
        auto [idx, config] = joint.split(jc);
        TrialResult trial = run_trial(idx, config, full);
        tuner.tell(jc, trial.error);
      }
      break;
    }
    case BaselineKind::Random: {
      RandomSearch tuner(joint.space(), tuner_seed, /*start_from_default=*/false);
      while (keep_going()) {
        Config jc = tuner.ask();
        auto [idx, config] = joint.split(jc);
        TrialResult trial = run_trial(idx, config, full);
        tuner.tell(jc, trial.error);
      }
      break;
    }
  }

  if (best_learner_.empty()) {
    // No finished trial: fall back to the first learner's initial config.
    best_learner_ = lineup[0]->name();
    best_config_ = lineup[0]->space(task, full).initial_config();
  }
  for (const auto& learner : lineup) {
    if (learner->name() == best_learner_) {
      best_model_ = runner.train_final(*learner, best_config_, 2.0 * budget);
      break;
    }
  }
  search_seconds_ = clock.now();
  FLAML_CHECK(best_model_ != nullptr);
}

Predictions BaselineAutoML::predict(const DataView& view) const {
  FLAML_REQUIRE(best_model_ != nullptr, "predict() before fit()");
  return best_model_->predict(view);
}

}  // namespace flaml
