#include "automl/eci.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "resume/serial_util.h"

namespace flaml {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Floor keeping ECIs strictly positive so 1/ECI sampling is well defined.
constexpr double kMinEci = 1e-9;
}  // namespace

void EciState::record(double cost, double error, bool ok) {
  FLAML_CHECK_MSG(cost > 0.0, "trial cost must be positive");
  k0 += cost;
  last_trial_cost = cost;
  if (ok) last_ok_cost = cost;
  ++n_trials;
  if (error < best_error) {
    prev_best_error = best_error;
    k2 = k1;
    k1 = k0;
    best_error = error;
  }
}

double EciState::eci1() const {
  if (!tried()) {
    FLAML_CHECK_MSG(initial_eci1 > 0.0, "cold-start ECI1 not initialized");
    return initial_eci1;
  }
  return std::max({k0 - k1, k1 - k2, kMinEci});
}

double EciState::eci2(double c, bool can_grow) const {
  if (!can_grow) return kInf;
  if (!tried()) return kInf;  // must try the initial config first
  // κ = the last COMPLETED trial's cost (§4.2: ECI2 = c·κ with κ the cost
  // of the current config). A killed/failed trial's charge is how long an
  // aborted fit ran, not what a finished one costs; falling back to it
  // only when the learner has never completed a trial keeps ECI2 finite so
  // such learners are still comparable (and de-prioritized via ECI1).
  const double kappa = last_ok_cost > 0.0 ? last_ok_cost : last_trial_cost;
  return std::max(c * kappa, kMinEci);
}

double EciState::eci(double global_best_error, double c, bool can_grow) const {
  const double base = std::min(eci1(), eci2(c, can_grow));
  if (!tried()) return base;
  // No successful trial yet (every trial failed / was killed): the gap term
  // is undefined; fall back to the recent-cost estimate. ECI1 keeps growing
  // with each failure, so such learners are naturally de-prioritized.
  if (!std::isfinite(best_error)) return base;
  if (best_error <= global_best_error) {
    // Case (a): this learner holds the global best.
    return base;
  }
  // Case (b): estimate the cost to close the gap Δ = ε_l − ε* at this
  // learner's improvement efficiency v = δ/τ.
  double delta = prev_best_error == kInf || prev_best_error <= best_error
                     ? best_error
                     : prev_best_error - best_error;
  double tau = prev_best_error == kInf ? k0 : k0 - k2;
  if (delta <= 0.0 || tau <= 0.0) return base;
  const double gap = best_error - global_best_error;
  const double gap_cost = gap * tau / delta;
  return std::max(gap_cost, base);
}

JsonValue EciState::to_json() const {
  JsonValue out = JsonValue::make_object();
  out.set("k0", resume::json_double(k0));
  out.set("k1", resume::json_double(k1));
  out.set("k2", resume::json_double(k2));
  out.set("best_error", resume::json_double(best_error));
  out.set("prev_best_error", resume::json_double(prev_best_error));
  out.set("last_trial_cost", resume::json_double(last_trial_cost));
  out.set("last_ok_cost", resume::json_double(last_ok_cost));
  out.set("n_trials", JsonValue::make_number(n_trials));
  out.set("initial_eci1", resume::json_double(initial_eci1));
  return out;
}

EciState EciState::from_json(const JsonValue& value) {
  EciState state;
  state.k0 = resume::req_finite(value, "k0");
  state.k1 = resume::req_finite(value, "k1");
  state.k2 = resume::req_finite(value, "k2");
  // Cost totals are cumulative and ordered: k2 <= k1 <= k0, all >= 0.
  FLAML_PARSE_REQUIRE(state.k2 >= 0.0 && state.k2 <= state.k1 && state.k1 <= state.k0,
                      "eci cost totals must satisfy 0 <= k2 <= k1 <= k0");
  state.best_error = resume::req_double(value, "best_error");
  state.prev_best_error = resume::req_double(value, "prev_best_error");
  FLAML_PARSE_REQUIRE(!std::isnan(state.best_error) && !std::isnan(state.prev_best_error),
                      "eci best errors must not be NaN");
  state.last_trial_cost = resume::req_finite(value, "last_trial_cost");
  FLAML_PARSE_REQUIRE(state.last_trial_cost >= 0.0,
                      "eci last_trial_cost must be >= 0");
  state.last_ok_cost = resume::req_finite(value, "last_ok_cost");
  // An Ok cost is one of the charged costs, so it can never exceed the total.
  FLAML_PARSE_REQUIRE(state.last_ok_cost >= 0.0 && state.last_ok_cost <= state.k0,
                      "eci last_ok_cost must be in [0, k0]");
  state.n_trials =
      static_cast<int>(resume::req_int(value, "n_trials", 0, 1000000000));
  state.initial_eci1 = resume::req_finite(value, "initial_eci1");
  return state;
}

}  // namespace flaml
