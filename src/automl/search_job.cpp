#include "automl/search_job.h"

#include "common/error.h"

namespace flaml {

const char* SearchJob::state_name(State state) {
  switch (state) {
    case State::Fresh: return "fresh";
    case State::Preempted: return "preempted";
    case State::Finished: return "finished";
    case State::Cancelled: return "cancelled";
    case State::Failed: return "failed";
  }
  return "unknown";
}

SearchJob::SearchJob(const Dataset& data, AutoMLOptions options,
                     std::vector<LearnerPtr> extra_learners)
    : data_(&data), options_(std::move(options)) {
  for (auto& learner : extra_learners) {
    automl_.add_learner(std::move(learner));
  }
}

const resume::SearchCheckpoint& SearchJob::checkpoint() const {
  FLAML_REQUIRE(checkpoint_.has_value(),
                "checkpoint() on a job in state '" << state_name(state_)
                                                   << "' (no checkpoint held)");
  return *checkpoint_;
}

SearchJob::State SearchJob::run_segment(
    const std::function<SearchSignal(std::size_t)>& control) {
  FLAML_REQUIRE(state_ == State::Fresh || state_ == State::Preempted,
                "run_segment() on a terminal job (state '"
                    << state_name(state_) << "')");
  AutoMLOptions options = options_;
  options.search_control = control;
  ++segments_;
  try {
    if (checkpoint_.has_value()) {
      // Move the checkpoint out first: resume_from resets the AutoML state,
      // and a job must never resume twice from the same stale snapshot.
      const resume::SearchCheckpoint resume_point = std::move(*checkpoint_);
      checkpoint_.reset();
      automl_.resume_from(*data_, options, resume_point);
    } else {
      automl_.fit(*data_, options);
    }
  } catch (const std::exception& e) {
    state_ = State::Failed;
    error_ = e.what();
    return state_;
  }
  switch (automl_.interrupt_status()) {
    case SearchSignal::Run:
      state_ = State::Finished;
      break;
    case SearchSignal::Preempt:
      // Snapshot for the next segment. The in-flight list is empty (the
      // controller drains before yielding), so this checkpoint equals the
      // one the after-commit auto-writer would have produced at this
      // boundary — the byte-exact-resume contract applies unchanged.
      checkpoint_ = automl_.checkpoint_to();
      state_ = State::Preempted;
      break;
    case SearchSignal::Cancel:
      state_ = State::Cancelled;
      break;
  }
  return state_;
}

}  // namespace flaml
