// Internal entry points of the per-ISA histogram kernels (implementation
// detail of histogram.cpp — include from .cpp files only).
//
// Each ISA exports one KernelFns table over the PackedBins row-major code
// planes (u8/u16). Every table runs the SAME algorithm in the SAME order:
// feature tiles of kFeatureTile, rows accumulated in buffer order, (g, h)
// added as one paired two-lane add. A paired `_mm_add_pd` performs the same
// two independent IEEE-754 additions as the two scalar `+=`s — there are no
// multiplies anywhere, so no FMA contraction can change results — which
// makes every table bit-identical to the portable one AND to the legacy
// scalar column build. That invariant is what lets the fast path default on
// under the existing golden digests; the differential harness
// (tests/test_histogram_kernels.cpp) pins it with a 0-ulp bound.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tree/histogram.h"

namespace flaml {
namespace histdetail {

// Gradient-pair build over a selected feature subset. `hist` is the full
// offsets-indexed layout; only the selected features' slices are written.
struct GradCall {
  const std::size_t* offsets = nullptr;
  const int* features = nullptr;  // selected feature ids
  std::size_t n_sel = 0;
  const std::uint32_t* rows = nullptr;
  std::size_t count = 0;
  const double* grad = nullptr;
  const double* hess = nullptr;  // ignored when unit
  // hess ≡ 1.0 for every addressed row: accumulate h only and derive
  // n = (uint32)h per slot afterwards (exact — integer sums in a double).
  bool unit = false;
  bool iota = false;  // rows[i] == i for all i < count: skip the gather
  HistEntry* hist = nullptr;
};

// Weighted class-count build/remove over the contiguous feature range
// [f_begin, f_end) — class trees always histogram every feature.
struct ClassCall {
  const std::size_t* offsets = nullptr;
  std::size_t f_begin = 0;
  std::size_t f_end = 0;
  std::size_t k = 0;  // n_classes
  const std::uint32_t* rows = nullptr;
  std::size_t count = 0;
  const int* labels = nullptr;
  const double* weights = nullptr;  // null = unit weights
  // Remove mode: accumulate -w. IEEE: x + (-w) == x - w bitwise, so one
  // kernel serves build and the subtraction trick identically to legacy.
  bool negate = false;
  bool iota = false;
  double* hist = nullptr;
};

// One feature's compact [bin * k + c] slice (small-leaf split scan).
struct FillCall {
  std::size_t feature = 0;
  std::size_t k = 0;
  const std::uint32_t* rows = nullptr;
  std::size_t count = 0;
  const int* labels = nullptr;
  const double* weights = nullptr;  // null = unit weights
  double* out = nullptr;
};

struct KernelFns {
  void (*grad_u8)(const std::uint8_t* codes, std::size_t stride,
                  const GradCall& c) = nullptr;
  void (*grad_u16)(const std::uint16_t* codes, std::size_t stride,
                   const GradCall& c) = nullptr;
  void (*cls_u8)(const std::uint8_t* codes, std::size_t stride,
                 const ClassCall& c) = nullptr;
  void (*cls_u16)(const std::uint16_t* codes, std::size_t stride,
                  const ClassCall& c) = nullptr;
  void (*fill_u8)(const std::uint8_t* codes, std::size_t stride,
                  const FillCall& c) = nullptr;
  void (*fill_u16)(const std::uint16_t* codes, std::size_t stride,
                   const FillCall& c) = nullptr;
};

// Always present (plain C++, no intrinsics).
const KernelFns* portable_fns();
// Null when the build targets a non-x86 ISA without SSE2.
const KernelFns* sse2_fns();
// Null when the compiler can't target AVX2 (CMake check); runtime CPU
// support is the caller's problem (hist_kernel_available in histogram.cpp).
const KernelFns* avx2_fns();

}  // namespace histdetail
}  // namespace flaml
