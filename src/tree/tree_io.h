// Text (de)serialization of Tree — shared by the GBDT and forest model
// formats. The format is line-oriented: node count, then one line per node,
// then the number of leaf distributions (0 when unused) followed by
// "node_id k p0 ... pk-1" lines.
#pragma once

#include <iosfwd>

#include "tree/tree.h"

namespace flaml {

void write_tree(std::ostream& out, const Tree& tree);

// Throws InvalidArgument on malformed input.
Tree read_tree(std::istream& in);

}  // namespace flaml
