// Shared kernel bodies, textually included INSIDE an anonymous namespace by
// each per-ISA translation unit (hist_kernels.cpp, hist_kernels_avx2.cpp).
// The anonymous-namespace inclusion is deliberate: the same templates
// compiled under different target flags (-mavx2 vs baseline) must NOT share
// linkage, or the linker would fold the instantiations and silently drop
// one ISA's code. No include guard for the same reason — each TU includes
// this exactly once. The including TU provides <algorithm>, <cstdint> and
// "tree/hist_kernels.h" (and <emmintrin.h> when FLAML_HIST_HAVE_SSE2).
//
// Determinism contract (see hist_kernels.h): every template here walks
// feature tiles in ascending feature order and rows in buffer order, and
// touches each accumulator with either a scalar `+=` or a paired two-lane
// add of independent lanes — so every instantiation, on every ISA, is
// bit-identical to the legacy scalar column build in histogram.cpp.

// HistEntry must keep g/h adjacent: the paired add loads both as one
// 16-byte vector from &e.g.
static_assert(offsetof(::flaml::HistEntry, h) ==
                  offsetof(::flaml::HistEntry, g) + sizeof(double),
              "hist kernels pair-add (g, h); they must stay adjacent");

// Features per tile: one (grad, hess) load and one packed-row pointer are
// amortized over the whole tile, and 8 u8 codes share a cache line.
inline constexpr std::size_t kFeatureTile = 8;

struct PortableOps {
  struct Vec {
    double g, h;
  };
  static Vec make(double g, double h) { return {g, h}; }
  static void add(::flaml::HistEntry& e, Vec v) {
    e.g += v.g;
    e.h += v.h;
  }
};

#if defined(FLAML_HIST_HAVE_SSE2)
struct PairOps {
  using Vec = __m128d;
  static Vec make(double g, double h) { return _mm_set_pd(h, g); }
  static void add(::flaml::HistEntry& e, Vec v) {
    _mm_storeu_pd(&e.g, _mm_add_pd(_mm_loadu_pd(&e.g), v));
  }
};
#endif

template <typename Code, typename Ops, bool Unit, bool Iota>
void grad_core(const Code* codes, std::size_t stride,
               const ::flaml::histdetail::GradCall& c) {
  for (std::size_t t = 0; t < c.n_sel; t += kFeatureTile) {
    const std::size_t w = std::min(kFeatureTile, c.n_sel - t);
    ::flaml::HistEntry* base[kFeatureTile];
    std::size_t col[kFeatureTile];
    for (std::size_t j = 0; j < w; ++j) {
      const std::size_t f = static_cast<std::size_t>(c.features[t + j]);
      base[j] = c.hist + c.offsets[f];
      col[j] = f;
    }
    // Unit-hessian path: two rows in flight. Per feature j, row i's add is
    // issued before row i+1's, so same-bin collisions still accumulate in
    // row order (bitwise equal to the scalar reference) while distinct bins
    // — the common case — give the CPU two independent load-add-store
    // chains to overlap. The non-unit path stays single-row: its extra
    // n-counter RMW per entry makes the unrolled body spill and run slower.
    std::size_t i = 0;
    if constexpr (Unit)
    for (; i + 1 < c.count; i += 2) {
      const std::uint32_t p0 = Iota ? static_cast<std::uint32_t>(i) : c.rows[i];
      const std::uint32_t p1 =
          Iota ? static_cast<std::uint32_t>(i + 1) : c.rows[i + 1];
      const auto gh0 = Ops::make(c.grad[p0], Unit ? 1.0 : c.hess[p0]);
      const auto gh1 = Ops::make(c.grad[p1], Unit ? 1.0 : c.hess[p1]);
      const Code* r0 = codes + static_cast<std::size_t>(p0) * stride;
      const Code* r1 = codes + static_cast<std::size_t>(p1) * stride;
      for (std::size_t j = 0; j < w; ++j) {
        ::flaml::HistEntry& e0 = base[j][r0[col[j]]];
        Ops::add(e0, gh0);
        if constexpr (!Unit) e0.n += 1;
        ::flaml::HistEntry& e1 = base[j][r1[col[j]]];
        Ops::add(e1, gh1);
        if constexpr (!Unit) e1.n += 1;
      }
    }
    for (; i < c.count; ++i) {
      const std::uint32_t pos =
          Iota ? static_cast<std::uint32_t>(i) : c.rows[i];
      const auto gh = Ops::make(c.grad[pos], Unit ? 1.0 : c.hess[pos]);
      const Code* row = codes + static_cast<std::size_t>(pos) * stride;
      for (std::size_t j = 0; j < w; ++j) {
        ::flaml::HistEntry& e = base[j][row[col[j]]];
        Ops::add(e, gh);
        if constexpr (!Unit) e.n += 1;
      }
    }
  }
  if constexpr (Unit) {
    // h accumulated exact integer sums of 1.0; materialize the counts.
    for (std::size_t s = 0; s < c.n_sel; ++s) {
      const std::size_t f = static_cast<std::size_t>(c.features[s]);
      ::flaml::HistEntry* e = c.hist + c.offsets[f];
      ::flaml::HistEntry* const end = c.hist + c.offsets[f + 1];
      for (; e != end; ++e) e->n = static_cast<std::uint32_t>(e->h);
    }
  }
}

template <typename Code, bool Negate, bool Iota, bool Weighted>
void class_core(const Code* codes, std::size_t stride,
                const ::flaml::histdetail::ClassCall& c) {
  const std::size_t n = c.f_end - c.f_begin;
  for (std::size_t t = 0; t < n; t += kFeatureTile) {
    const std::size_t w = std::min(kFeatureTile, n - t);
    const std::size_t f0 = c.f_begin + t;
    double* base[kFeatureTile];
    for (std::size_t j = 0; j < w; ++j) base[j] = c.hist + c.offsets[f0 + j] * c.k;
    for (std::size_t i = 0; i < c.count; ++i) {
      const std::uint32_t pos =
          Iota ? static_cast<std::uint32_t>(i) : c.rows[i];
      double wt = Weighted ? c.weights[pos] : 1.0;
      if constexpr (Negate) wt = -wt;
      const std::size_t lbl = static_cast<std::size_t>(c.labels[pos]);
      const Code* row = codes + static_cast<std::size_t>(pos) * stride + f0;
      for (std::size_t j = 0; j < w; ++j) {
        base[j][static_cast<std::size_t>(row[j]) * c.k + lbl] += wt;
      }
    }
  }
}

template <typename Code, bool Weighted>
void fill_core(const Code* codes, std::size_t stride,
               const ::flaml::histdetail::FillCall& c) {
  const Code* col = codes + c.feature;
  for (std::size_t i = 0; i < c.count; ++i) {
    const std::uint32_t pos = c.rows[i];
    c.out[static_cast<std::size_t>(col[static_cast<std::size_t>(pos) * stride]) *
              c.k +
          static_cast<std::size_t>(c.labels[pos])] +=
        Weighted ? c.weights[pos] : 1.0;
  }
}

// Runtime-flag fan-out to the fully specialized cores.

template <typename Code, typename Ops>
void grad_entry(const Code* codes, std::size_t stride,
                const ::flaml::histdetail::GradCall& c) {
  if (c.unit) {
    if (c.iota) return grad_core<Code, Ops, true, true>(codes, stride, c);
    return grad_core<Code, Ops, true, false>(codes, stride, c);
  }
  if (c.iota) return grad_core<Code, Ops, false, true>(codes, stride, c);
  return grad_core<Code, Ops, false, false>(codes, stride, c);
}

template <typename Code>
void class_entry(const Code* codes, std::size_t stride,
                 const ::flaml::histdetail::ClassCall& c) {
  const bool wtd = c.weights != nullptr;
  if (c.negate) {
    if (c.iota) {
      if (wtd) return class_core<Code, true, true, true>(codes, stride, c);
      return class_core<Code, true, true, false>(codes, stride, c);
    }
    if (wtd) return class_core<Code, true, false, true>(codes, stride, c);
    return class_core<Code, true, false, false>(codes, stride, c);
  }
  if (c.iota) {
    if (wtd) return class_core<Code, false, true, true>(codes, stride, c);
    return class_core<Code, false, true, false>(codes, stride, c);
  }
  if (wtd) return class_core<Code, false, false, true>(codes, stride, c);
  return class_core<Code, false, false, false>(codes, stride, c);
}

template <typename Code>
void fill_entry(const Code* codes, std::size_t stride,
                const ::flaml::histdetail::FillCall& c) {
  if (c.weights != nullptr) return fill_core<Code, true>(codes, stride, c);
  return fill_core<Code, false>(codes, stride, c);
}
