// Feature discretization for histogram-based tree learning.
//
// Numeric features are quantile-binned into at most `max_bin` bins (exact
// distinct values when there are few); categorical features map code c to
// bin c. Every feature reserves one extra trailing bin for missing values.
// Trees are grown on bin indices; the final tree stores raw thresholds so
// prediction needs no BinMapper.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace flaml {

struct FeatureBins {
  ColumnType type = ColumnType::Numeric;
  // Numeric: ascending upper edges; bin b covers (edges[b-1], edges[b]],
  // bin 0 covers (-inf, edges[0]]. Values above the last edge land in the
  // last non-missing bin. Size = n_value_bins - 1 (may be 0 when constant).
  std::vector<float> edges;
  // Non-missing bins. Categorical: the cardinality.
  int n_value_bins = 1;

  // Total bins including the trailing missing bin.
  int n_bins() const { return n_value_bins + 1; }
  int missing_bin() const { return n_value_bins; }
  int bin_for(float v) const;
  // Raw threshold for a numeric split "bin <= b" (the upper edge of bin b).
  float threshold_for(int bin) const;
};

// Column-major binned matrix; bins_[feature][row].
class BinnedMatrix {
 public:
  BinnedMatrix() = default;
  BinnedMatrix(std::size_t n_rows, std::size_t n_features)
      : n_rows_(n_rows),
        bins_(n_features, std::vector<std::uint16_t>(n_rows)) {}

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const { return bins_.size(); }
  const std::vector<std::uint16_t>& feature(std::size_t f) const { return bins_[f]; }
  std::vector<std::uint16_t>& feature(std::size_t f) { return bins_[f]; }
  std::uint16_t bin(std::size_t row, std::size_t f) const { return bins_[f][row]; }

 private:
  std::size_t n_rows_ = 0;
  std::vector<std::vector<std::uint16_t>> bins_;
};

class BinMapper {
 public:
  // Learn bin boundaries from the rows of `view`. max_bin in [2, 65534].
  static BinMapper fit(const DataView& view, int max_bin);

  std::size_t n_features() const { return features_.size(); }
  const FeatureBins& feature(std::size_t f) const { return features_[f]; }

  // Encode the rows of `view` (same dataset schema as the fitted one).
  BinnedMatrix encode(const DataView& view) const;

 private:
  std::vector<FeatureBins> features_;
};

}  // namespace flaml
