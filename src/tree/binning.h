// Feature discretization for histogram-based tree learning.
//
// Numeric features are quantile-binned into at most `max_bin` bins (exact
// distinct values when there are few); categorical features map code c to
// bin c. Every feature reserves one extra trailing bin for missing values.
// Trees are grown on bin indices; the final tree stores raw thresholds so
// prediction needs no BinMapper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "tree/packed_bins.h"

namespace flaml {

struct FeatureBins {
  ColumnType type = ColumnType::Numeric;
  // Numeric: ascending upper edges; bin b covers (edges[b-1], edges[b]],
  // bin 0 covers (-inf, edges[0]]. Values above the last edge land in the
  // last non-missing bin. Size = n_value_bins - 1 (may be 0 when constant).
  std::vector<float> edges;
  // Non-missing bins. Categorical: the cardinality.
  int n_value_bins = 1;

  // Total bins including the trailing missing bin.
  int n_bins() const { return n_value_bins + 1; }
  int missing_bin() const { return n_value_bins; }
  int bin_for(float v) const;
  // Raw threshold for a numeric split "bin <= b" (the upper edge of bin b).
  float threshold_for(int bin) const;
};

// Column-major binned matrix; bins_[feature][row].
class BinnedMatrix {
 public:
  BinnedMatrix() = default;
  BinnedMatrix(std::size_t n_rows, std::size_t n_features)
      : n_rows_(n_rows),
        bins_(n_features, std::vector<std::uint16_t>(n_rows)) {}

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const { return bins_.size(); }
  const std::vector<std::uint16_t>& feature(std::size_t f) const { return bins_[f]; }
  std::vector<std::uint16_t>& feature(std::size_t f) { return bins_[f]; }
  std::uint16_t bin(std::size_t row, std::size_t f) const { return bins_[f][row]; }

 private:
  std::size_t n_rows_ = 0;
  std::vector<std::vector<std::uint16_t>> bins_;
};

class BinMapper {
 public:
  // Learn bin boundaries from the rows of `view`. max_bin in [2, 65534].
  static BinMapper fit(const DataView& view, int max_bin);

  std::size_t n_features() const { return features_.size(); }
  const FeatureBins& feature(std::size_t f) const { return features_[f]; }

  // Encode the rows of `view` (same dataset schema as the fitted one).
  BinnedMatrix encode(const DataView& view) const;

 private:
  std::vector<FeatureBins> features_;
};

// A fitted BinMapper together with the matrix it encoded, over one exact
// row set. Trainers keep raw references into `mapper`/`binned` for the
// duration of a fit, so shared substrates travel as
// shared_ptr<const BinnedSubstrate> and are immutable once built.
struct BinnedSubstrate {
  BinMapper mapper;
  BinnedMatrix binned;
  // Row-major width-minimal layout of `binned` for the SIMD histogram
  // kernels (src/tree/histogram.h). Built by build_substrate() unless the
  // Scalar kernel is forced (packed_bins_enabled() == false), in which case
  // it stays empty and growers fall back to the column layout — or pack
  // locally if the kernel changes after the substrate was built.
  PackedBins packed;
  int max_bin = 0;  // the fit() parameter, for compatibility checks

  // Heap footprint of the encoded matrix + packed layout (cache accounting).
  std::size_t bytes() const;
};

// Fit + encode over exactly the rows of `view`. Byte-identical to what a
// trainer builds internally for the same view and max_bin — the invariant
// the cross-trial substrate cache (src/automl/substrate_cache.h) relies on.
BinnedSubstrate build_substrate(const DataView& view, int max_bin);

// Row-prefix window into an encoded matrix; valid while the matrix lives.
// encode() is row-independent under a FIXED mapper, so the window over the
// first n rows equals encoding those rows directly with that mapper (pinned
// by the property suite in tests/test_substrate_cache.cpp). Fitting a NEW
// mapper on the prefix is a different operation — bin edges depend on the
// rows seen — which is why the cache stores per-exact-row-set substrates
// instead of slicing one full-size fit.
class BinnedView {
 public:
  BinnedView() = default;
  BinnedView(const BinnedMatrix& matrix, std::size_t n_rows);

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const {
    return matrix_ == nullptr ? 0 : matrix_->n_features();
  }
  std::uint16_t bin(std::size_t row, std::size_t f) const {
    return matrix_->bin(row, f);
  }

  // Copy the window into a standalone matrix.
  BinnedMatrix materialize() const;

 private:
  const BinnedMatrix* matrix_ = nullptr;
  std::size_t n_rows_ = 0;
};

// Handed to trainers through TrainContext / trainer params: returns a
// shared substrate for EXACTLY the trainer's training rows at the given
// max_bin, or null to make the trainer fit its own. Must be safe to call
// from concurrent trials.
using SubstrateProvider =
    std::function<std::shared_ptr<const BinnedSubstrate>(int max_bin)>;

}  // namespace flaml
