#include "tree/class_grower.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"
#include "tree/histogram.h"

namespace flaml {

namespace {

// Impurity of a class-count vector with total n (> 0), scaled by n so that
// gain = imp(parent) - imp(left) - imp(right) is count-weighted.
double weighted_impurity(const std::vector<double>& counts, double n,
                         SplitCriterion criterion) {
  if (n <= 0.0) return 0.0;
  if (criterion == SplitCriterion::Gini) {
    double sum_sq = 0.0;
    for (double c : counts) sum_sq += c * c;
    return n - sum_sq / n;  // n * (1 - sum p^2)
  }
  double ent = 0.0;
  for (double c : counts) {
    if (c > 0.0) ent -= c * std::log(c / n);
  }
  return ent;  // n * entropy (nats)
}

struct ClassSplit {
  double gain = -1.0;
  int feature = -1;
  int bin = -1;
  bool categorical = false;
  bool missing_left = false;
  bool missing_only = false;
  bool valid() const { return feature >= 0; }
};

struct ClassLeaf {
  std::int32_t node = 0;
  std::size_t begin = 0;
  std::size_t count = 0;
  int depth = 1;
  std::vector<double> class_counts;           // size n_classes
  std::vector<double> hist;                   // [bin_offset*K + class]
  ClassSplit best;
};

class ClassGrowContext {
 public:
  ClassGrowContext(const BinMapper& mapper, const BinnedMatrix& binned,
                   const PackedBins* packed, HistKernel kernel, int n_classes,
                   const std::vector<std::uint32_t>& rows, const std::vector<int>& labels,
                   const std::vector<double>& weights, const ClassGrowerParams& params,
                   Rng& rng)
      : mapper_(mapper),
        binned_(binned),
        packed_(packed),
        kernel_(kernel),
        k_(n_classes),
        labels_(labels),
        weights_(weights),
        params_(params),
        rng_(rng),
        pool_(params.n_threads > 1 ? &shared_pool() : nullptr),
        buffer_(rows),
        offsets_(histogram_offsets(mapper)) {
    all_features_.resize(mapper.n_features());
    for (std::size_t f = 0; f < mapper.n_features(); ++f) {
      all_features_[f] = static_cast<int>(f);
    }
  }

  Tree run() {
    Tree tree;
    std::vector<ClassLeaf> leaves;
    ClassLeaf root;
    root.node = 0;
    root.begin = 0;
    root.count = buffer_.size();
    root.class_counts = count_classes(root);
    if (root.count > kCompactThreshold) build_hist(root);
    root.best = find_best_split(root);
    leaves.push_back(std::move(root));

    int n_leaves = 1;
    while (params_.max_leaves <= 0 || n_leaves < params_.max_leaves) {
      int pick = -1;
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (!leaves[i].best.valid()) continue;
        if (params_.max_depth > 0 && leaves[i].depth >= params_.max_depth) continue;
        if (pick < 0 ||
            leaves[i].best.gain > leaves[static_cast<std::size_t>(pick)].best.gain) {
          pick = static_cast<int>(i);
        }
      }
      if (pick < 0) break;

      ClassLeaf leaf = std::move(leaves[static_cast<std::size_t>(pick)]);
      leaves.erase(leaves.begin() + pick);
      std::size_t left_count = partition(leaf, leaf.best);
      FLAML_CHECK(left_count > 0 && left_count < leaf.count);

      apply_split(tree, leaf.node, leaf.best);
      auto [left_id, right_id] = tree.split_leaf(leaf.node);

      ClassLeaf left, right;
      left.node = left_id;
      left.begin = leaf.begin;
      left.count = left_count;
      left.depth = leaf.depth + 1;
      right.node = right_id;
      right.begin = leaf.begin + left_count;
      right.count = leaf.count - left_count;
      right.depth = leaf.depth + 1;
      left.class_counts = count_classes(left);
      right.class_counts.resize(static_cast<std::size_t>(k_));
      for (int c = 0; c < k_; ++c) {
        right.class_counts[static_cast<std::size_t>(c)] =
            leaf.class_counts[static_cast<std::size_t>(c)] -
            left.class_counts[static_cast<std::size_t>(c)];
      }
      // The larger child inherits the parent's histogram buffer and removes
      // the smaller child's rows in place — O(small × features) with no
      // allocation. The smaller child gets a histogram only when it is big
      // enough to warrant one; small leaves use the compact gathered scan
      // in find_best_split (deep forests would otherwise spend all their
      // time allocating and scanning mostly-empty bins×classes arrays).
      ClassLeaf& small_child = left.count <= right.count ? left : right;
      ClassLeaf& large_child = left.count <= right.count ? right : left;
      if (leaf.count > kCompactThreshold) {
        large_child.hist = std::move(leaf.hist);
        remove_rows_from_hist(small_child, large_child.hist);
        if (large_child.count <= kCompactThreshold) {
          large_child.hist.clear();  // compact scan is cheaper
          large_child.hist.shrink_to_fit();
        }
      }
      if (small_child.count > kCompactThreshold) build_hist(small_child);
      left.best = find_best_split(left);
      right.best = find_best_split(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
      ++n_leaves;
    }

    auto& dists = tree.leaf_distributions();
    dists.assign(tree.n_nodes(), {});
    for (const auto& leaf : leaves) {
      std::vector<double> dist(leaf.class_counts);
      double total = 0.0;
      for (double c : leaf.class_counts) total += c;
      if (total <= 0.0) total = 1.0;
      for (double& d : dist) d /= total;
      dists[static_cast<std::size_t>(leaf.node)] = std::move(dist);
      // Also store the majority-class probability-weighted value for scalar
      // use (e.g. binary P(class 1)).
      if (k_ == 2) {
        tree.node(static_cast<std::size_t>(leaf.node)).leaf_value =
            leaf.class_counts[1] / total;
      }
    }
    return tree;
  }

 private:
  // Leaves at or below this row count skip per-leaf histograms and use the
  // per-feature scratch accumulation in find_best_split instead.
  static constexpr std::size_t kCompactThreshold = 256;

  double row_weight(std::uint32_t pos) const {
    return weights_.empty() ? 1.0 : weights_[pos];
  }

  HistParallel par() const { return HistParallel{pool_, params_.n_threads}; }

  // Remove a child's rows from an inherited parent histogram (in place).
  void remove_rows_from_hist(const ClassLeaf& child, std::vector<double>& hist) const {
    if (packed_ != nullptr) {
      remove_rows_from_class_histogram_packed(
          *packed_, offsets_, k_, buffer_.data() + child.begin, child.count,
          labels_, weights_, hist, kernel_, par());
    } else {
      remove_rows_from_class_histogram(binned_, offsets_, k_,
                                       buffer_.data() + child.begin,
                                       child.count, labels_, weights_, hist,
                                       par());
    }
  }

  std::vector<double> count_classes(const ClassLeaf& leaf) const {
    std::vector<double> counts(static_cast<std::size_t>(k_), 0.0);
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      counts[static_cast<std::size_t>(labels_[buffer_[i]])] += row_weight(buffer_[i]);
    }
    return counts;
  }

  void build_hist(ClassLeaf& leaf) const {
    if (packed_ != nullptr) {
      build_class_histogram_packed(*packed_, offsets_, k_,
                                   buffer_.data() + leaf.begin, leaf.count,
                                   labels_, weights_, leaf.hist, kernel_,
                                   par());
    } else {
      build_class_histogram(binned_, offsets_, k_, buffer_.data() + leaf.begin,
                            leaf.count, labels_, weights_, leaf.hist, par());
    }
  }

  std::vector<int> sampled_features() {
    if (params_.max_features >= 1.0) return all_features_;
    std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(params_.max_features *
                                                static_cast<double>(all_features_.size()))));
    std::vector<int> sampled = all_features_;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + rng_.uniform_index(sampled.size() - i);
      std::swap(sampled[i], sampled[j]);
    }
    sampled.resize(k);
    return sampled;
  }

  // Per-evaluation scratch. The serial path reuses one instance across
  // features; each parallel shard owns its own so evaluations never share
  // mutable state.
  struct SplitScratch {
    std::vector<double> left_counts;
    std::vector<double> right_counts;
    std::vector<double> compact_counts;  // gathered [bin*k+class] for small leaves
  };

  // Best split of a single feature. `random_bin` carries the pre-drawn
  // extra-trees threshold (-1 = feature skipped / not extra-random), so the
  // evaluation itself is pure and can run on any thread.
  ClassSplit eval_feature_split(const ClassLeaf& leaf, int f, int random_bin,
                                double parent_imp, SplitScratch& scratch) const {
    ClassSplit best;
    const std::size_t k = static_cast<std::size_t>(k_);
    scratch.left_counts.assign(k, 0.0);
    scratch.right_counts.assign(k, 0.0);
    std::vector<double>& left_counts = scratch.left_counts;
    std::vector<double>& right_counts = scratch.right_counts;

    auto consider = [&](int bin, bool categorical, bool missing_left,
                        bool missing_only) {
      double nl = 0.0, nr = 0.0;
      for (int c = 0; c < k_; ++c) {
        nl += left_counts[static_cast<std::size_t>(c)];
        nr += right_counts[static_cast<std::size_t>(c)];
      }
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) return;
      double gain = parent_imp -
                    weighted_impurity(left_counts, nl, params_.criterion) -
                    weighted_impurity(right_counts, nr, params_.criterion);
      if (gain > best.gain && gain > params_.min_gain) {
        best = {gain, f, bin, categorical, missing_left, missing_only};
      }
    };

    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(f));
    const double* hist;
    if (leaf.hist.empty()) {
      if (packed_ != nullptr) {
        fill_feature_class_counts_packed(*packed_, f, fb.n_bins(), k_,
                                         buffer_.data() + leaf.begin,
                                         leaf.count, labels_, weights_,
                                         scratch.compact_counts, kernel_);
      } else {
        fill_feature_class_counts(binned_.feature(static_cast<std::size_t>(f)),
                                  fb.n_bins(), k_, buffer_.data() + leaf.begin,
                                  leaf.count, labels_, weights_,
                                  scratch.compact_counts);
      }
      hist = scratch.compact_counts.data();
    } else {
      hist = leaf.hist.data() + offsets_[static_cast<std::size_t>(f)] * k;
    }
    auto bin_counts = [&](int b, int c) {
      return hist[static_cast<std::size_t>(b) * k + static_cast<std::size_t>(c)];
    };
    const int miss_bin = fb.missing_bin();

    if (fb.type == ColumnType::Categorical) {
      for (int b = 0; b < fb.n_value_bins; ++b) {
        double n_b = 0.0;
        for (int c = 0; c < k_; ++c) n_b += bin_counts(b, c);
        if (n_b == 0.0) continue;
        for (int c = 0; c < k_; ++c) {
          left_counts[static_cast<std::size_t>(c)] = bin_counts(b, c);
          right_counts[static_cast<std::size_t>(c)] =
              leaf.class_counts[static_cast<std::size_t>(c)] - bin_counts(b, c);
        }
        consider(b, true, false, false);
      }
      return best;
    }

    if (params_.extra_random) {
      // One pre-drawn random threshold; < 0 means the feature had fewer than
      // two value bins and contributes no candidate.
      if (random_bin < 0) return best;
      for (int bb = 0; bb <= random_bin; ++bb) {
        for (int c = 0; c < k_; ++c) {
          left_counts[static_cast<std::size_t>(c)] += bin_counts(bb, c);
        }
      }
      for (int c = 0; c < k_; ++c) {
        right_counts[static_cast<std::size_t>(c)] =
            leaf.class_counts[static_cast<std::size_t>(c)] -
            left_counts[static_cast<std::size_t>(c)];
      }
      consider(random_bin, false, false, false);
      return best;
    }

    // Full scan; missing goes right (missing-left variant adds little for
    // forests and doubles the scan cost).
    for (int b = 0; b + 1 < fb.n_value_bins; ++b) {
      for (int c = 0; c < k_; ++c) {
        left_counts[static_cast<std::size_t>(c)] += bin_counts(b, c);
      }
      for (int c = 0; c < k_; ++c) {
        right_counts[static_cast<std::size_t>(c)] =
            leaf.class_counts[static_cast<std::size_t>(c)] -
            left_counts[static_cast<std::size_t>(c)];
      }
      consider(b, false, false, false);
    }
    // Missing-vs-known split when missing has mass.
    double n_miss = 0.0;
    for (int c = 0; c < k_; ++c) n_miss += bin_counts(miss_bin, c);
    if (n_miss > 0.0) {
      for (int c = 0; c < k_; ++c) {
        right_counts[static_cast<std::size_t>(c)] = bin_counts(miss_bin, c);
        left_counts[static_cast<std::size_t>(c)] =
            leaf.class_counts[static_cast<std::size_t>(c)] -
            right_counts[static_cast<std::size_t>(c)];
      }
      consider(-1, false, false, true);
    }
    return best;
  }

  ClassSplit find_best_split(ClassLeaf& leaf) {
    ClassSplit best;
    if (leaf.count < 2 * static_cast<std::size_t>(params_.min_samples_leaf)) return best;
    // The impurity total is the WEIGHTED class mass, not the row count.
    double parent_total = 0.0;
    for (double c : leaf.class_counts) parent_total += c;
    const double parent_imp =
        weighted_impurity(leaf.class_counts, parent_total, params_.criterion);
    if (parent_imp <= params_.min_gain) return best;  // pure leaf

    const std::vector<int> feats = sampled_features();
    // Extra-trees thresholds come from the shared rng, so they are drawn
    // here, serially and in feature order, before any fan-out: the rng
    // stream is then identical no matter how evaluation is scheduled.
    std::vector<int> random_bins;
    if (params_.extra_random) {
      random_bins.assign(feats.size(), -1);
      for (std::size_t i = 0; i < feats.size(); ++i) {
        const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(feats[i]));
        if (fb.type != ColumnType::Categorical && fb.n_value_bins >= 2) {
          random_bins[i] = static_cast<int>(rng_.uniform_index(
              static_cast<std::uint64_t>(fb.n_value_bins - 1)));
        }
      }
    }
    auto random_bin_at = [&](std::size_t i) {
      return random_bins.empty() ? -1 : random_bins[i];
    };

    // Parallel only for leaves with a retained histogram: compact-scan
    // leaves are by definition small, and the gather would dominate.
    if (pool_ != nullptr && !leaf.hist.empty() && feats.size() >= 2) {
      std::vector<ClassSplit> per_feature(feats.size());
      sharded_for(pool_, params_.n_threads, feats.size(),
                  [&](std::size_t begin, std::size_t end) {
                    SplitScratch scratch;
                    for (std::size_t i = begin; i < end; ++i) {
                      per_feature[i] = eval_feature_split(
                          leaf, feats[i], random_bin_at(i), parent_imp, scratch);
                    }
                  });
      // Fixed-order reduction with strict `>`: keeps the lowest-feature-index
      // winner on ties, exactly like the serial accumulating scan.
      for (const ClassSplit& cand : per_feature) {
        if (cand.valid() && cand.gain > best.gain) best = cand;
      }
    } else {
      for (std::size_t i = 0; i < feats.size(); ++i) {
        ClassSplit cand = eval_feature_split(leaf, feats[i], random_bin_at(i),
                                             parent_imp, split_scratch_);
        if (cand.valid() && cand.gain > best.gain) best = cand;
      }
    }
    return best;
  }

  std::size_t partition(const ClassLeaf& leaf, const ClassSplit& split) {
    const auto& col = binned_.feature(static_cast<std::size_t>(split.feature));
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(split.feature));
    const int missing_bin = fb.missing_bin();
    auto goes_left = [&](std::uint32_t pos) {
      int b = col[pos];
      if (split.missing_only) return b != missing_bin;
      if (b == missing_bin) return split.missing_left;
      if (split.categorical) return b == split.bin;
      return b <= split.bin;
    };
    scratch_.clear();
    std::size_t write = leaf.begin;
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      if (goes_left(buffer_[i])) {
        buffer_[write++] = buffer_[i];
      } else {
        scratch_.push_back(buffer_[i]);
      }
    }
    std::copy(scratch_.begin(), scratch_.end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(write));
    return write - leaf.begin;
  }

  void apply_split(Tree& tree, std::int32_t node, const ClassSplit& split) const {
    TreeNode& n = tree.node(static_cast<std::size_t>(node));
    n.feature = split.feature;
    n.split_gain = std::max(split.gain, 0.0);
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(split.feature));
    if (split.missing_only) {
      n.categorical = false;
      n.threshold = std::numeric_limits<float>::infinity();
      n.missing_left = false;
    } else if (split.categorical) {
      n.categorical = true;
      n.category = split.bin;
      n.missing_left = false;
    } else {
      n.categorical = false;
      n.threshold = fb.threshold_for(split.bin);
      n.missing_left = split.missing_left;
    }
  }

  const BinMapper& mapper_;
  const BinnedMatrix& binned_;
  const PackedBins* packed_;  // null = legacy scalar column build
  HistKernel kernel_;
  int k_;
  const std::vector<int>& labels_;
  const std::vector<double>& weights_;
  const ClassGrowerParams& params_;
  Rng& rng_;
  ThreadPool* pool_;  // null = serial growth
  std::vector<std::uint32_t> buffer_;
  std::vector<std::uint32_t> scratch_;
  std::vector<std::size_t> offsets_;
  std::vector<int> all_features_;
  SplitScratch split_scratch_;  // serial-path evaluation scratch
};

}  // namespace

ClassTreeGrower::ClassTreeGrower(const BinMapper& mapper, const BinnedMatrix& binned,
                                 int n_classes, const PackedBins* packed)
    : mapper_(&mapper), binned_(&binned), n_classes_(n_classes), packed_(packed) {
  FLAML_REQUIRE(n_classes >= 2, "classification tree needs >= 2 classes");
  FLAML_REQUIRE(packed == nullptr || (packed->n_rows() == binned.n_rows() &&
                                      packed->n_features() == binned.n_features()),
                "packed bins must describe the same matrix as `binned`");
}

const PackedBins* ClassTreeGrower::packed_or_build() const {
  if (packed_ != nullptr) return packed_;
  std::call_once(pack_once_, [this] {
    owned_packed_ = std::make_unique<PackedBins>(PackedBins::pack(*binned_));
  });
  return owned_packed_.get();
}

Tree ClassTreeGrower::grow(const std::vector<std::uint32_t>& rows,
                           const std::vector<int>& labels,
                           const ClassGrowerParams& params, Rng& rng) const {
  static const std::vector<double> kNoWeights;
  return grow(rows, labels, kNoWeights, params, rng);
}

Tree ClassTreeGrower::grow(const std::vector<std::uint32_t>& rows,
                           const std::vector<int>& labels,
                           const std::vector<double>& weights,
                           const ClassGrowerParams& params, Rng& rng) const {
  FLAML_REQUIRE(!rows.empty(), "cannot grow a tree on zero rows");
  FLAML_REQUIRE(labels.size() == binned_->n_rows(),
                "labels must cover all binned rows");
  FLAML_REQUIRE(weights.empty() || weights.size() == binned_->n_rows(),
                "weights must cover all binned rows");
  // Resolved once per tree; packed kernels are bit-identical to Scalar, so
  // the choice never changes the grown tree.
  const HistKernel kernel = active_hist_kernel();
  const PackedBins* packed =
      kernel == HistKernel::Scalar ? nullptr : packed_or_build();
  ClassGrowContext ctx(*mapper_, *binned_, packed, kernel, n_classes_, rows,
                       labels, weights, params, rng);
  return ctx.run();
}

}  // namespace flaml
