#include "tree/class_grower.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace flaml {

namespace {

// Impurity of a class-count vector with total n (> 0), scaled by n so that
// gain = imp(parent) - imp(left) - imp(right) is count-weighted.
double weighted_impurity(const std::vector<double>& counts, double n,
                         SplitCriterion criterion) {
  if (n <= 0.0) return 0.0;
  if (criterion == SplitCriterion::Gini) {
    double sum_sq = 0.0;
    for (double c : counts) sum_sq += c * c;
    return n - sum_sq / n;  // n * (1 - sum p^2)
  }
  double ent = 0.0;
  for (double c : counts) {
    if (c > 0.0) ent -= c * std::log(c / n);
  }
  return ent;  // n * entropy (nats)
}

struct ClassSplit {
  double gain = -1.0;
  int feature = -1;
  int bin = -1;
  bool categorical = false;
  bool missing_left = false;
  bool missing_only = false;
  bool valid() const { return feature >= 0; }
};

struct ClassLeaf {
  std::int32_t node = 0;
  std::size_t begin = 0;
  std::size_t count = 0;
  int depth = 1;
  std::vector<double> class_counts;           // size n_classes
  std::vector<double> hist;                   // [bin_offset*K + class]
  ClassSplit best;
};

class ClassGrowContext {
 public:
  ClassGrowContext(const BinMapper& mapper, const BinnedMatrix& binned, int n_classes,
                   const std::vector<std::uint32_t>& rows, const std::vector<int>& labels,
                   const std::vector<double>& weights, const ClassGrowerParams& params,
                   Rng& rng)
      : mapper_(mapper),
        binned_(binned),
        k_(n_classes),
        labels_(labels),
        weights_(weights),
        params_(params),
        rng_(rng),
        buffer_(rows) {
    offsets_.resize(mapper.n_features() + 1, 0);
    for (std::size_t f = 0; f < mapper.n_features(); ++f) {
      offsets_[f + 1] = offsets_[f] + static_cast<std::size_t>(mapper.feature(f).n_bins());
    }
    all_features_.resize(mapper.n_features());
    for (std::size_t f = 0; f < mapper.n_features(); ++f) {
      all_features_[f] = static_cast<int>(f);
    }
  }

  Tree run() {
    Tree tree;
    std::vector<ClassLeaf> leaves;
    ClassLeaf root;
    root.node = 0;
    root.begin = 0;
    root.count = buffer_.size();
    root.class_counts = count_classes(root);
    if (root.count > kCompactThreshold) build_hist(root);
    root.best = find_best_split(root);
    leaves.push_back(std::move(root));

    int n_leaves = 1;
    while (params_.max_leaves <= 0 || n_leaves < params_.max_leaves) {
      int pick = -1;
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (!leaves[i].best.valid()) continue;
        if (params_.max_depth > 0 && leaves[i].depth >= params_.max_depth) continue;
        if (pick < 0 ||
            leaves[i].best.gain > leaves[static_cast<std::size_t>(pick)].best.gain) {
          pick = static_cast<int>(i);
        }
      }
      if (pick < 0) break;

      ClassLeaf leaf = std::move(leaves[static_cast<std::size_t>(pick)]);
      leaves.erase(leaves.begin() + pick);
      std::size_t left_count = partition(leaf, leaf.best);
      FLAML_CHECK(left_count > 0 && left_count < leaf.count);

      apply_split(tree, leaf.node, leaf.best);
      auto [left_id, right_id] = tree.split_leaf(leaf.node);

      ClassLeaf left, right;
      left.node = left_id;
      left.begin = leaf.begin;
      left.count = left_count;
      left.depth = leaf.depth + 1;
      right.node = right_id;
      right.begin = leaf.begin + left_count;
      right.count = leaf.count - left_count;
      right.depth = leaf.depth + 1;
      left.class_counts = count_classes(left);
      right.class_counts.resize(static_cast<std::size_t>(k_));
      for (int c = 0; c < k_; ++c) {
        right.class_counts[static_cast<std::size_t>(c)] =
            leaf.class_counts[static_cast<std::size_t>(c)] -
            left.class_counts[static_cast<std::size_t>(c)];
      }
      // The larger child inherits the parent's histogram buffer and removes
      // the smaller child's rows in place — O(small × features) with no
      // allocation. The smaller child gets a histogram only when it is big
      // enough to warrant one; small leaves use the compact gathered scan
      // in find_best_split (deep forests would otherwise spend all their
      // time allocating and scanning mostly-empty bins×classes arrays).
      ClassLeaf& small_child = left.count <= right.count ? left : right;
      ClassLeaf& large_child = left.count <= right.count ? right : left;
      if (leaf.count > kCompactThreshold) {
        large_child.hist = std::move(leaf.hist);
        remove_rows_from_hist(small_child, large_child.hist);
        if (large_child.count <= kCompactThreshold) {
          large_child.hist.clear();  // compact scan is cheaper
          large_child.hist.shrink_to_fit();
        }
      }
      if (small_child.count > kCompactThreshold) build_hist(small_child);
      left.best = find_best_split(left);
      right.best = find_best_split(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
      ++n_leaves;
    }

    auto& dists = tree.leaf_distributions();
    dists.assign(tree.n_nodes(), {});
    for (const auto& leaf : leaves) {
      std::vector<double> dist(leaf.class_counts);
      double total = 0.0;
      for (double c : leaf.class_counts) total += c;
      if (total <= 0.0) total = 1.0;
      for (double& d : dist) d /= total;
      dists[static_cast<std::size_t>(leaf.node)] = std::move(dist);
      // Also store the majority-class probability-weighted value for scalar
      // use (e.g. binary P(class 1)).
      if (k_ == 2) {
        tree.node(static_cast<std::size_t>(leaf.node)).leaf_value =
            leaf.class_counts[1] / total;
      }
    }
    return tree;
  }

 private:
  // Leaves at or below this row count skip per-leaf histograms and use the
  // per-feature scratch accumulation in find_best_split instead.
  static constexpr std::size_t kCompactThreshold = 256;

  double row_weight(std::uint32_t pos) const {
    return weights_.empty() ? 1.0 : weights_[pos];
  }

  // Remove a child's rows from an inherited parent histogram (in place).
  void remove_rows_from_hist(const ClassLeaf& child, std::vector<double>& hist) const {
    for (std::size_t f = 0; f < mapper_.n_features(); ++f) {
      const auto& col = binned_.feature(f);
      double* base = hist.data() + offsets_[f] * static_cast<std::size_t>(k_);
      for (std::size_t i = child.begin; i < child.begin + child.count; ++i) {
        std::uint32_t pos = buffer_[i];
        base[static_cast<std::size_t>(col[pos]) * static_cast<std::size_t>(k_) +
             static_cast<std::size_t>(labels_[pos])] -= row_weight(pos);
      }
    }
  }

  // Accumulate one feature's weighted class counts for a (small) leaf into
  // scratch_counts_; returns its data pointer. Layout matches the per-leaf
  // histogram slice: [bin * k + class].
  const double* fill_feature_counts(const ClassLeaf& leaf, int f) {
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(f));
    const std::size_t cells =
        static_cast<std::size_t>(fb.n_bins()) * static_cast<std::size_t>(k_);
    if (scratch_counts_.size() < cells) scratch_counts_.resize(cells);
    std::fill(scratch_counts_.begin(),
              scratch_counts_.begin() + static_cast<std::ptrdiff_t>(cells), 0.0);
    const auto& col = binned_.feature(static_cast<std::size_t>(f));
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      std::uint32_t pos = buffer_[i];
      scratch_counts_[static_cast<std::size_t>(col[pos]) * static_cast<std::size_t>(k_) +
                      static_cast<std::size_t>(labels_[pos])] += row_weight(pos);
    }
    return scratch_counts_.data();
  }

  std::vector<double> count_classes(const ClassLeaf& leaf) const {
    std::vector<double> counts(static_cast<std::size_t>(k_), 0.0);
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      counts[static_cast<std::size_t>(labels_[buffer_[i]])] += row_weight(buffer_[i]);
    }
    return counts;
  }

  void build_hist(ClassLeaf& leaf) const {
    leaf.hist.assign(offsets_.back() * static_cast<std::size_t>(k_), 0.0);
    for (std::size_t f = 0; f < mapper_.n_features(); ++f) {
      const auto& col = binned_.feature(f);
      double* base = leaf.hist.data() + offsets_[f] * static_cast<std::size_t>(k_);
      for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
        std::uint32_t pos = buffer_[i];
        base[static_cast<std::size_t>(col[pos]) * static_cast<std::size_t>(k_) +
             static_cast<std::size_t>(labels_[pos])] += row_weight(pos);
      }
    }
  }

  std::vector<int> sampled_features() {
    if (params_.max_features >= 1.0) return all_features_;
    std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(params_.max_features *
                                                static_cast<double>(all_features_.size()))));
    std::vector<int> sampled = all_features_;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + rng_.uniform_index(sampled.size() - i);
      std::swap(sampled[i], sampled[j]);
    }
    sampled.resize(k);
    return sampled;
  }

  ClassSplit find_best_split(ClassLeaf& leaf) {
    ClassSplit best;
    if (leaf.count < 2 * static_cast<std::size_t>(params_.min_samples_leaf)) return best;
    // The impurity total is the WEIGHTED class mass, not the row count.
    double parent_total = 0.0;
    for (double c : leaf.class_counts) parent_total += c;
    const double parent_imp =
        weighted_impurity(leaf.class_counts, parent_total, params_.criterion);
    if (parent_imp <= params_.min_gain) return best;  // pure leaf

    std::vector<double> left_counts(static_cast<std::size_t>(k_));
    std::vector<double> right_counts(static_cast<std::size_t>(k_));

    auto consider = [&](int f, int bin, bool categorical, bool missing_left,
                        bool missing_only) {
      double nl = 0.0, nr = 0.0;
      for (int c = 0; c < k_; ++c) {
        nl += left_counts[static_cast<std::size_t>(c)];
        nr += right_counts[static_cast<std::size_t>(c)];
      }
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) return;
      double gain = parent_imp -
                    weighted_impurity(left_counts, nl, params_.criterion) -
                    weighted_impurity(right_counts, nr, params_.criterion);
      if (gain > best.gain && gain > params_.min_gain) {
        best = {gain, f, bin, categorical, missing_left, missing_only};
      }
    };

    for (int f : sampled_features()) {
      const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(f));
      const double* hist =
          leaf.hist.empty()
              ? fill_feature_counts(leaf, f)
              : leaf.hist.data() +
                    offsets_[static_cast<std::size_t>(f)] * static_cast<std::size_t>(k_);
      auto bin_counts = [&](int b, int c) {
        return hist[static_cast<std::size_t>(b) * static_cast<std::size_t>(k_) +
                    static_cast<std::size_t>(c)];
      };
      const int miss_bin = fb.missing_bin();

      if (fb.type == ColumnType::Categorical) {
        for (int b = 0; b < fb.n_value_bins; ++b) {
          double n_b = 0.0;
          for (int c = 0; c < k_; ++c) n_b += bin_counts(b, c);
          if (n_b == 0.0) continue;
          for (int c = 0; c < k_; ++c) {
            left_counts[static_cast<std::size_t>(c)] = bin_counts(b, c);
            right_counts[static_cast<std::size_t>(c)] =
                leaf.class_counts[static_cast<std::size_t>(c)] - bin_counts(b, c);
          }
          consider(f, b, true, false, false);
        }
        continue;
      }

      if (params_.extra_random) {
        // One random threshold among bins that have mass on both sides.
        if (fb.n_value_bins < 2) continue;
        int b = static_cast<int>(rng_.uniform_index(
            static_cast<std::uint64_t>(fb.n_value_bins - 1)));
        std::fill(left_counts.begin(), left_counts.end(), 0.0);
        for (int bb = 0; bb <= b; ++bb) {
          for (int c = 0; c < k_; ++c) {
            left_counts[static_cast<std::size_t>(c)] += bin_counts(bb, c);
          }
        }
        for (int c = 0; c < k_; ++c) {
          right_counts[static_cast<std::size_t>(c)] =
              leaf.class_counts[static_cast<std::size_t>(c)] -
              left_counts[static_cast<std::size_t>(c)];
        }
        consider(f, b, false, false, false);
        continue;
      }

      // Full scan; missing goes right (missing-left variant adds little for
      // forests and doubles the scan cost).
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      for (int b = 0; b + 1 < fb.n_value_bins; ++b) {
        for (int c = 0; c < k_; ++c) {
          left_counts[static_cast<std::size_t>(c)] += bin_counts(b, c);
        }
        for (int c = 0; c < k_; ++c) {
          right_counts[static_cast<std::size_t>(c)] =
              leaf.class_counts[static_cast<std::size_t>(c)] -
              left_counts[static_cast<std::size_t>(c)];
        }
        consider(f, b, false, false, false);
      }
      // Missing-vs-known split when missing has mass.
      double n_miss = 0.0;
      for (int c = 0; c < k_; ++c) n_miss += bin_counts(miss_bin, c);
      if (n_miss > 0.0) {
        for (int c = 0; c < k_; ++c) {
          right_counts[static_cast<std::size_t>(c)] = bin_counts(miss_bin, c);
          left_counts[static_cast<std::size_t>(c)] =
              leaf.class_counts[static_cast<std::size_t>(c)] -
              right_counts[static_cast<std::size_t>(c)];
        }
        consider(f, -1, false, false, true);
      }
    }
    return best;
  }

  std::size_t partition(const ClassLeaf& leaf, const ClassSplit& split) {
    const auto& col = binned_.feature(static_cast<std::size_t>(split.feature));
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(split.feature));
    const int missing_bin = fb.missing_bin();
    auto goes_left = [&](std::uint32_t pos) {
      int b = col[pos];
      if (split.missing_only) return b != missing_bin;
      if (b == missing_bin) return split.missing_left;
      if (split.categorical) return b == split.bin;
      return b <= split.bin;
    };
    scratch_.clear();
    std::size_t write = leaf.begin;
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      if (goes_left(buffer_[i])) {
        buffer_[write++] = buffer_[i];
      } else {
        scratch_.push_back(buffer_[i]);
      }
    }
    std::copy(scratch_.begin(), scratch_.end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(write));
    return write - leaf.begin;
  }

  void apply_split(Tree& tree, std::int32_t node, const ClassSplit& split) const {
    TreeNode& n = tree.node(static_cast<std::size_t>(node));
    n.feature = split.feature;
    n.split_gain = std::max(split.gain, 0.0);
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(split.feature));
    if (split.missing_only) {
      n.categorical = false;
      n.threshold = std::numeric_limits<float>::infinity();
      n.missing_left = false;
    } else if (split.categorical) {
      n.categorical = true;
      n.category = split.bin;
      n.missing_left = false;
    } else {
      n.categorical = false;
      n.threshold = fb.threshold_for(split.bin);
      n.missing_left = split.missing_left;
    }
  }

  const BinMapper& mapper_;
  const BinnedMatrix& binned_;
  int k_;
  const std::vector<int>& labels_;
  const std::vector<double>& weights_;
  const ClassGrowerParams& params_;
  Rng& rng_;
  std::vector<std::uint32_t> buffer_;
  std::vector<std::uint32_t> scratch_;
  std::vector<double> scratch_counts_;
  std::vector<std::size_t> offsets_;
  std::vector<int> all_features_;
};

}  // namespace

ClassTreeGrower::ClassTreeGrower(const BinMapper& mapper, const BinnedMatrix& binned,
                                 int n_classes)
    : mapper_(&mapper), binned_(&binned), n_classes_(n_classes) {
  FLAML_REQUIRE(n_classes >= 2, "classification tree needs >= 2 classes");
}

Tree ClassTreeGrower::grow(const std::vector<std::uint32_t>& rows,
                           const std::vector<int>& labels,
                           const ClassGrowerParams& params, Rng& rng) const {
  static const std::vector<double> kNoWeights;
  return grow(rows, labels, kNoWeights, params, rng);
}

Tree ClassTreeGrower::grow(const std::vector<std::uint32_t>& rows,
                           const std::vector<int>& labels,
                           const std::vector<double>& weights,
                           const ClassGrowerParams& params, Rng& rng) const {
  FLAML_REQUIRE(!rows.empty(), "cannot grow a tree on zero rows");
  FLAML_REQUIRE(labels.size() == binned_->n_rows(),
                "labels must cover all binned rows");
  FLAML_REQUIRE(weights.empty() || weights.size() == binned_->n_rows(),
                "weights must cover all binned rows");
  ClassGrowContext ctx(*mapper_, *binned_, n_classes_, rows, labels, weights,
                       params, rng);
  return ctx.run();
}

}  // namespace flaml
