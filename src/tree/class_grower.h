// Impurity-based classification tree growing (random forest / extra trees).
//
// Splits maximize count-weighted impurity decrease under gini or entropy
// (Table 5's `split criterion` hyperparameter). Leaves store the class
// distribution of their training rows (Tree::leaf_distributions). Extra
// trees mode evaluates one random threshold per candidate feature instead
// of scanning all thresholds.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "tree/binning.h"
#include "tree/packed_bins.h"
#include "tree/tree.h"

namespace flaml {

enum class SplitCriterion { Gini, Entropy };

struct ClassGrowerParams {
  int max_leaves = 512;
  int max_depth = 0;  // 0 = unlimited
  int min_samples_leaf = 1;
  double min_gain = 1e-12;
  // Fraction of features considered per split (RF's max_features).
  double max_features = 1.0;
  SplitCriterion criterion = SplitCriterion::Gini;
  // Extra-trees randomization: a single random cut per candidate feature.
  bool extra_random = false;
  // Intra-tree parallelism over feature blocks on the shared_pool(). Any
  // value produces the bit-identical tree (fixed-order reduction; random
  // thresholds are pre-drawn in feature order).
  int n_threads = 1;
};

class ClassTreeGrower {
 public:
  // `packed` optionally shares a pre-built row-major layout of the SAME
  // matrix; when null and the active histogram kernel is not Scalar, the
  // grower packs `binned` itself once on first use (thread-safe — forests
  // grow trees concurrently from one grower).
  ClassTreeGrower(const BinMapper& mapper, const BinnedMatrix& binned,
                  int n_classes, const PackedBins* packed = nullptr);

  // Grow one tree on `rows` (positions into the binned matrix);
  // `labels[pos]` is the class id of position pos.
  Tree grow(const std::vector<std::uint32_t>& rows, const std::vector<int>& labels,
            const ClassGrowerParams& params, Rng& rng) const;

  // Weighted variant: `weights[pos]` scales each row's contribution to the
  // class counts (empty = unweighted).
  Tree grow(const std::vector<std::uint32_t>& rows, const std::vector<int>& labels,
            const std::vector<double>& weights, const ClassGrowerParams& params,
            Rng& rng) const;

 private:
  const PackedBins* packed_or_build() const;

  const BinMapper* mapper_;
  const BinnedMatrix* binned_;
  int n_classes_;
  const PackedBins* packed_;
  mutable std::once_flag pack_once_;
  mutable std::unique_ptr<PackedBins> owned_packed_;
};

}  // namespace flaml
