#include "tree/binning.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "tree/histogram.h"

namespace flaml {

int FeatureBins::bin_for(float v) const {
  if (Dataset::is_missing(v)) return missing_bin();
  if (type == ColumnType::Categorical) {
    int code = static_cast<int>(v);
    FLAML_CHECK_MSG(code >= 0 && code < n_value_bins, "category code out of range");
    return code;
  }
  // First edge >= v; bin b covers values v <= edges[b].
  auto it = std::lower_bound(edges.begin(), edges.end(), v);
  int b = static_cast<int>(it - edges.begin());
  return std::min(b, n_value_bins - 1);
}

float FeatureBins::threshold_for(int bin) const {
  FLAML_CHECK(type == ColumnType::Numeric);
  FLAML_CHECK(bin >= 0 && bin < n_value_bins - 1);
  return edges[static_cast<std::size_t>(bin)];
}

BinMapper BinMapper::fit(const DataView& view, int max_bin) {
  FLAML_REQUIRE(max_bin >= 2 && max_bin <= 65534, "max_bin out of range");
  FLAML_REQUIRE(view.n_rows() > 0, "cannot fit bins on an empty view");
  const Dataset& data = view.data();
  BinMapper mapper;
  mapper.features_.resize(data.n_cols());

  std::vector<float> values;
  for (std::size_t f = 0; f < data.n_cols(); ++f) {
    FeatureBins& fb = mapper.features_[f];
    const ColumnInfo& info = data.column_info(f);
    fb.type = info.type;
    if (info.type == ColumnType::Categorical) {
      fb.n_value_bins = info.cardinality;
      continue;
    }
    values.clear();
    values.reserve(view.n_rows());
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      float v = view.value(i, f);
      if (!Dataset::is_missing(v)) values.push_back(v);
    }
    if (values.empty()) {
      fb.n_value_bins = 1;  // all-missing feature: single degenerate bin
      continue;
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (static_cast<int>(values.size()) <= max_bin) {
      // One bin per distinct value; edge between consecutive values is the
      // lower value (split "v <= edge" separates them exactly).
      fb.edges.assign(values.begin(), values.end() - 1);
    } else {
      // Quantile edges over distinct values.
      fb.edges.resize(static_cast<std::size_t>(max_bin - 1));
      for (int b = 1; b < max_bin; ++b) {
        std::size_t pos =
            values.size() * static_cast<std::size_t>(b) / static_cast<std::size_t>(max_bin);
        fb.edges[static_cast<std::size_t>(b - 1)] = values[std::min(pos, values.size() - 1)];
      }
      fb.edges.erase(std::unique(fb.edges.begin(), fb.edges.end()), fb.edges.end());
    }
    fb.n_value_bins = static_cast<int>(fb.edges.size()) + 1;
  }
  return mapper;
}

std::size_t BinnedSubstrate::bytes() const {
  return binned.n_rows() * binned.n_features() * sizeof(std::uint16_t) +
         packed.bytes();
}

BinnedSubstrate build_substrate(const DataView& view, int max_bin) {
  BinnedSubstrate substrate;
  substrate.mapper = BinMapper::fit(view, max_bin);
  substrate.binned = substrate.mapper.encode(view);
  // With the default max_bin = 255 every code fits a byte, so the packed
  // copy costs half the column matrix — and each trainer that shares this
  // substrate skips its own per-grower pack.
  if (packed_bins_enabled()) {
    substrate.packed = PackedBins::pack(substrate.binned);
  }
  substrate.max_bin = max_bin;
  return substrate;
}

BinnedView::BinnedView(const BinnedMatrix& matrix, std::size_t n_rows)
    : matrix_(&matrix), n_rows_(n_rows) {
  FLAML_REQUIRE(n_rows <= matrix.n_rows(),
                "BinnedView of " << n_rows << " rows over a " << matrix.n_rows()
                                 << "-row matrix");
}

BinnedMatrix BinnedView::materialize() const {
  FLAML_REQUIRE(matrix_ != nullptr, "materialize() on an empty BinnedView");
  BinnedMatrix out(n_rows_, matrix_->n_features());
  for (std::size_t f = 0; f < matrix_->n_features(); ++f) {
    const auto& src = matrix_->feature(f);
    auto& dst = out.feature(f);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n_rows_),
              dst.begin());
  }
  return out;
}

BinnedMatrix BinMapper::encode(const DataView& view) const {
  FLAML_REQUIRE(view.n_cols() == features_.size(), "schema mismatch in encode");
  BinnedMatrix binned(view.n_rows(), features_.size());
  for (std::size_t f = 0; f < features_.size(); ++f) {
    const FeatureBins& fb = features_[f];
    auto& col = binned.feature(f);
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      col[i] = static_cast<std::uint16_t>(fb.bin_for(view.value(i, f)));
    }
  }
  return binned;
}

}  // namespace flaml
