#include "tree/tree_io.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>

#include "common/error.h"

namespace flaml {

namespace {
// Caps on untrusted counts, far above anything a real model contains: a
// corrupted stream must produce a typed error, never a multi-gigabyte
// allocation or an unbounded loop.
constexpr std::size_t kMaxNodes = 10'000'000;
constexpr std::size_t kMaxDistSize = 1'000'000;

// Real-valued fields can legitimately be non-finite (the forest growers
// emit +inf thresholds for splits that send every non-missing row one
// way), and operator>> cannot parse the "inf"/"nan" tokens operator<<
// writes for them — so read through strtof/strtod, which can. A token
// that does not parse in full marks the stream failed, matching the
// operator>> error contract the callers check.
template <typename T>
T read_real(std::istream& in) {
  std::string token;
  in >> token;
  if (token.empty()) {
    in.setstate(std::ios::failbit);
    return T(0);
  }
  char* end = nullptr;
  T value;
  if constexpr (sizeof(T) == sizeof(float)) {
    value = std::strtof(token.c_str(), &end);
  } else {
    value = std::strtod(token.c_str(), &end);
  }
  if (end != token.c_str() + token.size()) in.setstate(std::ios::failbit);
  return value;
}
}  // namespace

void write_tree(std::ostream& out, const Tree& tree) {
  out << tree.n_nodes() << '\n';
  for (std::size_t i = 0; i < tree.n_nodes(); ++i) {
    const TreeNode& n = tree.node(i);
    out << n.left << ' ' << n.right << ' ' << n.feature << ' '
        << (n.categorical ? 1 : 0) << ' ' << n.threshold << ' ' << n.category << ' '
        << (n.missing_left ? 1 : 0) << ' ' << n.leaf_value << ' ' << n.split_gain
        << '\n';
  }
  const auto& dists = tree.leaf_distributions();
  std::size_t n_dists = 0;
  for (const auto& d : dists) n_dists += d.empty() ? 0 : 1;
  out << n_dists << '\n';
  for (std::size_t i = 0; i < dists.size(); ++i) {
    if (dists[i].empty()) continue;
    out << i << ' ' << dists[i].size();
    for (double p : dists[i]) out << ' ' << p;
    out << '\n';
  }
}

Tree read_tree(std::istream& in) {
  std::size_t n_nodes = 0;
  in >> n_nodes;
  FLAML_REQUIRE(in.good() && n_nodes >= 1, "truncated tree: node count");
  FLAML_REQUIRE(n_nodes <= kMaxNodes,
                "corrupt tree: node count " << n_nodes << " exceeds "
                                            << kMaxNodes);
  std::vector<TreeNode> nodes(n_nodes);
  for (auto& n : nodes) {
    int cat = 0, miss = 0;
    in >> n.left >> n.right >> n.feature >> cat;
    n.threshold = read_real<float>(in);
    in >> n.category >> miss;
    n.leaf_value = read_real<double>(in);
    n.split_gain = read_real<double>(in);
    n.categorical = cat != 0;
    n.missing_left = miss != 0;
    // Internal nodes index a feature column at prediction time; a negative
    // index from a corrupted stream would read out of bounds.
    FLAML_REQUIRE(n.is_leaf() || n.feature >= 0,
                  "corrupt tree: internal node with negative feature index");
  }
  FLAML_REQUIRE(in.good(), "truncated tree: nodes");
  Tree tree = Tree::from_nodes(std::move(nodes));

  std::size_t n_dists = 0;
  in >> n_dists;
  FLAML_REQUIRE(in.good(), "truncated tree: distribution count");
  FLAML_REQUIRE(n_dists <= tree.n_nodes(),
                "corrupt tree: more leaf distributions than nodes");
  if (n_dists > 0) {
    tree.leaf_distributions().assign(tree.n_nodes(), {});
    for (std::size_t d = 0; d < n_dists; ++d) {
      std::size_t node = 0, k = 0;
      in >> node >> k;
      FLAML_REQUIRE(in.good() && node < tree.n_nodes() && k >= 1,
                    "truncated tree: distribution header");
      FLAML_REQUIRE(k <= kMaxDistSize,
                    "corrupt tree: distribution size " << k << " exceeds "
                                                       << kMaxDistSize);
      std::vector<double> dist(k);
      for (auto& p : dist) p = read_real<double>(in);
      FLAML_REQUIRE(in.good(), "truncated tree: distribution values");
      tree.leaf_distributions()[node] = std::move(dist);
    }
  }
  return tree;
}

}  // namespace flaml
