#include "tree/tree.h"

#include <algorithm>

#include "common/error.h"

namespace flaml {

Tree Tree::from_nodes(std::vector<TreeNode> nodes) {
  FLAML_REQUIRE(!nodes.empty(), "tree needs at least one node");
  std::vector<int> parents(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    if (n.is_leaf()) continue;
    FLAML_REQUIRE(n.left > 0 && n.right > 0 &&
                      static_cast<std::size_t>(n.left) < nodes.size() &&
                      static_cast<std::size_t>(n.right) < nodes.size(),
                  "tree child index out of range");
    parents[static_cast<std::size_t>(n.left)] += 1;
    parents[static_cast<std::size_t>(n.right)] += 1;
  }
  FLAML_REQUIRE(parents[0] == 0, "tree root must have no parent");
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    FLAML_REQUIRE(parents[i] == 1, "tree node " << i << " has " << parents[i]
                                                << " parents");
  }
  Tree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

std::size_t Tree::n_leaves() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) count += n.is_leaf() ? 1u : 0u;
  return count;
}

int Tree::depth() const {
  // Iterative depth computation over the node array.
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.is_leaf()) {
      max_depth = std::max(max_depth, d);
    } else {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return max_depth;
}

std::pair<std::int32_t, std::int32_t> Tree::split_leaf(std::int32_t node_index) {
  FLAML_CHECK(node_index >= 0 &&
              static_cast<std::size_t>(node_index) < nodes_.size());
  FLAML_CHECK_MSG(nodes_[static_cast<std::size_t>(node_index)].is_leaf(),
                  "split_leaf on an internal node");
  std::int32_t left = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  std::int32_t right = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return {left, right};
}

std::int32_t Tree::leaf_index(const Dataset& data, std::size_t row) const {
  std::int32_t idx = 0;
  for (;;) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.is_leaf()) return idx;
    float v = data.value(row, static_cast<std::size_t>(n.feature));
    bool go_left;
    if (Dataset::is_missing(v)) {
      go_left = n.missing_left;
    } else if (n.categorical) {
      go_left = static_cast<std::int32_t>(v) == n.category;
    } else {
      go_left = v <= n.threshold;
    }
    idx = go_left ? n.left : n.right;
  }
}

void Tree::add_feature_gains(std::vector<double>& gains) const {
  for (const auto& n : nodes_) {
    if (n.is_leaf()) continue;
    FLAML_CHECK(n.feature >= 0 &&
                static_cast<std::size_t>(n.feature) < gains.size());
    gains[static_cast<std::size_t>(n.feature)] += n.split_gain;
  }
}

void Tree::add_predictions(const DataView& view, double scale,
                           std::vector<double>& out) const {
  FLAML_CHECK(out.size() == view.n_rows());
  const Dataset& data = view.data();
  for (std::size_t i = 0; i < view.n_rows(); ++i) {
    out[i] += scale * predict_row(data, view.row_index(i));
  }
}

}  // namespace flaml
