// Decision-tree structure shared by all tree learners.
//
// Trees are stored as a flat node array. Internal nodes hold the raw-value
// split (numeric threshold or categorical one-vs-rest code) plus the
// direction for missing values, so prediction works directly on Dataset
// floats with no binning. Leaves hold a single scalar output (gradient
// boosting / regression) — classification forests attach per-class leaf
// distributions via `leaf_distribution`.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace flaml {

struct TreeNode {
  // -1 children mark a leaf.
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t feature = -1;
  // Numeric split: go left iff value <= threshold.
  // Categorical split: go left iff code == category.
  bool categorical = false;
  float threshold = 0.0f;
  std::int32_t category = -1;
  // true: missing values go left.
  bool missing_left = false;
  double leaf_value = 0.0;
  // Objective gain of this split (0 for leaves); drives feature importance.
  double split_gain = 0.0;

  bool is_leaf() const { return left < 0; }
};

class Tree {
 public:
  Tree() { nodes_.emplace_back(); }  // a single-leaf tree predicting 0

  // Build a tree from an explicit node array (deserialization). Validates
  // that children indices are in range and each non-root node has exactly
  // one parent; throws InvalidArgument otherwise.
  static Tree from_nodes(std::vector<TreeNode> nodes);

  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t n_leaves() const;
  int depth() const;
  const TreeNode& node(std::size_t i) const { return nodes_[i]; }
  TreeNode& node(std::size_t i) { return nodes_[i]; }

  // Turn leaf `node_index` into an internal node with two fresh leaves;
  // returns {left_index, right_index}.
  std::pair<std::int32_t, std::int32_t> split_leaf(std::int32_t node_index);

  // Index of the leaf reached by row `row` of `data`.
  std::int32_t leaf_index(const Dataset& data, std::size_t row) const;

  double predict_row(const Dataset& data, std::size_t row) const {
    return nodes_[static_cast<std::size_t>(leaf_index(data, row))].leaf_value;
  }

  // Predict every row of the view, ADDING scale * leaf_value into out.
  void add_predictions(const DataView& view, double scale,
                       std::vector<double>& out) const;

  // Accumulate per-feature split gains into `gains` (size >= any feature id
  // used by this tree).
  void add_feature_gains(std::vector<double>& gains) const;

  // Optional per-leaf distributions (indexed by node id), used by
  // classification forests. Empty when unused.
  std::vector<std::vector<double>>& leaf_distributions() { return leaf_dist_; }
  const std::vector<std::vector<double>>& leaf_distributions() const {
    return leaf_dist_;
  }

 private:
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<double>> leaf_dist_;
};

}  // namespace flaml
