// Histogram-based gradient tree growing.
//
// Implements the second-order split objective of modern GBDT systems:
//   score(G, H) = T(G)^2 / (H + lambda),  T(G) = sign(G)·max(|G|−alpha, 0)
//   gain = score(G_L,H_L) + score(G_R,H_R) − score(G_P,H_P)
//   leaf value w = −T(G) / (H + lambda)
// Two growth policies: LeafWise (best-first, LightGBM/XGBoost-hist style,
// bounded by max_leaves) and Oblivious (CatBoost style: one shared split per
// level, bounded by oblivious_depth). Missing values get their own bin and
// the split direction for them is chosen by gain. Categorical features use
// one-vs-rest equality splits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tree/binning.h"
#include "tree/tree.h"

namespace flaml {

enum class TreeStyle { LeafWise, Oblivious };

struct GrowerParams {
  int max_leaves = 31;
  int max_depth = 0;  // 0 = unlimited (LeafWise only)
  double min_child_weight = 1e-3;
  int min_samples_leaf = 1;
  double reg_alpha = 0.0;
  double reg_lambda = 1.0;
  double min_gain = 1e-12;
  // Fraction of candidate features re-sampled at every split search.
  double colsample_bylevel = 1.0;
  TreeStyle style = TreeStyle::LeafWise;
  int oblivious_depth = 6;
  // Intra-tree parallelism over feature blocks (histogram build + split
  // finding) on the shared_pool(). Any value produces the bit-identical
  // tree: per-feature work is independent and the reduction runs in fixed
  // feature order with ties broken by the lowest feature index.
  int n_threads = 1;
};

class GradientTreeGrower {
 public:
  // `mapper`/`binned` describe the training rows (binned once per training
  // run); `view` is the matching raw view used only to fetch raw thresholds.
  GradientTreeGrower(const BinMapper& mapper, const BinnedMatrix& binned);

  // Grow one tree on `rows` (positions into the binned matrix) with
  // per-position gradients/hessians (indexed by position, not by row id).
  // `features` is the per-tree candidate feature subset.
  Tree grow(const std::vector<std::uint32_t>& rows, const std::vector<double>& grad,
            const std::vector<double>& hess, const std::vector<int>& features,
            const GrowerParams& params, Rng& rng) const;

 private:
  const BinMapper* mapper_;
  const BinnedMatrix* binned_;
};

}  // namespace flaml
