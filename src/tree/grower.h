// Histogram-based gradient tree growing.
//
// Implements the second-order split objective of modern GBDT systems:
//   score(G, H) = T(G)^2 / (H + lambda),  T(G) = sign(G)·max(|G|−alpha, 0)
//   gain = score(G_L,H_L) + score(G_R,H_R) − score(G_P,H_P)
//   leaf value w = −T(G) / (H + lambda)
// Two growth policies: LeafWise (best-first, LightGBM/XGBoost-hist style,
// bounded by max_leaves) and Oblivious (CatBoost style: one shared split per
// level, bounded by oblivious_depth). Missing values get their own bin and
// the split direction for them is chosen by gain. Categorical features use
// one-vs-rest equality splits.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "tree/binning.h"
#include "tree/packed_bins.h"
#include "tree/tree.h"

namespace flaml {

enum class TreeStyle { LeafWise, Oblivious };

struct GrowerParams {
  int max_leaves = 31;
  int max_depth = 0;  // 0 = unlimited (LeafWise only)
  double min_child_weight = 1e-3;
  int min_samples_leaf = 1;
  double reg_alpha = 0.0;
  double reg_lambda = 1.0;
  double min_gain = 1e-12;
  // Fraction of candidate features re-sampled at every split search.
  double colsample_bylevel = 1.0;
  TreeStyle style = TreeStyle::LeafWise;
  int oblivious_depth = 6;
  // Intra-tree parallelism over feature blocks (histogram build + split
  // finding) on the shared_pool(). Any value produces the bit-identical
  // tree: per-feature work is independent and the reduction runs in fixed
  // feature order with ties broken by the lowest feature index.
  int n_threads = 1;
};

class GradientTreeGrower {
 public:
  // `mapper`/`binned` describe the training rows (binned once per training
  // run); `view` is the matching raw view used only to fetch raw thresholds.
  // `packed` optionally shares a pre-built row-major layout of the SAME
  // matrix (e.g. from a cached BinnedSubstrate); when null and the active
  // histogram kernel is not Scalar, the grower packs `binned` itself, once,
  // on first use (thread-safe — forests grow trees concurrently from one
  // grower).
  GradientTreeGrower(const BinMapper& mapper, const BinnedMatrix& binned,
                     const PackedBins* packed = nullptr);

  // Grow one tree on `rows` (positions into the binned matrix) with
  // per-position gradients/hessians (indexed by position, not by row id).
  // `features` is the per-tree candidate feature subset.
  Tree grow(const std::vector<std::uint32_t>& rows, const std::vector<double>& grad,
            const std::vector<double>& hess, const std::vector<int>& features,
            const GrowerParams& params, Rng& rng) const;

 private:
  const PackedBins* packed_or_build() const;

  const BinMapper* mapper_;
  const BinnedMatrix* binned_;
  const PackedBins* packed_;
  mutable std::once_flag pack_once_;
  mutable std::unique_ptr<PackedBins> owned_packed_;
};

}  // namespace flaml
