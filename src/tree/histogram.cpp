#include "tree/histogram.h"

#include <algorithm>

namespace flaml {

namespace {

// Below this row count a parallel build costs more in task handoff than the
// scan itself; the cutoff depends only on the data, so serial and parallel
// callers take the same path for the same leaf.
constexpr std::size_t kMinRowsForParallelBuild = 512;

}  // namespace

std::vector<std::size_t> histogram_offsets(const BinMapper& mapper) {
  std::vector<std::size_t> offsets(mapper.n_features() + 1, 0);
  for (std::size_t f = 0; f < mapper.n_features(); ++f) {
    offsets[f + 1] = offsets[f] + static_cast<std::size_t>(mapper.feature(f).n_bins());
  }
  return offsets;
}

void build_gradient_histogram(const BinnedMatrix& binned,
                              const std::vector<std::size_t>& offsets,
                              const std::vector<int>& features,
                              const std::uint32_t* rows, std::size_t count,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              std::vector<HistEntry>& hist,
                              const HistParallel& par) {
  hist.assign(offsets.back(), HistEntry{});
  auto fill_feature = [&](int f) {
    const auto& col = binned.feature(static_cast<std::size_t>(f));
    HistEntry* base = hist.data() + offsets[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t pos = rows[i];
      HistEntry& e = base[col[pos]];
      e.g += grad[pos];
      e.h += hess[pos];
      e.n += 1;
    }
  };
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && features.size() >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, features.size(),
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) fill_feature(features[i]);
              });
}

void subtract_gradient_histogram(const std::vector<HistEntry>& parent,
                                 const std::vector<HistEntry>& child,
                                 std::vector<HistEntry>& out) {
  out.resize(parent.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    out[i].g = parent[i].g - child[i].g;
    out[i].h = parent[i].h - child[i].h;
    out[i].n = parent[i].n - child[i].n;
  }
}

void subtract_gradient_histogram_inplace(std::vector<HistEntry>& parent,
                                         const std::vector<HistEntry>& child) {
  for (std::size_t i = 0; i < parent.size(); ++i) {
    parent[i].g -= child[i].g;
    parent[i].h -= child[i].h;
    parent[i].n -= child[i].n;
  }
}

void build_class_histogram(const BinnedMatrix& binned,
                           const std::vector<std::size_t>& offsets,
                           int n_classes, const std::uint32_t* rows,
                           std::size_t count, const std::vector<int>& labels,
                           const std::vector<double>& weights,
                           std::vector<double>& hist, const HistParallel& par) {
  const std::size_t k = static_cast<std::size_t>(n_classes);
  hist.assign(offsets.back() * k, 0.0);
  auto fill_feature = [&](std::size_t f) {
    const auto& col = binned.feature(f);
    double* base = hist.data() + offsets[f] * k;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t pos = rows[i];
      base[static_cast<std::size_t>(col[pos]) * k +
           static_cast<std::size_t>(labels[pos])] +=
          weights.empty() ? 1.0 : weights[pos];
    }
  };
  const std::size_t n_features = binned.n_features();
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && n_features >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, n_features,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t f = begin; f < end; ++f) fill_feature(f);
              });
}

void remove_rows_from_class_histogram(const BinnedMatrix& binned,
                                      const std::vector<std::size_t>& offsets,
                                      int n_classes, const std::uint32_t* rows,
                                      std::size_t count,
                                      const std::vector<int>& labels,
                                      const std::vector<double>& weights,
                                      std::vector<double>& hist,
                                      const HistParallel& par) {
  const std::size_t k = static_cast<std::size_t>(n_classes);
  auto drain_feature = [&](std::size_t f) {
    const auto& col = binned.feature(f);
    double* base = hist.data() + offsets[f] * k;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t pos = rows[i];
      base[static_cast<std::size_t>(col[pos]) * k +
           static_cast<std::size_t>(labels[pos])] -=
          weights.empty() ? 1.0 : weights[pos];
    }
  };
  const std::size_t n_features = binned.n_features();
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && n_features >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, n_features,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t f = begin; f < end; ++f) drain_feature(f);
              });
}

void fill_feature_class_counts(const std::vector<std::uint16_t>& col,
                               int n_bins, int n_classes,
                               const std::uint32_t* rows, std::size_t count,
                               const std::vector<int>& labels,
                               const std::vector<double>& weights,
                               std::vector<double>& out) {
  const std::size_t k = static_cast<std::size_t>(n_classes);
  const std::size_t cells = static_cast<std::size_t>(n_bins) * k;
  if (out.size() < cells) out.resize(cells);
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(cells), 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pos = rows[i];
    out[static_cast<std::size_t>(col[pos]) * k +
        static_cast<std::size_t>(labels[pos])] +=
        weights.empty() ? 1.0 : weights[pos];
  }
}

}  // namespace flaml
