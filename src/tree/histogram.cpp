#include "tree/histogram.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "tree/hist_kernels.h"

namespace flaml {

namespace {

// Below this row count a parallel build costs more in task handoff than the
// scan itself; the cutoff depends only on the data, so serial and parallel
// callers take the same path for the same leaf.
constexpr std::size_t kMinRowsForParallelBuild = 512;

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const histdetail::KernelFns* fns_for(HistKernel k) {
  switch (k) {
    case HistKernel::Portable:
      return histdetail::portable_fns();
    case HistKernel::Sse2:
      return histdetail::sse2_fns();
    case HistKernel::Avx2:
      return histdetail::avx2_fns();
    case HistKernel::Scalar:
      break;
  }
  return nullptr;
}

// rows == [0, count) exactly — the root build. Detected per call: the scan
// is one compare per row vs n_features accumulates per row for the build,
// and non-root leaves bail out on the first mismatch.
bool rows_are_iota(const std::uint32_t* rows, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (rows[i] != static_cast<std::uint32_t>(i)) return false;
  }
  return true;
}

}  // namespace

const char* hist_kernel_name(HistKernel k) {
  switch (k) {
    case HistKernel::Scalar:
      return "scalar";
    case HistKernel::Portable:
      return "portable";
    case HistKernel::Sse2:
      return "sse2";
    case HistKernel::Avx2:
      return "avx2";
  }
  return "unknown";
}

bool hist_kernel_available(HistKernel k) {
  switch (k) {
    case HistKernel::Scalar:
    case HistKernel::Portable:
      return true;
    case HistKernel::Sse2:
      return histdetail::sse2_fns() != nullptr;
    case HistKernel::Avx2:
      return histdetail::avx2_fns() != nullptr && cpu_has_avx2();
  }
  return false;
}

HistKernel best_hist_kernel() {
  if (hist_kernel_available(HistKernel::Avx2)) return HistKernel::Avx2;
  if (hist_kernel_available(HistKernel::Sse2)) return HistKernel::Sse2;
  return HistKernel::Portable;
}

HistKernel active_hist_kernel() {
  const char* env = std::getenv("FLAML_HISTOGRAM_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "simd") == 0) {
    return best_hist_kernel();
  }
  HistKernel forced;
  if (std::strcmp(env, "scalar") == 0) {
    forced = HistKernel::Scalar;
  } else if (std::strcmp(env, "portable") == 0) {
    forced = HistKernel::Portable;
  } else if (std::strcmp(env, "sse2") == 0) {
    forced = HistKernel::Sse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    forced = HistKernel::Avx2;
  } else {
    FLAML_REQUIRE(false, "FLAML_HISTOGRAM_KERNEL='"
                             << env
                             << "' (want auto|simd|scalar|portable|sse2|avx2)");
    return HistKernel::Scalar;  // unreachable
  }
  FLAML_REQUIRE(hist_kernel_available(forced),
                "FLAML_HISTOGRAM_KERNEL=" << env
                                          << " is not available on this host");
  return forced;
}

bool packed_bins_enabled() {
  return active_hist_kernel() != HistKernel::Scalar;
}

std::vector<std::size_t> histogram_offsets(const BinMapper& mapper) {
  std::vector<std::size_t> offsets(mapper.n_features() + 1, 0);
  for (std::size_t f = 0; f < mapper.n_features(); ++f) {
    offsets[f + 1] = offsets[f] + static_cast<std::size_t>(mapper.feature(f).n_bins());
  }
  return offsets;
}

void build_gradient_histogram(const BinnedMatrix& binned,
                              const std::vector<std::size_t>& offsets,
                              const std::vector<int>& features,
                              const std::uint32_t* rows, std::size_t count,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              std::vector<HistEntry>& hist,
                              const HistParallel& par) {
  hist.assign(offsets.back(), HistEntry{});
  auto fill_feature = [&](int f) {
    const auto& col = binned.feature(static_cast<std::size_t>(f));
    HistEntry* base = hist.data() + offsets[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t pos = rows[i];
      HistEntry& e = base[col[pos]];
      e.g += grad[pos];
      e.h += hess[pos];
      e.n += 1;
    }
  };
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && features.size() >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, features.size(),
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) fill_feature(features[i]);
              });
}

void build_gradient_histogram_packed(
    const PackedBins& packed, const std::vector<std::size_t>& offsets,
    const std::vector<int>& features, const std::uint32_t* rows,
    std::size_t count, const std::vector<double>& grad,
    const std::vector<double>& hess, bool unit_hess,
    std::vector<HistEntry>& hist, HistKernel kernel, const HistParallel& par) {
  const histdetail::KernelFns* fns = fns_for(kernel);
  FLAML_REQUIRE(fns != nullptr, "'" << hist_kernel_name(kernel)
                                    << "' is not a packed histogram kernel");
  hist.assign(offsets.back(), HistEntry{});
  if (count == 0 || features.empty()) return;
  histdetail::GradCall call;
  call.offsets = offsets.data();
  call.rows = rows;
  call.count = count;
  call.grad = grad.data();
  call.hess = hess.data();
  call.unit = unit_hess;
  call.iota = rows_are_iota(rows, count);
  call.hist = hist.data();
  const std::size_t stride = packed.n_features();
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && features.size() >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, features.size(),
              [&](std::size_t begin, std::size_t end) {
                histdetail::GradCall c = call;
                c.features = features.data() + begin;
                c.n_sel = end - begin;
                if (packed.wide()) {
                  fns->grad_u16(packed.codes16(), stride, c);
                } else {
                  fns->grad_u8(packed.codes8(), stride, c);
                }
              });
}

void subtract_gradient_histogram(const std::vector<HistEntry>& parent,
                                 const std::vector<HistEntry>& child,
                                 std::vector<HistEntry>& out) {
  out.resize(parent.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    out[i].g = parent[i].g - child[i].g;
    out[i].h = parent[i].h - child[i].h;
    out[i].n = parent[i].n - child[i].n;
  }
}

void subtract_gradient_histogram_inplace(std::vector<HistEntry>& parent,
                                         const std::vector<HistEntry>& child) {
  for (std::size_t i = 0; i < parent.size(); ++i) {
    parent[i].g -= child[i].g;
    parent[i].h -= child[i].h;
    parent[i].n -= child[i].n;
  }
}

void build_class_histogram(const BinnedMatrix& binned,
                           const std::vector<std::size_t>& offsets,
                           int n_classes, const std::uint32_t* rows,
                           std::size_t count, const std::vector<int>& labels,
                           const std::vector<double>& weights,
                           std::vector<double>& hist, const HistParallel& par) {
  const std::size_t k = static_cast<std::size_t>(n_classes);
  hist.assign(offsets.back() * k, 0.0);
  auto fill_feature = [&](std::size_t f) {
    const auto& col = binned.feature(f);
    double* base = hist.data() + offsets[f] * k;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t pos = rows[i];
      base[static_cast<std::size_t>(col[pos]) * k +
           static_cast<std::size_t>(labels[pos])] +=
          weights.empty() ? 1.0 : weights[pos];
    }
  };
  const std::size_t n_features = binned.n_features();
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && n_features >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, n_features,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t f = begin; f < end; ++f) fill_feature(f);
              });
}

namespace {

// Shared body of the packed class build/remove: identical except for the
// zeroing (build only) and the accumulation sign.
void run_class_kernel_packed(const PackedBins& packed,
                             const std::vector<std::size_t>& offsets,
                             int n_classes, const std::uint32_t* rows,
                             std::size_t count, const std::vector<int>& labels,
                             const std::vector<double>& weights, bool negate,
                             std::vector<double>& hist, HistKernel kernel,
                             const HistParallel& par) {
  const histdetail::KernelFns* fns = fns_for(kernel);
  FLAML_REQUIRE(fns != nullptr, "'" << hist_kernel_name(kernel)
                                    << "' is not a packed histogram kernel");
  if (count == 0) return;
  histdetail::ClassCall call;
  call.offsets = offsets.data();
  call.k = static_cast<std::size_t>(n_classes);
  call.rows = rows;
  call.count = count;
  call.labels = labels.data();
  call.weights = weights.empty() ? nullptr : weights.data();
  call.negate = negate;
  call.iota = rows_are_iota(rows, count);
  call.hist = hist.data();
  const std::size_t n_features = packed.n_features();
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && n_features >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, n_features,
              [&](std::size_t begin, std::size_t end) {
                histdetail::ClassCall c = call;
                c.f_begin = begin;
                c.f_end = end;
                if (packed.wide()) {
                  fns->cls_u16(packed.codes16(), n_features, c);
                } else {
                  fns->cls_u8(packed.codes8(), n_features, c);
                }
              });
}

}  // namespace

void build_class_histogram_packed(const PackedBins& packed,
                                  const std::vector<std::size_t>& offsets,
                                  int n_classes, const std::uint32_t* rows,
                                  std::size_t count,
                                  const std::vector<int>& labels,
                                  const std::vector<double>& weights,
                                  std::vector<double>& hist, HistKernel kernel,
                                  const HistParallel& par) {
  hist.assign(offsets.back() * static_cast<std::size_t>(n_classes), 0.0);
  run_class_kernel_packed(packed, offsets, n_classes, rows, count, labels,
                          weights, /*negate=*/false, hist, kernel, par);
}

void remove_rows_from_class_histogram_packed(
    const PackedBins& packed, const std::vector<std::size_t>& offsets,
    int n_classes, const std::uint32_t* rows, std::size_t count,
    const std::vector<int>& labels, const std::vector<double>& weights,
    std::vector<double>& hist, HistKernel kernel, const HistParallel& par) {
  run_class_kernel_packed(packed, offsets, n_classes, rows, count, labels,
                          weights, /*negate=*/true, hist, kernel, par);
}

void remove_rows_from_class_histogram(const BinnedMatrix& binned,
                                      const std::vector<std::size_t>& offsets,
                                      int n_classes, const std::uint32_t* rows,
                                      std::size_t count,
                                      const std::vector<int>& labels,
                                      const std::vector<double>& weights,
                                      std::vector<double>& hist,
                                      const HistParallel& par) {
  const std::size_t k = static_cast<std::size_t>(n_classes);
  auto drain_feature = [&](std::size_t f) {
    const auto& col = binned.feature(f);
    double* base = hist.data() + offsets[f] * k;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t pos = rows[i];
      base[static_cast<std::size_t>(col[pos]) * k +
           static_cast<std::size_t>(labels[pos])] -=
          weights.empty() ? 1.0 : weights[pos];
    }
  };
  const std::size_t n_features = binned.n_features();
  ThreadPool* pool =
      count >= kMinRowsForParallelBuild && n_features >= 2 ? par.pool : nullptr;
  sharded_for(pool, par.n_threads, n_features,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t f = begin; f < end; ++f) drain_feature(f);
              });
}

void fill_feature_class_counts(const std::vector<std::uint16_t>& col,
                               int n_bins, int n_classes,
                               const std::uint32_t* rows, std::size_t count,
                               const std::vector<int>& labels,
                               const std::vector<double>& weights,
                               std::vector<double>& out) {
  const std::size_t k = static_cast<std::size_t>(n_classes);
  const std::size_t cells = static_cast<std::size_t>(n_bins) * k;
  if (out.size() < cells) out.resize(cells);
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(cells), 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pos = rows[i];
    out[static_cast<std::size_t>(col[pos]) * k +
        static_cast<std::size_t>(labels[pos])] +=
        weights.empty() ? 1.0 : weights[pos];
  }
}

void fill_feature_class_counts_packed(const PackedBins& packed, int feature,
                                      int n_bins, int n_classes,
                                      const std::uint32_t* rows,
                                      std::size_t count,
                                      const std::vector<int>& labels,
                                      const std::vector<double>& weights,
                                      std::vector<double>& out,
                                      HistKernel kernel) {
  const histdetail::KernelFns* fns = fns_for(kernel);
  FLAML_REQUIRE(fns != nullptr, "'" << hist_kernel_name(kernel)
                                    << "' is not a packed histogram kernel");
  const std::size_t k = static_cast<std::size_t>(n_classes);
  const std::size_t cells = static_cast<std::size_t>(n_bins) * k;
  if (out.size() < cells) out.resize(cells);
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(cells), 0.0);
  histdetail::FillCall call;
  call.feature = static_cast<std::size_t>(feature);
  call.k = k;
  call.rows = rows;
  call.count = count;
  call.labels = labels.data();
  call.weights = weights.empty() ? nullptr : weights.data();
  call.out = out.data();
  if (packed.wide()) {
    fns->fill_u16(packed.codes16(), packed.n_features(), call);
  } else {
    fns->fill_u8(packed.codes8(), packed.n_features(), call);
  }
}

}  // namespace flaml
