// AVX2 kernel table. This TU is the only one compiled with -mavx2 (CMake
// sets FLAML_HIST_COMPILE_AVX2 after a compiler check), so every body here
// gets VEX encodings and 256-bit autovectorization of the auxiliary passes
// (the unit-hessian n-fixup sweep). The scatter core itself stays the
// 128-bit paired (g, h) add: AVX2 has gathers but no scatters, and the
// paired add is what keeps results bit-identical to the scalar reference —
// a wider reordering kernel would break the 0-ulp differential contract.
//
// Callers must gate on runtime CPU support (hist_kernel_available checks
// __builtin_cpu_supports("avx2")) before invoking this table.

#include "tree/hist_kernels.h"

#if defined(FLAML_HIST_COMPILE_AVX2)

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#define FLAML_HIST_HAVE_SSE2 1

namespace flaml {
namespace histdetail {
namespace {

#include "tree/hist_kernels_impl.h"

}  // namespace

const KernelFns* avx2_fns() {
  static const KernelFns fns = {
      &grad_entry<std::uint8_t, PairOps>,
      &grad_entry<std::uint16_t, PairOps>,
      &class_entry<std::uint8_t>,
      &class_entry<std::uint16_t>,
      &fill_entry<std::uint8_t>,
      &fill_entry<std::uint16_t>,
  };
  return &fns;
}

}  // namespace histdetail
}  // namespace flaml

#else  // !FLAML_HIST_COMPILE_AVX2

namespace flaml {
namespace histdetail {

const KernelFns* avx2_fns() { return nullptr; }

}  // namespace histdetail
}  // namespace flaml

#endif
