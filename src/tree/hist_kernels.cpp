// Baseline-ISA kernel tables: the portable (plain C++) table and, on x86,
// the SSE2 table. See hist_kernels_impl.h for why the shared bodies are
// included inside an anonymous namespace.

#include "tree/hist_kernels.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define FLAML_HIST_HAVE_SSE2 1
#include <emmintrin.h>
#endif

namespace flaml {
namespace histdetail {
namespace {

#include "tree/hist_kernels_impl.h"

}  // namespace

const KernelFns* portable_fns() {
  static const KernelFns fns = {
      &grad_entry<std::uint8_t, PortableOps>,
      &grad_entry<std::uint16_t, PortableOps>,
      &class_entry<std::uint8_t>,
      &class_entry<std::uint16_t>,
      &fill_entry<std::uint8_t>,
      &fill_entry<std::uint16_t>,
  };
  return &fns;
}

const KernelFns* sse2_fns() {
#if defined(FLAML_HIST_HAVE_SSE2)
  static const KernelFns fns = {
      &grad_entry<std::uint8_t, PairOps>,
      &grad_entry<std::uint16_t, PairOps>,
      &class_entry<std::uint8_t>,
      &class_entry<std::uint16_t>,
      &fill_entry<std::uint8_t>,
      &fill_entry<std::uint16_t>,
  };
  return &fns;
#else
  return nullptr;
#endif
}

}  // namespace histdetail
}  // namespace flaml
