// Histogram construction for the tree growers, extracted so that the two
// layouts — the gradient-pair layout of grower.cpp and the per-class slice
// layout of class_grower.cpp — share one implementation and can be tested
// (and parallelized) in isolation.
//
// Layouts, with offsets[f] = first bin slot of feature f:
//   * gradient: hist[offsets[f] + bin] is a (g, h, n) triple;
//   * class:    hist[(offsets[f] + bin) * k + c] is the weighted count of
//               class c in bin `bin` of feature f.
//
// Parallelism contract: builds shard over FEATURES, never rows. Each
// feature's slice [offsets[f], offsets[f+1]) is a disjoint memory region,
// and within a feature the rows are always accumulated in buffer order on a
// single thread — so the parallel build is race-free and bit-identical to
// the serial build for every thread count. Subtraction is element-wise and
// deterministic by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "tree/binning.h"

namespace flaml {

struct HistEntry {
  double g = 0.0;
  double h = 0.0;
  std::uint32_t n = 0;
};

// Per-feature start slots: offsets[f] sums n_bins() of features before f;
// offsets.back() is the total bin count.
std::vector<std::size_t> histogram_offsets(const BinMapper& mapper);

// Intra-build parallelism: a null pool (or n_threads <= 1) means serial.
struct HistParallel {
  ThreadPool* pool = nullptr;
  int n_threads = 1;
};

// Accumulate (grad, hess, count) per bin for `features` over the rows
// rows[0..count). hist is resized and zeroed. grad/hess are indexed by row
// position (the values stored in `rows`), not by rows' index.
void build_gradient_histogram(const BinnedMatrix& binned,
                              const std::vector<std::size_t>& offsets,
                              const std::vector<int>& features,
                              const std::uint32_t* rows, std::size_t count,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              std::vector<HistEntry>& hist,
                              const HistParallel& par = {});

// out = parent - child, element-wise.
void subtract_gradient_histogram(const std::vector<HistEntry>& parent,
                                 const std::vector<HistEntry>& child,
                                 std::vector<HistEntry>& out);

// parent -= child in place (the larger sibling inherits the parent buffer).
void subtract_gradient_histogram_inplace(std::vector<HistEntry>& parent,
                                         const std::vector<HistEntry>& child);

// Weighted class-count histogram over ALL mapper features (class trees do
// per-split feature sampling instead of per-tree). Empty weights = 1.0 per
// row. hist is resized and zeroed to offsets.back() * n_classes.
void build_class_histogram(const BinnedMatrix& binned,
                           const std::vector<std::size_t>& offsets,
                           int n_classes, const std::uint32_t* rows,
                           std::size_t count, const std::vector<int>& labels,
                           const std::vector<double>& weights,
                           std::vector<double>& hist,
                           const HistParallel& par = {});

// Remove the rows' mass from an inherited parent histogram in place — the
// class-layout analogue of subtract: afterwards hist equals a direct build
// over the remaining sibling rows (up to float summation order).
void remove_rows_from_class_histogram(const BinnedMatrix& binned,
                                      const std::vector<std::size_t>& offsets,
                                      int n_classes, const std::uint32_t* rows,
                                      std::size_t count,
                                      const std::vector<int>& labels,
                                      const std::vector<double>& weights,
                                      std::vector<double>& hist,
                                      const HistParallel& par = {});

// One feature's slice in compact scratch layout [bin * k + c]: the
// small-leaf path that retains no histogram rebuilds exactly this on
// demand. out is resized/zeroed to n_bins * n_classes.
void fill_feature_class_counts(const std::vector<std::uint16_t>& col,
                               int n_bins, int n_classes,
                               const std::uint32_t* rows, std::size_t count,
                               const std::vector<int>& labels,
                               const std::vector<double>& weights,
                               std::vector<double>& out);

}  // namespace flaml
