// Histogram construction for the tree growers, extracted so that the two
// layouts — the gradient-pair layout of grower.cpp and the per-class slice
// layout of class_grower.cpp — share one implementation and can be tested
// (and parallelized) in isolation.
//
// Layouts, with offsets[f] = first bin slot of feature f:
//   * gradient: hist[offsets[f] + bin] is a (g, h, n) triple;
//   * class:    hist[(offsets[f] + bin) * k + c] is the weighted count of
//               class c in bin `bin` of feature f.
//
// Parallelism contract: builds shard over FEATURES, never rows. Each
// feature's slice [offsets[f], offsets[f+1]) is a disjoint memory region,
// and within a feature the rows are always accumulated in buffer order on a
// single thread — so the parallel build is race-free and bit-identical to
// the serial build for every thread count. Subtraction is element-wise and
// deterministic by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "tree/binning.h"
#include "tree/packed_bins.h"

namespace flaml {

struct HistEntry {
  double g = 0.0;
  double h = 0.0;
  std::uint32_t n = 0;
};

// Histogram build implementations, selectable via FLAML_HISTOGRAM_KERNEL:
//   * Scalar   — the legacy column-major reference loop below (no packed
//                layout); the escape hatch that preserves the pre-kernel
//                code path byte for byte.
//   * Portable — packed row-major tiles, plain C++ accumulators.
//   * Sse2     — packed tiles with a paired 128-bit (g, h) add.
//   * Avx2     — same algorithm compiled for AVX2 (VEX + wider auxiliary
//                passes; the scatter core stays the paired add).
// All four produce bit-identical histograms: Portable/Sse2/Avx2 run the
// same adds in the same order as Scalar (see hist_kernels.h), which is why
// the fast path can default on under the existing golden digests.
enum class HistKernel { Scalar, Portable, Sse2, Avx2 };

const char* hist_kernel_name(HistKernel k);
// Compile-time AND runtime support (e.g. Avx2 needs both the -mavx2 build
// and cpuid).
bool hist_kernel_available(HistKernel k);
// Fastest available: Avx2 > Sse2 > Portable.
HistKernel best_hist_kernel();
// Resolve FLAML_HISTOGRAM_KERNEL: unset/"auto"/"simd" -> best available;
// "scalar"/"portable"/"sse2"/"avx2" force one (FLAML_REQUIRE on an unknown
// value or an unavailable forced kernel). Re-reads the environment on every
// call — growers resolve once per tree, not per leaf.
HistKernel active_hist_kernel();
// False only when the active kernel is Scalar: substrates skip building the
// packed layout entirely when the escape hatch is forced.
bool packed_bins_enabled();

// Per-feature start slots: offsets[f] sums n_bins() of features before f;
// offsets.back() is the total bin count.
std::vector<std::size_t> histogram_offsets(const BinMapper& mapper);

// Intra-build parallelism: a null pool (or n_threads <= 1) means serial.
struct HistParallel {
  ThreadPool* pool = nullptr;
  int n_threads = 1;
};

// Accumulate (grad, hess, count) per bin for `features` over the rows
// rows[0..count). hist is resized and zeroed. grad/hess are indexed by row
// position (the values stored in `rows`), not by rows' index.
void build_gradient_histogram(const BinnedMatrix& binned,
                              const std::vector<std::size_t>& offsets,
                              const std::vector<int>& features,
                              const std::uint32_t* rows, std::size_t count,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              std::vector<HistEntry>& hist,
                              const HistParallel& par = {});

// Packed fast path of build_gradient_histogram: identical signature
// semantics over the row-major PackedBins layout. `unit_hess` asserts that
// hess[pos] == 1.0 for every addressed row (the caller checks once per
// tree); the kernel then drops the per-row count update and derives n from
// the h sums — exact, since they are integer-valued doubles. `kernel` must
// be a packed kernel (not Scalar) and available. Bit-identical to the
// scalar build at every thread count.
void build_gradient_histogram_packed(
    const PackedBins& packed, const std::vector<std::size_t>& offsets,
    const std::vector<int>& features, const std::uint32_t* rows,
    std::size_t count, const std::vector<double>& grad,
    const std::vector<double>& hess, bool unit_hess,
    std::vector<HistEntry>& hist, HistKernel kernel,
    const HistParallel& par = {});

// out = parent - child, element-wise.
void subtract_gradient_histogram(const std::vector<HistEntry>& parent,
                                 const std::vector<HistEntry>& child,
                                 std::vector<HistEntry>& out);

// parent -= child in place (the larger sibling inherits the parent buffer).
void subtract_gradient_histogram_inplace(std::vector<HistEntry>& parent,
                                         const std::vector<HistEntry>& child);

// Weighted class-count histogram over ALL mapper features (class trees do
// per-split feature sampling instead of per-tree). Empty weights = 1.0 per
// row. hist is resized and zeroed to offsets.back() * n_classes.
void build_class_histogram(const BinnedMatrix& binned,
                           const std::vector<std::size_t>& offsets,
                           int n_classes, const std::uint32_t* rows,
                           std::size_t count, const std::vector<int>& labels,
                           const std::vector<double>& weights,
                           std::vector<double>& hist,
                           const HistParallel& par = {});

// Packed fast path of build_class_histogram (all mapper features, like the
// scalar build). Bit-identical to the scalar build at every thread count.
void build_class_histogram_packed(const PackedBins& packed,
                                  const std::vector<std::size_t>& offsets,
                                  int n_classes, const std::uint32_t* rows,
                                  std::size_t count,
                                  const std::vector<int>& labels,
                                  const std::vector<double>& weights,
                                  std::vector<double>& hist, HistKernel kernel,
                                  const HistParallel& par = {});

// Remove the rows' mass from an inherited parent histogram in place — the
// class-layout analogue of subtract: afterwards hist equals a direct build
// over the remaining sibling rows (up to float summation order).
void remove_rows_from_class_histogram(const BinnedMatrix& binned,
                                      const std::vector<std::size_t>& offsets,
                                      int n_classes, const std::uint32_t* rows,
                                      std::size_t count,
                                      const std::vector<int>& labels,
                                      const std::vector<double>& weights,
                                      std::vector<double>& hist,
                                      const HistParallel& par = {});

// Packed fast path of remove_rows_from_class_histogram. Accumulates -w,
// which IEEE-754 guarantees equals the legacy `-=` bit for bit.
void remove_rows_from_class_histogram_packed(
    const PackedBins& packed, const std::vector<std::size_t>& offsets,
    int n_classes, const std::uint32_t* rows, std::size_t count,
    const std::vector<int>& labels, const std::vector<double>& weights,
    std::vector<double>& hist, HistKernel kernel, const HistParallel& par = {});

// One feature's slice in compact scratch layout [bin * k + c]: the
// small-leaf path that retains no histogram rebuilds exactly this on
// demand. out is resized/zeroed to n_bins * n_classes.
void fill_feature_class_counts(const std::vector<std::uint16_t>& col,
                               int n_bins, int n_classes,
                               const std::uint32_t* rows, std::size_t count,
                               const std::vector<int>& labels,
                               const std::vector<double>& weights,
                               std::vector<double>& out);

// Packed fast path of fill_feature_class_counts. The row-major layout also
// helps here: the compact small-leaf scan calls this per candidate feature
// over the SAME small row set, so the rows' packed lines stay hot across
// features.
void fill_feature_class_counts_packed(const PackedBins& packed, int feature,
                                      int n_bins, int n_classes,
                                      const std::uint32_t* rows,
                                      std::size_t count,
                                      const std::vector<int>& labels,
                                      const std::vector<double>& weights,
                                      std::vector<double>& out,
                                      HistKernel kernel);

}  // namespace flaml
