// Width-minimal, row-major packed bin codes — the memory layout the SIMD
// histogram kernels (src/tree/hist_kernels*.cpp) read.
//
// BinnedMatrix stores one uint16 column per feature, which is the right
// shape for partitioning (one feature's codes, contiguous) but the wrong
// shape for histogram building: every feature pass re-gathers the same
// gradient/hessian entries and streams a full 2-byte column. PackedBins
// transposes the codes into one contiguous row-major block — codes[row *
// n_features + f] — and narrows them to uint8 whenever every code fits
// (max_bin <= 256 after the per-feature missing bin, i.e. virtually always
// with the default max_bin = 255). The kernels then walk a feature TILE per
// row: one gradient load is amortized over the whole tile and the tile's
// codes share a cache line.
//
// A PackedBins is a pure function of the BinnedMatrix it was packed from
// (the width is chosen from the actual maximum code, so the layout is
// deterministic and machine-independent) and is immutable after pack() —
// concurrent trials share one instance through the SubstrateCache with no
// synchronization.
#pragma once

#include <cstdint>
#include <vector>

namespace flaml {

class BinnedMatrix;

class PackedBins {
 public:
  PackedBins() = default;

  // Transpose + narrow `binned` (scans the codes once to pick the width).
  static PackedBins pack(const BinnedMatrix& binned);

  bool empty() const { return n_rows_ == 0 || n_features_ == 0; }
  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const { return n_features_; }
  // True when codes are stored as uint16 (some code > 255).
  bool wide() const { return wide_; }

  // Raw code planes for the kernels; exactly one is non-empty.
  const std::uint8_t* codes8() const { return codes8_.data(); }
  const std::uint16_t* codes16() const { return codes16_.data(); }

  std::uint16_t bin(std::size_t row, std::size_t f) const {
    const std::size_t at = row * n_features_ + f;
    return wide_ ? codes16_[at] : codes8_[at];
  }

  // Heap footprint (cache accounting).
  std::size_t bytes() const {
    return codes8_.size() * sizeof(std::uint8_t) +
           codes16_.size() * sizeof(std::uint16_t);
  }

 private:
  std::size_t n_rows_ = 0;
  std::size_t n_features_ = 0;
  bool wide_ = false;
  std::vector<std::uint8_t> codes8_;
  std::vector<std::uint16_t> codes16_;
};

}  // namespace flaml
