#include "tree/packed_bins.h"

#include <algorithm>

#include "tree/binning.h"

namespace flaml {

PackedBins PackedBins::pack(const BinnedMatrix& binned) {
  PackedBins out;
  out.n_rows_ = binned.n_rows();
  out.n_features_ = binned.n_features();
  if (out.n_rows_ == 0 || out.n_features_ == 0) return out;

  std::uint16_t max_code = 0;
  for (std::size_t f = 0; f < out.n_features_; ++f) {
    const auto& col = binned.feature(f);
    max_code = std::max(max_code, *std::max_element(col.begin(), col.end()));
  }
  out.wide_ = max_code > 255;

  const std::size_t cells = out.n_rows_ * out.n_features_;
  if (out.wide_) {
    out.codes16_.resize(cells);
    for (std::size_t f = 0; f < out.n_features_; ++f) {
      const auto& col = binned.feature(f);
      std::uint16_t* dst = out.codes16_.data() + f;
      for (std::size_t r = 0; r < out.n_rows_; ++r) {
        dst[r * out.n_features_] = col[r];
      }
    }
  } else {
    out.codes8_.resize(cells);
    for (std::size_t f = 0; f < out.n_features_; ++f) {
      const auto& col = binned.feature(f);
      std::uint8_t* dst = out.codes8_.data() + f;
      for (std::size_t r = 0; r < out.n_rows_; ++r) {
        dst[r * out.n_features_] = static_cast<std::uint8_t>(col[r]);
      }
    }
  }
  return out;
}

}  // namespace flaml
