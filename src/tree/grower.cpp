#include "tree/grower.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"
#include "tree/histogram.h"

namespace flaml {

namespace {

// Split searches on leaves below this row count run serially: their scan
// cost is dwarfed by the parallel_for handoff. Depends only on the leaf, so
// serial and parallel runs agree on the path taken.
constexpr std::size_t kMinRowsForParallelFind = 256;

double thresholded(double g, double alpha) {
  if (g > alpha) return g - alpha;
  if (g < -alpha) return g + alpha;
  return 0.0;
}

double leaf_score(double g, double h, const GrowerParams& p) {
  double t = thresholded(g, p.reg_alpha);
  return t * t / (h + p.reg_lambda);
}

double leaf_weight(double g, double h, const GrowerParams& p) {
  return -thresholded(g, p.reg_alpha) / (h + p.reg_lambda);
}

struct SplitInfo {
  double gain = -1.0;
  int feature = -1;
  int bin = -1;           // numeric: split "bin <= bin"; categorical: the code
  bool categorical = false;
  bool missing_left = false;
  bool missing_only = false;  // split non-missing (left) vs missing (right)
  bool valid() const { return feature >= 0; }
};

struct LeafState {
  std::int32_t node = 0;
  std::size_t begin = 0;   // segment [begin, begin+count) in the row buffer
  std::size_t count = 0;
  double g = 0.0;
  double h = 0.0;
  int depth = 1;
  std::vector<HistEntry> hist;  // flat, indexed by feature offset + bin
  SplitInfo best;
};

class GrowContext {
 public:
  GrowContext(const BinMapper& mapper, const BinnedMatrix& binned,
              const PackedBins* packed, HistKernel kernel,
              const std::vector<std::uint32_t>& rows, const std::vector<double>& grad,
              const std::vector<double>& hess, const std::vector<int>& features,
              const GrowerParams& params, Rng& rng)
      : mapper_(mapper),
        binned_(binned),
        packed_(packed),
        kernel_(kernel),
        // hess ≡ 1.0 turns on the kernels' derived-count fast path (MSE
        // boosting and unweighted ensembles). One O(n_rows) scan per tree.
        unit_hess_(packed != nullptr &&
                   std::all_of(hess.begin(), hess.end(),
                               [](double v) { return v == 1.0; })),
        grad_(grad),
        hess_(hess),
        features_(features),
        params_(params),
        rng_(rng),
        pool_(params.n_threads > 1 ? &shared_pool() : nullptr),
        buffer_(rows),
        offsets_(histogram_offsets(mapper)) {}

  std::size_t hist_size() const { return offsets_.back(); }

  HistParallel par() const { return {pool_, params_.n_threads}; }

  void build_hist(const LeafState& leaf, std::vector<HistEntry>& hist) const {
    if (packed_ != nullptr) {
      build_gradient_histogram_packed(*packed_, offsets_, features_,
                                      buffer_.data() + leaf.begin, leaf.count,
                                      grad_, hess_, unit_hess_, hist, kernel_,
                                      par());
    } else {
      build_gradient_histogram(binned_, offsets_, features_,
                               buffer_.data() + leaf.begin, leaf.count, grad_,
                               hess_, hist, par());
    }
  }

  // Candidate features for one split search (colsample_bylevel).
  std::vector<int> level_features() {
    if (params_.colsample_bylevel >= 1.0) return features_;
    std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(params_.colsample_bylevel *
                                                static_cast<double>(features_.size()))));
    std::vector<int> sampled = features_;
    // Partial Fisher–Yates for the first k elements.
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + rng_.uniform_index(sampled.size() - i);
      std::swap(sampled[i], sampled[j]);
    }
    sampled.resize(k);
    return sampled;
  }

  // Evaluate the best split of one feature given the leaf histogram.
  void best_feature_split(const LeafState& leaf, int f, SplitInfo& best) const {
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(f));
    const HistEntry* hist = leaf.hist.data() + offsets_[static_cast<std::size_t>(f)];
    const double parent_score = leaf_score(leaf.g, leaf.h, params_);
    const HistEntry& miss = hist[fb.missing_bin()];

    auto consider = [&](double gl, double hl, std::uint32_t nl, double gr, double hr,
                        std::uint32_t nr, int bin, bool categorical, bool missing_left,
                        bool missing_only) {
      if (nl < static_cast<std::uint32_t>(params_.min_samples_leaf) ||
          nr < static_cast<std::uint32_t>(params_.min_samples_leaf)) {
        return;
      }
      if (hl < params_.min_child_weight || hr < params_.min_child_weight) return;
      double gain =
          leaf_score(gl, hl, params_) + leaf_score(gr, hr, params_) - parent_score;
      if (gain > best.gain) {
        best = {gain, f, bin, categorical, missing_left, missing_only};
      }
    };

    if (fb.type == ColumnType::Categorical) {
      // One-vs-rest: left = (code == c); missing always joins "rest".
      for (int c = 0; c < fb.n_value_bins; ++c) {
        const HistEntry& e = hist[c];
        if (e.n == 0) continue;
        consider(e.g, e.h, e.n, leaf.g - e.g, leaf.h - e.h,
                 static_cast<std::uint32_t>(leaf.count) - e.n, c,
                 /*categorical=*/true, /*missing_left=*/false, false);
      }
      return;
    }

    // Numeric: scan thresholds, try missing on each side.
    double gl = 0.0, hl = 0.0;
    std::uint32_t nl = 0;
    const double g_known = leaf.g - miss.g;
    const double h_known = leaf.h - miss.h;
    const std::uint32_t n_known = static_cast<std::uint32_t>(leaf.count) - miss.n;
    for (int b = 0; b + 1 < fb.n_value_bins; ++b) {
      gl += hist[b].g;
      hl += hist[b].h;
      nl += hist[b].n;
      if (nl == 0) continue;
      if (nl == n_known && miss.n == 0) break;
      // Missing right.
      consider(gl, hl, nl, leaf.g - gl, leaf.h - hl,
               static_cast<std::uint32_t>(leaf.count) - nl, b, false, false, false);
      if (miss.n > 0) {
        // Missing left.
        consider(gl + miss.g, hl + miss.h, nl + miss.n, g_known - gl, h_known - hl,
                 n_known - nl, b, false, true, false);
      }
    }
    if (miss.n > 0 && n_known > 0) {
      // Split known (left) vs missing (right).
      consider(g_known, h_known, n_known, miss.g, miss.h, miss.n, -1, false, false,
               true);
    }
  }

  SplitInfo find_best_split(const LeafState& leaf, const std::vector<int>& feats) const {
    SplitInfo best;
    if (pool_ != nullptr && feats.size() >= 2 && leaf.count >= kMinRowsForParallelFind) {
      // Feature-block parallel: evaluate every feature independently, then
      // reduce in feature order. Strict `>` in both the per-feature scan and
      // the reduction keeps the first (lowest feature index, lowest bin)
      // candidate on ties — exactly what the serial accumulating scan keeps
      // — so the result is independent of thread count.
      std::vector<SplitInfo> per_feature(feats.size());
      sharded_for(pool_, params_.n_threads, feats.size(),
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      best_feature_split(leaf, feats[i], per_feature[i]);
                    }
                  });
      for (const SplitInfo& cand : per_feature) {
        if (cand.gain > best.gain) best = cand;
      }
    } else {
      for (int f : feats) best_feature_split(leaf, f, best);
    }
    if (best.gain < params_.min_gain) best = SplitInfo{};
    return best;
  }

  // Partition the leaf's buffer segment by the split; returns count on left.
  std::size_t partition(const LeafState& leaf, const SplitInfo& split) {
    const auto& col = binned_.feature(static_cast<std::size_t>(split.feature));
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(split.feature));
    const int missing_bin = fb.missing_bin();
    auto goes_left = [&](std::uint32_t pos) {
      int b = col[pos];
      if (split.missing_only) return b != missing_bin;
      if (b == missing_bin) return split.missing_left;
      if (split.categorical) return b == split.bin;
      return b <= split.bin;
    };
    scratch_.clear();
    std::size_t write = leaf.begin;
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      if (goes_left(buffer_[i])) {
        buffer_[write++] = buffer_[i];
      } else {
        scratch_.push_back(buffer_[i]);
      }
    }
    std::copy(scratch_.begin(), scratch_.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(write));
    return write - leaf.begin;
  }

  double sum_g(const LeafState& leaf) const {
    double s = 0.0;
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      s += grad_[buffer_[i]];
    }
    return s;
  }
  double sum_h(const LeafState& leaf) const {
    double s = 0.0;
    for (std::size_t i = leaf.begin; i < leaf.begin + leaf.count; ++i) {
      s += hess_[buffer_[i]];
    }
    return s;
  }

  // Fill the Tree node for a chosen split.
  void apply_split_to_node(Tree& tree, std::int32_t node, const SplitInfo& split) const {
    TreeNode& n = tree.node(static_cast<std::size_t>(node));
    n.feature = split.feature;
    n.split_gain = std::max(split.gain, 0.0);
    const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(split.feature));
    if (split.missing_only) {
      n.categorical = false;
      n.threshold = std::numeric_limits<float>::infinity();
      n.missing_left = false;
    } else if (split.categorical) {
      n.categorical = true;
      n.category = split.bin;
      n.missing_left = false;
    } else {
      n.categorical = false;
      n.threshold = fb.threshold_for(split.bin);
      n.missing_left = split.missing_left;
    }
  }

  Tree grow_leaf_wise() {
    Tree tree;
    std::vector<LeafState> leaves;
    LeafState root;
    root.node = 0;
    root.begin = 0;
    root.count = buffer_.size();
    root.g = sum_g(root);
    root.h = sum_h(root);
    build_hist(root, root.hist);
    root.best = find_best_split(root, level_features());
    leaves.push_back(std::move(root));

    int n_leaves = 1;
    while (n_leaves < params_.max_leaves) {
      // Best-first: pick the splittable leaf with highest gain.
      int pick = -1;
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (!leaves[i].best.valid()) continue;
        if (params_.max_depth > 0 && leaves[i].depth >= params_.max_depth) continue;
        if (pick < 0 || leaves[i].best.gain > leaves[static_cast<std::size_t>(pick)].best.gain) {
          pick = static_cast<int>(i);
        }
      }
      if (pick < 0) break;

      LeafState leaf = std::move(leaves[static_cast<std::size_t>(pick)]);
      leaves.erase(leaves.begin() + pick);
      std::size_t left_count = partition(leaf, leaf.best);
      FLAML_CHECK(left_count > 0 && left_count < leaf.count);

      apply_split_to_node(tree, leaf.node, leaf.best);
      auto [left_id, right_id] = tree.split_leaf(leaf.node);

      LeafState left, right;
      left.node = left_id;
      left.begin = leaf.begin;
      left.count = left_count;
      left.depth = leaf.depth + 1;
      right.node = right_id;
      right.begin = leaf.begin + left_count;
      right.count = leaf.count - left_count;
      right.depth = leaf.depth + 1;
      left.g = sum_g(left);
      left.h = sum_h(left);
      right.g = leaf.g - left.g;
      right.h = leaf.h - left.h;

      // Histogram subtraction: build the smaller child, derive the larger by
      // moving the parent's buffer and subtracting in place. When the parent
      // had no retained histogram (small leaf), build both children directly.
      if (leaf.hist.empty()) {
        build_hist(left, left.hist);
        build_hist(right, right.hist);
      } else if (left.count <= right.count) {
        build_hist(left, left.hist);
        right.hist = std::move(leaf.hist);
        subtract_gradient_histogram_inplace(right.hist, left.hist);
      } else {
        build_hist(right, right.hist);
        left.hist = std::move(leaf.hist);
        subtract_gradient_histogram_inplace(left.hist, right.hist);
      }

      left.best = find_best_split(left, level_features());
      right.best = find_best_split(right, level_features());
      // Bound retained histogram memory: a leaf that cannot split again, or
      // whose row count makes a rebuild trivial, does not keep its buffer
      // (huge-leaf-count configurations would otherwise hold hundreds of MB).
      auto maybe_drop_hist = [](LeafState& l) {
        if (!l.best.valid() || l.count <= 256) {
          l.hist.clear();
          l.hist.shrink_to_fit();
        }
      };
      maybe_drop_hist(left);
      maybe_drop_hist(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
      ++n_leaves;
    }

    for (const auto& leaf : leaves) {
      tree.node(static_cast<std::size_t>(leaf.node)).leaf_value =
          leaf_weight(leaf.g, leaf.h, params_);
    }
    return tree;
  }

  Tree grow_oblivious() {
    Tree tree;
    std::vector<LeafState> level;
    LeafState root;
    root.node = 0;
    root.begin = 0;
    root.count = buffer_.size();
    root.g = sum_g(root);
    root.h = sum_h(root);
    build_hist(root, root.hist);
    level.push_back(std::move(root));

    for (int d = 0; d < params_.oblivious_depth; ++d) {
      // One shared split for the whole level: maximize the summed gain.
      std::vector<int> feats = level_features();
      // Each feature's best level-summed candidate, evaluated independently
      // (bin ascending, strict `>`), then reduced in feature order below —
      // the parallel run picks the same earliest maximum as the serial scan.
      struct SharedCand {
        double total = 0.0;
        int bin = -1;
        bool categorical = false;
      };
      std::vector<SharedCand> cands(feats.size());
      auto eval_feature = [&](std::size_t fi) {
        const int f = feats[fi];
        SharedCand& cand = cands[fi];
        cand.total = params_.min_gain;
        // Evaluate every bin candidate's total (level-summed) gain.
        // Per-leaf prefix sums over bins make this O(leaves × bins) per
        // feature instead of O(leaves × bins²).
        const FeatureBins& fb = mapper_.feature(static_cast<std::size_t>(f));
        const bool categorical = fb.type == ColumnType::Categorical;
        const int n_candidates =
            categorical ? fb.n_value_bins : fb.n_value_bins - 1;
        if (n_candidates <= 0) return;
        std::vector<double> total_gain(static_cast<std::size_t>(n_candidates), 0.0);
        for (const auto& leaf : level) {
          if (leaf.count == 0) continue;
          const HistEntry* hist =
              leaf.hist.data() + offsets_[static_cast<std::size_t>(f)];
          const double parent_score = leaf_score(leaf.g, leaf.h, params_);
          double gl = 0.0, hl = 0.0;
          std::uint32_t nl = 0;
          for (int b = 0; b < n_candidates; ++b) {
            if (categorical) {
              gl = hist[b].g;
              hl = hist[b].h;
              nl = hist[b].n;
            } else {
              gl += hist[b].g;
              hl += hist[b].h;
              nl += hist[b].n;
            }
            double gr = leaf.g - gl, hr = leaf.h - hl;
            std::uint32_t nr = static_cast<std::uint32_t>(leaf.count) - nl;
            if (nl == 0 || nr == 0) continue;
            if (hl < params_.min_child_weight || hr < params_.min_child_weight) {
              continue;
            }
            double gain = leaf_score(gl, hl, params_) +
                          leaf_score(gr, hr, params_) - parent_score;
            if (gain > 0.0) total_gain[static_cast<std::size_t>(b)] += gain;
          }
        }
        for (int b = 0; b < n_candidates; ++b) {
          if (total_gain[static_cast<std::size_t>(b)] > cand.total) {
            cand.total = total_gain[static_cast<std::size_t>(b)];
            cand.bin = b;
            cand.categorical = categorical;
          }
        }
      };
      ThreadPool* pool = feats.size() >= 2 ? pool_ : nullptr;
      sharded_for(pool, params_.n_threads, feats.size(),
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t fi = begin; fi < end; ++fi) eval_feature(fi);
                  });
      SplitInfo best_shared;
      double best_total = params_.min_gain;
      for (std::size_t fi = 0; fi < feats.size(); ++fi) {
        if (cands[fi].bin >= 0 && cands[fi].total > best_total) {
          best_total = cands[fi].total;
          best_shared.feature = feats[fi];
          best_shared.bin = cands[fi].bin;
          best_shared.categorical = cands[fi].categorical;
        }
      }
      if (!best_shared.valid()) break;

      // Apply the shared split to every non-empty leaf of the level.
      std::vector<LeafState> next;
      next.reserve(level.size() * 2);
      for (auto& leaf : level) {
        apply_split_to_node(tree, leaf.node, best_shared);
        auto [left_id, right_id] = tree.split_leaf(leaf.node);
        std::size_t left_count = leaf.count == 0 ? 0 : partition(leaf, best_shared);

        LeafState left, right;
        left.node = left_id;
        left.begin = leaf.begin;
        left.count = left_count;
        right.node = right_id;
        right.begin = leaf.begin + left_count;
        right.count = leaf.count - left_count;
        left.g = sum_g(left);
        left.h = sum_h(left);
        right.g = leaf.g - left.g;
        right.h = leaf.h - left.h;
        if (d + 1 < params_.oblivious_depth) {
          if (left.count <= right.count) {
            if (left.count > 0) build_hist(left, left.hist);
            else left.hist.assign(hist_size(), HistEntry{});
            subtract_gradient_histogram(leaf.hist, left.hist, right.hist);
          } else {
            if (right.count > 0) build_hist(right, right.hist);
            else right.hist.assign(hist_size(), HistEntry{});
            subtract_gradient_histogram(leaf.hist, right.hist, left.hist);
          }
        }
        next.push_back(std::move(left));
        next.push_back(std::move(right));
      }
      level = std::move(next);
    }

    for (const auto& leaf : level) {
      tree.node(static_cast<std::size_t>(leaf.node)).leaf_value =
          leaf.count == 0 ? 0.0 : leaf_weight(leaf.g, leaf.h, params_);
    }
    return tree;
  }

 private:
  const BinMapper& mapper_;
  const BinnedMatrix& binned_;
  const PackedBins* packed_;  // null = legacy scalar column build
  HistKernel kernel_;
  bool unit_hess_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const std::vector<int>& features_;
  const GrowerParams& params_;
  Rng& rng_;
  ThreadPool* pool_;  // null = serial growth
  std::vector<std::uint32_t> buffer_;
  std::vector<std::uint32_t> scratch_;
  std::vector<std::size_t> offsets_;

 public:
  Tree run() {
    FLAML_CHECK(!buffer_.empty());
    return params_.style == TreeStyle::LeafWise ? grow_leaf_wise() : grow_oblivious();
  }
};

}  // namespace

GradientTreeGrower::GradientTreeGrower(const BinMapper& mapper,
                                       const BinnedMatrix& binned,
                                       const PackedBins* packed)
    : mapper_(&mapper), binned_(&binned), packed_(packed) {
  FLAML_REQUIRE(packed == nullptr || (packed->n_rows() == binned.n_rows() &&
                                      packed->n_features() == binned.n_features()),
                "packed bins must describe the same matrix as `binned`");
}

const PackedBins* GradientTreeGrower::packed_or_build() const {
  if (packed_ != nullptr) return packed_;
  std::call_once(pack_once_, [this] {
    owned_packed_ = std::make_unique<PackedBins>(PackedBins::pack(*binned_));
  });
  return owned_packed_.get();
}

Tree GradientTreeGrower::grow(const std::vector<std::uint32_t>& rows,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              const std::vector<int>& features,
                              const GrowerParams& params, Rng& rng) const {
  FLAML_REQUIRE(!rows.empty(), "cannot grow a tree on zero rows");
  FLAML_REQUIRE(!features.empty(), "cannot grow a tree with zero features");
  FLAML_REQUIRE(grad.size() == binned_->n_rows() && hess.size() == binned_->n_rows(),
                "gradient arrays must cover all binned rows");
  // Resolved once per tree (env read + cpuid), not per leaf. The packed
  // kernels are bit-identical to the Scalar reference, so the choice never
  // changes the grown tree — only how fast the histograms fill.
  const HistKernel kernel = active_hist_kernel();
  const PackedBins* packed =
      kernel == HistKernel::Scalar ? nullptr : packed_or_build();
  GrowContext ctx(*mapper_, *binned_, packed, kernel, rows, grad, hess,
                  features, params, rng);
  return ctx.run();
}

}  // namespace flaml
