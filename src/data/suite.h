// The benchmark suite: named synthetic analogues of the paper's evaluation
// datasets (Tables 6-8: 39 OpenML classification + 14 PMLB regression
// tasks), scaled to laptop size. Sizes are roughly paper-size / 10..100,
// and each entry keeps the qualitative character of its namesake: small vs
// large, wide vs narrow, balanced vs imbalanced, clean vs noisy, numeric vs
// categorical vs missing-heavy.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generators.h"

namespace flaml {

enum class SuiteGroup { Binary, MultiClass, Regression };

const char* suite_group_name(SuiteGroup group);

struct SuiteEntry {
  std::string name;   // namesake dataset from the paper's tables
  SuiteGroup group;
  // Either a SyntheticSpec-driven dataset or a special generator.
  enum class Kind { Spec, Friedman1, Piecewise } kind = Kind::Spec;
  SyntheticSpec spec;
  double noise = 0.0;   // for Friedman1 / Piecewise
  int n_pieces = 0;     // for Piecewise
};

// All suite entries, ordered by group then by size (as in Figure 5's radar
// ordering). `row_scale` multiplies every entry's row count (min 200 rows).
const std::vector<SuiteEntry>& benchmark_suite();

// Entries of one group.
std::vector<SuiteEntry> suite_group(SuiteGroup group);

// Look up an entry by name; throws InvalidArgument if unknown.
const SuiteEntry& suite_entry(const std::string& name);

// Materialize the dataset for an entry. `row_scale` scales the row count
// (e.g. 0.5 for quick tests); deterministic for fixed entry + scale.
Dataset make_suite_dataset(const SuiteEntry& entry, double row_scale = 1.0);

}  // namespace flaml
