#include "data/split.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flaml {

std::vector<std::uint32_t> shuffled_indices(const Dataset& data, Rng& rng) {
  std::vector<std::uint32_t> idx(data.n_rows());
  std::iota(idx.begin(), idx.end(), 0u);
  rng.shuffle(idx);
  return idx;
}

std::vector<std::uint32_t> stratified_shuffled_indices(const Dataset& data, Rng& rng) {
  FLAML_REQUIRE(is_classification(data.task()),
                "stratified shuffle requires a classification task");
  const int k = data.n_classes();
  std::vector<std::vector<std::uint32_t>> by_class(static_cast<std::size_t>(k));
  for (std::uint32_t r = 0; r < data.n_rows(); ++r) {
    by_class[static_cast<std::size_t>(data.label(r))].push_back(r);
  }
  for (auto& rows : by_class) rng.shuffle(rows);

  // Interleave classes so every prefix is proportionally stratified: the
  // i-th row of a class of size n_c gets sort key (i + u)/n_c with a small
  // random tie-break u, and rows are emitted in key order.
  std::vector<std::pair<double, std::uint32_t>> keyed;
  keyed.reserve(data.n_rows());
  for (const auto& rows : by_class) {
    const double n_c = static_cast<double>(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      keyed.emplace_back((static_cast<double>(i) + rng.uniform()) / n_c, rows[i]);
    }
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::uint32_t> idx;
  idx.reserve(keyed.size());
  for (const auto& [key, row] : keyed) idx.push_back(row);
  return idx;
}

std::vector<std::uint32_t> task_shuffled_indices(const Dataset& data, Rng& rng) {
  return is_classification(data.task()) ? stratified_shuffled_indices(data, rng)
                                        : shuffled_indices(data, rng);
}

namespace {

// Assign each row of `view` a fold id in [0, k), stratified by class for
// classification tasks so each fold's class mix matches the whole view.
std::vector<int> fold_assignment(const DataView& view, int k, Rng& rng) {
  const std::size_t n = view.n_rows();
  std::vector<int> fold(n, 0);
  if (is_classification(view.data().task())) {
    const int n_classes = view.data().n_classes();
    std::vector<std::vector<std::size_t>> by_class(static_cast<std::size_t>(n_classes));
    for (std::size_t i = 0; i < n; ++i) {
      by_class[static_cast<std::size_t>(view.label(i))].push_back(i);
    }
    for (auto& members : by_class) {
      rng.shuffle(members);
      for (std::size_t j = 0; j < members.size(); ++j) {
        fold[members[j]] = static_cast<int>(j % static_cast<std::size_t>(k));
      }
    }
  } else {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);
    for (std::size_t j = 0; j < n; ++j) {
      fold[order[j]] = static_cast<int>(j % static_cast<std::size_t>(k));
    }
  }
  return fold;
}

}  // namespace

TrainTestSplit holdout_split(const DataView& view, double test_ratio, Rng& rng) {
  FLAML_REQUIRE(test_ratio > 0.0 && test_ratio < 1.0,
                "test_ratio must be in (0,1), got " << test_ratio);
  FLAML_REQUIRE(view.n_rows() >= 2, "holdout split needs at least 2 rows");
  // Use fold machinery with k = round(1/ratio) folds; fold 0 is the test set.
  int k = std::max(2, static_cast<int>(std::lround(1.0 / test_ratio)));
  k = std::min<int>(k, static_cast<int>(view.n_rows()));
  std::vector<int> fold = fold_assignment(view, k, rng);
  std::vector<std::uint32_t> train_rows, test_rows;
  for (std::size_t i = 0; i < view.n_rows(); ++i) {
    (fold[i] == 0 ? test_rows : train_rows).push_back(view.row_index(i));
  }
  FLAML_CHECK(!train_rows.empty() && !test_rows.empty());
  return {DataView(view.data(), std::move(train_rows)),
          DataView(view.data(), std::move(test_rows))};
}

std::vector<Fold> kfold_split(const DataView& view, int k, Rng& rng) {
  FLAML_REQUIRE(k >= 2, "k-fold needs k >= 2, got " << k);
  FLAML_REQUIRE(view.n_rows() >= static_cast<std::size_t>(k),
                "k-fold needs at least k rows");
  std::vector<int> fold = fold_assignment(view, k, rng);
  std::vector<Fold> folds;
  folds.reserve(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    std::vector<std::uint32_t> train_rows, valid_rows;
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      (fold[i] == f ? valid_rows : train_rows).push_back(view.row_index(i));
    }
    FLAML_CHECK(!train_rows.empty() && !valid_rows.empty());
    folds.push_back({DataView(view.data(), std::move(train_rows)),
                     DataView(view.data(), std::move(valid_rows))});
  }
  return folds;
}

}  // namespace flaml
