#include "data/csv.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

namespace flaml {

namespace {

std::vector<std::string> split_line(const std::string& line, char delim) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, delim)) cells.push_back(cell);
  if (!line.empty() && line.back() == delim) cells.emplace_back();
  return cells;
}

template <typename T>
bool parse_number(const std::string& s, T& out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  while (end > begin && (end[-1] == ' ' || end[-1] == '\t' || end[-1] == '\r')) --end;
  if (begin == end) return false;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_float(const std::string& s, float& out) { return parse_number(s, out); }

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

Dataset read_csv(std::istream& in, const CsvOptions& options) {
  std::string line;
  FLAML_REQUIRE(std::getline(in, line), "CSV stream is empty");
  std::vector<std::string> header = split_line(line, options.delimiter);
  for (auto& h : header) h = trim(h);
  if (options.has_label) {
    FLAML_REQUIRE(header.size() >= 2,
                  "CSV needs at least one feature and a label");
  } else {
    FLAML_REQUIRE(header.size() >= 1, "CSV needs at least one feature column");
  }

  // header.size() is the "no label column" sentinel: every column is a
  // feature (prediction-only input).
  std::size_t label_col = header.size();
  if (options.has_label) {
    label_col = header.size() - 1;
    if (!options.label_column.empty()) {
      bool found = false;
      for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == options.label_column) {
          label_col = i;
          found = true;
          break;
        }
      }
      FLAML_REQUIRE(found,
                    "label column '" << options.label_column << "' not in header");
    }
  }

  // First pass: read all cells as strings.
  std::vector<std::vector<std::string>> raw;  // [row][col]
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    auto cells = split_line(line, options.delimiter);
    FLAML_REQUIRE(cells.size() == header.size(),
                  "line " << line_no << " has " << cells.size() << " cells, expected "
                          << header.size());
    raw.push_back(std::move(cells));
  }
  FLAML_REQUIRE(!raw.empty(), "CSV has a header but no data rows");

  const std::size_t n_features = header.size() - (options.has_label ? 1 : 0);
  // Decide per-feature type: numeric unless some non-empty cell fails to parse.
  std::vector<std::size_t> feature_cols;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c != label_col) feature_cols.push_back(c);
  }
  std::vector<bool> numeric(n_features, true);
  for (const auto& row : raw) {
    for (std::size_t f = 0; f < n_features; ++f) {
      const std::string cell = trim(row[feature_cols[f]]);
      float v;
      if (!cell.empty() && !parse_float(cell, v)) numeric[f] = false;
    }
  }

  // Dictionary-encode categorical features.
  std::vector<std::map<std::string, int>> dicts(n_features);
  std::vector<ColumnInfo> columns(n_features);
  std::vector<std::vector<float>> values(n_features,
                                         std::vector<float>(raw.size()));
  for (std::size_t f = 0; f < n_features; ++f) {
    columns[f].name = header[feature_cols[f]];
    columns[f].type = numeric[f] ? ColumnType::Numeric : ColumnType::Categorical;
  }
  const float kMissing = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t r = 0; r < raw.size(); ++r) {
    for (std::size_t f = 0; f < n_features; ++f) {
      const std::string cell = trim(raw[r][feature_cols[f]]);
      if (cell.empty()) {
        values[f][r] = kMissing;
      } else if (numeric[f]) {
        float v;
        parse_float(cell, v);
        values[f][r] = v;
      } else {
        auto [it, inserted] = dicts[f].emplace(cell, static_cast<int>(dicts[f].size()));
        values[f][r] = static_cast<float>(it->second);
      }
    }
  }
  for (std::size_t f = 0; f < n_features; ++f) {
    if (!numeric[f]) columns[f].cardinality = static_cast<int>(dicts[f].size());
  }

  // Labels: numeric for regression; for classification accept numeric class
  // ids or strings (dictionary-encoded). Unlabeled files (has_label false)
  // get all-zero labels and a Regression task — see the header contract.
  std::vector<double> labels(raw.size(), 0.0);
  if (options.has_label) {
    std::map<std::string, int> label_dict;
    for (std::size_t r = 0; r < raw.size(); ++r) {
      const std::string cell = trim(raw[r][label_col]);
      FLAML_REQUIRE(!cell.empty(), "missing label on data row " << r + 2);
      // Labels parse at double precision: going through float would truncate
      // regression targets and break the write→read round trip.
      double v;
      if (parse_number(cell, v)) {
        labels[r] = v;
      } else {
        FLAML_REQUIRE(is_classification(options.task),
                      "non-numeric regression label '" << cell << "'");
        auto [it, inserted] = label_dict.emplace(cell, static_cast<int>(label_dict.size()));
        labels[r] = static_cast<double>(it->second);
      }
    }
  }

  Dataset data(options.has_label ? options.task : Task::Regression,
               std::move(columns));
  for (std::size_t f = 0; f < n_features; ++f) data.set_column(f, std::move(values[f]));
  data.set_labels(std::move(labels));
  data.validate();
  return data;
}

Dataset read_csv_file(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  FLAML_REQUIRE(in.good(), "cannot open CSV file '" << path << "'");
  return read_csv(in, options);
}

namespace {

// Shortest representation that parses back to the exact same value
// (std::to_chars without a precision argument guarantees round-tripping).
// Streaming with the default 6-digit precision would corrupt floats on a
// write→read round trip; see the CSV fuzz property test.
template <typename T>
void write_number(std::ostream& out, T v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  FLAML_CHECK(ec == std::errc());
  out.write(buf, ptr - buf);
}

}  // namespace

void write_csv_value(std::ostream& out, float v) { write_number(out, v); }
void write_csv_value(std::ostream& out, double v) { write_number(out, v); }

void write_csv(std::ostream& out, const DataView& view, char delimiter) {
  const Dataset& data = view.data();
  for (std::size_t c = 0; c < data.n_cols(); ++c) {
    out << data.column_info(c).name << delimiter;
  }
  out << "label\n";
  for (std::size_t i = 0; i < view.n_rows(); ++i) {
    for (std::size_t c = 0; c < data.n_cols(); ++c) {
      float v = view.value(i, c);
      if (!Dataset::is_missing(v)) write_number(out, v);
      out << delimiter;
    }
    write_number(out, view.label(i));
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const DataView& view, char delimiter) {
  std::ofstream out(path);
  FLAML_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  write_csv(out, view, delimiter);
}

}  // namespace flaml
