// CSV import/export for Dataset.
//
// Format: first line is a header; the label column is named by the caller
// (defaults to the last column). Numeric cells parse as float; any column
// containing a non-numeric, non-empty cell is treated as categorical and
// dictionary-encoded in order of first appearance. Empty cells are missing
// values (NaN).
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace flaml {

struct CsvOptions {
  char delimiter = ',';
  // Name of the label column; empty means the last column.
  std::string label_column;
  Task task = Task::Regression;
};

// Parse a dataset from a stream / file. Throws InvalidArgument on malformed
// input (ragged rows, missing label column, non-numeric labels).
Dataset read_csv(std::istream& in, const CsvOptions& options);
Dataset read_csv_file(const std::string& path, const CsvOptions& options);

// Write view (features + label column named "label") as CSV.
void write_csv(std::ostream& out, const DataView& view, char delimiter = ',');
void write_csv_file(const std::string& path, const DataView& view, char delimiter = ',');

}  // namespace flaml
