// CSV import/export for Dataset.
//
// Format: first line is a header; the label column is named by the caller
// (defaults to the last column). Numeric cells parse as float; any column
// containing a non-numeric, non-empty cell is treated as categorical and
// dictionary-encoded in order of first appearance. Empty cells are missing
// values (NaN).
//
// Prediction-only files have NO label column: set has_label = false and
// every header column becomes a feature. The returned dataset carries
// all-zero labels and Task::Regression regardless of `task` (an unlabeled
// file has no task of its own — the model being applied to it does), so
// consumers must not compute metrics against it.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace flaml {

struct CsvOptions {
  char delimiter = ',';
  // False: the file has no label column; every column is a feature and
  // `label_column`/`task` are ignored (see the header comment).
  bool has_label = true;
  // Name of the label column; empty means the last column.
  std::string label_column;
  Task task = Task::Regression;
};

// Parse a dataset from a stream / file. Throws InvalidArgument on malformed
// input (ragged rows, missing label column, non-numeric labels).
Dataset read_csv(std::istream& in, const CsvOptions& options);
Dataset read_csv_file(const std::string& path, const CsvOptions& options);

// Write view (features + label column named "label") as CSV.
void write_csv(std::ostream& out, const DataView& view, char delimiter = ',');
void write_csv_file(const std::string& path, const DataView& view, char delimiter = ',');

// Shortest decimal form that parses back to the exact same value
// (std::to_chars without a precision argument). This is the only writer
// that preserves the repo's round-trip guarantee — streaming a double with
// the default 6-significant-digit ostream precision corrupts it on a
// write→read round trip. Shared by write_csv and the prediction tools.
void write_csv_value(std::ostream& out, float v);
void write_csv_value(std::ostream& out, double v);

}  // namespace flaml
