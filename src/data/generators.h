// Synthetic dataset generators.
//
// These replace the OpenML / PMLB datasets of the paper's benchmark (which
// require network access and hours-scale budgets) with deterministic
// laptop-scale analogues. Each generator controls the properties that the
// AutoML comparisons depend on: size, dimensionality, class count and
// imbalance, boundary nonlinearity, label noise, categorical features and
// missing values. See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"

namespace flaml {

struct SyntheticSpec {
  Task task = Task::BinaryClassification;
  std::size_t n_rows = 1000;
  int n_features = 10;
  int n_classes = 2;             // classification only
  int n_informative = -1;        // -1: 60% of features
  int n_clusters_per_class = 2;  // multi-modal class regions
  double class_sep = 1.0;        // larger = easier
  double label_noise = 0.0;      // fraction of labels flipped / relative target noise
  double nonlinearity = 0.5;     // 0 = linear boundary, 1 = highly nonlinear
  double imbalance = 0.0;        // 0 = balanced; 0.9 = 90% mass on class 0
  double categorical_fraction = 0.0;  // fraction of features quantile-binned
  double missing_fraction = 0.0;      // fraction of cells set to NaN
  std::uint64_t seed = 1;
};

// General-purpose generator dispatching on spec.task.
Dataset make_synthetic(const SyntheticSpec& spec);

// Gaussian-cluster classification data (classic "blobs"+rotation+noise).
Dataset make_classification(const SyntheticSpec& spec);

// Regression target = sparse linear + pairwise interactions + sin warp,
// with nonlinearity and noise taken from the spec.
Dataset make_regression(const SyntheticSpec& spec);

// Friedman #1 benchmark: y = 10 sin(pi x1 x2) + 20 (x3-.5)^2 + 10 x4 + 5 x5 + noise.
// Extra features beyond the first five are irrelevant noise features.
Dataset make_friedman1(std::size_t n_rows, int n_features, double noise,
                       std::uint64_t seed);

// Piecewise-constant target on random axis-aligned boxes; tree-friendly,
// hard for linear models. Used for regression analogues of pol/house.
Dataset make_piecewise(std::size_t n_rows, int n_features, int n_pieces,
                       double noise, std::uint64_t seed);

// Post-processing used by the generators; exposed for tests.
// Quantile-bins `fraction` of the numeric columns into categorical codes
// (cardinality sampled in [3, 12]).
void binify_columns(Dataset& data, double fraction, Rng& rng);
// Sets `fraction` of all feature cells to NaN (missing completely at random).
void inject_missing(Dataset& data, double fraction, Rng& rng);

}  // namespace flaml
