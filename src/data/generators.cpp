#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/math_util.h"

namespace flaml {

namespace {

std::vector<ColumnInfo> numeric_columns(int n_features) {
  std::vector<ColumnInfo> cols(static_cast<std::size_t>(n_features));
  for (int f = 0; f < n_features; ++f) {
    cols[static_cast<std::size_t>(f)].name = "f" + std::to_string(f);
    cols[static_cast<std::size_t>(f)].type = ColumnType::Numeric;
  }
  return cols;
}

// Random rotation-ish mixing: y = A x with A orthonormal-ish (Gram-Schmidt
// on random Gaussians would be exact; a normalized random matrix is enough
// to entangle informative and redundant dimensions).
std::vector<std::vector<double>> random_mixing(int out_dim, int in_dim, Rng& rng) {
  std::vector<std::vector<double>> a(static_cast<std::size_t>(out_dim),
                                     std::vector<double>(static_cast<std::size_t>(in_dim)));
  for (auto& row : a) {
    double norm2 = 0.0;
    for (auto& v : row) {
      v = rng.normal();
      norm2 += v * v;
    }
    double inv = 1.0 / std::sqrt(std::max(norm2, 1e-12));
    for (auto& v : row) v *= inv;
  }
  return a;
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec) {
  return is_classification(spec.task) ? make_classification(spec)
                                      : make_regression(spec);
}

Dataset make_classification(const SyntheticSpec& spec) {
  FLAML_REQUIRE(spec.n_rows >= 4, "need at least 4 rows");
  FLAML_REQUIRE(spec.n_features >= 1, "need at least 1 feature");
  const int n_classes = spec.task == Task::BinaryClassification ? 2 : spec.n_classes;
  FLAML_REQUIRE(n_classes >= 2, "need at least 2 classes");
  Rng rng(spec.seed);

  const int n_informative =
      spec.n_informative > 0
          ? std::min(spec.n_informative, spec.n_features)
          : std::max(1, static_cast<int>(std::lround(0.6 * spec.n_features)));
  const int n_clusters = std::max(1, spec.n_clusters_per_class);

  // Class prior: geometric decay controlled by imbalance.
  std::vector<double> prior(static_cast<std::size_t>(n_classes), 1.0);
  if (spec.imbalance > 0.0) {
    double ratio = 1.0 - clamp(spec.imbalance, 0.0, 0.95);
    double w = 1.0;
    for (auto& p : prior) {
      p = w;
      w *= ratio;
    }
  }

  // Cluster centers in informative space, scaled by class_sep.
  std::vector<std::vector<std::vector<double>>> centers(
      static_cast<std::size_t>(n_classes));
  for (auto& class_centers : centers) {
    class_centers.resize(static_cast<std::size_t>(n_clusters));
    for (auto& c : class_centers) {
      c.resize(static_cast<std::size_t>(n_informative));
      for (auto& v : c) v = rng.normal() * 2.0 * spec.class_sep;
    }
  }

  const auto mixing = random_mixing(spec.n_features, n_informative, rng);

  Dataset data(spec.task, numeric_columns(spec.n_features));
  std::vector<std::vector<float>> cols(static_cast<std::size_t>(spec.n_features),
                                       std::vector<float>(spec.n_rows));
  std::vector<double> labels(spec.n_rows);
  std::vector<double> latent(static_cast<std::size_t>(n_informative));

  for (std::size_t r = 0; r < spec.n_rows; ++r) {
    const int y = static_cast<int>(rng.categorical(prior));
    const auto& center =
        centers[static_cast<std::size_t>(y)][rng.uniform_index(
            static_cast<std::uint64_t>(n_clusters))];
    for (int j = 0; j < n_informative; ++j) {
      latent[static_cast<std::size_t>(j)] =
          center[static_cast<std::size_t>(j)] + rng.normal();
    }
    // Nonlinear warp of the latent space (keeps class structure but bends
    // the decision boundary so linear models underfit).
    if (spec.nonlinearity > 0.0) {
      for (int j = 0; j < n_informative; ++j) {
        double v = latent[static_cast<std::size_t>(j)];
        double warped = v + std::sin(1.7 * v) * 1.5 +
                        0.35 * v * latent[static_cast<std::size_t>((j + 1) % n_informative)];
        latent[static_cast<std::size_t>(j)] =
            (1.0 - spec.nonlinearity) * v + spec.nonlinearity * warped;
      }
    }
    for (int f = 0; f < spec.n_features; ++f) {
      double v = 0.0;
      if (f < n_informative) {
        v = latent[static_cast<std::size_t>(f)];
      } else {
        const auto& row = mixing[static_cast<std::size_t>(f)];
        for (int j = 0; j < n_informative; ++j) {
          v += row[static_cast<std::size_t>(j)] * latent[static_cast<std::size_t>(j)];
        }
        v += 0.6 * rng.normal();  // distractor noise on redundant features
      }
      cols[static_cast<std::size_t>(f)][r] = static_cast<float>(v);
    }
    int label = y;
    if (spec.label_noise > 0.0 && rng.bernoulli(spec.label_noise)) {
      label = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n_classes)));
    }
    labels[r] = static_cast<double>(label);
  }

  // Guarantee every class appears at least twice (folds need that): steal
  // rows from classes that can spare them (count stays > 2).
  {
    std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
    for (double y : labels) counts[static_cast<std::size_t>(y)] += 1;
    for (int c = 0; c < n_classes; ++c) {
      while (counts[static_cast<std::size_t>(c)] < 2) {
        bool stolen = false;
        for (std::size_t i = 0; i < labels.size(); ++i) {
          int owner = static_cast<int>(labels[i]);
          if (owner != c && counts[static_cast<std::size_t>(owner)] > 2) {
            labels[i] = static_cast<double>(c);
            counts[static_cast<std::size_t>(owner)] -= 1;
            counts[static_cast<std::size_t>(c)] += 1;
            stolen = true;
            break;
          }
        }
        FLAML_CHECK_MSG(stolen, "not enough rows to give every class 2 examples");
      }
    }
  }

  for (int f = 0; f < spec.n_features; ++f) {
    data.set_column(static_cast<std::size_t>(f), std::move(cols[static_cast<std::size_t>(f)]));
  }
  data.set_labels(std::move(labels));

  if (spec.categorical_fraction > 0.0) binify_columns(data, spec.categorical_fraction, rng);
  if (spec.missing_fraction > 0.0) inject_missing(data, spec.missing_fraction, rng);
  data.validate();
  return data;
}

Dataset make_regression(const SyntheticSpec& spec) {
  FLAML_REQUIRE(spec.task == Task::Regression, "make_regression needs Task::Regression");
  FLAML_REQUIRE(spec.n_rows >= 4 && spec.n_features >= 1, "bad shape");
  Rng rng(spec.seed);
  const int n_informative =
      spec.n_informative > 0
          ? std::min(spec.n_informative, spec.n_features)
          : std::max(1, static_cast<int>(std::lround(0.6 * spec.n_features)));

  std::vector<double> w(static_cast<std::size_t>(n_informative));
  for (auto& v : w) v = rng.normal() * 2.0;
  // A few pairwise interactions among informative features.
  struct Interaction {
    int i, j;
    double w;
  };
  std::vector<Interaction> inter;
  int n_inter = std::max(1, n_informative / 2);
  for (int t = 0; t < n_inter; ++t) {
    inter.push_back({static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n_informative))),
                     static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n_informative))),
                     rng.normal() * 1.5});
  }

  Dataset data(Task::Regression, numeric_columns(spec.n_features));
  std::vector<std::vector<float>> cols(static_cast<std::size_t>(spec.n_features),
                                       std::vector<float>(spec.n_rows));
  std::vector<double> labels(spec.n_rows);
  std::vector<double> x(static_cast<std::size_t>(spec.n_features));

  std::vector<double> clean(spec.n_rows);
  for (std::size_t r = 0; r < spec.n_rows; ++r) {
    for (int f = 0; f < spec.n_features; ++f) {
      x[static_cast<std::size_t>(f)] = rng.normal();
      cols[static_cast<std::size_t>(f)][r] = static_cast<float>(x[static_cast<std::size_t>(f)]);
    }
    double y = 0.0;
    for (int j = 0; j < n_informative; ++j) {
      double xj = x[static_cast<std::size_t>(j)];
      double lin = w[static_cast<std::size_t>(j)] * xj;
      double nl = w[static_cast<std::size_t>(j)] * (std::sin(1.3 * xj) + 0.5 * xj * xj);
      y += (1.0 - spec.nonlinearity) * lin + spec.nonlinearity * nl;
    }
    for (const auto& t : inter) {
      y += spec.nonlinearity * t.w * x[static_cast<std::size_t>(t.i)] *
           x[static_cast<std::size_t>(t.j)];
    }
    clean[r] = y;
  }
  // Relative target noise.
  double sd = std::sqrt(variance(clean));
  for (std::size_t r = 0; r < spec.n_rows; ++r) {
    labels[r] = clean[r] + rng.normal() * sd * spec.label_noise;
  }

  for (int f = 0; f < spec.n_features; ++f) {
    data.set_column(static_cast<std::size_t>(f), std::move(cols[static_cast<std::size_t>(f)]));
  }
  data.set_labels(std::move(labels));
  if (spec.categorical_fraction > 0.0) binify_columns(data, spec.categorical_fraction, rng);
  if (spec.missing_fraction > 0.0) inject_missing(data, spec.missing_fraction, rng);
  data.validate();
  return data;
}

Dataset make_friedman1(std::size_t n_rows, int n_features, double noise,
                       std::uint64_t seed) {
  FLAML_REQUIRE(n_features >= 5, "friedman1 needs at least 5 features");
  Rng rng(seed);
  Dataset data(Task::Regression, numeric_columns(n_features));
  std::vector<std::vector<float>> cols(static_cast<std::size_t>(n_features),
                                       std::vector<float>(n_rows));
  std::vector<double> labels(n_rows);
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<double> x(static_cast<std::size_t>(n_features));
    for (int f = 0; f < n_features; ++f) {
      x[static_cast<std::size_t>(f)] = rng.uniform();
      cols[static_cast<std::size_t>(f)][r] = static_cast<float>(x[static_cast<std::size_t>(f)]);
    }
    labels[r] = 10.0 * std::sin(M_PI * x[0] * x[1]) + 20.0 * (x[2] - 0.5) * (x[2] - 0.5) +
                10.0 * x[3] + 5.0 * x[4] + rng.normal() * noise;
  }
  for (int f = 0; f < n_features; ++f) {
    data.set_column(static_cast<std::size_t>(f), std::move(cols[static_cast<std::size_t>(f)]));
  }
  data.set_labels(std::move(labels));
  data.validate();
  return data;
}

Dataset make_piecewise(std::size_t n_rows, int n_features, int n_pieces,
                       double noise, std::uint64_t seed) {
  FLAML_REQUIRE(n_features >= 1 && n_pieces >= 1, "bad piecewise spec");
  Rng rng(seed);
  struct Box {
    std::vector<double> lo, hi;
    double value;
  };
  std::vector<Box> boxes(static_cast<std::size_t>(n_pieces));
  for (auto& b : boxes) {
    b.lo.resize(static_cast<std::size_t>(n_features));
    b.hi.resize(static_cast<std::size_t>(n_features));
    for (int f = 0; f < n_features; ++f) {
      double a = rng.uniform(-2.0, 2.0);
      double width = rng.uniform(0.5, 3.0);
      b.lo[static_cast<std::size_t>(f)] = a;
      b.hi[static_cast<std::size_t>(f)] = a + width;
    }
    b.value = rng.normal() * 5.0;
  }

  Dataset data(Task::Regression, numeric_columns(n_features));
  std::vector<std::vector<float>> cols(static_cast<std::size_t>(n_features),
                                       std::vector<float>(n_rows));
  std::vector<double> labels(n_rows);
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<double> x(static_cast<std::size_t>(n_features));
    for (int f = 0; f < n_features; ++f) {
      x[static_cast<std::size_t>(f)] = rng.normal();
      cols[static_cast<std::size_t>(f)][r] = static_cast<float>(x[static_cast<std::size_t>(f)]);
    }
    double y = 0.0;
    for (const auto& b : boxes) {
      bool inside = true;
      for (int f = 0; f < n_features && inside; ++f) {
        inside = x[static_cast<std::size_t>(f)] >= b.lo[static_cast<std::size_t>(f)] &&
                 x[static_cast<std::size_t>(f)] <= b.hi[static_cast<std::size_t>(f)];
      }
      if (inside) y += b.value;
    }
    labels[r] = y + rng.normal() * noise;
  }
  for (int f = 0; f < n_features; ++f) {
    data.set_column(static_cast<std::size_t>(f), std::move(cols[static_cast<std::size_t>(f)]));
  }
  data.set_labels(std::move(labels));
  data.validate();
  return data;
}

void binify_columns(Dataset& data, double fraction, Rng& rng) {
  const std::size_t n_cols = data.n_cols();
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < n_cols; ++c) {
    if (data.column_info(c).type == ColumnType::Numeric) candidates.push_back(c);
  }
  rng.shuffle(candidates);
  std::size_t n_bin = static_cast<std::size_t>(
      std::lround(clamp(fraction, 0.0, 1.0) * static_cast<double>(candidates.size())));
  for (std::size_t i = 0; i < n_bin; ++i) {
    std::size_t c = candidates[i];
    const int k = static_cast<int>(3 + rng.uniform_index(10));  // 3..12 categories
    std::vector<float> sorted = data.column(c);
    sorted.erase(std::remove_if(sorted.begin(), sorted.end(),
                                [](float v) { return Dataset::is_missing(v); }),
                 sorted.end());
    if (sorted.empty()) continue;
    std::sort(sorted.begin(), sorted.end());
    std::vector<float> edges;
    for (int b = 1; b < k; ++b) {
      std::size_t pos = sorted.size() * static_cast<std::size_t>(b) /
                        static_cast<std::size_t>(k);
      edges.push_back(sorted[std::min(pos, sorted.size() - 1)]);
    }
    std::vector<float> coded = data.column(c);
    for (auto& v : coded) {
      if (Dataset::is_missing(v)) continue;
      int code = static_cast<int>(
          std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
      v = static_cast<float>(code);
    }
    data.set_column(c, std::move(coded));
    ColumnInfo info = data.column_info(c);
    info.type = ColumnType::Categorical;
    info.cardinality = k;
    data.set_column_info(c, std::move(info));
  }
}

void inject_missing(Dataset& data, double fraction, Rng& rng) {
  const float kMissing = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t c = 0; c < data.n_cols(); ++c) {
    std::vector<float> col = data.column(c);
    for (auto& v : col) {
      if (rng.bernoulli(fraction)) v = kMissing;
    }
    data.set_column(c, std::move(col));
  }
}

}  // namespace flaml
