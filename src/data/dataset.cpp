#include "data/dataset.h"

#include <algorithm>
#include <numeric>

namespace flaml {

const char* task_name(Task task) {
  switch (task) {
    case Task::BinaryClassification: return "binary";
    case Task::MultiClassification: return "multiclass";
    case Task::Regression: return "regression";
  }
  return "?";
}

bool is_classification(Task task) { return task != Task::Regression; }

Dataset::Dataset(Task task, std::vector<ColumnInfo> columns)
    : task_(task), columns_(std::move(columns)), values_(columns_.size()) {
  FLAML_REQUIRE(!columns_.empty(), "dataset needs at least one column");
  for (const auto& c : columns_) {
    if (c.type == ColumnType::Categorical) {
      FLAML_REQUIRE(c.cardinality >= 1,
                    "categorical column '" << c.name << "' needs cardinality >= 1");
    }
  }
}

void Dataset::add_row(const std::vector<float>& values, double label) {
  FLAML_REQUIRE(values.size() == columns_.size(),
                "row has " << values.size() << " values, dataset has "
                           << columns_.size() << " columns");
  for (std::size_t c = 0; c < values.size(); ++c) values_[c].push_back(values[c]);
  labels_.push_back(label);
  ++n_rows_;
  refresh_n_classes();
}

void Dataset::set_column(std::size_t col, std::vector<float> values) {
  FLAML_REQUIRE(col < columns_.size(), "column index out of range");
  for (std::size_t c = 0; c < values_.size(); ++c) {
    if (c != col && !values_[c].empty()) {
      FLAML_REQUIRE(values_[c].size() == values.size(),
                    "column length " << values.size() << " does not match existing "
                                     << values_[c].size());
      break;
    }
  }
  values_[col] = std::move(values);
  n_rows_ = std::max(n_rows_, values_[col].size());
}

void Dataset::set_weights(std::vector<double> weights) {
  weights_ = std::move(weights);
}

void Dataset::set_labels(std::vector<double> labels) {
  labels_ = std::move(labels);
  n_rows_ = labels_.size();
  refresh_n_classes();
}

void Dataset::refresh_n_classes() {
  if (task_ == Task::Regression) {
    n_classes_ = 0;
    return;
  }
  int max_class = -1;
  for (double y : labels_) max_class = std::max(max_class, static_cast<int>(y));
  n_classes_ = max_class + 1;
}

void Dataset::validate() const {
  FLAML_REQUIRE(n_rows_ > 0, "dataset is empty");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    FLAML_REQUIRE(values_[c].size() == n_rows_,
                  "column '" << columns_[c].name << "' has " << values_[c].size()
                             << " rows, expected " << n_rows_);
    if (columns_[c].type == ColumnType::Categorical) {
      for (float v : values_[c]) {
        if (is_missing(v)) continue;
        int code = static_cast<int>(v);
        FLAML_REQUIRE(static_cast<float>(code) == v && code >= 0 &&
                          code < columns_[c].cardinality,
                      "invalid category code " << v << " in column '"
                                               << columns_[c].name << "'");
      }
    }
  }
  FLAML_REQUIRE(labels_.size() == n_rows_, "labels/rows length mismatch");
  if (!weights_.empty()) {
    FLAML_REQUIRE(weights_.size() == n_rows_, "weights/rows length mismatch");
    for (double w : weights_) {
      FLAML_REQUIRE(std::isfinite(w) && w > 0.0,
                    "sample weights must be positive and finite");
    }
  }
  if (is_classification(task_)) {
    FLAML_REQUIRE(n_classes_ >= 2, "classification needs at least 2 classes");
    if (task_ == Task::BinaryClassification) {
      FLAML_REQUIRE(n_classes_ == 2, "binary task has " << n_classes_ << " classes");
    }
    for (double y : labels_) {
      FLAML_REQUIRE(y == std::floor(y) && y >= 0 && y < n_classes_,
                    "label " << y << " is not a valid class id");
    }
  } else {
    for (double y : labels_) {
      FLAML_REQUIRE(std::isfinite(y), "regression label must be finite");
    }
  }
}

std::vector<double> Dataset::class_priors() const {
  FLAML_REQUIRE(is_classification(task_), "class_priors on a regression dataset");
  std::vector<double> counts(static_cast<std::size_t>(n_classes_), 0.0);
  for (double y : labels_) counts[static_cast<std::size_t>(y)] += 1.0;
  for (double& c : counts) c /= static_cast<double>(n_rows_);
  return counts;
}

DataView::DataView(const Dataset& data) : data_(&data) {
  rows_.resize(data.n_rows());
  std::iota(rows_.begin(), rows_.end(), 0u);
}

DataView::DataView(const Dataset& data, std::vector<std::uint32_t> rows)
    : data_(&data), rows_(std::move(rows)) {
  for (std::uint32_t r : rows_) FLAML_CHECK(r < data.n_rows());
}

DataView DataView::prefix(std::size_t s) const {
  FLAML_CHECK(data_ != nullptr);
  s = std::min(s, rows_.size());
  return DataView(*data_, std::vector<std::uint32_t>(rows_.begin(),
                                                     rows_.begin() + static_cast<std::ptrdiff_t>(s)));
}

Dataset materialize(const DataView& view) {
  FLAML_REQUIRE(view.n_rows() > 0, "cannot materialize an empty view");
  const Dataset& src = view.data();
  std::vector<ColumnInfo> columns;
  columns.reserve(src.n_cols());
  for (std::size_t c = 0; c < src.n_cols(); ++c) columns.push_back(src.column_info(c));
  Dataset out(src.task(), std::move(columns));
  for (std::size_t c = 0; c < src.n_cols(); ++c) {
    std::vector<float> col(view.n_rows());
    for (std::size_t i = 0; i < view.n_rows(); ++i) col[i] = view.value(i, c);
    out.set_column(c, std::move(col));
  }
  out.set_labels(view.labels());
  if (src.has_weights()) out.set_weights(view.weights());
  return out;
}

std::vector<double> DataView::labels() const {
  std::vector<double> out(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) out[i] = data_->label(rows_[i]);
  return out;
}

std::vector<double> DataView::weights() const {
  std::vector<double> out(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) out[i] = data_->weight(rows_[i]);
  return out;
}

}  // namespace flaml
