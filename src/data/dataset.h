// In-memory tabular dataset.
//
// Storage is column-major: each feature column is a contiguous
// vector<float>. Categorical features store their integer code as a float
// (codes are 0..cardinality-1); missing values are NaN in either case.
// Labels are doubles: the regression target, or the class id (0..K-1) for
// classification. This layout is what the histogram tree builder, the
// linear learners and the samplers all consume directly.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace flaml {

enum class Task { BinaryClassification, MultiClassification, Regression };

const char* task_name(Task task);
bool is_classification(Task task);

enum class ColumnType { Numeric, Categorical };

struct ColumnInfo {
  std::string name;
  ColumnType type = ColumnType::Numeric;
  // Number of categories for categorical columns; 0 for numeric.
  int cardinality = 0;
};

class Dataset {
 public:
  Dataset(Task task, std::vector<ColumnInfo> columns);

  // Append one row; values.size() must equal n_cols(). Categorical values
  // must be integral codes in [0, cardinality) or NaN for missing.
  void add_row(const std::vector<float>& values, double label);

  // Bulk construction: moves one full column in. All columns must have the
  // same length; call set_labels afterwards.
  void set_column(std::size_t col, std::vector<float> values);
  void set_labels(std::vector<double> labels);

  // Optional per-row training weights (scikit's sample_weight). Empty (the
  // default) means every row weighs 1. Weights scale the training loss of
  // every learner; evaluation metrics stay unweighted.
  void set_weights(std::vector<double> weights);
  bool has_weights() const { return !weights_.empty(); }
  double weight(std::size_t row) const {
    return weights_.empty() ? 1.0 : weights_[row];
  }
  const std::vector<double>& weights() const { return weights_; }

  Task task() const { return task_; }
  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_cols() const { return columns_.size(); }
  // Number of classes for classification tasks (computed from labels).
  int n_classes() const { return n_classes_; }

  const ColumnInfo& column_info(std::size_t col) const { return columns_[col]; }
  // Replace a column's metadata (e.g. after re-encoding it as categorical).
  void set_column_info(std::size_t col, ColumnInfo info) {
    FLAML_REQUIRE(col < columns_.size(), "column index out of range");
    columns_[col] = std::move(info);
  }
  const std::vector<float>& column(std::size_t col) const { return values_[col]; }
  float value(std::size_t row, std::size_t col) const { return values_[col][row]; }
  double label(std::size_t row) const { return labels_[row]; }
  const std::vector<double>& labels() const { return labels_; }

  static bool is_missing(float v) { return std::isnan(v); }

  // Validates internal consistency (lengths, label range, category codes);
  // throws InvalidArgument on failure. Called by consumers at API entry.
  void validate() const;

  // Fraction of each class in the labels (classification only).
  std::vector<double> class_priors() const;

 private:
  void refresh_n_classes();

  Task task_;
  std::vector<ColumnInfo> columns_;
  std::vector<std::vector<float>> values_;  // [col][row]
  std::vector<double> labels_;
  std::vector<double> weights_;  // empty = unweighted
  std::size_t n_rows_ = 0;
  int n_classes_ = 0;
};

// A subset of dataset rows, by index. Cheap to copy the handle; the index
// vector is shared. This is how sampling (first s rows of a shuffle),
// cross-validation folds and holdout splits are expressed without copying
// feature data.
class DataView {
 public:
  DataView() = default;
  // View over all rows.
  explicit DataView(const Dataset& data);
  // View over the given rows (indices into `data`).
  DataView(const Dataset& data, std::vector<std::uint32_t> rows);

  bool empty() const { return rows_.empty(); }
  std::size_t n_rows() const { return rows_.size(); }
  std::size_t n_cols() const { return data_ ? data_->n_cols() : 0; }
  const Dataset& data() const {
    FLAML_CHECK(data_ != nullptr);
    return *data_;
  }
  std::uint32_t row_index(std::size_t i) const { return rows_[i]; }
  const std::vector<std::uint32_t>& rows() const { return rows_; }

  float value(std::size_t i, std::size_t col) const {
    return data_->value(rows_[i], col);
  }
  double label(std::size_t i) const { return data_->label(rows_[i]); }

  // The first `s` rows of this view (s clamped to n_rows). Used for
  // progressive sampling: the controller shuffles once, then takes prefixes.
  DataView prefix(std::size_t s) const;

  // Labels of the view, materialized.
  std::vector<double> labels() const;

  // Training weights of the view, materialized (all 1 when unweighted).
  std::vector<double> weights() const;
  double weight(std::size_t i) const { return data_->weight(rows_[i]); }

 private:
  const Dataset* data_ = nullptr;
  std::vector<std::uint32_t> rows_;
};

// Copy the rows of a view into a standalone Dataset with the same schema
// (used to hand a train split to an API that takes a whole Dataset).
Dataset materialize(const DataView& view);

}  // namespace flaml
