// Shuffling, holdout splits and cross-validation folds.
//
// FLAML shuffles the data once up-front and draws progressive samples as
// prefixes of the shuffle (paper §4.2). For classification the shuffle is
// stratified so every prefix approximately preserves class proportions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace flaml {

// Uniformly random permutation of [0, n_rows).
std::vector<std::uint32_t> shuffled_indices(const Dataset& data, Rng& rng);

// Stratified permutation: every prefix of the result has class proportions
// within ±1 row of the full-data proportions. Classification only.
std::vector<std::uint32_t> stratified_shuffled_indices(const Dataset& data, Rng& rng);

// Task-appropriate shuffle: stratified for classification, uniform otherwise.
std::vector<std::uint32_t> task_shuffled_indices(const Dataset& data, Rng& rng);

struct TrainTestSplit {
  DataView train;
  DataView test;
};

// Split a view into train/test with the given test fraction (0 < ratio < 1).
// Stratifies by label for classification tasks.
TrainTestSplit holdout_split(const DataView& view, double test_ratio, Rng& rng);

struct Fold {
  DataView train;
  DataView valid;
};

// k-fold partition of the view (k >= 2); folds are disjoint and cover the
// view. Stratified by label for classification tasks.
std::vector<Fold> kfold_split(const DataView& view, int k, Rng& rng);

}  // namespace flaml
