#include "data/suite.h"

#include <algorithm>
#include <cmath>

namespace flaml {

const char* suite_group_name(SuiteGroup group) {
  switch (group) {
    case SuiteGroup::Binary: return "binary";
    case SuiteGroup::MultiClass: return "multiclass";
    case SuiteGroup::Regression: return "regression";
  }
  return "?";
}

namespace {

SyntheticSpec base_spec(Task task, std::size_t rows, int features, std::uint64_t seed) {
  SyntheticSpec s;
  s.task = task;
  s.n_rows = rows;
  s.n_features = features;
  s.seed = seed;
  return s;
}

SuiteEntry binary(const std::string& name, std::size_t rows, int features,
                  std::uint64_t seed) {
  SuiteEntry e;
  e.name = name;
  e.group = SuiteGroup::Binary;
  e.spec = base_spec(Task::BinaryClassification, rows, features, seed);
  return e;
}

SuiteEntry multi(const std::string& name, std::size_t rows, int features,
                 int classes, std::uint64_t seed) {
  SuiteEntry e;
  e.name = name;
  e.group = SuiteGroup::MultiClass;
  e.spec = base_spec(Task::MultiClassification, rows, features, seed);
  e.spec.n_classes = classes;
  return e;
}

SuiteEntry regress(const std::string& name, std::size_t rows, int features,
                   std::uint64_t seed) {
  SuiteEntry e;
  e.name = name;
  e.group = SuiteGroup::Regression;
  e.spec = base_spec(Task::Regression, rows, features, seed);
  return e;
}

std::vector<SuiteEntry> build_suite() {
  std::vector<SuiteEntry> s;

  // ---- Binary classification (Table 6 analogues, smallest to largest) ----
  {
    auto e = binary("blood-transfusion", 748, 4, 101);
    e.spec.label_noise = 0.18;
    e.spec.imbalance = 0.55;
    e.spec.nonlinearity = 0.3;
    s.push_back(e);
  }
  {
    auto e = binary("australian", 690, 14, 102);
    e.spec.categorical_fraction = 0.4;
    e.spec.label_noise = 0.10;
    s.push_back(e);
  }
  {
    auto e = binary("credit-g", 1000, 20, 103);
    e.spec.categorical_fraction = 0.6;
    e.spec.imbalance = 0.4;
    e.spec.label_noise = 0.15;
    s.push_back(e);
  }
  {
    auto e = binary("kc1", 2109, 21, 104);
    e.spec.imbalance = 0.7;
    e.spec.label_noise = 0.12;
    e.spec.nonlinearity = 0.4;
    s.push_back(e);
  }
  {
    auto e = binary("phoneme", 2700, 5, 105);
    e.spec.nonlinearity = 0.9;
    e.spec.n_clusters_per_class = 4;
    e.spec.label_noise = 0.06;
    s.push_back(e);
  }
  {
    auto e = binary("christine", 1354, 96, 106);
    e.spec.n_informative = 20;
    e.spec.label_noise = 0.12;
    e.spec.nonlinearity = 0.6;
    s.push_back(e);
  }
  {
    auto e = binary("amazon-employee", 3277, 9, 107);
    e.spec.categorical_fraction = 1.0;
    e.spec.imbalance = 0.88;
    e.spec.label_noise = 0.04;
    s.push_back(e);
  }
  {
    auto e = binary("adult", 4884, 14, 108);
    e.spec.categorical_fraction = 0.5;
    e.spec.missing_fraction = 0.01;
    e.spec.imbalance = 0.5;
    e.spec.label_noise = 0.08;
    s.push_back(e);
  }
  {
    auto e = binary("aps-failure", 7600, 40, 109);
    e.spec.missing_fraction = 0.08;
    e.spec.imbalance = 0.9;
    e.spec.n_informative = 12;
    s.push_back(e);
  }
  {
    auto e = binary("higgs", 14000, 28, 110);
    e.spec.nonlinearity = 0.8;
    e.spec.label_noise = 0.18;
    e.spec.n_clusters_per_class = 3;
    s.push_back(e);
  }
  {
    auto e = binary("miniboone", 26000, 50, 111);
    e.spec.nonlinearity = 0.6;
    e.spec.label_noise = 0.06;
    e.spec.imbalance = 0.4;
    s.push_back(e);
  }
  {
    auto e = binary("airlines", 48000, 7, 112);
    e.spec.label_noise = 0.25;
    e.spec.nonlinearity = 0.5;
    e.spec.categorical_fraction = 0.4;
    s.push_back(e);
  }

  // ---- Multi-class classification (Table 7 analogues) ----
  {
    auto e = multi("car", 1728, 6, 4, 201);
    e.spec.categorical_fraction = 1.0;
    e.spec.imbalance = 0.6;
    s.push_back(e);
  }
  {
    auto e = multi("vehicle", 846, 18, 4, 202);
    e.spec.label_noise = 0.10;
    e.spec.nonlinearity = 0.5;
    s.push_back(e);
  }
  {
    auto e = multi("mfeat-factors", 2000, 48, 10, 203);
    e.spec.n_informative = 24;
    e.spec.class_sep = 1.4;
    s.push_back(e);
  }
  {
    auto e = multi("segment", 2310, 19, 7, 204);
    e.spec.class_sep = 1.5;
    e.spec.nonlinearity = 0.4;
    s.push_back(e);
  }
  {
    auto e = multi("shuttle", 5800, 9, 7, 205);
    e.spec.imbalance = 0.8;
    e.spec.class_sep = 1.6;
    s.push_back(e);
  }
  {
    auto e = multi("connect-4", 6756, 42, 3, 206);
    e.spec.categorical_fraction = 1.0;
    e.spec.imbalance = 0.5;
    e.spec.label_noise = 0.08;
    s.push_back(e);
  }
  {
    auto e = multi("helena", 6520, 27, 10, 207);
    e.spec.label_noise = 0.30;
    e.spec.nonlinearity = 0.7;
    e.spec.class_sep = 0.7;
    s.push_back(e);
  }
  {
    auto e = multi("jannis", 12000, 54, 4, 208);
    e.spec.label_noise = 0.20;
    e.spec.nonlinearity = 0.6;
    s.push_back(e);
  }
  {
    auto e = multi("covertype", 35000, 54, 7, 209);
    e.spec.nonlinearity = 0.6;
    e.spec.n_clusters_per_class = 3;
    e.spec.imbalance = 0.45;
    s.push_back(e);
  }
  {
    auto e = multi("dionis", 17000, 60, 12, 210);
    e.spec.class_sep = 1.1;
    e.spec.n_informative = 30;
    s.push_back(e);
  }

  // ---- Regression (Table 8 analogues) ----
  {
    auto e = regress("bng-echomonths", 1750, 9, 301);
    e.spec.label_noise = 0.5;
    e.spec.nonlinearity = 0.3;
    s.push_back(e);
  }
  {
    SuiteEntry e = regress("pol", 1500, 24, 302);
    e.kind = SuiteEntry::Kind::Piecewise;
    e.noise = 0.3;
    e.n_pieces = 24;
    s.push_back(e);
  }
  {
    auto e = regress("houses", 2064, 8, 303);
    e.spec.label_noise = 0.35;
    e.spec.nonlinearity = 0.5;
    s.push_back(e);
  }
  {
    auto e = regress("house-16h", 2278, 16, 304);
    e.spec.label_noise = 0.6;
    e.spec.nonlinearity = 0.6;
    s.push_back(e);
  }
  {
    SuiteEntry e = regress("fried", 2038, 10, 305);
    e.kind = SuiteEntry::Kind::Friedman1;
    e.noise = 1.0;
    s.push_back(e);
  }
  {
    SuiteEntry e = regress("mv", 4077, 10, 306);
    e.kind = SuiteEntry::Kind::Piecewise;
    e.noise = 0.15;
    e.n_pieces = 40;
    s.push_back(e);
  }
  {
    auto e = regress("poker", 21000, 10, 307);
    e.spec.nonlinearity = 1.0;
    e.spec.label_noise = 0.2;
    s.push_back(e);
  }
  {
    auto e = regress("bng-pbc", 36000, 18, 308);
    e.spec.label_noise = 0.45;
    e.spec.nonlinearity = 0.5;
    s.push_back(e);
  }

  return s;
}

}  // namespace

const std::vector<SuiteEntry>& benchmark_suite() {
  static const std::vector<SuiteEntry> suite = build_suite();
  return suite;
}

std::vector<SuiteEntry> suite_group(SuiteGroup group) {
  std::vector<SuiteEntry> out;
  for (const auto& e : benchmark_suite()) {
    if (e.group == group) out.push_back(e);
  }
  return out;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto& e : benchmark_suite()) {
    if (e.name == name) return e;
  }
  throw InvalidArgument("unknown suite dataset '" + name + "'");
}

Dataset make_suite_dataset(const SuiteEntry& entry, double row_scale) {
  FLAML_REQUIRE(row_scale > 0.0, "row_scale must be positive");
  std::size_t rows = static_cast<std::size_t>(std::max(
      200L, std::lround(static_cast<double>(entry.spec.n_rows) * row_scale)));
  switch (entry.kind) {
    case SuiteEntry::Kind::Friedman1:
      return make_friedman1(rows, entry.spec.n_features, entry.noise, entry.spec.seed);
    case SuiteEntry::Kind::Piecewise:
      return make_piecewise(rows, entry.spec.n_features, entry.n_pieces, entry.noise,
                            entry.spec.seed);
    case SuiteEntry::Kind::Spec: {
      SyntheticSpec spec = entry.spec;
      spec.n_rows = rows;
      return make_synthetic(spec);
    }
  }
  throw InternalError("unreachable suite kind");
}

}  // namespace flaml
