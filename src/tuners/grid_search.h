// Randomized grid search (the H2O AutoML analogue's inner strategy).
//
// Each numeric parameter is discretized into `points_per_dim` values in
// normalized space (log-aware through ConfigSpace); categorical parameters
// contribute all their categories. Grid cells are visited in random order
// without repetition.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/rng.h"
#include "tuners/config_space.h"

namespace flaml {

class RandomizedGridSearch {
 public:
  RandomizedGridSearch(const ConfigSpace& space, std::uint64_t seed,
                       int points_per_dim = 5, bool start_from_default = true);

  // Next unvisited grid cell (uniformly at random); after the grid is
  // exhausted falls back to uniform random samples.
  Config ask();
  void tell(const Config& config, double error);

  bool exhausted() const { return visited_.size() >= grid_size_; }
  const Config& best_config() const { return best_config_; }
  double best_error() const { return best_error_; }
  bool has_best() const { return has_best_; }

 private:
  const ConfigSpace* space_;
  Rng rng_;
  int points_per_dim_;
  std::size_t grid_size_ = 1;
  std::vector<int> dims_;  // grid resolution per parameter
  std::unordered_set<std::uint64_t> visited_;
  bool first_ = true;
  Config best_config_;
  double best_error_ = 0.0;
  bool has_best_ = false;
};

}  // namespace flaml
