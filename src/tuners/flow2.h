// FLOW2: frugal randomized direct search (Wu, Wang & Huang 2020; paper
// §4.2 "Step 2").
//
// The search walks in the normalized [0,1]^d space of a ConfigSpace:
//   * start from the LOW-COST initial configuration,
//   * at each iteration sample a random direction u on the unit sphere and
//     propose incumbent + step·u; if that does not improve, propose the
//     opposite direction incumbent − step·u,
//   * move the incumbent on improvement,
//   * after more than `2^(d-1)` consecutive non-improving iterations shrink
//     the step by the reduction ratio (total iterations since restart over
//     iterations to reach the current best), until the step reaches its
//     lower bound — then the search has CONVERGED,
//   * restart() re-seeds the walk from a random point (used by the
//     controller to escape local optima; it also resets the sample size).
//
// Step-size adaptation and convergence bookkeeping are gated behind
// set_adaptation(true): the paper only adapts once the learner has reached
// the full training-data size. The tuner is comparison-based: only the
// relative order of errors matters, which is what allows the sample-size
// coupling in the AutoML layer.
#pragma once

#include <limits>
#include <optional>

#include "common/rng.h"
#include "observe/trace.h"
#include "tuners/config_space.h"

namespace flaml {

struct Flow2Options {
  // Initial step = step_scale * sqrt(d) in normalized space.
  double step_scale = 0.1;
  // Consecutive non-improving iterations before a shrink: 2^(d-1), capped.
  int max_stall_cap = 512;
  // Hard floor for the step lower bound.
  double min_step = 1e-4;
};

class Flow2 {
 public:
  Flow2(const ConfigSpace& space, std::uint64_t seed, Flow2Options options = {});

  // Override the walk's starting configuration (default: the space's
  // low-cost initial config). Must be called before the first ask().
  void set_start_point(const Config& config);

  // Next configuration to evaluate. The first ask() returns the low-cost
  // initial config (or the restart point after restart()).
  Config ask();
  // Report the error of the config returned by the most recent ask().
  void tell(double error);

  bool converged() const { return converged_; }
  const Config& best_config() const { return best_config_; }
  // Best error of the CURRENT walk; +inf until the walk has a best (freshly
  // constructed, or after restart() and before the next tell()). Callers
  // must not treat the post-restart value as a real score — gate on
  // has_best() when a finite error is required.
  double best_error() const {
    return has_best_ ? best_error_ : std::numeric_limits<double>::infinity();
  }
  bool has_best() const { return has_best_; }
  double step() const { return step_; }
  int n_restarts() const { return n_restarts_; }

  // Gate step-size adaptation / convergence (enabled at full sample size).
  void set_adaptation(bool enabled) { adapt_ = enabled; }

  // Re-anchor the incumbent's error after it was re-evaluated at a larger
  // sample size (the controller keeps h fixed and doubles s; the old error
  // is no longer comparable).
  void update_incumbent_error(double error);

  // Restart from a fresh random point; clears incumbent, step and stall
  // statistics but keeps nothing else. best_config()/best_error() reset to
  // the new walk — best_error() reads +inf again until the next improvement
  // (the caller owns the global best).
  void restart();

  // Attach a tracer (off by default): the walk emits flow2_tell on every
  // tell(), flow2_shrink on a step reduction, flow2_converged when the step
  // hits its lower bound and flow2_restart on restart(). The controller
  // scopes the tracer with the learner name (Tracer::with).
  void set_tracer(observe::Tracer tracer) { tracer_ = std::move(tracer); }

  // Checkpoint/resume (src/resume): the complete walk state — incumbent,
  // step size, direction phase, stall/restart counters and the direction-
  // seed RNG stream — round-trips exactly, so a restored tuner continues
  // the walk bit-for-bit. from_json overwrites this tuner's state; the
  // tuner must have been constructed over the SAME ConfigSpace (dimension
  // and derived step bounds are cross-checked). Throws SerializationError
  // on any missing/ill-typed/inconsistent field.
  JsonValue to_json() const;
  void from_json(const JsonValue& value);

  const ConfigSpace& space() const { return *space_; }

 private:
  enum class Phase { Init, Forward, Backward };

  std::vector<double> propose_point(double sign) const;

  const ConfigSpace* space_;
  Flow2Options options_;
  Rng rng_;

  std::vector<double> incumbent_;   // normalized
  double incumbent_error_ = std::numeric_limits<double>::infinity();
  bool has_incumbent_ = false;

  Config best_config_;
  // +inf whenever !has_best_ (never 0.0 — a 0.0 sentinel reads as a perfect
  // score to anyone polling best_error() right after a restart).
  double best_error_ = std::numeric_limits<double>::infinity();
  bool has_best_ = false;

  Phase phase_ = Phase::Init;
  std::vector<double> direction_;   // current sphere direction
  std::vector<double> pending_;     // normalized point of the outstanding ask
  bool ask_outstanding_ = false;

  double step_ = 0.0;
  double step_lower_bound_ = 0.0;
  int stall_threshold_ = 1;
  int consecutive_no_improvement_ = 0;
  long iters_since_restart_ = 0;
  long best_iter_since_restart_ = 0;
  bool adapt_ = true;
  bool converged_ = false;
  int n_restarts_ = 0;
  observe::Tracer tracer_;
};

}  // namespace flaml
