#include "tuners/flow2.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "resume/serial_util.h"

namespace flaml {

namespace {

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "init";
    case 1: return "forward";
    default: return "backward";
  }
}

}  // namespace

Flow2::Flow2(const ConfigSpace& space, std::uint64_t seed, Flow2Options options)
    : space_(&space), options_(options), rng_(seed) {
  FLAML_REQUIRE(!space.empty(), "FLOW2 needs a non-empty search space");
  const double d = static_cast<double>(space.dim());
  step_ = options_.step_scale * std::sqrt(d);
  step_lower_bound_ =
      std::max(options_.min_step, space.step_lower_bound(options_.min_step) *
                                      options_.step_scale);
  step_ = std::max(step_, step_lower_bound_);
  // 2^(d-1) consecutive non-improvements trigger a shrink (capped so very
  // high-dimensional spaces still adapt).
  double threshold = std::pow(2.0, d - 1.0);
  stall_threshold_ = static_cast<int>(
      std::min<double>(options_.max_stall_cap, std::max(1.0, threshold)));
  incumbent_ = space.to_normalized(space.initial_config());
}

void Flow2::set_start_point(const Config& config) {
  FLAML_REQUIRE(!has_incumbent_ && iters_since_restart_ == 0 && !ask_outstanding_,
                "set_start_point must precede the first ask()");
  incumbent_ = space_->to_normalized(config);
}

std::vector<double> Flow2::propose_point(double sign) const {
  std::vector<double> z(incumbent_.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = clamp(incumbent_[i] + sign * step_ * direction_[i], 0.0, 1.0);
  }
  return z;
}

Config Flow2::ask() {
  FLAML_CHECK_MSG(!ask_outstanding_, "FLOW2: ask() called twice without tell()");
  ask_outstanding_ = true;
  switch (phase_) {
    case Phase::Init:
      pending_ = incumbent_;
      break;
    case Phase::Forward:
      direction_ = rng_.unit_sphere(static_cast<int>(space_->dim()));
      pending_ = propose_point(+1.0);
      break;
    case Phase::Backward:
      pending_ = propose_point(-1.0);
      break;
  }
  return space_->from_normalized(pending_);
}

void Flow2::tell(double error) {
  FLAML_CHECK_MSG(ask_outstanding_, "FLOW2: tell() without a pending ask()");
  ask_outstanding_ = false;
  ++iters_since_restart_;

  const bool first = !has_incumbent_;
  const bool improved = first || error < incumbent_error_;

  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("phase", JsonValue::make_string(phase_name(static_cast<int>(phase_))));
    fields.set("error", observe::json_error_field(error));
    fields.set("improved", JsonValue::make_bool(improved));
    fields.set("step", JsonValue::make_number(step_));
    fields.set("stall",
               JsonValue::make_number(improved ? 0.0
                                               : consecutive_no_improvement_ + 1.0));
    tracer_.emit("flow2_tell", std::move(fields));
  }

  if (improved) {
    incumbent_ = pending_;
    incumbent_error_ = error;
    has_incumbent_ = true;
    best_config_ = space_->from_normalized(incumbent_);
    best_error_ = error;
    has_best_ = true;
    best_iter_since_restart_ = iters_since_restart_;
    consecutive_no_improvement_ = 0;
    phase_ = Phase::Forward;
    return;
  }

  // Non-improving trial.
  if (phase_ == Phase::Forward) {
    // Try the opposite direction next.
    phase_ = Phase::Backward;
  } else {
    // Backward (or Init, impossible non-first) also failed: new direction.
    phase_ = Phase::Forward;
  }
  ++consecutive_no_improvement_;

  if (adapt_ && consecutive_no_improvement_ > stall_threshold_) {
    // Reduction ratio: total iterations since restart over iterations taken
    // to find the current best since restart (paper §4.2); always > 1.
    double ratio = static_cast<double>(iters_since_restart_) /
                   static_cast<double>(std::max<long>(1, best_iter_since_restart_));
    ratio = clamp(ratio, 1.1, 4.0);
    const double step_before = step_;
    step_ /= ratio;
    consecutive_no_improvement_ = 0;
    if (step_ <= step_lower_bound_) {
      step_ = step_lower_bound_;
      converged_ = true;
    }
    if (tracer_) {
      JsonValue fields = JsonValue::make_object();
      fields.set("step_before", JsonValue::make_number(step_before));
      fields.set("step_after", JsonValue::make_number(step_));
      fields.set("ratio", JsonValue::make_number(ratio));
      tracer_.emit("flow2_shrink", std::move(fields));
      if (converged_) {
        JsonValue conv = JsonValue::make_object();
        conv.set("step", JsonValue::make_number(step_));
        tracer_.emit("flow2_converged", std::move(conv));
      }
    }
  }
}

void Flow2::update_incumbent_error(double error) {
  FLAML_CHECK_MSG(has_incumbent_, "no incumbent to update");
  incumbent_error_ = error;
  best_error_ = error;
}

void Flow2::restart() {
  ++n_restarts_;
  std::vector<double> z(space_->dim());
  for (auto& v : z) v = rng_.uniform();
  incumbent_ = z;
  has_incumbent_ = false;
  has_best_ = false;
  // +inf, never 0.0: a caller reading best_error() between the restart and
  // the next improvement must see "no best yet", not a perfect score.
  best_error_ = std::numeric_limits<double>::infinity();
  incumbent_error_ = std::numeric_limits<double>::infinity();
  phase_ = Phase::Init;
  ask_outstanding_ = false;
  const double d = static_cast<double>(space_->dim());
  step_ = std::max(options_.step_scale * std::sqrt(d), step_lower_bound_);
  consecutive_no_improvement_ = 0;
  iters_since_restart_ = 0;
  best_iter_since_restart_ = 0;
  converged_ = false;
  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("n_restarts", JsonValue::make_number(n_restarts_));
    fields.set("step", JsonValue::make_number(step_));
    tracer_.emit("flow2_restart", std::move(fields));
  }
}

namespace {

JsonValue point_to_json(const std::vector<double>& z) {
  JsonValue out = JsonValue::make_array();
  for (double v : z) out.push(resume::json_double(v));
  return out;
}

// A normalized point of exactly `dim` coordinates in [0,1] (direction
// vectors relax the range: unit-sphere coordinates live in [-1,1]).
std::vector<double> point_from_json(const JsonValue& obj, const char* key,
                                    std::size_t dim, double lo, double hi) {
  const JsonValue& arr = resume::req_array(obj, key, dim);
  FLAML_PARSE_REQUIRE(arr.array.size() == dim,
                      "field '" << key << "' must have exactly " << dim
                                << " coordinates, got " << arr.array.size());
  std::vector<double> z(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const JsonValue& v = arr.array[i];
    FLAML_PARSE_REQUIRE(v.is_number() && std::isfinite(v.number) &&
                            v.number >= lo && v.number <= hi,
                        "field '" << key << "' coordinate " << i
                                  << " out of [" << lo << ", " << hi << "]");
    z[i] = v.number;
  }
  return z;
}

}  // namespace

JsonValue Flow2::to_json() const {
  JsonValue out = JsonValue::make_object();
  out.set("dim", resume::json_size(space_->dim()));
  out.set("rng", resume::json_rng(rng_));
  out.set("incumbent", point_to_json(incumbent_));
  out.set("incumbent_error", resume::json_double(incumbent_error_));
  out.set("has_incumbent", JsonValue::make_bool(has_incumbent_));
  out.set("best_config", resume::json_config(best_config_));
  out.set("best_error", resume::json_double(best_error_));
  out.set("has_best", JsonValue::make_bool(has_best_));
  out.set("phase", JsonValue::make_string(phase_name(static_cast<int>(phase_))));
  out.set("direction", point_to_json(direction_));
  out.set("pending", point_to_json(pending_));
  out.set("ask_outstanding", JsonValue::make_bool(ask_outstanding_));
  out.set("step", resume::json_double(step_));
  out.set("step_lower_bound", resume::json_double(step_lower_bound_));
  out.set("stall_threshold", JsonValue::make_number(stall_threshold_));
  out.set("consecutive_no_improvement",
          JsonValue::make_number(consecutive_no_improvement_));
  out.set("iters_since_restart",
          JsonValue::make_number(static_cast<double>(iters_since_restart_)));
  out.set("best_iter_since_restart",
          JsonValue::make_number(static_cast<double>(best_iter_since_restart_)));
  out.set("adapt", JsonValue::make_bool(adapt_));
  out.set("converged", JsonValue::make_bool(converged_));
  out.set("n_restarts", JsonValue::make_number(n_restarts_));
  return out;
}

void Flow2::from_json(const JsonValue& value) {
  const std::size_t dim = space_->dim();
  // The walk state only makes sense over the space this tuner was built
  // for; a dimension or step-bound mismatch means the checkpoint belongs to
  // a different search space (e.g. a different learner or dataset size).
  FLAML_PARSE_REQUIRE(resume::req_size(value, "dim", 1 << 20) == dim,
                      "flow2 state dimension does not match the search space");
  const double saved_lower = resume::req_finite(value, "step_lower_bound");
  FLAML_PARSE_REQUIRE(saved_lower == step_lower_bound_,
                      "flow2 step_lower_bound mismatch (different space/options)");
  const int saved_stall = static_cast<int>(
      resume::req_int(value, "stall_threshold", 1, options_.max_stall_cap));
  FLAML_PARSE_REQUIRE(saved_stall == stall_threshold_,
                      "flow2 stall_threshold mismatch (different space/options)");

  resume::restore_rng(rng_, value, "rng");
  incumbent_ = point_from_json(value, "incumbent", dim, 0.0, 1.0);
  incumbent_error_ = resume::req_double(value, "incumbent_error");
  has_incumbent_ = resume::req_bool(value, "has_incumbent");
  best_config_ = resume::req_config(value, "best_config");
  for (const auto& [name, v] : best_config_) {
    FLAML_PARSE_REQUIRE(space_->contains(name),
                        "flow2 best_config parameter '" << name
                                                        << "' not in the space");
    FLAML_PARSE_REQUIRE(std::isfinite(v),
                        "flow2 best_config value for '" << name
                                                        << "' must be finite");
  }
  best_error_ = resume::req_double(value, "best_error");
  has_best_ = resume::req_bool(value, "has_best");
  FLAML_PARSE_REQUIRE(has_best_ == std::isfinite(best_error_),
                      "flow2 best_error must be finite exactly when has_best");

  const std::string& phase = resume::req_string(value, "phase");
  if (phase == "init") {
    phase_ = Phase::Init;
  } else if (phase == "forward") {
    phase_ = Phase::Forward;
  } else if (phase == "backward") {
    phase_ = Phase::Backward;
  } else {
    FLAML_PARSE_REQUIRE(false, "unknown flow2 phase '" << phase << "'");
  }

  // Direction / pending are empty before the first sphere draw and `dim`
  // coordinates afterwards.
  const std::size_t dir_size = resume::req_array(value, "direction", dim).array.size();
  direction_ = dir_size == 0 ? std::vector<double>()
                             : point_from_json(value, "direction", dim, -1.0, 1.0);
  const std::size_t pending_size =
      resume::req_array(value, "pending", dim).array.size();
  pending_ = pending_size == 0 ? std::vector<double>()
                               : point_from_json(value, "pending", dim, 0.0, 1.0);
  ask_outstanding_ = resume::req_bool(value, "ask_outstanding");
  FLAML_PARSE_REQUIRE(!ask_outstanding_ || pending_size == dim,
                      "flow2 outstanding ask without a pending point");

  step_ = resume::req_finite(value, "step");
  FLAML_PARSE_REQUIRE(step_ > 0.0, "flow2 step must be positive");
  // Not capped by stall_threshold_: with adaptation off (sub-full sample
  // sizes) the stall counter grows without triggering a shrink.
  consecutive_no_improvement_ = static_cast<int>(
      resume::req_int(value, "consecutive_no_improvement", 0, 1 << 30));
  iters_since_restart_ = static_cast<long>(
      resume::req_int(value, "iters_since_restart", 0, 1LL << 40));
  best_iter_since_restart_ = static_cast<long>(
      resume::req_int(value, "best_iter_since_restart", 0, 1LL << 40));
  FLAML_PARSE_REQUIRE(best_iter_since_restart_ <= iters_since_restart_,
                      "flow2 best iteration is after the iteration counter");
  adapt_ = resume::req_bool(value, "adapt");
  converged_ = resume::req_bool(value, "converged");
  n_restarts_ = static_cast<int>(resume::req_int(value, "n_restarts", 0, 1 << 30));
}

}  // namespace flaml
