#include "tuners/flow2.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace flaml {

namespace {

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "init";
    case 1: return "forward";
    default: return "backward";
  }
}

}  // namespace

Flow2::Flow2(const ConfigSpace& space, std::uint64_t seed, Flow2Options options)
    : space_(&space), options_(options), rng_(seed) {
  FLAML_REQUIRE(!space.empty(), "FLOW2 needs a non-empty search space");
  const double d = static_cast<double>(space.dim());
  step_ = options_.step_scale * std::sqrt(d);
  step_lower_bound_ =
      std::max(options_.min_step, space.step_lower_bound(options_.min_step) *
                                      options_.step_scale);
  step_ = std::max(step_, step_lower_bound_);
  // 2^(d-1) consecutive non-improvements trigger a shrink (capped so very
  // high-dimensional spaces still adapt).
  double threshold = std::pow(2.0, d - 1.0);
  stall_threshold_ = static_cast<int>(
      std::min<double>(options_.max_stall_cap, std::max(1.0, threshold)));
  incumbent_ = space.to_normalized(space.initial_config());
}

void Flow2::set_start_point(const Config& config) {
  FLAML_REQUIRE(!has_incumbent_ && iters_since_restart_ == 0 && !ask_outstanding_,
                "set_start_point must precede the first ask()");
  incumbent_ = space_->to_normalized(config);
}

std::vector<double> Flow2::propose_point(double sign) const {
  std::vector<double> z(incumbent_.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = clamp(incumbent_[i] + sign * step_ * direction_[i], 0.0, 1.0);
  }
  return z;
}

Config Flow2::ask() {
  FLAML_CHECK_MSG(!ask_outstanding_, "FLOW2: ask() called twice without tell()");
  ask_outstanding_ = true;
  switch (phase_) {
    case Phase::Init:
      pending_ = incumbent_;
      break;
    case Phase::Forward:
      direction_ = rng_.unit_sphere(static_cast<int>(space_->dim()));
      pending_ = propose_point(+1.0);
      break;
    case Phase::Backward:
      pending_ = propose_point(-1.0);
      break;
  }
  return space_->from_normalized(pending_);
}

void Flow2::tell(double error) {
  FLAML_CHECK_MSG(ask_outstanding_, "FLOW2: tell() without a pending ask()");
  ask_outstanding_ = false;
  ++iters_since_restart_;

  const bool first = !has_incumbent_;
  const bool improved = first || error < incumbent_error_;

  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("phase", JsonValue::make_string(phase_name(static_cast<int>(phase_))));
    fields.set("error", observe::json_error_field(error));
    fields.set("improved", JsonValue::make_bool(improved));
    fields.set("step", JsonValue::make_number(step_));
    fields.set("stall",
               JsonValue::make_number(improved ? 0.0
                                               : consecutive_no_improvement_ + 1.0));
    tracer_.emit("flow2_tell", std::move(fields));
  }

  if (improved) {
    incumbent_ = pending_;
    incumbent_error_ = error;
    has_incumbent_ = true;
    best_config_ = space_->from_normalized(incumbent_);
    best_error_ = error;
    has_best_ = true;
    best_iter_since_restart_ = iters_since_restart_;
    consecutive_no_improvement_ = 0;
    phase_ = Phase::Forward;
    return;
  }

  // Non-improving trial.
  if (phase_ == Phase::Forward) {
    // Try the opposite direction next.
    phase_ = Phase::Backward;
  } else {
    // Backward (or Init, impossible non-first) also failed: new direction.
    phase_ = Phase::Forward;
  }
  ++consecutive_no_improvement_;

  if (adapt_ && consecutive_no_improvement_ > stall_threshold_) {
    // Reduction ratio: total iterations since restart over iterations taken
    // to find the current best since restart (paper §4.2); always > 1.
    double ratio = static_cast<double>(iters_since_restart_) /
                   static_cast<double>(std::max<long>(1, best_iter_since_restart_));
    ratio = clamp(ratio, 1.1, 4.0);
    const double step_before = step_;
    step_ /= ratio;
    consecutive_no_improvement_ = 0;
    if (step_ <= step_lower_bound_) {
      step_ = step_lower_bound_;
      converged_ = true;
    }
    if (tracer_) {
      JsonValue fields = JsonValue::make_object();
      fields.set("step_before", JsonValue::make_number(step_before));
      fields.set("step_after", JsonValue::make_number(step_));
      fields.set("ratio", JsonValue::make_number(ratio));
      tracer_.emit("flow2_shrink", std::move(fields));
      if (converged_) {
        JsonValue conv = JsonValue::make_object();
        conv.set("step", JsonValue::make_number(step_));
        tracer_.emit("flow2_converged", std::move(conv));
      }
    }
  }
}

void Flow2::update_incumbent_error(double error) {
  FLAML_CHECK_MSG(has_incumbent_, "no incumbent to update");
  incumbent_error_ = error;
  best_error_ = error;
}

void Flow2::restart() {
  ++n_restarts_;
  std::vector<double> z(space_->dim());
  for (auto& v : z) v = rng_.uniform();
  incumbent_ = z;
  has_incumbent_ = false;
  has_best_ = false;
  // +inf, never 0.0: a caller reading best_error() between the restart and
  // the next improvement must see "no best yet", not a perfect score.
  best_error_ = std::numeric_limits<double>::infinity();
  incumbent_error_ = std::numeric_limits<double>::infinity();
  phase_ = Phase::Init;
  ask_outstanding_ = false;
  const double d = static_cast<double>(space_->dim());
  step_ = std::max(options_.step_scale * std::sqrt(d), step_lower_bound_);
  consecutive_no_improvement_ = 0;
  iters_since_restart_ = 0;
  best_iter_since_restart_ = 0;
  converged_ = false;
  if (tracer_) {
    JsonValue fields = JsonValue::make_object();
    fields.set("n_restarts", JsonValue::make_number(n_restarts_));
    fields.set("step", JsonValue::make_number(step_));
    tracer_.emit("flow2_restart", std::move(fields));
  }
}

}  // namespace flaml
