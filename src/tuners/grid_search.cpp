#include "tuners/grid_search.h"

#include <algorithm>

#include "common/error.h"

namespace flaml {

RandomizedGridSearch::RandomizedGridSearch(const ConfigSpace& space,
                                           std::uint64_t seed, int points_per_dim,
                                           bool start_from_default)
    : space_(&space),
      rng_(seed),
      points_per_dim_(points_per_dim),
      first_(start_from_default) {
  FLAML_REQUIRE(!space.empty(), "grid search needs a non-empty space");
  FLAML_REQUIRE(points_per_dim >= 2, "points_per_dim must be >= 2");
  dims_.reserve(space.dim());
  for (const auto& p : space.params()) {
    int k = p.type == ParamDomain::Type::Categorical
                ? static_cast<int>(p.categories.size())
                : points_per_dim_;
    dims_.push_back(k);
    // Cap the enumerable grid size to keep the visited set bounded.
    if (grid_size_ < (std::size_t{1} << 40)) grid_size_ *= static_cast<std::size_t>(k);
  }
}

Config RandomizedGridSearch::ask() {
  if (first_) {
    first_ = false;
    return space_->initial_config();
  }
  if (exhausted()) return space_->random_config(rng_);

  // Rejection-sample an unvisited cell (cheap: the grid is large relative
  // to the number of trials an AutoML budget allows).
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::uint64_t key = 0;
    std::vector<double> z(space_->dim());
    for (std::size_t j = 0; j < space_->dim(); ++j) {
      int cell = static_cast<int>(rng_.uniform_index(static_cast<std::uint64_t>(dims_[j])));
      key = key * 1000003ULL + static_cast<std::uint64_t>(cell);
      z[j] = (static_cast<double>(cell) + 0.5) / static_cast<double>(dims_[j]);
    }
    if (visited_.insert(key).second) return space_->from_normalized(z);
  }
  return space_->random_config(rng_);
}

void RandomizedGridSearch::tell(const Config& config, double error) {
  if (!has_best_ || error < best_error_) {
    best_config_ = config;
    best_error_ = error;
    has_best_ = true;
  }
}

}  // namespace flaml
