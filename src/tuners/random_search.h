// Uniform random search over a ConfigSpace (the cloud-automl analogue's
// inner strategy and a common sanity baseline).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "tuners/config_space.h"

namespace flaml {

class RandomSearch {
 public:
  // When start_from_default, the first proposal is the space's (low-cost)
  // initial config; otherwise every proposal is a uniform sample — the
  // faithful model of external AutoML services that do not know this
  // library's cheap starting points.
  RandomSearch(const ConfigSpace& space, std::uint64_t seed,
               bool start_from_default = true);

  Config ask();
  void tell(const Config& config, double error);

  const Config& best_config() const { return best_config_; }
  double best_error() const { return best_error_; }
  bool has_best() const { return has_best_; }

 private:
  const ConfigSpace* space_;
  Rng rng_;
  bool first_ = true;
  Config best_config_;
  double best_error_ = 0.0;
  bool has_best_ = false;
};

}  // namespace flaml
