#include "tuners/hyperband.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flaml {

BohbScheduler::BohbScheduler(const ConfigSpace& space, std::size_t min_fidelity,
                             std::size_t max_fidelity, std::uint64_t seed,
                             HyperbandOptions options)
    : space_(&space),
      options_(options),
      rng_(seed),
      tpe_(space, seed ^ 0xb0b5ULL),
      min_fidelity_(min_fidelity),
      max_fidelity_(max_fidelity) {
  FLAML_REQUIRE(options_.eta > 1.0, "eta must be > 1");
  FLAML_REQUIRE(min_fidelity >= 1 && min_fidelity <= max_fidelity,
                "bad fidelity range");
  s_max_ = static_cast<int>(std::floor(
      std::log(static_cast<double>(max_fidelity) / static_cast<double>(min_fidelity)) /
      std::log(options_.eta)));
  bracket_ = s_max_;
  start_bracket();
}

void BohbScheduler::start_bracket() {
  const double eta = options_.eta;
  const int s = bracket_;
  const int n = static_cast<int>(std::ceil(static_cast<double>(s_max_ + 1) /
                                           static_cast<double>(s + 1) *
                                           std::pow(eta, s)));
  fidelity_ = std::max(
      min_fidelity_,
      static_cast<std::size_t>(std::lround(static_cast<double>(max_fidelity_) *
                                           std::pow(eta, -s))));
  rung_ = 0;
  next_slot_ = 0;
  rung_entries_.clear();
  rung_entries_.resize(static_cast<std::size_t>(std::max(1, n)));
  for (auto& e : rung_entries_) {
    e.config = options_.model_based ? tpe_.ask() : space_->random_config(rng_);
  }
}

void BohbScheduler::advance_rung() {
  const double eta = options_.eta;
  // Promote the top 1/eta finished configs to the next rung.
  std::vector<Entry> done;
  for (auto& e : rung_entries_) {
    if (e.done) done.push_back(std::move(e));
  }
  std::size_t keep = static_cast<std::size_t>(
      std::floor(static_cast<double>(done.size()) / eta));
  if (keep == 0 || fidelity_ >= max_fidelity_) {
    // Bracket finished; move to the next one (cycled).
    bracket_ = bracket_ == 0 ? s_max_ : bracket_ - 1;
    start_bracket();
    return;
  }
  std::sort(done.begin(), done.end(),
            [](const Entry& a, const Entry& b) { return a.error < b.error; });
  done.resize(keep);
  for (auto& e : done) e.done = false;
  rung_entries_ = std::move(done);
  fidelity_ = std::min(max_fidelity_,
                       static_cast<std::size_t>(std::lround(
                           static_cast<double>(fidelity_) * eta)));
  ++rung_;
  next_slot_ = 0;
}

BohbScheduler::Assignment BohbScheduler::next() {
  while (next_slot_ >= rung_entries_.size()) advance_rung();
  Assignment a;
  a.config = rung_entries_[next_slot_].config;
  a.fidelity = fidelity_;
  a.bracket = bracket_;
  a.rung = rung_;
  a.slot = next_slot_;
  ++next_slot_;
  return a;
}

void BohbScheduler::report(const Assignment& assignment, double error) {
  // Stale reports from a previous rung/bracket are ignored.
  if (assignment.bracket != bracket_ || assignment.rung != rung_ ||
      assignment.slot >= rung_entries_.size()) {
    return;
  }
  Entry& e = rung_entries_[assignment.slot];
  e.error = error;
  e.done = true;
  if (assignment.fidelity >= max_fidelity_) {
    // Full-fidelity observation: feed the TPE model and the global best.
    tpe_.tell(assignment.config, error);
    if (!has_best_ || error < best_error_) {
      best_config_ = assignment.config;
      best_error_ = error;
      has_best_ = true;
    }
  }
}

}  // namespace flaml
