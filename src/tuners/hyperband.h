// Hyperband successive-halving scheduler with optional TPE proposals
// (= BOHB, the HpBandSter analogue; Falkner et al. 2018, Li et al. 2017).
//
// Fidelity is the training sample size, matching how HpBandSter is used in
// the paper's comparison (same search space and resampling as FLAML).
// Brackets are generated in the classic geometry: bracket s starts
// n = ceil((s_max+1)/(s+1)) * eta^s configs at fidelity max_f * eta^-s and
// promotes the top 1/eta at each rung. Brackets run sequentially and cycle
// until the caller's budget ends.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "tuners/config_space.h"
#include "tuners/tpe.h"

namespace flaml {

struct HyperbandOptions {
  double eta = 3.0;
  // Use TPE (trained on full-fidelity observations) for new proposals; when
  // false, proposals are uniform random (plain Hyperband).
  bool model_based = true;
};

class BohbScheduler {
 public:
  struct Assignment {
    Config config;
    std::size_t fidelity = 0;  // training sample size for this evaluation
    int bracket = 0;
    int rung = 0;
    std::size_t slot = 0;  // internal index; pass back to report()
  };

  BohbScheduler(const ConfigSpace& space, std::size_t min_fidelity,
                std::size_t max_fidelity, std::uint64_t seed,
                HyperbandOptions options = {});

  // Next evaluation to run. Never exhausts: brackets repeat indefinitely.
  Assignment next();
  // Report the validation error of an assignment returned by next().
  void report(const Assignment& assignment, double error);

  const Config& best_config() const { return best_config_; }
  double best_error() const { return best_error_; }
  bool has_best() const { return has_best_; }

 private:
  struct Entry {
    Config config;
    double error = 0.0;
    bool done = false;
  };

  void start_bracket();
  void advance_rung();

  const ConfigSpace* space_;
  HyperbandOptions options_;
  Rng rng_;
  Tpe tpe_;
  std::size_t min_fidelity_;
  std::size_t max_fidelity_;
  int s_max_ = 0;

  int bracket_ = 0;        // current bracket index s (counts down)
  int rung_ = 0;           // rung within the bracket
  std::size_t fidelity_ = 0;
  std::vector<Entry> rung_entries_;
  std::size_t next_slot_ = 0;

  Config best_config_;
  double best_error_ = 0.0;
  bool has_best_ = false;
};

}  // namespace flaml
