#include "tuners/config_space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"

namespace flaml {

namespace {

void check_range(const std::string& name, double lo, double hi, double init,
                 bool log_scale) {
  FLAML_REQUIRE(lo < hi, "param '" << name << "': lo must be < hi");
  FLAML_REQUIRE(init >= lo && init <= hi,
                "param '" << name << "': init " << init << " outside [" << lo << ", "
                          << hi << "]");
  if (log_scale) {
    FLAML_REQUIRE(lo > 0.0, "param '" << name << "': log scale needs lo > 0");
  }
}

}  // namespace

ConfigSpace& ConfigSpace::add_int(const std::string& name, double lo, double hi,
                                  double init, bool log_scale, bool cost_related) {
  check_range(name, lo, hi, init, log_scale);
  FLAML_REQUIRE(!contains(name), "duplicate param '" << name << "'");
  ParamDomain p;
  p.name = name;
  p.type = ParamDomain::Type::Int;
  p.lo = std::floor(lo);
  p.hi = std::floor(hi);
  p.log_scale = log_scale;
  p.init = std::floor(init);
  p.cost_related = cost_related;
  index_[name] = params_.size();
  params_.push_back(std::move(p));
  return *this;
}

ConfigSpace& ConfigSpace::add_float(const std::string& name, double lo, double hi,
                                    double init, bool log_scale) {
  check_range(name, lo, hi, init, log_scale);
  FLAML_REQUIRE(!contains(name), "duplicate param '" << name << "'");
  ParamDomain p;
  p.name = name;
  p.type = ParamDomain::Type::Float;
  p.lo = lo;
  p.hi = hi;
  p.log_scale = log_scale;
  p.init = init;
  index_[name] = params_.size();
  params_.push_back(std::move(p));
  return *this;
}

ConfigSpace& ConfigSpace::add_categorical(const std::string& name,
                                          std::vector<std::string> categories,
                                          int init) {
  FLAML_REQUIRE(!contains(name), "duplicate param '" << name << "'");
  FLAML_REQUIRE(categories.size() >= 2, "categorical param needs >= 2 categories");
  FLAML_REQUIRE(init >= 0 && init < static_cast<int>(categories.size()),
                "init category out of range");
  ParamDomain p;
  p.name = name;
  p.type = ParamDomain::Type::Categorical;
  p.lo = 0.0;
  p.hi = static_cast<double>(categories.size() - 1);
  p.init = static_cast<double>(init);
  p.categories = std::move(categories);
  index_[name] = params_.size();
  params_.push_back(std::move(p));
  return *this;
}

std::size_t ConfigSpace::index_of(const std::string& name) const {
  auto it = index_.find(name);
  FLAML_REQUIRE(it != index_.end(), "unknown param '" << name << "'");
  return it->second;
}

bool ConfigSpace::contains(const std::string& name) const {
  return index_.count(name) > 0;
}

Config ConfigSpace::initial_config() const {
  Config c;
  for (const auto& p : params_) c[p.name] = p.init;
  return c;
}

Config ConfigSpace::random_config(Rng& rng) const {
  std::vector<double> z(params_.size());
  for (auto& v : z) v = rng.uniform();
  return from_normalized(z);
}

double ConfigSpace::normalize_value(const ParamDomain& p, double value) const {
  if (p.type == ParamDomain::Type::Categorical) {
    // Bucket midpoint: category c of K maps to (c + 0.5) / K.
    double k = static_cast<double>(p.categories.size());
    return (clamp(value, 0.0, k - 1.0) + 0.5) / k;
  }
  double v = clamp(value, p.lo, p.hi);
  if (p.log_scale) {
    return (std::log(v) - std::log(p.lo)) / (std::log(p.hi) - std::log(p.lo));
  }
  return (v - p.lo) / (p.hi - p.lo);
}

double ConfigSpace::denormalize_value(const ParamDomain& p, double z) const {
  z = clamp(z, 0.0, 1.0);
  if (p.type == ParamDomain::Type::Categorical) {
    double k = static_cast<double>(p.categories.size());
    int c = std::min(static_cast<int>(z * k), static_cast<int>(k) - 1);
    return static_cast<double>(c);
  }
  double v;
  if (p.log_scale) {
    v = std::exp(std::log(p.lo) + z * (std::log(p.hi) - std::log(p.lo)));
  } else {
    v = p.lo + z * (p.hi - p.lo);
  }
  if (p.type == ParamDomain::Type::Int) v = std::round(v);
  // exp/round can land one ulp outside the domain at the endpoints.
  return clamp(v, p.lo, p.hi);
}

std::vector<double> ConfigSpace::to_normalized(const Config& config) const {
  std::vector<double> z(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto it = config.find(params_[i].name);
    FLAML_REQUIRE(it != config.end(), "config missing param '" << params_[i].name << "'");
    z[i] = normalize_value(params_[i], it->second);
  }
  return z;
}

Config ConfigSpace::from_normalized(const std::vector<double>& z) const {
  FLAML_REQUIRE(z.size() == params_.size(), "normalized point has wrong dimension");
  Config c;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    c[params_[i].name] = denormalize_value(params_[i], z[i]);
  }
  return c;
}

double ConfigSpace::step_lower_bound(double fallback) const {
  double bound = fallback;
  bool found = false;
  for (const auto& p : params_) {
    if (!p.cost_related || p.type != ParamDomain::Type::Int) continue;
    // Normalized distance that moves the parameter from init to init+1.
    double step;
    if (p.log_scale) {
      step = std::log(1.0 + 1.0 / std::max(p.init, 1.0)) /
             (std::log(p.hi) - std::log(p.lo));
    } else {
      step = 1.0 / (p.hi - p.lo);
    }
    if (!found || step < bound) {
      bound = step;
      found = true;
    }
  }
  // The bound is for one coordinate; scale to the sphere step length.
  return found ? bound * std::sqrt(static_cast<double>(dim())) : fallback;
}

std::string config_to_string(const Config& config, const ConfigSpace& space) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : space.params()) {
    auto it = config.find(p.name);
    if (it == config.end()) continue;
    if (!first) os << ", ";
    first = false;
    os << p.name << "=";
    if (p.type == ParamDomain::Type::Categorical) {
      os << p.categories[static_cast<std::size_t>(it->second)];
    } else if (p.type == ParamDomain::Type::Int) {
      os << static_cast<long long>(it->second);
    } else {
      os << it->second;
    }
  }
  return os.str();
}

}  // namespace flaml
