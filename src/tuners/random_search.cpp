#include "tuners/random_search.h"

#include "common/error.h"

namespace flaml {

RandomSearch::RandomSearch(const ConfigSpace& space, std::uint64_t seed,
                           bool start_from_default)
    : space_(&space), rng_(seed), first_(start_from_default) {
  FLAML_REQUIRE(!space.empty(), "random search needs a non-empty space");
}

Config RandomSearch::ask() {
  if (first_) {
    first_ = false;
    return space_->initial_config();
  }
  return space_->random_config(rng_);
}

void RandomSearch::tell(const Config& config, double error) {
  if (!has_best_ || error < best_error_) {
    best_config_ = config;
    best_error_ = error;
    has_best_ = true;
  }
}

}  // namespace flaml
