// Evolutionary configuration search (the TPOT analogue's inner strategy).
//
// Maintains a bounded population of evaluated configurations; children are
// produced by tournament selection, uniform crossover in normalized space
// and per-dimension Gaussian mutation. No pipeline construction — the
// paper's comparison is about search dynamics over the same space.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tuners/config_space.h"

namespace flaml {

struct EvolutionOptions {
  int population_size = 20;
  int tournament_size = 3;
  double mutation_rate = 0.3;     // per-dimension probability
  double mutation_sigma = 0.15;   // normalized-space noise
  double crossover_rate = 0.7;
};

class EvolutionSearch {
 public:
  EvolutionSearch(const ConfigSpace& space, std::uint64_t seed,
                  EvolutionOptions options = {}, bool start_from_default = true);

  // Random configs until the population is full, then evolved children.
  Config ask();
  void tell(const Config& config, double error);

  const Config& best_config() const { return best_config_; }
  double best_error() const { return best_error_; }
  bool has_best() const { return has_best_; }

 private:
  std::size_t tournament() const;

  const ConfigSpace* space_;
  EvolutionOptions options_;
  mutable Rng rng_;
  std::vector<std::vector<double>> population_;  // normalized
  std::vector<double> fitness_;                  // error, lower better
  bool first_ = true;
  Config best_config_;
  double best_error_ = 0.0;
  bool has_best_ = false;
};

}  // namespace flaml
