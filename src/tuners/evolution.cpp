#include "tuners/evolution.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace flaml {

EvolutionSearch::EvolutionSearch(const ConfigSpace& space, std::uint64_t seed,
                                 EvolutionOptions options, bool start_from_default)
    : space_(&space), options_(options), rng_(seed), first_(start_from_default) {
  FLAML_REQUIRE(!space.empty(), "evolution needs a non-empty space");
  FLAML_REQUIRE(options_.population_size >= 4, "population too small");
}

std::size_t EvolutionSearch::tournament() const {
  std::size_t best = rng_.uniform_index(population_.size());
  for (int t = 1; t < options_.tournament_size; ++t) {
    std::size_t challenger = rng_.uniform_index(population_.size());
    if (fitness_[challenger] < fitness_[best]) best = challenger;
  }
  return best;
}

Config EvolutionSearch::ask() {
  if (first_) {
    first_ = false;
    return space_->initial_config();
  }
  if (population_.size() < static_cast<std::size_t>(options_.population_size)) {
    return space_->random_config(rng_);
  }
  // Parents via tournament selection.
  const auto& a = population_[tournament()];
  const auto& b = population_[tournament()];
  std::vector<double> child(space_->dim());
  const bool crossover = rng_.bernoulli(options_.crossover_rate);
  for (std::size_t j = 0; j < child.size(); ++j) {
    child[j] = crossover ? (rng_.bernoulli(0.5) ? a[j] : b[j]) : a[j];
    if (rng_.bernoulli(options_.mutation_rate)) {
      child[j] = clamp(child[j] + rng_.normal() * options_.mutation_sigma, 0.0, 1.0);
    }
  }
  return space_->from_normalized(child);
}

void EvolutionSearch::tell(const Config& config, double error) {
  if (!has_best_ || error < best_error_) {
    best_config_ = config;
    best_error_ = error;
    has_best_ = true;
  }
  population_.push_back(space_->to_normalized(config));
  fitness_.push_back(error);
  if (population_.size() > 2 * static_cast<std::size_t>(options_.population_size)) {
    // Cull to the best population_size individuals.
    std::vector<std::size_t> order(population_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return fitness_[x] < fitness_[y]; });
    std::vector<std::vector<double>> new_pop;
    std::vector<double> new_fit;
    for (int i = 0; i < options_.population_size; ++i) {
      new_pop.push_back(std::move(population_[order[static_cast<std::size_t>(i)]]));
      new_fit.push_back(fitness_[order[static_cast<std::size_t>(i)]]);
    }
    population_ = std::move(new_pop);
    fitness_ = std::move(new_fit);
  }
}

}  // namespace flaml
