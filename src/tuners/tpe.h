// Tree-structured Parzen Estimator (Bergstra et al. 2011), the surrogate
// used by our auto-sklearn-analogue baseline and by BOHB's model-based
// proposals.
//
// Observations are kept in normalized space. After a random startup phase
// the observations are split into "good" (top gamma fraction by error) and
// "bad"; candidates are sampled around good points and ranked by the
// density ratio l(x)/g(x) estimated with per-dimension Gaussian KDEs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tuners/config_space.h"

namespace flaml {

struct TpeOptions {
  int n_startup = 10;       // random proposals before the model kicks in
  int n_candidates = 24;    // candidates scored per ask
  double gamma = 0.25;      // fraction of observations considered "good"
  double min_bandwidth = 0.03;
};

class Tpe {
 public:
  Tpe(const ConfigSpace& space, std::uint64_t seed, TpeOptions options = {});

  // Propose a configuration (no pending-ask restriction).
  Config ask();
  // Record an observation (any configuration, not only asked ones).
  void tell(const Config& config, double error);

  std::size_t n_observations() const { return points_.size(); }
  const ConfigSpace& space() const { return *space_; }

 private:
  double kde_log_density(const std::vector<std::size_t>& members,
                         const std::vector<double>& z) const;

  const ConfigSpace* space_;
  TpeOptions options_;
  Rng rng_;
  std::vector<std::vector<double>> points_;  // normalized
  std::vector<double> errors_;
};

}  // namespace flaml
