// Hyperparameter search-space definition.
//
// A ConfigSpace is an ordered list of parameter domains (int, float or
// categorical; optionally log-scaled; each with a LOW-COST initial value —
// the bold entries of Table 5). All tuners operate on the normalized
// [0,1]^d representation: log/linear scaling, integer rounding and
// categorical bucketing happen in from_normalized(), so FLOW2's sphere
// steps and TPE's kernel densities are scale-free.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace flaml {

// A concrete assignment of hyperparameter values. Numeric parameters store
// their real value; categorical parameters store the category index.
using Config = std::map<std::string, double>;

// Pretty-print "name=value, ..." with categorical names resolved.
class ConfigSpace;
std::string config_to_string(const Config& config, const ConfigSpace& space);

struct ParamDomain {
  enum class Type { Int, Float, Categorical };
  std::string name;
  Type type = Type::Float;
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
  double init = 0.0;  // low-cost initial value (numeric) or category index
  std::vector<std::string> categories;
  // Marked for parameters whose value multiplies trial cost (tree num,
  // leaf num); used to derive FLOW2's step-size lower bound.
  bool cost_related = false;
};

class ConfigSpace {
 public:
  ConfigSpace& add_int(const std::string& name, double lo, double hi, double init,
                       bool log_scale = true, bool cost_related = false);
  ConfigSpace& add_float(const std::string& name, double lo, double hi, double init,
                         bool log_scale = false);
  ConfigSpace& add_categorical(const std::string& name,
                               std::vector<std::string> categories, int init);

  std::size_t dim() const { return params_.size(); }
  bool empty() const { return params_.empty(); }
  const std::vector<ParamDomain>& params() const { return params_; }
  const ParamDomain& param(std::size_t i) const { return params_[i]; }
  // Index of a parameter by name; throws InvalidArgument if unknown.
  std::size_t index_of(const std::string& name) const;
  bool contains(const std::string& name) const;

  // The low-cost initial configuration (Table 5 bold values).
  Config initial_config() const;
  // Uniform sample in normalized space, mapped to a Config.
  Config random_config(Rng& rng) const;

  // Normalized [0,1]^d image of a config (log-scaled dims use log-space
  // interpolation; categorical dims use the bucket midpoint).
  std::vector<double> to_normalized(const Config& config) const;
  // Config from a normalized point; values are clamped to [0,1] first.
  Config from_normalized(const std::vector<double>& z) const;

  // Smallest normalized step that changes some cost-related integer
  // parameter near its initial value by at least one unit. This is FLOW2's
  // step-size lower bound; falls back to `fallback` when no parameter is
  // cost-related.
  double step_lower_bound(double fallback = 1e-4) const;

 private:
  double normalize_value(const ParamDomain& p, double value) const;
  double denormalize_value(const ParamDomain& p, double z) const;

  std::vector<ParamDomain> params_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace flaml
