#include "tuners/tpe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/math_util.h"

namespace flaml {

Tpe::Tpe(const ConfigSpace& space, std::uint64_t seed, TpeOptions options)
    : space_(&space), options_(options), rng_(seed) {
  FLAML_REQUIRE(!space.empty(), "TPE needs a non-empty search space");
  FLAML_REQUIRE(options_.gamma > 0.0 && options_.gamma < 1.0, "gamma in (0,1)");
}

double Tpe::kde_log_density(const std::vector<std::size_t>& members,
                            const std::vector<double>& z) const {
  // Product of per-dimension KDEs (diagonal bandwidth), log space.
  const std::size_t d = z.size();
  const double n = static_cast<double>(members.size());
  double log_density = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    // Scott-style bandwidth over the member values of this dimension.
    double m = 0.0;
    for (std::size_t idx : members) m += points_[idx][j];
    m /= n;
    double var = 0.0;
    for (std::size_t idx : members) {
      double diff = points_[idx][j] - m;
      var += diff * diff;
    }
    var /= std::max(1.0, n - 1.0);
    double bw = std::max(options_.min_bandwidth,
                         1.06 * std::sqrt(var) * std::pow(n, -0.2));
    double sum = 0.0;
    for (std::size_t idx : members) {
      double u = (z[j] - points_[idx][j]) / bw;
      sum += std::exp(-0.5 * u * u);
    }
    sum = std::max(sum / (n * bw * std::sqrt(2.0 * M_PI)), 1e-300);
    log_density += std::log(sum);
  }
  return log_density;
}

Config Tpe::ask() {
  if (points_.size() < static_cast<std::size_t>(options_.n_startup)) {
    return space_->random_config(rng_);
  }
  // Split observations into good / bad by error quantile.
  std::vector<std::size_t> order(points_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return errors_[a] < errors_[b]; });
  std::size_t n_good = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(options_.gamma *
                                            static_cast<double>(order.size()))));
  n_good = std::min(n_good, order.size() - 1);
  std::vector<std::size_t> good(order.begin(),
                                order.begin() + static_cast<std::ptrdiff_t>(n_good));
  std::vector<std::size_t> bad(order.begin() + static_cast<std::ptrdiff_t>(n_good),
                               order.end());

  // Sample candidates around good points, score by l(x)/g(x).
  const std::size_t d = space_->dim();
  std::vector<double> best_z;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < options_.n_candidates; ++c) {
    const auto& center = points_[good[rng_.uniform_index(good.size())]];
    std::vector<double> z(d);
    for (std::size_t j = 0; j < d; ++j) {
      z[j] = clamp(center[j] + rng_.normal() * 0.1, 0.0, 1.0);
    }
    double score = kde_log_density(good, z) - kde_log_density(bad, z);
    if (score > best_score) {
      best_score = score;
      best_z = std::move(z);
    }
  }
  return space_->from_normalized(best_z);
}

void Tpe::tell(const Config& config, double error) {
  points_.push_back(space_->to_normalized(config));
  errors_.push_back(error);
}

}  // namespace flaml
