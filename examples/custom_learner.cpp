// Customization API from §3 of the paper:
//
//   automl.add_learner("mylearner", MyLearner);
//   automl.fit(X, y, metric=mymetric, estimator_list=["mylearner","xgboost"]);
//
// This example registers a k-nearest-centroid learner with a tunable
// shrinkage hyperparameter and optimizes a custom cost-sensitive metric
// that penalizes false negatives 5x more than false positives.
//
// Run: ./custom_learner [budget_seconds]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "automl/automl.h"
#include "common/math_util.h"
#include "data/split.h"
#include "data/suite.h"
#include "linear/encoder.h"

using namespace flaml;

namespace {

// A nearest-shrunken-centroid classifier: per-class centroids in encoded
// feature space, shrunk toward the global centroid by a tunable factor.
class CentroidLearner final : public Learner {
 public:
  const std::string& name() const override {
    static const std::string n = "centroid";
    return n;
  }

  bool supports(Task task) const override { return is_classification(task); }

  ConfigSpace space(Task, std::size_t) const override {
    ConfigSpace s;
    s.add_float("shrinkage", 0.0, 0.95, 0.5);
    s.add_float("temperature", 0.1, 10.0, 1.0, /*log=*/true);
    return s;
  }

  std::unique_ptr<Model> train(const TrainContext& ctx,
                               const Config& config) const override {
    class CentroidModel final : public Model {
     public:
      CentroidModel(FeatureEncoder encoder, std::vector<std::vector<double>> centroids,
                    double temperature)
          : encoder_(std::move(encoder)),
            centroids_(std::move(centroids)),
            temperature_(temperature) {}

      Predictions predict(const DataView& view) const override {
        Predictions pred;
        const int k = static_cast<int>(centroids_.size());
        pred.task = k == 2 ? Task::BinaryClassification : Task::MultiClassification;
        pred.n_classes = k;
        pred.values.resize(view.n_rows() * static_cast<std::size_t>(k));
        std::vector<double> row, scores(static_cast<std::size_t>(k));
        for (std::size_t i = 0; i < view.n_rows(); ++i) {
          encoder_.encode_row(view, i, row);
          for (int c = 0; c < k; ++c) {
            double dist2 = 0.0;
            for (std::size_t j = 0; j < row.size(); ++j) {
              double d = row[j] - centroids_[static_cast<std::size_t>(c)][j];
              dist2 += d * d;
            }
            scores[static_cast<std::size_t>(c)] = -dist2 / temperature_;
          }
          softmax_inplace(scores);
          for (int c = 0; c < k; ++c) {
            pred.values[i * static_cast<std::size_t>(k) + static_cast<std::size_t>(c)] =
                scores[static_cast<std::size_t>(c)];
          }
        }
        return pred;
      }

     private:
      FeatureEncoder encoder_;
      std::vector<std::vector<double>> centroids_;
      double temperature_;
    };

    const double shrinkage = config.at("shrinkage");
    const double temperature = config.at("temperature");
    FeatureEncoder encoder = FeatureEncoder::fit(ctx.train);
    const int k = ctx.train.data().n_classes();
    const std::size_t dim = encoder.dim();

    std::vector<std::vector<double>> centroids(static_cast<std::size_t>(k),
                                               std::vector<double>(dim, 0.0));
    std::vector<double> counts(static_cast<std::size_t>(k), 0.0);
    std::vector<double> global(dim, 0.0);
    std::vector<double> row;
    for (std::size_t i = 0; i < ctx.train.n_rows(); ++i) {
      encoder.encode_row(ctx.train, i, row);
      int y = static_cast<int>(ctx.train.label(i));
      for (std::size_t j = 0; j < dim; ++j) {
        centroids[static_cast<std::size_t>(y)][j] += row[j];
        global[j] += row[j];
      }
      counts[static_cast<std::size_t>(y)] += 1.0;
    }
    for (std::size_t j = 0; j < dim; ++j) {
      global[j] /= static_cast<double>(ctx.train.n_rows());
    }
    for (int c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < dim; ++j) {
        double mean = counts[static_cast<std::size_t>(c)] > 0
                          ? centroids[static_cast<std::size_t>(c)][j] /
                                counts[static_cast<std::size_t>(c)]
                          : global[j];
        centroids[static_cast<std::size_t>(c)][j] =
            (1.0 - shrinkage) * mean + shrinkage * global[j];
      }
    }
    return std::make_unique<CentroidModel>(std::move(encoder), std::move(centroids),
                                           temperature);
  }

  double initial_cost_multiplier() const override { return 1.2; }
};

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 2.0;

  Dataset data = make_suite_dataset(suite_entry("credit-g"), 1.0);
  Rng rng(7);
  auto split = holdout_split(DataView(data), 0.25, rng);
  Dataset train = materialize(split.train);

  // Custom metric: cost-sensitive error with FN 5x worse than FP.
  ErrorMetric cost_sensitive(
      "cost_sensitive", [](const Predictions& p, const std::vector<double>& y) {
        double cost = 0.0;
        for (std::size_t i = 0; i < p.n_rows(); ++i) {
          int pred = p.prob(i, 1) >= 0.5 ? 1 : 0;
          if (pred == 1 && y[i] == 0.0) cost += 1.0;       // false positive
          else if (pred == 0 && y[i] == 1.0) cost += 5.0;  // false negative
        }
        return cost / static_cast<double>(p.n_rows());
      });

  AutoML automl;
  automl.add_learner(std::make_shared<CentroidLearner>());

  AutoMLOptions options;
  options.time_budget_seconds = budget;
  options.custom_metric = cost_sensitive;
  options.estimator_list = {"centroid", "xgboost", "lgbm"};
  options.seed = 2;
  automl.fit(train, options);

  std::printf("best learner: %s\n", automl.best_learner().c_str());
  std::printf("best validation cost-sensitive error: %.4f\n", automl.best_error());

  Predictions pred = automl.predict(split.test);
  double test_cost = cost_sensitive(pred, split.test.labels());
  std::printf("test cost-sensitive error: %.4f\n", test_cost);

  int centroid_trials = 0;
  for (const auto& r : automl.history()) {
    if (r.learner == "centroid") ++centroid_trials;
  }
  std::printf("the custom learner was tried %d times out of %zu trials\n",
              centroid_trials, automl.history().size());
  return 0;
}
