// Anytime behavior report: shows the defining property of FLAML's search —
// trial cost grows gradually while the error drops fast from the first
// seconds (Figure 1's message), including how the sample size ramps up and
// how the learner choice shifts as ECIs update.
//
// Run: ./anytime_report [budget_seconds] [dataset_name]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "automl/automl.h"
#include "data/suite.h"

using namespace flaml;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 3.0;
  const std::string dataset_name = argc > 2 ? argv[2] : "miniboone";

  Dataset data = make_suite_dataset(suite_entry(dataset_name), 0.5);
  std::printf("dataset %s: %zu rows, %zu features (%s)\n", dataset_name.c_str(),
              data.n_rows(), data.n_cols(), task_name(data.task()));

  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = budget;
  options.initial_sample_size = 500;
  options.seed = 3;
  automl.fit(data, options);

  std::printf("\n%-5s %-8s %-11s %-8s %-9s %-9s %-9s\n", "iter", "time", "learner",
              "sample", "cost", "error", "best");
  for (const auto& r : automl.history()) {
    std::printf("%-5d %-8.2f %-11s %-8zu %-9.4f %-9.4f %-9.4f\n", r.iteration,
                r.finished_at, r.learner.c_str(), r.sample_size, r.cost, r.error,
                r.best_error_so_far);
  }

  std::map<std::string, int> trials_per_learner;
  for (const auto& r : automl.history()) trials_per_learner[r.learner] += 1;
  std::printf("\ntrials per learner:");
  for (const auto& [learner, count] : trials_per_learner) {
    std::printf(" %s=%d", learner.c_str(), count);
  }
  std::printf("\nfinal: learner=%s error=%.4f sample=%zu\n",
              automl.best_learner().c_str(), automl.best_error(),
              automl.best_sample_size());
  return 0;
}
