// Selectivity estimation (paper §5.3): the database-systems scenario that
// motivates fast, economical AutoML. A query optimizer needs a fresh
// regression model per table/join expression, trained on synthetic range
// queries, under a tight CPU budget — here we build one for a 4D table and
// compare against the hand-tuned configuration from Dutt et al. 2019
// (XGBoost, 16 trees, 16 leaves).
//
// Run: ./selectivity_estimation [budget_seconds]

#include <cstdio>
#include <cstdlib>

#include "selest/harness.h"

using namespace flaml;
using namespace flaml::selest;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 1.0;

  SelestInstance instance;
  instance.name = "4D-Forest (example)";
  instance.family = TableFamily::Forest;
  instance.n_dims = 4;
  instance.table_rows = 15000;
  instance.train_queries = 1200;
  instance.test_queries = 400;
  instance.seed = 99;

  std::printf("generating a %d-column %s table (%zu rows) and %zu labeled "
              "range queries...\n",
              instance.n_dims, family_name(instance.family), instance.table_rows,
              instance.train_queries + instance.test_queries);
  SelestData data = make_selest_data(instance);

  std::printf("searching models for %.1fs (the paper's setting: <= 1 CPU "
              "minute per selectivity model)...\n",
              budget);
  SelestResult flaml_r = run_flaml(data, budget, 1);
  SelestResult manual_r = run_manual(data, 1);

  std::printf("\n95th-percentile q-error on held-out queries:\n");
  std::printf("  FLAML (auto):      %.2f  (search %.1fs)\n", flaml_r.q95,
              flaml_r.search_seconds);
  std::printf("  Manual (16x16 xgb): %.2f\n", manual_r.q95);
  std::printf("\n%s\n", flaml_r.q95 <= manual_r.q95
                            ? "FLAML found a better model than the manual "
                              "configuration within budget."
                            : "Manual configuration held up this time; larger "
                              "budgets let FLAML pull ahead.");
  return 0;
}
