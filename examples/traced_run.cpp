// Traced run: a small AutoML fit with structured search tracing enabled.
//
// Every decision the search makes — learner proposals with the full ECI
// vector, FLOW² moves, sample-size doublings, trial outcomes — is written
// as one JSON object per line to a JSONL file. Inspect it afterwards:
//
//   ./traced_run trace.jsonl [max_trials] [checkpoint.ckpt]
//   ./trace_inspect trace.jsonl            # timeline + best-error curve
//   ./trace_inspect --check trace.jsonl    # schema validation (CI mode)
//
// With a third argument the run also checkpoints every 5 trials (the
// crash-safe src/resume format) and snapshots the finished fit — including
// the best-model blob — to the same path; CI uploads it as a sample
// artifact next to the trace.

#include <cstdio>
#include <cstdlib>

#include "automl/automl.h"
#include "data/suite.h"
#include "observe/trace.h"

using namespace flaml;

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "trace.jsonl";
  const std::size_t max_trials =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  const std::string checkpoint_path = argc > 3 ? argv[3] : "";

  Dataset data = make_suite_dataset(suite_entry("adult"), 0.2);

  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = 60.0;
  options.max_iterations = max_trials;  // deterministic stopping for CI
  options.seed = 7;
  // The one line that turns tracing on:
  options.trace_sink = std::make_shared<observe::JsonlTraceSink>(trace_path);
  if (!checkpoint_path.empty()) {
    options.checkpoint_path = checkpoint_path;
    options.checkpoint_every_n_trials = 5;
  }
  automl.fit(data, options);
  if (!checkpoint_path.empty()) {
    // Replace the last mid-search checkpoint with the post-fit snapshot
    // (same format, plus the best-model blob).
    automl.checkpoint_to_file(checkpoint_path);
    std::printf("checkpoint written to %s — resume with "
                "AutoML::resume_from_file\n",
                checkpoint_path.c_str());
  }

  std::printf("ran %zu trials; best %s, validation error %.4f\n",
              automl.history().size(), automl.best_learner().c_str(),
              automl.best_error());
  std::printf("metrics: %zu trials ok, %zu killed, %zu failed\n",
              static_cast<std::size_t>(automl.metrics().value("trials_ok")),
              static_cast<std::size_t>(automl.metrics().value("trials_killed")),
              static_cast<std::size_t>(automl.metrics().value("trials_failed")));
  std::printf("trace written to %s — render it with tools/trace_inspect\n",
              trace_path.c_str());
  return 0;
}
