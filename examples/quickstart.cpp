// Quickstart: the scikit-learn-style API from §3 of the paper.
//
//   AutoML automl;
//   automl.fit(train_data, options);   // ~ automl.fit(X_train, y_train)
//   predictions = automl.predict(test);
//
// Run: ./quickstart [budget_seconds]

#include <cstdio>
#include <cstdlib>

#include "automl/automl.h"
#include "data/split.h"
#include "data/suite.h"
#include "metrics/metrics.h"

using namespace flaml;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 2.0;

  // A binary classification task (an analogue of the OpenML "adult"
  // dataset: mixed numeric/categorical features, some missing values).
  Dataset data = make_suite_dataset(suite_entry("adult"), 0.5);
  Rng rng(42);
  auto split = holdout_split(DataView(data), 0.2, rng);
  Dataset train = materialize(split.train);

  std::printf("dataset: %zu train rows, %zu test rows, %zu features\n",
              train.n_rows(), split.test.n_rows(), train.n_cols());

  AutoML automl;
  AutoMLOptions options;
  options.time_budget_seconds = budget;  // the only knob you need
  options.seed = 1;
  automl.fit(train, options);

  Predictions pred = automl.predict(split.test);
  double auc = roc_auc(pred.prob1(), split.test.labels());

  std::printf("searched %zu configurations in %.1fs\n", automl.history().size(),
              budget);
  std::printf("best learner: %s (validation error %.4f, resampling: %s)\n",
              automl.best_learner().c_str(), automl.best_error(),
              resampling_name(automl.resampling_used()));
  std::printf("test AUC: %.4f\n", auc);
  return 0;
}
