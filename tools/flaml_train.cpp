// flaml_train — command-line AutoML on a CSV file.
//
// Usage:
//   flaml_train --data=train.csv --task=binary|multiclass|regression \
//               [--label=<column>] [--budget=60] [--metric=auc|log_loss|...] \
//               [--estimators=lgbm,xgboost,...] [--model-out=model.txt] \
//               [--history-out=history.csv] [--holdout=0.2] [--seed=1] [--verbose]
//
// Trains under the budget, reports the best learner/config and the error on
// an internal holdout split, and optionally persists the model (loadable by
// flaml_predict) and the trial history.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "automl/automl.h"
#include "common/log.h"
#include "data/csv.h"
#include "data/split.h"

using namespace flaml;

namespace {

std::string flag(int argc, char** argv, const std::string& key,
                 const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == "--" + key) return "1";
  }
  return fallback;
}

Task parse_task(const std::string& name) {
  if (name == "binary") return Task::BinaryClassification;
  if (name == "multiclass") return Task::MultiClassification;
  if (name == "regression") return Task::Regression;
  throw InvalidArgument("unknown task '" + name + "' (binary|multiclass|regression)");
}

std::vector<std::string> parse_list(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  for (char c : text) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string data_path = flag(argc, argv, "data", "");
    if (data_path.empty()) {
      std::fprintf(stderr,
                   "usage: flaml_train --data=train.csv --task=binary "
                   "[--label=col] [--budget=60] [--metric=...] "
                   "[--estimators=a,b] [--model-out=m.txt] "
                   "[--history-out=h.csv] [--holdout=0.2] [--seed=1]\n");
      return 2;
    }
    if (flag(argc, argv, "verbose", "") == "1") {
      logging::set_level(LogLevel::Info);
    }

    CsvOptions csv_options;
    csv_options.task = parse_task(flag(argc, argv, "task", "binary"));
    csv_options.label_column = flag(argc, argv, "label", "");
    Dataset data = read_csv_file(data_path, csv_options);
    std::printf("loaded %zu rows x %zu features (%s)\n", data.n_rows(), data.n_cols(),
                task_name(data.task()));

    // Internal holdout for an honest post-search error report.
    const double holdout = std::stod(flag(argc, argv, "holdout", "0.2"));
    Rng rng(static_cast<std::uint64_t>(std::stoull(flag(argc, argv, "seed", "1"))));
    auto split = holdout_split(DataView(data), holdout, rng);
    Dataset train = materialize(split.train);

    AutoML automl;
    AutoMLOptions options;
    options.time_budget_seconds = std::stod(flag(argc, argv, "budget", "60"));
    options.metric = flag(argc, argv, "metric", "");
    options.estimator_list = parse_list(flag(argc, argv, "estimators", ""));
    options.seed = std::stoull(flag(argc, argv, "seed", "1"));
    automl.fit(train, options);

    ErrorMetric metric = options.metric.empty()
                             ? ErrorMetric::default_for(data.task())
                             : ErrorMetric::by_name(options.metric);
    double test_error = metric(automl.predict(split.test), split.test.labels());

    std::printf("trials: %zu, resampling: %s\n", automl.history().size(),
                resampling_name(automl.resampling_used()));
    std::printf("best learner: %s\n", automl.best_learner().c_str());
    std::printf("validation error (%s): %.6f\n", metric.name().c_str(),
                automl.best_error());
    std::printf("holdout error   (%s): %.6f\n", metric.name().c_str(), test_error);

    const std::string model_out = flag(argc, argv, "model-out", "");
    if (!model_out.empty()) {
      automl.save_best_model_file(model_out);
      std::printf("model written to %s\n", model_out.c_str());
    }
    const std::string history_out = flag(argc, argv, "history-out", "");
    if (!history_out.empty()) {
      std::ofstream out(history_out);
      FLAML_REQUIRE(out.good(), "cannot open '" << history_out << "'");
      write_history_csv(out, automl.history());
      std::printf("history written to %s\n", history_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
