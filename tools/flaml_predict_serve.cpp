// flaml_predict_serve — the prediction daemon over compiled artifacts, its
// artifact compiler, and its client, in one binary.
//
// Compile an artifact (once, offline):
//   flaml_predict_serve compile --model=model.txt --out=model.bin
//   flaml_predict_serve compile --checkpoint=search.ckpt --out=model.bin
//
// Daemon (protocol in src/serve/predict_service.h):
//   flaml_predict_serve serve [--artifact=model.bin]
//       [--max-batch-rows=256] [--batch-delay-ms=2] [--threads=0]
//       [--trace=events.jsonl]                                  # stdio
//   flaml_predict_serve serve --socket=/tmp/predict.sock ...    # AF_UNIX
//
// stdio mode reads one JSON request per line on stdin — scriptable with a
// heredoc, which is what scripts/predict_serve_smoke.sh does in CI. Socket
// mode serves EACH connection on its own thread, so the daemon's
// micro-batching window spans concurrent clients: requests arriving within
// --batch-delay-ms of each other are scored as one row-sharded
// predict_many call (bit-identical to scoring them alone).
//
// Client (every subcommand needs --socket=PATH):
//   flaml_predict_serve ping|stats|drain|reload|shutdown --socket=PATH
//   flaml_predict_serve load|swap --socket=PATH --artifact=model.bin
//   flaml_predict_serve predict  --socket=PATH --csv=rows.csv
//   flaml_predict_serve request  --socket=PATH --json='{"op":...}'
//
// Each client invocation sends one request and prints the one-line JSON
// response verbatim; the exit code is 0 iff the response has "ok": true.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "serve/predict_service.h"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace flaml;
using namespace flaml::serve;

namespace {

std::string flag(int argc, char** argv, const std::string& key,
                 const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == "--" + key) return "1";
  }
  return fallback;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: flaml_predict_serve compile (--model=F | --checkpoint=F) --out=F\n"
      "       flaml_predict_serve serve [--artifact=F] [--socket=PATH]\n"
      "                   [--max-batch-rows=256] [--batch-delay-ms=2]\n"
      "                   [--threads=0] [--trace=FILE]\n"
      "       flaml_predict_serve ping|stats|drain|reload|shutdown --socket=PATH\n"
      "       flaml_predict_serve load|swap --socket=PATH --artifact=F\n"
      "       flaml_predict_serve predict --socket=PATH --csv=rows.csv\n"
      "       flaml_predict_serve request --socket=PATH --json='{\"op\":...}'\n");
  return 2;
}

int run_compile(int argc, char** argv) {
  const std::string model = flag(argc, argv, "model", "");
  const std::string checkpoint = flag(argc, argv, "checkpoint", "");
  const std::string out = flag(argc, argv, "out", "");
  FLAML_REQUIRE(model.empty() != checkpoint.empty(),
                "compile needs exactly one of --model / --checkpoint");
  FLAML_REQUIRE(!out.empty(), "compile needs --out=artifact");
  CompiledModel compiled;
  if (!model.empty()) {
    std::ifstream in(model);
    FLAML_REQUIRE(in.good(), "cannot open model file '" << model << "'");
    compiled = compile_saved(in);
  } else {
    compiled = compile_checkpoint_file(checkpoint);
  }
  compiled.save_file(out);
  std::fprintf(stderr, "compiled %zu trees / %zu nodes -> %s\n",
               compiled.n_trees(), compiled.n_nodes(), out.c_str());
  return 0;
}

#ifndef _WIN32

// One thread per accepted connection: the batching window spans clients.
int serve_socket(PredictService& service, const std::string& path) {
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLAML_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FLAML_REQUIRE(path.size() < sizeof(addr.sun_path),
                "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  FLAML_REQUIRE(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                "bind('" << path << "'): " << std::strerror(errno));
  FLAML_REQUIRE(::listen(fd, 64) == 0, "listen(): " << std::strerror(errno));
  std::fprintf(stderr, "listening on %s\n", path.c_str());

  std::vector<std::thread> clients;
  while (!service.shutdown_requested()) {
    // Poll before accepting: a shutdown op is answered on a CLIENT thread,
    // so a bare accept() would block forever waiting for a connection that
    // never comes.
    pollfd pending{fd, POLLIN, 0};
    const int ready = ::poll(&pending, 1, 200);
    if (ready < 0) break;
    if (ready == 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;
    clients.emplace_back([&service, client] {
      std::string buffer;
      char chunk[4096];
      ssize_t n = 0;
      while ((n = ::read(client, chunk, sizeof(chunk))) > 0) {
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos = 0;
        while ((pos = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, pos);
          buffer.erase(0, pos + 1);
          if (line.empty()) continue;
          const std::string response = service.handle_line(line) + "\n";
          std::size_t written = 0;
          while (written < response.size()) {
            const ssize_t w = ::write(client, response.data() + written,
                                      response.size() - written);
            if (w <= 0) break;
            written += static_cast<std::size_t>(w);
          }
        }
      }
      ::close(client);
    });
  }
  for (std::thread& t : clients) t.join();
  ::close(fd);
  ::unlink(path.c_str());
  return 0;
}

// One request line -> one response line over the daemon's unix socket.
std::string round_trip(const std::string& path, const std::string& request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLAML_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FLAML_REQUIRE(path.size() < sizeof(addr.sun_path),
                "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw InvalidArgument("connect('" + path + "'): " + std::strerror(errno));
  }
  const std::string line = request + "\n";
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t w = ::write(fd, line.data() + written, line.size() - written);
    FLAML_REQUIRE(w > 0, "write(): " << std::strerror(errno));
    written += static_cast<std::size_t>(w);
  }
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1 && c != '\n') response.push_back(c);
  ::close(fd);
  FLAML_REQUIRE(!response.empty(), "daemon closed the connection mid-request");
  return response;
}

#else

int serve_socket(PredictService&, const std::string&) {
  std::fprintf(stderr, "socket mode is POSIX-only; use stdio mode\n");
  return 2;
}

std::string round_trip(const std::string&, const std::string&) {
  throw InvalidArgument("client mode is POSIX-only");
}

#endif  // _WIN32

int run_serve(int argc, char** argv) {
  PredictDaemonOptions options;
  options.max_batch_rows = static_cast<std::size_t>(
      std::stoul(flag(argc, argv, "max-batch-rows", "256")));
  options.max_batch_delay_ms =
      std::stod(flag(argc, argv, "batch-delay-ms", "2"));
  options.n_threads = std::stoi(flag(argc, argv, "threads", "0"));
  const std::string trace_path = flag(argc, argv, "trace", "");
  if (!trace_path.empty()) {
    options.trace_sink =
        std::make_shared<observe::JsonlTraceSink>(trace_path);
  }
  PredictDaemon daemon(options);
  const std::string artifact = flag(argc, argv, "artifact", "");
  if (!artifact.empty()) daemon.load(artifact);
  PredictService service(daemon);
  const std::string socket_path = flag(argc, argv, "socket", "");
  if (!socket_path.empty()) return serve_socket(service, socket_path);
  service.serve_stream(std::cin, std::cout);
  // EOF without a shutdown op still tears the daemon down cleanly
  // (fail queued requests, join the batcher) via ~PredictDaemon.
  return 0;
}

int run_client(const std::string& op, int argc, char** argv) {
  const std::string socket_path = flag(argc, argv, "socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr, "client mode needs --socket=PATH\n");
    return 2;
  }
  std::string line;
  if (op == "request") {
    line = flag(argc, argv, "json", "");
    FLAML_REQUIRE(!line.empty(), "request needs --json='{...}'");
  } else {
    JsonValue request = JsonValue::make_object();
    request.set("op", JsonValue::make_string(op));
    const std::string artifact = flag(argc, argv, "artifact", "");
    if (!artifact.empty()) {
      request.set("artifact", JsonValue::make_string(artifact));
    }
    if (op == "predict") {
      const std::string csv = flag(argc, argv, "csv", "");
      FLAML_REQUIRE(!csv.empty(), "predict needs --csv=rows.csv");
      request.set("csv", JsonValue::make_string(csv));
    }
    line = dump_json_compact(request);
  }
  const std::string response = round_trip(socket_path, line);
  std::printf("%s\n", response.c_str());
  const JsonValue parsed = parse_json(response);
  const JsonValue* ok = parsed.find("ok");
  return ok != nullptr && ok->is_bool() && ok->boolean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "compile") return run_compile(argc, argv);
    if (command == "serve") return run_serve(argc, argv);
    const bool known = command == "ping" || command == "stats" ||
                       command == "drain" || command == "reload" ||
                       command == "shutdown" || command == "load" ||
                       command == "swap" || command == "predict" ||
                       command == "request";
    if (!known) return usage();
    return run_client(command, argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
