// Inspect a JSONL search trace written by AutoML::fit with a JsonlTraceSink
// (AutoMLOptions::trace_sink). Renders a run timeline and the best-error
// curve, or validates the trace's structural invariants.
//
//   trace_inspect trace.jsonl            # summary + timeline + curve
//   trace_inspect --check trace.jsonl    # validate only; exit 1 on errors
//
// --check is what CI runs on the traced-fit artifact: it re-parses every
// line and enforces the schema in src/observe/trace_check.h (run_started
// first, one terminal run_summary, paired trial starts/finishes, status and
// error-field consistency, ECI vectors present on proposals, run_summary
// totals matching the events).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "observe/trace_check.h"

namespace {

using flaml::JsonValue;
using flaml::observe::TraceCheckResult;
using flaml::observe::TraceEvent;

double number_or(const TraceEvent& event, const char* key, double fallback) {
  const JsonValue* field = event.fields.find(key);
  return field != nullptr && field->is_number() ? field->number : fallback;
}

std::string string_or(const TraceEvent& event, const char* key,
                      const std::string& fallback) {
  const JsonValue* field = event.fields.find(key);
  return field != nullptr && field->is_string() ? field->str : fallback;
}

double error_or_inf(const TraceEvent& event, const char* key) {
  const JsonValue* field = event.fields.find(key);
  if (field == nullptr) return std::numeric_limits<double>::infinity();
  try {
    return flaml::observe::error_field_value(*field);
  } catch (const std::exception&) {
    return std::numeric_limits<double>::infinity();
  }
}

void print_summary(const TraceCheckResult& result) {
  std::printf("trace: %zu events", result.events.size());
  bool first = true;
  for (const auto& [type, count] : result.by_type) {
    std::printf("%s %s=%zu", first ? " (" : ",", type.c_str(), count);
    first = false;
  }
  std::printf("%s\n", first ? "" : ")");
  for (const auto& event : result.events) {
    if (event.type != "run_summary") continue;
    const double best = error_or_inf(event, "best_error");
    std::printf("run: %zu trials, best %s = %s (error %.6g) in %.2fs\n",
                result.n_trials, string_or(event, "best_learner", "?").c_str(),
                string_or(event, "resampling", "?").c_str(), best,
                number_or(event, "elapsed_seconds", 0.0));
  }
}

void print_timeline(const TraceCheckResult& result) {
  std::printf("\n%5s %8s %-14s %8s %12s %10s %-7s\n", "iter", "t(s)", "learner",
              "sample", "error", "cost", "status");
  for (const auto& event : result.events) {
    if (event.type == "sample_doubled") {
      std::printf("      %8.3f %-14s sample %g -> %g\n", event.time,
                  string_or(event, "learner", "?").c_str(),
                  number_or(event, "from", 0.0), number_or(event, "to", 0.0));
      continue;
    }
    if (event.type == "flow2_restart") {
      std::printf("      %8.3f %-14s FLOW2 restart #%g\n", event.time,
                  string_or(event, "learner", "?").c_str(),
                  number_or(event, "n_restarts", 0.0));
      continue;
    }
    if (event.type != "trial_finished") continue;
    const double error = error_or_inf(event, "error");
    const bool improved = [&] {
      const JsonValue* f = event.fields.find("improved");
      return f != nullptr && f->is_bool() && f->boolean;
    }();
    char error_text[32];
    if (std::isfinite(error)) {
      std::snprintf(error_text, sizeof(error_text), "%12.6g", error);
    } else {
      std::snprintf(error_text, sizeof(error_text), "%12s", "inf");
    }
    std::printf("%5.0f %8.3f %-14s %8.0f %s %10.4g %-7s%s\n",
                number_or(event, "iteration", 0.0), event.time,
                string_or(event, "learner", "?").c_str(),
                number_or(event, "sample_size", 0.0), error_text,
                number_or(event, "cost", 0.0),
                string_or(event, "status", "?").c_str(), improved ? "  *best" : "");
  }
}

// Anytime performance: one row per global-best improvement, bar length
// scaled to the error range on a log-ish scale (what Figure 1-style
// anytime curves read off).
void print_best_curve(const TraceCheckResult& result) {
  struct Point {
    double iteration;
    double time;
    double error;
  };
  std::vector<Point> points;
  for (const auto& event : result.events) {
    if (event.type != "trial_finished") continue;
    const JsonValue* improved = event.fields.find("improved");
    if (improved == nullptr || !improved->is_bool() || !improved->boolean) continue;
    points.push_back({number_or(event, "iteration", 0.0), event.time,
                      error_or_inf(event, "best_error_so_far")});
  }
  if (points.empty()) {
    std::printf("\nno successful trials — no best-error curve\n");
    return;
  }
  double lo = points.back().error, hi = points.front().error;
  std::printf("\nbest-error curve (%zu improvements):\n", points.size());
  constexpr int kWidth = 50;
  for (const auto& p : points) {
    int bar = kWidth;
    if (hi > lo) {
      bar = 1 + static_cast<int>((p.error - lo) / (hi - lo) *
                                 static_cast<double>(kWidth - 1));
    }
    std::printf("%5.0f %8.3fs %12.6g |", p.iteration, p.time, p.error);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
}

int usage() {
  std::fprintf(stderr, "usage: trace_inspect [--check] <trace.jsonl>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  const TraceCheckResult result = flaml::observe::check_trace_file(path);
  if (!result.ok()) {
    std::fprintf(stderr, "trace check FAILED: %s\n", path.c_str());
    for (const auto& error : result.errors) {
      std::fprintf(stderr, "  %s\n", error.c_str());
    }
    return 1;
  }
  if (check_only) {
    std::printf("trace OK: %zu events, %zu trials\n", result.events.size(),
                result.n_trials);
    return 0;
  }
  print_summary(result);
  print_timeline(result);
  print_best_curve(result);
  return 0;
}
