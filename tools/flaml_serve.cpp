// flaml_serve — the multi-job search daemon and its client, in one binary.
//
// Daemon:
//   flaml_serve serve [--slots=2] [--trace-capacity=4096]        # stdio
//   flaml_serve serve --socket=/tmp/flaml.sock [--slots=2]       # AF_UNIX
//
// stdio mode reads one JSON request per line on stdin and writes one JSON
// response per line on stdout (the protocol in src/server/service.h) —
// scriptable with a heredoc, which is exactly what scripts/serve_smoke.sh
// does in CI. Socket mode accepts one client connection at a time and
// speaks the same protocol; it exits after a shutdown op.
//
// Client (every subcommand needs --socket=PATH):
//   flaml_serve ping|list|wait-all|shutdown          --socket=PATH
//   flaml_serve status|cancel|preempt|result|wait    --socket=PATH --id=N
//   flaml_serve events    --socket=PATH --id=N [--since=SEQ]
//   flaml_serve submit    --socket=PATH
//       (--csv=train.csv [--label=col] | --synthetic=ROWS:FEATURES:SEED)
//       [--task=binary|multiclass|regression] [--budget=5] [--metric=...]
//       [--estimators=a,b] [--max-iterations=N] [--seed=1] [--name=...]
//       [--priority=0] [--quantum=8] [--deadline=SECONDS]
//   flaml_serve request   --socket=PATH --json='{"op":...}'      # raw line
//
// Each client invocation sends one request and prints the one-line JSON
// response verbatim; the exit code is 0 iff the response has "ok": true.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.h"
#include "server/service.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace flaml;
using namespace flaml::server;

namespace {

std::string flag(int argc, char** argv, const std::string& key,
                 const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == "--" + key) return "1";
  }
  return fallback;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: flaml_serve serve [--slots=2] [--socket=PATH]\n"
      "       flaml_serve ping|list|wait-all|shutdown --socket=PATH\n"
      "       flaml_serve status|cancel|preempt|result|wait --socket=PATH --id=N\n"
      "       flaml_serve events --socket=PATH --id=N [--since=SEQ]\n"
      "       flaml_serve submit --socket=PATH (--csv=F | --synthetic=R:F:S)\n"
      "                   [--task=binary] [--budget=5] [--max-iterations=N] ...\n"
      "       flaml_serve request --socket=PATH --json='{\"op\":...}'\n");
  return 2;
}

#ifndef _WIN32

int serve_socket(SearchService& service, const std::string& path) {
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLAML_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FLAML_REQUIRE(path.size() < sizeof(addr.sun_path),
                "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  FLAML_REQUIRE(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                "bind('" << path << "'): " << std::strerror(errno));
  FLAML_REQUIRE(::listen(fd, 8) == 0, "listen(): " << std::strerror(errno));
  std::fprintf(stderr, "listening on %s\n", path.c_str());
  while (!service.shutdown_requested()) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;
    std::string buffer;
    char chunk[4096];
    ssize_t n = 0;
    while (!service.shutdown_requested() &&
           (n = ::read(client, chunk, sizeof(chunk))) > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (line.empty()) continue;
        const std::string response = service.handle_line(line) + "\n";
        std::size_t written = 0;
        while (written < response.size()) {
          const ssize_t w = ::write(client, response.data() + written,
                                    response.size() - written);
          if (w <= 0) break;
          written += static_cast<std::size_t>(w);
        }
      }
    }
    ::close(client);
  }
  ::close(fd);
  ::unlink(path.c_str());
  return 0;
}

// One request line -> one response line over the daemon's unix socket.
std::string round_trip(const std::string& path, const std::string& request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLAML_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FLAML_REQUIRE(path.size() < sizeof(addr.sun_path),
                "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw InvalidArgument("connect('" + path + "'): " + std::strerror(errno));
  }
  const std::string line = request + "\n";
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t w = ::write(fd, line.data() + written, line.size() - written);
    FLAML_REQUIRE(w > 0, "write(): " << std::strerror(errno));
    written += static_cast<std::size_t>(w);
  }
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1 && c != '\n') response.push_back(c);
  ::close(fd);
  FLAML_REQUIRE(!response.empty(), "daemon closed the connection mid-request");
  return response;
}

#else

int serve_socket(SearchService&, const std::string&) {
  std::fprintf(stderr, "socket mode is POSIX-only; use stdio mode\n");
  return 2;
}

std::string round_trip(const std::string&, const std::string&) {
  throw InvalidArgument("client mode is POSIX-only");
}

#endif  // _WIN32

void set_if(JsonValue& request, int argc, char** argv, const std::string& key,
            const std::string& field, bool numeric) {
  const std::string value = flag(argc, argv, key, "");
  if (value.empty()) return;
  request.set(field, numeric ? JsonValue::make_number(std::stod(value))
                             : JsonValue::make_string(value));
}

JsonValue build_submit(int argc, char** argv) {
  JsonValue request = JsonValue::make_object();
  request.set("op", JsonValue::make_string("submit"));
  const std::string csv = flag(argc, argv, "csv", "");
  const std::string synthetic = flag(argc, argv, "synthetic", "");
  FLAML_REQUIRE(csv.empty() != synthetic.empty(),
                "submit needs exactly one of --csv / --synthetic");
  set_if(request, argc, argv, "task", "task", false);
  if (!csv.empty()) {
    request.set("csv", JsonValue::make_string(csv));
    set_if(request, argc, argv, "label", "label", false);
  } else {
    // ROWS[:FEATURES[:SEED]]
    JsonValue spec = JsonValue::make_object();
    if (const JsonValue* task = request.find("task")) {
      spec.set("task", *task);
    }
    std::size_t begin = 0;
    const char* keys[] = {"rows", "features", "seed"};
    for (int i = 0; i < 3 && begin <= synthetic.size(); ++i) {
      std::size_t end = synthetic.find(':', begin);
      if (end == std::string::npos) end = synthetic.size();
      const std::string part = synthetic.substr(begin, end - begin);
      if (!part.empty()) {
        spec.set(keys[i], JsonValue::make_number(std::stod(part)));
      }
      begin = end + 1;
    }
    request.set("synthetic", std::move(spec));
  }
  set_if(request, argc, argv, "budget", "budget_seconds", true);
  set_if(request, argc, argv, "metric", "metric", false);
  set_if(request, argc, argv, "max-iterations", "max_iterations", true);
  set_if(request, argc, argv, "seed", "seed", true);
  set_if(request, argc, argv, "name", "name", false);
  set_if(request, argc, argv, "priority", "priority", true);
  set_if(request, argc, argv, "quantum", "quantum_trials", true);
  set_if(request, argc, argv, "deadline", "deadline_seconds", true);
  const std::string estimators = flag(argc, argv, "estimators", "");
  if (!estimators.empty()) {
    JsonValue list = JsonValue::make_array();
    std::string token;
    for (char c : estimators + ",") {
      if (c == ',') {
        if (!token.empty()) list.push(JsonValue::make_string(token));
        token.clear();
      } else {
        token += c;
      }
    }
    request.set("estimators", std::move(list));
  }
  return request;
}

int run_client(const std::string& op, int argc, char** argv) {
  const std::string socket_path = flag(argc, argv, "socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr, "client mode needs --socket=PATH\n");
    return 2;
  }
  std::string line;
  if (op == "request") {
    line = flag(argc, argv, "json", "");
    FLAML_REQUIRE(!line.empty(), "request needs --json='{...}'");
  } else if (op == "submit") {
    line = dump_json_compact(build_submit(argc, argv));
  } else {
    JsonValue request = JsonValue::make_object();
    // CLI spelling "wait-all" -> wire spelling "wait_all".
    request.set("op", JsonValue::make_string(op == "wait-all" ? "wait_all" : op));
    set_if(request, argc, argv, "id", "id", true);
    set_if(request, argc, argv, "since", "since", true);
    line = dump_json_compact(request);
  }
  const std::string response = round_trip(socket_path, line);
  std::printf("%s\n", response.c_str());
  const JsonValue parsed = parse_json(response);
  const JsonValue* ok = parsed.find("ok");
  return ok != nullptr && ok->is_bool() && ok->boolean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "serve") {
      SearchDaemon::Options options;
      options.slots =
          static_cast<std::size_t>(std::stoul(flag(argc, argv, "slots", "2")));
      options.trace_capacity = static_cast<std::size_t>(
          std::stoul(flag(argc, argv, "trace-capacity", "4096")));
      SearchDaemon daemon(options);
      SearchService service(daemon);
      const std::string socket_path = flag(argc, argv, "socket", "");
      if (!socket_path.empty()) return serve_socket(service, socket_path);
      service.serve_stream(std::cin, std::cout);
      // EOF without a shutdown op still tears the daemon down cleanly
      // (cancel everything, drain segments) via ~SearchDaemon.
      return 0;
    }
    const bool known =
        command == "ping" || command == "submit" || command == "status" ||
        command == "list" || command == "cancel" || command == "preempt" ||
        command == "result" || command == "events" || command == "wait" ||
        command == "wait-all" || command == "shutdown" || command == "request";
    if (!known) return usage();
    return run_client(command, argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
