// flaml_predict — apply a model trained by flaml_train to a CSV file.
//
// Usage:
//   flaml_predict --data=test.csv --model=model.txt --task=binary \
//                 [--label=<column>] [--no-label] [--out=predictions.csv] \
//                 [--metric=...]
//
// The test CSV must have the same feature columns (same order and types) as
// the training CSV. With a label column present (the default; named by
// --label, else the last column), the error metric is reported on stderr.
// Prediction-only files carry NO label column: pass --no-label so every
// column is read as a feature — without it the reader would silently claim
// the last feature as a label and score nonsense against it. Predictions go
// to --out (or stdout) in the round-trip decimal form (write_csv_value), so
// reading them back yields the exact same doubles.
//
// Caveat: string-valued categorical columns are dictionary-encoded per file
// (codes by first appearance), so train and test files must either use the
// same category order or pre-encoded integer codes.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "automl/automl.h"
#include "data/csv.h"

using namespace flaml;

namespace {

std::string flag(int argc, char** argv, const std::string& key,
                 const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == "--" + key) return "1";
  }
  return fallback;
}

Task parse_task(const std::string& name) {
  if (name == "binary") return Task::BinaryClassification;
  if (name == "multiclass") return Task::MultiClassification;
  if (name == "regression") return Task::Regression;
  throw InvalidArgument("unknown task '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string data_path = flag(argc, argv, "data", "");
    const std::string model_path = flag(argc, argv, "model", "");
    if (data_path.empty() || model_path.empty()) {
      std::fprintf(stderr,
                   "usage: flaml_predict --data=test.csv --model=model.txt "
                   "--task=binary [--label=col] [--no-label] [--out=pred.csv] "
                   "[--metric=...]\n");
      return 2;
    }

    CsvOptions csv_options;
    csv_options.task = parse_task(flag(argc, argv, "task", "binary"));
    csv_options.label_column = flag(argc, argv, "label", "");
    csv_options.has_label = flag(argc, argv, "no-label", "") != "1";
    FLAML_REQUIRE(csv_options.has_label || csv_options.label_column.empty(),
                  "--label and --no-label are mutually exclusive");
    Dataset data = read_csv_file(data_path, csv_options);

    std::unique_ptr<Model> model = load_automl_model_file(model_path);
    Predictions pred = model->predict(DataView(data));

    const std::string metric_name = flag(argc, argv, "metric", "");
    if (csv_options.has_label) {
      ErrorMetric metric = metric_name.empty()
                               ? ErrorMetric::default_for(data.task())
                               : ErrorMetric::by_name(metric_name);
      std::fprintf(stderr, "%s error on %zu rows: %.6f\n", metric.name().c_str(),
                   pred.n_rows(), metric(pred, data.labels()));
    } else {
      FLAML_REQUIRE(metric_name.empty(),
                    "--metric needs labels; drop --no-label to score");
      std::fprintf(stderr, "predicted %zu unlabeled rows\n", pred.n_rows());
    }

    std::ofstream file_out;
    const std::string out_path = flag(argc, argv, "out", "");
    std::ostream& out = out_path.empty() ? std::cout : file_out;
    if (!out_path.empty()) {
      file_out.open(out_path);
      FLAML_REQUIRE(file_out.good(), "cannot open '" << out_path << "'");
    }
    // Output format follows the MODEL's task (pred.task), not the CSV
    // reader's: an unlabeled file always reads as a regression container.
    if (is_classification(pred.task)) {
      for (int c = 0; c < pred.n_classes; ++c) {
        out << (c ? "," : "") << "p_class" << c;
      }
      out << ",predicted_class\n";
      for (std::size_t i = 0; i < pred.n_rows(); ++i) {
        int best = 0;
        for (int c = 0; c < pred.n_classes; ++c) {
          if (c) out << ',';
          write_csv_value(out, pred.prob(i, c));
          if (pred.prob(i, c) > pred.prob(i, best)) best = c;
        }
        out << ',' << best << '\n';
      }
    } else {
      out << "prediction\n";
      for (double v : pred.values) {
        write_csv_value(out, v);
        out << '\n';
      }
    }
    if (!out_path.empty()) {
      std::fprintf(stderr, "predictions written to %s\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
