#!/usr/bin/env bash
set -u
BUILD="${1:-build}"
cd "$(dirname "$0")/.." || exit 1
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
(
  cd "$BUILD" || exit 1
  for b in bench/bench_*; do
    echo "===================================================================="
    echo "== $b"
    echo "===================================================================="
    "$b"
    echo
  done
) 2>&1 | tee bench_output.txt
