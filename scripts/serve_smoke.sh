#!/usr/bin/env bash
# End-to-end smoke test for the search daemon over its wire protocol
# (src/server, tools/flaml_serve.cpp). Drives one serve process over stdio:
# submits three jobs, explicitly preempts one mid-run and watches it resume,
# cancels one, and checks every response line. Job ids are deterministic
# (1, 2, 3 in submission order), so the script needs no JSON parsing
# beyond grep.
#
# Usage:
#   scripts/serve_smoke.sh [path/to/flaml_serve]   # default build/tools/flaml_serve
#
# Scenario (slots=2):
#   id 1  "hog"    unbounded, huge quantum — runs until preempted/cancelled
#   id 2  "worker" 30 iterations          — must finish
#   id 3  "doomed" unbounded              — cancelled while live
# The explicit preempt of job 1 is deterministic: with two slots, jobs 1+2
# are running and only an explicit preempt can evict job 1 (huge quantum, no
# deadline, equal priorities). Evicting it seats job 3; the quantum rotation
# then resumes job 1 on the freed capacity, so by the time job 2 finishes,
# job 1 must show exactly one preemption and a second segment.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="${1:-build/tools/flaml_serve}"
if [ ! -x "$bin" ]; then
  echo "serve_smoke: no executable at $bin" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

cat > "$workdir/requests" <<'EOF'
{"op":"ping"}
{"op":"submit","name":"hog","synthetic":{"task":"binary","rows":200,"seed":3},"budget_seconds":600,"quantum_trials":100000}
{"op":"submit","name":"worker","synthetic":{"task":"binary","rows":200,"seed":4},"budget_seconds":600,"max_iterations":30}
{"op":"submit","name":"doomed","synthetic":{"task":"binary","rows":200,"seed":5},"budget_seconds":600}
{"op":"preempt","id":1}
{"op":"cancel","id":3}
{"op":"wait","id":2}
{"op":"status","id":1}
{"op":"cancel","id":1}
{"op":"wait","id":1}
{"op":"result","id":2}
{"op":"shutdown"}
EOF

"$bin" serve --slots=2 < "$workdir/requests" > "$workdir/responses"

expect() {  # expect LINE_NO PATTERN DESCRIPTION
  local line
  line="$(sed -n "${1}p" "$workdir/responses")"
  if ! grep -q "$2" <<< "$line"; then
    echo "serve_smoke: FAIL [$3]" >&2
    echo "  response $1: $line" >&2
    echo "  expected to contain: $2" >&2
    exit 1
  fi
}

expect 1  '"ok":true'              "ping answers"
expect 2  '"id":1'                 "first submit gets id 1"
expect 3  '"id":2'                 "second submit gets id 2"
expect 4  '"id":3'                 "third submit gets id 3"
expect 5  '"preempted":true'       "running job 1 preempts"
expect 6  '"cancelled":true'       "live job 3 cancels"
expect 7  '"state":"finished"'     "job 2 runs to completion"
expect 8  '"preemptions":1'        "job 1 was preempted exactly once"
expect 8  '"segments":2'           "job 1 resumed in a second segment"
expect 9  '"cancelled":true'       "unbounded job 1 cancels"
expect 10 '"state":"cancelled"'    "job 1 settles cancelled"
expect 11 '"best_learner"'         "job 2 serves its result"
expect 12 '"ok":true'              "shutdown acknowledges"

echo "serve_smoke: OK ($(wc -l < "$workdir/responses") responses, $bin)"
