#!/usr/bin/env bash
# End-to-end smoke test for the prediction-serving daemon over its wire
# protocol (src/serve, tools/flaml_predict_serve.cpp). Trains a tiny model
# with flaml_train, compiles it to a `flaml-compiled v1` artifact twice
# (two generations), then drives one serve process over stdio: load,
# predict from inline rows and from an unlabeled CSV, hot-swap to the
# second artifact, reload-poll, stats, drain, shutdown — checking every
# response line. An error request (predict before rows) must produce a
# typed refusal, not tear the stream down.
#
# Usage:
#   scripts/predict_serve_smoke.sh [bindir]   # default build/tools
set -euo pipefail

cd "$(dirname "$0")/.."
bindir="${1:-build/tools}"
for tool in flaml_train flaml_predict_serve; do
  if [ ! -x "$bindir/$tool" ]; then
    echo "predict_serve_smoke: no executable at $bindir/$tool" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Deterministic binary-classification training set: y = a + b > 1.
awk 'BEGIN {
  print "a,b,c,y"
  seed = 123456789
  for (i = 0; i < 240; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648; a = seed / 2147483648
    seed = (seed * 1103515245 + 12345) % 2147483648; b = seed / 2147483648
    seed = (seed * 1103515245 + 12345) % 2147483648; c = seed / 2147483648
    printf "%.6f,%.6f,%.6f,%d\n", a, b, c, (a + b > 1.0) ? 1 : 0
  }
}' > "$workdir/train.csv"

# Unlabeled request rows: every column is a feature (no label to strip).
printf 'a,b,c\n0.1,0.9,0.5\n0.8,0.7,0.2\n0.3,0.2,0.6\n' > "$workdir/rows.csv"

"$bindir/flaml_train" --data="$workdir/train.csv" --task=binary --budget=3 \
  --estimators=lgbm --seed=7 --model-out="$workdir/model_a.txt" > /dev/null
"$bindir/flaml_train" --data="$workdir/train.csv" --task=binary --budget=3 \
  --estimators=lgbm --seed=8 --model-out="$workdir/model_b.txt" > /dev/null

"$bindir/flaml_predict_serve" compile --model="$workdir/model_a.txt" \
  --out="$workdir/model_a.bin" > /dev/null
"$bindir/flaml_predict_serve" compile --model="$workdir/model_b.txt" \
  --out="$workdir/model_b.bin" > /dev/null

cat > "$workdir/requests" <<EOF
{"op":"ping"}
{"op":"predict","rows":[[0.1,0.9,0.5]]}
{"op":"load","artifact":"$workdir/model_a.bin"}
{"op":"ping"}
{"op":"predict","rows":[[0.1,0.9,0.5],[0.8,0.7,null]]}
{"op":"predict","csv":"$workdir/rows.csv"}
{"op":"reload"}
{"op":"swap","artifact":"$workdir/model_b.bin"}
{"op":"predict","rows":[[0.1,0.9,0.5]]}
{"op":"stats"}
{"op":"drain"}
{"op":"shutdown"}
EOF

"$bindir/flaml_predict_serve" serve < "$workdir/requests" > "$workdir/responses"

expect() {  # expect LINE_NO PATTERN DESCRIPTION
  local line
  line="$(sed -n "${1}p" "$workdir/responses")"
  if ! grep -q "$2" <<< "$line"; then
    echo "predict_serve_smoke: FAIL [$3]" >&2
    echo "  response $1: $line" >&2
    echo "  expected to contain: $2" >&2
    exit 1
  fi
}

expect 1  '"loaded":false'        "ping answers before any model"
expect 2  '"ok":false'            "predict before load is a typed refusal"
expect 3  '"generation":1'        "load installs generation 1"
expect 4  '"loaded":true'         "ping sees the loaded model"
expect 5  '"classes"'             "inline rows (with a null cell) predict"
expect 5  '"generation":1'        "reply names its generation"
expect 6  '"classes"'             "unlabeled CSV rows predict"
expect 7  '"swapped":false'       "reload with unchanged artifact is a no-op"
expect 8  '"generation":2'        "swap installs generation 2"
expect 9  '"generation":2'        "post-swap replies come from generation 2"
expect 10 '"predict.requests"'    "stats exposes request counters"
expect 11 '"drained":true'        "drain acknowledges"
expect 12 '"bye":true'            "shutdown acknowledges"

echo "predict_serve_smoke: OK ($(wc -l < "$workdir/responses") responses, $bindir)"
