#!/usr/bin/env bash
# Full pre-merge check: build + test Release, ASan+UBSan, and TSan.
#
# Usage:
#   scripts/check.sh            # all three configurations
#   scripts/check.sh tsan       # a single preset (release|asan|ubsan|tsan)
#   FLAML_CHECK_JOBS=8 scripts/check.sh
#
# Each configuration runs the whole ctest suite, including the `stress`
# label; sanitizer configs halt on the first report, so a clean exit means
# zero findings.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${FLAML_CHECK_JOBS:-$(nproc)}"
presets=("${@:-release}")
if [ "$#" -eq 0 ]; then
  presets=(release asan ubsan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
done

echo "All checks passed: ${presets[*]}"
