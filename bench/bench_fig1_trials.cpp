// Figure 1 reproduction: per-trial cost and error for FLAML vs the
// HpBandSter analogue (BOHB) on the same search space and dataset.
//
// Prints three series matching the subfigures:
//   (a) trial cost vs model-error regret,
//   (b) trial cost vs total elapsed time when the trial finished,
//   (c) best error so far vs elapsed time.
// Expected shape: FLAML's trial costs grow gradually with elapsed time and
// it avoids expensive+bad trials (top-right of (a)); BOHB shows no such
// trend and loses at both early and late stages.
//
// Flags: --budget=<s> (default 2) --row-scale=<f> (default 0.5) --seed=<n>

#include <algorithm>
#include <cstdio>

#include "args.h"
#include "automl/automl.h"
#include "automl/baselines.h"
#include "data/suite.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 2.0);
  const double row_scale = args.get_double("row-scale", 0.5);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  Dataset data = make_suite_dataset(suite_entry("higgs"), row_scale);
  std::printf("# Figure 1: FLAML vs HpBandSter(BOHB), dataset=higgs-analog "
              "(%zu rows, %zu features), budget=%.2fs\n",
              data.n_rows(), data.n_cols(), budget);

  AutoML flaml_automl;
  AutoMLOptions fo;
  fo.time_budget_seconds = budget;
  fo.initial_sample_size = static_cast<std::size_t>(10000.0 * row_scale);
  fo.budget_scale = budget / 3600.0;  // the run stands in for one paper-hour
  fo.seed = seed;
  flaml_automl.fit(data, fo);

  BaselineAutoML bohb(BaselineKind::Bohb);
  BaselineOptions bo;
  bo.time_budget_seconds = budget;
  bo.min_fidelity = static_cast<std::size_t>(10000.0 * row_scale);
  bo.budget_scale = budget / 3600.0;
  bo.seed = seed;
  bohb.fit(data, bo);

  double best = std::numeric_limits<double>::infinity();
  for (const auto& r : flaml_automl.history()) best = std::min(best, r.error);
  for (const auto& r : bohb.history()) best = std::min(best, r.error);

  auto print_series = [&](const char* name, const TrialHistory& history) {
    std::printf("\n## method=%s (%zu trials)\n", name, history.size());
    std::printf("%-5s %-10s %-10s %-10s %-10s %-8s\n", "iter", "time_s", "cost_s",
                "error", "regret", "sample");
    for (const auto& r : history) {
      std::printf("%-5d %-10.3f %-10.4f %-10.4f %-10.4f %-8zu\n", r.iteration,
                  r.finished_at, r.cost, r.error,
                  std::isfinite(r.error) ? r.error - best : -1.0, r.sample_size);
    }
    // Subfigure (c): best-so-far staircase.
    std::printf("best-so-far: ");
    for (const auto& r : history) {
      std::printf("(%.2fs,%.4f) ", r.finished_at, r.best_error_so_far);
    }
    std::printf("\n");
  };

  print_series("flaml", flaml_automl.history());
  print_series("bohb", bohb.history());

  // Summary: who avoided expensive bad trials.
  auto expensive_bad = [&](const TrialHistory& history) {
    int count = 0;
    for (const auto& r : history) {
      if (r.cost > 0.2 * budget && std::isfinite(r.error) && r.error > best + 0.05) {
        ++count;
      }
    }
    return count;
  };
  std::printf("\n# expensive(>20%% budget)+bad(regret>0.05) trials: flaml=%d bohb=%d\n",
              expensive_bad(flaml_automl.history()), expensive_bad(bohb.history()));
  std::printf("# final best error: flaml=%.4f bohb=%.4f (lower is better)\n",
              flaml_automl.best_error(), bohb.best_error());
  return 0;
}
