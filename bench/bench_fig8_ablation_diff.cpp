// Figure 8 reproduction: scaled-score difference between FLAML and its own
// ablation variants over ALL suite datasets (the appendix companion of the
// Figure 7 curves). Positive = full FLAML better.
//
// Flags: --budget=<s> (default 0.2) --row-scale=<f> (0.25) --folds=<n> (1)
// Cached in fig8_sweep.csv.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "args.h"
#include "common/math_util.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 1.0);
  const double row_scale = args.get_double("row-scale", 0.3);
  const int folds = args.get_int("folds", 1);

  fb::SweepParams params;
  for (const auto& entry : benchmark_suite()) params.datasets.push_back(entry.name);
  params.methods = {fb::Method::Flaml, fb::Method::FlamlRoundRobin,
                    fb::Method::FlamlFullData, fb::Method::FlamlCv};
  params.budgets = {budget};
  params.row_scale = row_scale;
  params.folds = folds;
  params.budget_scale = budget / 600.0;  // the run stands in for 10 paper-minutes
  auto records = fb::load_or_run_sweep(params, "fig8_sweep.csv");

  std::printf("# Figure 8: score difference FLAML - ablation over all datasets "
              "(positive = full FLAML better)\n");
  std::printf("%-18s %10s %10s %10s\n", "dataset", "vs_rrobin", "vs_fulldata",
              "vs_cv");
  std::vector<double> d_rr, d_fd, d_cv;
  for (const auto& name : params.datasets) {
    double f = fb::mean_scaled_score(records, name, fb::Method::Flaml, budget);
    double rr = fb::mean_scaled_score(records, name, fb::Method::FlamlRoundRobin, budget);
    double fd = fb::mean_scaled_score(records, name, fb::Method::FlamlFullData, budget);
    double cv = fb::mean_scaled_score(records, name, fb::Method::FlamlCv, budget);
    std::printf("%-18s %10.3f %10.3f %10.3f\n", name.c_str(), f - rr, f - fd, f - cv);
    if (std::isfinite(f - rr)) d_rr.push_back(f - rr);
    if (std::isfinite(f - fd)) d_fd.push_back(f - fd);
    if (std::isfinite(f - cv)) d_cv.push_back(f - cv);
  }
  auto summarize = [](const char* label, std::vector<double>& d) {
    if (d.empty()) return;
    std::printf("%-14s median=%7.3f mean=%7.3f frac>=0=%.2f\n", label,
                quantile(d, 0.5), mean(d),
                static_cast<double>(std::count_if(d.begin(), d.end(),
                                                  [](double v) { return v >= 0.0; })) /
                    static_cast<double>(d.size()));
  };
  std::printf("\n## summary\n");
  summarize("vs roundrobin", d_rr);
  summarize("vs fulldata", d_fd);
  summarize("vs cv", d_cv);
  return 0;
}
