// Table 5 verification: prints the default search space of every built-in
// learner (ranges, scales, low-cost initial values) so the implementation
// can be diffed against the paper's table. S (the training size) caps the
// tree/leaf ranges; we print the spaces for a representative S.
//
// Flags: --size=<n> training size used for the S-dependent caps (100000)

#include <cstdio>

#include "args.h"
#include "learners/registry.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 100000));

  std::printf("# Table 5: default search spaces (S = %zu)\n", size);
  std::printf("# bold init values of the paper = the 'init' column here\n\n");

  for (Task task : {Task::BinaryClassification, Task::Regression}) {
    std::printf("== task: %s ==\n", task_name(task));
    for (const auto& learner : default_learners(task)) {
      ConfigSpace space = learner->space(task, size);
      std::printf("%-12s (initial-cost multiplier %.1f)\n", learner->name().c_str(),
                  learner->initial_cost_multiplier());
      for (const auto& p : space.params()) {
        if (p.type == ParamDomain::Type::Categorical) {
          std::printf("    %-20s cat    {", p.name.c_str());
          for (std::size_t i = 0; i < p.categories.size(); ++i) {
            std::printf("%s%s", i ? ", " : "", p.categories[i].c_str());
          }
          std::printf("}  init=%s\n",
                      p.categories[static_cast<std::size_t>(p.init)].c_str());
        } else {
          std::printf("    %-20s %-6s [%g, %g]%s  init=%g%s\n", p.name.c_str(),
                      p.type == ParamDomain::Type::Int ? "int" : "float", p.lo, p.hi,
                      p.log_scale ? " (log)" : "", p.init,
                      p.cost_related ? "  [cost-related]" : "");
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
