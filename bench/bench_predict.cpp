// Serving-path benchmark for the compiled prediction engine
// (src/serve/compiled_model.h). Times batched prediction over GBDT and
// forest models with both engines — the interpreted tree walker and the
// compiled flat-table predict_many — at n_threads {1, 2, 4, 8}, and writes
// machine-readable results to BENCH_predict.json: per-engine latency
// percentiles (p50/p90/p99 over individual batch calls), rows/sec derived
// from the median latency, and the single-thread compiled-vs-interpreted
// speedup per model. Also re-asserts the serving determinism contract on
// the benchmark models: compiled output must be bit-identical to the
// interpreted walker, every thread count must match serial, and an
// artifact serialize/deserialize round trip must not change a single bit.
//
// Usage:
//   bench_predict [--rows=N] [--features=N] [--trees=N] [--leaves=N]
//                 [--iters=N] [--out=BENCH_predict.json] [--check]
//                 [--min-speedup=X]
// --check re-reads the emitted file through the JSON parser, validates its
// shape and requires the determinism report to be all-true (the ctest
// smoke test runs this). --min-speedup=X additionally fails the run if any
// model's single-thread compiled engine is below X times the interpreted
// rows/sec — release CI passes 2.0, the PR's acceptance floor.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "boosting/gbdt.h"
#include "common/clock.h"
#include "common/json.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "serve/compiled_model.h"

namespace flaml::bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct BenchModel {
  std::string name;
  Dataset data;
  GBDTModel gbdt;
  ForestModel forest;
  bool is_gbdt = false;
  serve::CompiledModel compiled;
};

Dataset bench_dataset(Task task, std::size_t n_rows, int n_features,
                      std::uint64_t seed) {
  SyntheticSpec spec;
  spec.task = task;
  spec.n_rows = n_rows;
  spec.n_features = n_features;
  spec.n_classes = task == Task::MultiClassification ? 4 : 2;
  spec.categorical_fraction = 0.2;
  spec.missing_fraction = 0.05;
  spec.nonlinearity = 0.5;
  spec.seed = seed;
  return make_synthetic(spec);
}

Predictions interpreted_predict(const BenchModel& m, const DataView& view,
                                int n_threads) {
  return m.is_gbdt ? m.gbdt.predict(view, n_threads)
                   : m.forest.predict(view, n_threads);
}

bool bits_equal(const Predictions& a, const Predictions& b) {
  if (a.values.size() != b.values.size()) return false;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.values[i]) !=
        std::bit_cast<std::uint64_t>(b.values[i])) {
      return false;
    }
  }
  return true;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Latency distribution of `iters` individual batch calls.
template <typename Fn>
JsonValue time_engine(const std::string& engine, int n_threads, std::size_t rows,
                      int iters, Fn&& fn, double* p50_out) {
  WallClock clock;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(iters));
  fn();  // warm-up: page in the model and spin up the pool
  for (int i = 0; i < iters; ++i) {
    Stopwatch timer(clock);
    fn();
    latencies.push_back(timer.elapsed());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 50.0);
  if (p50_out != nullptr) *p50_out = p50;

  JsonValue entry = JsonValue::make_object();
  entry.set("engine", JsonValue::make_string(engine));
  entry.set("n_threads", JsonValue::make_number(n_threads));
  entry.set("latency_p50_s", JsonValue::make_number(p50));
  entry.set("latency_p90_s", JsonValue::make_number(percentile(latencies, 90.0)));
  entry.set("latency_p99_s", JsonValue::make_number(percentile(latencies, 99.0)));
  entry.set("rows_per_sec",
            JsonValue::make_number(p50 > 0.0 ? static_cast<double>(rows) / p50 : 0.0));
  std::cerr << "    " << engine << " n_threads=" << n_threads << ": p50=" << p50
            << " s (" << (p50 > 0.0 ? static_cast<double>(rows) / p50 : 0.0)
            << " rows/s)\n";
  return entry;
}

// One model section: both engines at every thread count, plus the
// single-thread compiled-vs-interpreted speedup the acceptance floor
// checks.
JsonValue bench_model(const BenchModel& m, int iters, double* speedup_out) {
  std::cerr << "  model " << m.name << "\n";
  const DataView view(m.data);
  JsonValue section = JsonValue::make_object();
  section.set("name", JsonValue::make_string(m.name));
  section.set("rows", JsonValue::make_number(static_cast<double>(view.n_rows())));
  section.set("trees", JsonValue::make_number(m.compiled.n_trees()));
  section.set("nodes", JsonValue::make_number(m.compiled.n_nodes()));

  JsonValue entries = JsonValue::make_array();
  double interpreted_p50 = 0.0, compiled_p50 = 0.0;
  for (int n_threads : kThreadCounts) {
    entries.push(time_engine("interpreted", n_threads, view.n_rows(), iters,
                             [&] { interpreted_predict(m, view, n_threads); },
                             n_threads == 1 ? &interpreted_p50 : nullptr));
  }
  for (int n_threads : kThreadCounts) {
    entries.push(time_engine("compiled", n_threads, view.n_rows(), iters,
                             [&] { m.compiled.predict_many(view, n_threads); },
                             n_threads == 1 ? &compiled_p50 : nullptr));
  }
  section.set("entries", std::move(entries));

  const double speedup =
      compiled_p50 > 0.0 ? interpreted_p50 / compiled_p50 : 0.0;
  section.set("compiled_speedup_1t", JsonValue::make_number(speedup));
  if (speedup_out != nullptr) *speedup_out = speedup;
  std::cerr << "    compiled 1-thread speedup vs interpreted: " << speedup
            << "x\n";
  return section;
}

// Serving determinism contract on the benchmark models: compiled ==
// interpreted bits, every thread count == serial, round trip == original.
JsonValue determinism_report(const std::vector<BenchModel>& models) {
  JsonValue report = JsonValue::make_object();
  bool all_ok = true;
  for (const BenchModel& m : models) {
    const DataView view(m.data);
    const Predictions interpreted = interpreted_predict(m, view, 1);
    const Predictions serial = m.compiled.predict_many(view, 1);
    bool matches = bits_equal(interpreted, serial);
    bool threads_ok = true;
    for (int n_threads : {2, 4, 8}) {
      threads_ok =
          threads_ok && bits_equal(serial, m.compiled.predict_many(view, n_threads));
    }
    const serve::CompiledModel reloaded =
        serve::CompiledModel::deserialize(m.compiled.serialize());
    const bool round_trip_ok = bits_equal(serial, reloaded.predict_many(view, 1));

    JsonValue entry = JsonValue::make_object();
    entry.set("compiled_matches_interpreted", JsonValue::make_bool(matches));
    entry.set("threads_match_serial", JsonValue::make_bool(threads_ok));
    entry.set("round_trip_identical", JsonValue::make_bool(round_trip_ok));
    report.set(m.name, std::move(entry));
    if (!(matches && threads_ok && round_trip_ok)) {
      all_ok = false;
      std::cerr << "DETERMINISM VIOLATION: " << m.name << "\n";
    }
  }
  report.set("all_identical", JsonValue::make_bool(all_ok));
  return report;
}

// Validate the shape --check depends on; throws on any mismatch.
void check_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  if (!root.is_object()) throw std::runtime_error("root is not an object");
  for (const char* key : {"rows", "features", "hardware_concurrency"}) {
    const JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("missing numeric field '") + key + "'");
    }
  }
  const JsonValue* determinism = root.find("determinism");
  if (determinism == nullptr || determinism->find("all_identical") == nullptr) {
    throw std::runtime_error("missing determinism report");
  }
  const JsonValue* sections = root.find("sections");
  if (sections == nullptr || !sections->is_array() || sections->array.empty()) {
    throw std::runtime_error("missing sections array");
  }
  for (const JsonValue& section : sections->array) {
    if (section.find("compiled_speedup_1t") == nullptr) {
      throw std::runtime_error("section lacks compiled_speedup_1t");
    }
    const JsonValue* entries = section.find("entries");
    if (entries == nullptr ||
        entries->array.size() != 2 * std::size(kThreadCounts)) {
      throw std::runtime_error("section without a full engine × thread sweep");
    }
    for (const JsonValue& entry : entries->array) {
      for (const char* key :
           {"latency_p50_s", "latency_p90_s", "latency_p99_s", "rows_per_sec"}) {
        const JsonValue* v = entry.find(key);
        if (v == nullptr || !v->is_number() || v->number < 0.0) {
          throw std::runtime_error(std::string("malformed timing field '") + key +
                                   "'");
        }
      }
    }
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const int n_rows = args.get_int("rows", 20000);
  const int n_features = args.get_int("features", 16);
  // Defaults model a realistic serving ensemble: 300 trees of at most 32
  // leaves (LightGBM's num_leaves default is 31).
  const int n_trees = args.get_int("trees", 300);
  const int n_leaves = args.get_int("leaves", 32);
  const int iters = args.get_int("iters", 30);
  const std::string out_path = args.get_string("out", "BENCH_predict.json");
  const double min_speedup = args.get_double("min-speedup", 0.0);

  std::cerr << "bench_predict: rows=" << n_rows << " features=" << n_features
            << " trees=" << n_trees << " leaves=" << n_leaves
            << " iters=" << iters << "\n";

  std::vector<BenchModel> models;
  {
    Dataset data = bench_dataset(Task::BinaryClassification,
                                 static_cast<std::size_t>(n_rows), n_features,
                                 0xfee1);
    GBDTParams params;
    params.n_trees = n_trees;
    params.max_leaves = n_leaves;
    params.seed = 11;
    GBDTModel gbdt = train_gbdt(DataView(data), nullptr, params);
    serve::CompiledModel compiled = serve::compile(gbdt);
    models.push_back(BenchModel{"gbdt_binary", std::move(data), std::move(gbdt),
                                ForestModel{}, true, std::move(compiled)});
  }
  {
    Dataset data = bench_dataset(Task::Regression,
                                 static_cast<std::size_t>(n_rows), n_features,
                                 0xfee2);
    ForestParams params;
    params.n_trees = n_trees;
    params.max_leaves = n_leaves;
    params.seed = 12;
    ForestModel forest = train_forest(DataView(data), params);
    serve::CompiledModel compiled = serve::compile(forest);
    models.push_back(BenchModel{"forest_regression", std::move(data),
                                GBDTModel{}, std::move(forest), false,
                                std::move(compiled)});
  }
  {
    Dataset data = bench_dataset(Task::MultiClassification,
                                 static_cast<std::size_t>(n_rows), n_features,
                                 0xfee3);
    ForestParams params;
    params.n_trees = n_trees;
    params.max_leaves = n_leaves;
    params.seed = 13;
    ForestModel forest = train_forest(DataView(data), params);
    serve::CompiledModel compiled = serve::compile(forest);
    models.push_back(BenchModel{"forest_multiclass", std::move(data),
                                GBDTModel{}, std::move(forest), false,
                                std::move(compiled)});
  }

  JsonValue root = JsonValue::make_object();
  root.set("benchmark", JsonValue::make_string("predict"));
  root.set("rows", JsonValue::make_number(n_rows));
  root.set("features", JsonValue::make_number(n_features));
  root.set("trees", JsonValue::make_number(n_trees));
  root.set("iters", JsonValue::make_number(iters));
  root.set("hardware_concurrency",
           JsonValue::make_number(std::thread::hardware_concurrency()));

  JsonValue sections = JsonValue::make_array();
  double worst_speedup = 0.0;
  bool first = true;
  for (const BenchModel& m : models) {
    double speedup = 0.0;
    sections.push(bench_model(m, iters, &speedup));
    if (first || speedup < worst_speedup) worst_speedup = speedup;
    first = false;
  }
  root.set("sections", std::move(sections));
  root.set("determinism", determinism_report(models));

  const std::string serialized = dump_json(root);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << serialized;
  }
  std::cerr << "wrote " << out_path << "\n";

  if (args.has("check")) {
    check_result_file(out_path);
    const JsonValue* determinism = parse_json(serialized).find("determinism");
    const JsonValue* all_ok =
        determinism != nullptr ? determinism->find("all_identical") : nullptr;
    if (all_ok == nullptr || !all_ok->boolean) {
      std::cerr << "check failed: compiled predictions diverged\n";
      return 1;
    }
    std::cerr << "check passed\n";
  }
  if (min_speedup > 0.0 && worst_speedup < min_speedup) {
    std::cerr << "check failed: worst compiled 1-thread speedup "
              << worst_speedup << "x below required " << min_speedup << "x\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace flaml::bench

int main(int argc, char** argv) {
  try {
    return flaml::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_predict: " << e.what() << "\n";
    return 1;
  }
}
