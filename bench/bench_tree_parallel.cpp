// Microbenchmark for deterministic intra-trial parallelism. Times the
// feature-parallel histogram build, leaf-wise and classification tree
// growth, forest training and row-sharded prediction at n_threads
// {1, 2, 4, 8} and writes machine-readable results to BENCH_tree.json
// (sections with per-thread-count best-of-repeats seconds and
// speedup_vs_serial). Also re-asserts the determinism contract on the
// benchmark inputs: every parallel model must serialize byte-identically
// to its serial reference, and the result records whether that held.
//
// Also sweeps the histogram KERNELS (scalar reference vs every available
// packed kernel, single thread) into a "kernels" section: rows/sec on the
// gradient build (full row set and a gathered half subset) plus the class
// build, with every packed result verified bit-identical to scalar.
//
// Usage:
//   bench_tree_parallel [--rows=N] [--features=N] [--repeats=N]
//                       [--out=BENCH_tree.json] [--check] [--min-speedup=X]
// --check re-reads the emitted file through the JSON parser and validates
// its shape, which is what the ctest smoke test runs. --min-speedup fails
// the run unless the best packed kernel beats the scalar gradient build by
// at least X on one thread (the acceptance floor enforced in release CI).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "boosting/gbdt.h"
#include "common/clock.h"
#include "common/rng.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "common/json.h"
#include "tree/class_grower.h"
#include "tree/grower.h"
#include "tree/histogram.h"
#include "tree/tree_io.h"

namespace flaml::bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct BenchData {
  Dataset regression;
  Dataset classification;
  BinMapper mapper;
  BinnedMatrix binned;
  BinMapper class_mapper;
  BinnedMatrix class_binned;
  std::vector<std::uint32_t> rows;
  std::vector<double> grad, hess;
  std::vector<int> features;
  std::vector<int> labels;
};

BenchData make_bench_data(int n_rows, int n_features) {
  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = static_cast<std::size_t>(n_rows);
  spec.n_features = n_features;
  spec.categorical_fraction = 0.2;
  spec.missing_fraction = 0.05;
  spec.nonlinearity = 0.5;
  spec.seed = 0xbe7cULL;
  Dataset regression = make_regression(spec);

  spec.task = Task::MultiClassification;
  spec.n_classes = 3;
  spec.seed = 0xbe7dULL;
  Dataset classification = make_classification(spec);

  BinMapper mapper = BinMapper::fit(DataView(regression), 255);
  BinnedMatrix binned = mapper.encode(DataView(regression));
  BinMapper class_mapper = BinMapper::fit(DataView(classification), 255);
  BinnedMatrix class_binned = class_mapper.encode(DataView(classification));

  const std::size_t n = regression.n_rows();
  BenchData data{std::move(regression),   std::move(classification),
                 std::move(mapper),       std::move(binned),
                 std::move(class_mapper), std::move(class_binned),
                 {},                      {},
                 {},                      {},
                 {}};
  data.rows.resize(n);
  std::iota(data.rows.begin(), data.rows.end(), 0u);
  data.grad.resize(n);
  data.hess.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) data.grad[i] = -data.regression.label(i);
  data.features.resize(data.regression.n_cols());
  std::iota(data.features.begin(), data.features.end(), 0);
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.labels[i] = static_cast<int>(data.classification.label(i));
  }
  return data;
}

// Best-of-`repeats` wall seconds for one invocation of `fn`.
template <typename Fn>
double best_seconds(int repeats, Fn&& fn) {
  WallClock clock;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer(clock);
    fn();
    const double elapsed = timer.elapsed();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

// One section: run `fn(n_threads)` at every thread count, record seconds
// and speedup vs the n_threads=1 entry.
template <typename Fn>
JsonValue bench_section(const std::string& name, int repeats, Fn&& fn) {
  JsonValue section = JsonValue::make_object();
  section.set("name", JsonValue::make_string(name));
  JsonValue entries = JsonValue::make_array();
  double serial_seconds = 0.0;
  for (int n_threads : kThreadCounts) {
    const double seconds = best_seconds(repeats, [&] { fn(n_threads); });
    if (n_threads == 1) serial_seconds = seconds;
    JsonValue entry = JsonValue::make_object();
    entry.set("n_threads", JsonValue::make_number(n_threads));
    entry.set("seconds", JsonValue::make_number(seconds));
    entry.set("speedup_vs_serial",
              JsonValue::make_number(seconds > 0.0 ? serial_seconds / seconds : 0.0));
    entries.push(std::move(entry));
    std::cerr << "  " << name << " n_threads=" << n_threads << ": " << seconds
              << " s\n";
  }
  section.set("entries", std::move(entries));
  return section;
}

// Bitwise histogram equality (field-wise: HistEntry has tail padding, so a
// whole-struct memcmp would read indeterminate bytes).
bool hist_bits_equal(const std::vector<HistEntry>& a,
                     const std::vector<HistEntry>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].g, &b[i].g, sizeof(double)) != 0 ||
        std::memcmp(&a[i].h, &b[i].h, sizeof(double)) != 0 || a[i].n != b[i].n) {
      return false;
    }
  }
  return true;
}

// Single-thread kernel sweep: scalar reference vs every available packed
// kernel on the SAME inputs. Each timing loops the build until the row
// volume is large enough to dwarf clock noise (the smoke test runs tiny
// datasets), and every packed histogram is compared bit-for-bit against the
// scalar one before its timing is trusted.
JsonValue kernel_sweep(const BenchData& data, int repeats, double& best_speedup,
                       bool& all_identical) {
  const std::vector<std::size_t> offsets = histogram_offsets(data.mapper);
  const std::vector<std::size_t> class_offsets =
      histogram_offsets(data.class_mapper);
  const PackedBins packed = PackedBins::pack(data.binned);
  const PackedBins class_packed = PackedBins::pack(data.class_binned);
  const bool unit_hess = std::all_of(data.hess.begin(), data.hess.end(),
                                     [](double v) { return v == 1.0; });
  // Gathered half subset (every other row): the non-root shape, where rows
  // no longer equal [0, n) and the kernels take the indirect-load path.
  std::vector<std::uint32_t> subset;
  subset.reserve(data.rows.size() / 2);
  for (std::size_t i = 0; i < data.rows.size(); i += 2) subset.push_back(data.rows[i]);
  // Loop each measured build so one measurement covers >= ~2M row-visits.
  const int iters = std::max<int>(
      1, static_cast<int>(2'000'000 / std::max<std::size_t>(1, data.rows.size())));

  std::vector<HistEntry> scalar_full, scalar_subset, hist;
  std::vector<double> scalar_class, class_hist;
  build_gradient_histogram(data.binned, offsets, data.features, data.rows.data(),
                           data.rows.size(), data.grad, data.hess, scalar_full);
  build_gradient_histogram(data.binned, offsets, data.features, subset.data(),
                           subset.size(), data.grad, data.hess, scalar_subset);
  build_class_histogram(data.class_binned, class_offsets, 3, data.rows.data(),
                        data.rows.size(), data.labels, {}, scalar_class);

  JsonValue section = JsonValue::make_object();
  section.set("active", JsonValue::make_string(hist_kernel_name(active_hist_kernel())));
  section.set("packed_width",
              JsonValue::make_string(packed.wide() ? "u16" : "u8"));
  section.set("unit_hess", JsonValue::make_bool(unit_hess));
  JsonValue entries = JsonValue::make_array();

  double scalar_full_seconds = 0.0;
  best_speedup = 0.0;
  all_identical = true;
  const HistKernel kernels[] = {HistKernel::Scalar, HistKernel::Portable,
                                HistKernel::Sse2, HistKernel::Avx2};
  for (HistKernel kernel : kernels) {
    if (!hist_kernel_available(kernel)) continue;
    const bool scalar = kernel == HistKernel::Scalar;

    auto grad_build = [&](const std::uint32_t* rows, std::size_t count,
                          std::vector<HistEntry>& out) {
      if (scalar) {
        build_gradient_histogram(data.binned, offsets, data.features, rows,
                                 count, data.grad, data.hess, out);
      } else {
        build_gradient_histogram_packed(packed, offsets, data.features, rows,
                                        count, data.grad, data.hess, unit_hess,
                                        out, kernel);
      }
    };
    auto class_build = [&] {
      if (scalar) {
        build_class_histogram(data.class_binned, class_offsets, 3,
                              data.rows.data(), data.rows.size(), data.labels,
                              {}, class_hist);
      } else {
        build_class_histogram_packed(class_packed, class_offsets, 3,
                                     data.rows.data(), data.rows.size(),
                                     data.labels, {}, class_hist, kernel);
      }
    };

    // Bit-identity gate before timing.
    bool identical = true;
    if (!scalar) {
      grad_build(data.rows.data(), data.rows.size(), hist);
      identical = identical && hist_bits_equal(hist, scalar_full);
      grad_build(subset.data(), subset.size(), hist);
      identical = identical && hist_bits_equal(hist, scalar_subset);
      class_build();
      identical = identical && class_hist == scalar_class;
      if (!identical) {
        std::cerr << "KERNEL DIVERGENCE: " << hist_kernel_name(kernel)
                  << " != scalar\n";
        all_identical = false;
      }
    }

    const double full_seconds =
        best_seconds(repeats, [&] {
          for (int it = 0; it < iters; ++it) {
            grad_build(data.rows.data(), data.rows.size(), hist);
          }
        }) /
        iters;
    const double subset_seconds =
        best_seconds(repeats, [&] {
          for (int it = 0; it < iters * 2; ++it) {
            grad_build(subset.data(), subset.size(), hist);
          }
        }) /
        (iters * 2);
    const double class_seconds =
        best_seconds(repeats, [&] {
          for (int it = 0; it < iters; ++it) class_build();
        }) /
        iters;
    if (scalar) scalar_full_seconds = full_seconds;
    const double speedup =
        full_seconds > 0.0 ? scalar_full_seconds / full_seconds : 0.0;
    if (!scalar) best_speedup = std::max(best_speedup, speedup);

    JsonValue entry = JsonValue::make_object();
    entry.set("kernel", JsonValue::make_string(hist_kernel_name(kernel)));
    entry.set("grad_full_seconds", JsonValue::make_number(full_seconds));
    entry.set("grad_full_rows_per_sec",
              JsonValue::make_number(full_seconds > 0.0
                                         ? static_cast<double>(data.rows.size()) /
                                               full_seconds
                                         : 0.0));
    entry.set("grad_subset_seconds", JsonValue::make_number(subset_seconds));
    entry.set("class_full_seconds", JsonValue::make_number(class_seconds));
    entry.set("speedup_vs_scalar", JsonValue::make_number(speedup));
    entry.set("identical_to_scalar", JsonValue::make_bool(identical));
    entries.push(std::move(entry));
    std::cerr << "  kernel " << hist_kernel_name(kernel) << ": full "
              << full_seconds << " s (x" << speedup << "), subset "
              << subset_seconds << " s, class " << class_seconds << " s\n";
  }
  section.set("entries", std::move(entries));
  section.set("best_speedup_vs_scalar", JsonValue::make_number(best_speedup));
  section.set("all_identical_to_scalar", JsonValue::make_bool(all_identical));
  return section;
}

std::string tree_string(const Tree& tree) {
  std::ostringstream os;
  os.precision(17);
  write_tree(os, tree);
  return os.str();
}

Tree grow_leafwise(const BenchData& data, int n_threads) {
  GrowerParams params;
  params.max_leaves = 63;
  params.n_threads = n_threads;
  GradientTreeGrower grower(data.mapper, data.binned);
  Rng rng(0x51ULL);
  return grower.grow(data.rows, data.grad, data.hess, data.features, params, rng);
}

Tree grow_class(const BenchData& data, int n_threads) {
  ClassGrowerParams params;
  params.max_leaves = 63;
  params.n_threads = n_threads;
  ClassTreeGrower grower(data.class_mapper, data.class_binned, 3);
  Rng rng(0x52ULL);
  return grower.grow(data.rows, data.labels, {}, params, rng);
}

std::string forest_string(const BenchData& data, int n_threads) {
  ForestParams params;
  params.n_trees = 16;
  params.seed = 0x53ULL;
  params.n_threads = n_threads;
  std::ostringstream os;
  train_forest(DataView(data.regression), params).save(os);
  return os.str();
}

// Serial-vs-parallel byte equality on the benchmark inputs; records one
// named boolean per modelling path.
JsonValue determinism_report(const BenchData& data) {
  JsonValue report = JsonValue::make_object();
  bool all_ok = true;
  auto record = [&](const std::string& name, bool ok) {
    report.set(name, JsonValue::make_bool(ok));
    all_ok = all_ok && ok;
    if (!ok) std::cerr << "DETERMINISM VIOLATION: " << name << "\n";
  };

  const std::string leaf_serial = tree_string(grow_leafwise(data, 1));
  const std::string class_serial = tree_string(grow_class(data, 1));
  const std::string forest_serial = forest_string(data, 1);
  bool leaf_ok = true, class_ok = true, forest_ok = true;
  for (int n_threads : {2, 4, 8}) {
    leaf_ok = leaf_ok && tree_string(grow_leafwise(data, n_threads)) == leaf_serial;
    class_ok = class_ok && tree_string(grow_class(data, n_threads)) == class_serial;
    forest_ok = forest_ok && forest_string(data, n_threads) == forest_serial;
  }
  record("leafwise_tree_identical", leaf_ok);
  record("class_tree_identical", class_ok);
  record("forest_identical", forest_ok);
  report.set("all_identical", JsonValue::make_bool(all_ok));
  return report;
}

// Validate the shape --check depends on; throws on any mismatch.
void check_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  if (!root.is_object()) throw std::runtime_error("root is not an object");
  for (const char* key : {"rows", "features", "hardware_concurrency"}) {
    const JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("missing numeric field '") + key + "'");
    }
  }
  const JsonValue* determinism = root.find("determinism");
  if (determinism == nullptr || determinism->find("all_identical") == nullptr) {
    throw std::runtime_error("missing determinism report");
  }
  const JsonValue* sections = root.find("sections");
  if (sections == nullptr || !sections->is_array() || sections->array.empty()) {
    throw std::runtime_error("missing sections array");
  }
  const JsonValue* kernels = root.find("kernels");
  if (kernels == nullptr || kernels->find("best_speedup_vs_scalar") == nullptr ||
      kernels->find("all_identical_to_scalar") == nullptr) {
    throw std::runtime_error("missing kernels sweep");
  }
  const JsonValue* kernel_entries = kernels->find("entries");
  if (kernel_entries == nullptr || !kernel_entries->is_array() ||
      kernel_entries->array.size() < 2) {
    throw std::runtime_error(
        "kernels sweep needs the scalar reference plus >= 1 packed kernel");
  }
  for (const JsonValue& entry : kernel_entries->array) {
    for (const char* key :
         {"grad_full_seconds", "grad_full_rows_per_sec", "grad_subset_seconds",
          "class_full_seconds", "speedup_vs_scalar"}) {
      const JsonValue* v = entry.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0.0) {
        throw std::runtime_error(std::string("malformed kernel entry field '") +
                                 key + "'");
      }
    }
  }
  for (const JsonValue& section : sections->array) {
    const JsonValue* entries = section.find("entries");
    if (entries == nullptr || entries->array.size() != std::size(kThreadCounts)) {
      throw std::runtime_error("section without a full thread-count sweep");
    }
    bool has_serial = false, has_parallel = false;
    for (const JsonValue& entry : entries->array) {
      const JsonValue* n = entry.find("n_threads");
      const JsonValue* seconds = entry.find("seconds");
      if (n == nullptr || seconds == nullptr || !seconds->is_number() ||
          seconds->number < 0.0) {
        throw std::runtime_error("malformed timing entry");
      }
      if (n->number == 1.0) has_serial = true;
      if (n->number > 1.0) has_parallel = true;
    }
    if (!has_serial || !has_parallel) {
      throw std::runtime_error("section lacks serial or parallel timings");
    }
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const int n_rows = args.get_int("rows", 20000);
  const int n_features = args.get_int("features", 20);
  const int repeats = args.get_int("repeats", 3);
  const std::string out_path = args.get_string("out", "BENCH_tree.json");

  std::cerr << "bench_tree_parallel: rows=" << n_rows << " features=" << n_features
            << " repeats=" << repeats << "\n";
  BenchData data = make_bench_data(n_rows, n_features);

  JsonValue root = JsonValue::make_object();
  root.set("benchmark", JsonValue::make_string("tree_parallel"));
  root.set("rows", JsonValue::make_number(n_rows));
  root.set("features", JsonValue::make_number(n_features));
  root.set("repeats", JsonValue::make_number(repeats));
  root.set("hardware_concurrency",
           JsonValue::make_number(std::thread::hardware_concurrency()));

  JsonValue sections = JsonValue::make_array();
  sections.push(bench_section("hist_build", repeats, [&](int n_threads) {
    HistParallel par{n_threads > 1 ? &shared_pool() : nullptr, n_threads};
    std::vector<HistEntry> hist;
    const std::vector<std::size_t> offsets = histogram_offsets(data.mapper);
    build_gradient_histogram(data.binned, offsets, data.features, data.rows.data(),
                             data.rows.size(), data.grad, data.hess, hist, par);
  }));
  sections.push(bench_section("grow_leafwise", repeats, [&](int n_threads) {
    grow_leafwise(data, n_threads);
  }));
  sections.push(bench_section("class_grow", repeats, [&](int n_threads) {
    grow_class(data, n_threads);
  }));
  sections.push(bench_section("forest_train", repeats, [&](int n_threads) {
    forest_string(data, n_threads);
  }));
  {
    ForestParams params;
    params.n_trees = 16;
    params.seed = 0x53ULL;
    ForestModel model = train_forest(DataView(data.regression), params);
    DataView view(data.regression);
    sections.push(bench_section("predict", repeats, [&](int n_threads) {
      model.predict(view, n_threads);
    }));
  }
  root.set("sections", std::move(sections));

  std::cerr << "kernel sweep (single thread):\n";
  double best_kernel_speedup = 0.0;
  bool kernels_identical = true;
  root.set("kernels",
           kernel_sweep(data, repeats, best_kernel_speedup, kernels_identical));
  root.set("determinism", determinism_report(data));

  const std::string serialized = dump_json(root);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << serialized;
  }
  std::cerr << "wrote " << out_path << "\n";

  if (args.has("check")) {
    check_result_file(out_path);
    const JsonValue* determinism = parse_json(serialized).find("determinism");
    const JsonValue* all_ok =
        determinism != nullptr ? determinism->find("all_identical") : nullptr;
    if (all_ok == nullptr || !all_ok->boolean) {
      std::cerr << "check failed: parallel models diverged from serial\n";
      return 1;
    }
    if (!kernels_identical) {
      std::cerr << "check failed: a packed kernel diverged from scalar\n";
      return 1;
    }
    std::cerr << "check passed\n";
  }
  const double min_speedup = args.get_double("min-speedup", 0.0);
  if (min_speedup > 0.0 && best_kernel_speedup < min_speedup) {
    std::cerr << "min-speedup failed: best packed kernel is x"
              << best_kernel_speedup << " vs scalar, needed x" << min_speedup
              << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace flaml::bench

int main(int argc, char** argv) {
  try {
    return flaml::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_tree_parallel: " << e.what() << "\n";
    return 1;
  }
}
