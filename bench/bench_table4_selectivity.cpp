// Table 4 reproduction: 95th-percentile q-error for selectivity estimation
// on the ten 2D–10D synthetic-table instances, comparing FLAML against the
// auto-sklearn analogue (TPE), the TPOT analogue (evolutionary search) and
// the Manual configuration (XGBoost-style, 16 trees, 16 leaves — the
// recommendation of Dutt et al. 2019). Search time is printed when a
// method exceeds the budget (baselines may overrun on a single big fit,
// like the paper's Table 4).
// Expected shape: FLAML <= baselines nearly everywhere and beats Manual.
//
// Flags: --budget=<s> (default 0.6, standing in for the paper's 1 minute)
//        --scale=<f> table/workload size multiplier (default 1)

#include <cstdio>

#include "args.h"
#include "selest/harness.h"

namespace fb = flaml::bench;
using namespace flaml;
using namespace flaml::selest;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 1.0);
  const double scale = args.get_double("scale", 1.0);

  std::printf("# Table 4: 95th-percentile q-error for selectivity estimation "
              "(budget %.2fs ~ paper's 1 CPU minute)\n",
              budget);
  std::printf("%-12s %-16s %-16s %-16s %-10s\n", "Dataset", "FLAML", "Auto-sk(TPE)",
              "TPOT(evo)", "Manual");

  int flaml_beats_manual = 0, flaml_best = 0, total = 0;
  for (SelestInstance instance : table4_instances()) {
    instance.table_rows = static_cast<std::size_t>(instance.table_rows * scale);
    instance.train_queries = static_cast<std::size_t>(instance.train_queries * scale);
    instance.test_queries = static_cast<std::size_t>(instance.test_queries * scale);
    SelestData data = make_selest_data(instance);

    SelestResult flaml_r = run_flaml(data, budget, 3);
    SelestResult tpe_r = run_baseline(data, BaselineKind::Tpe, budget, 3);
    SelestResult evo_r = run_baseline(data, BaselineKind::Evolution, budget, 3);
    SelestResult manual_r = run_manual(data, 3);

    auto cell = [&](const SelestResult& r) {
      static char buf[4][32];
      static int slot = 0;
      slot = (slot + 1) % 4;
      if (r.search_seconds > budget * 1.05) {
        std::snprintf(buf[slot], sizeof(buf[slot]), "%.2f(%.1fs)", r.q95,
                      r.search_seconds);
      } else {
        std::snprintf(buf[slot], sizeof(buf[slot]), "%.2f", r.q95);
      }
      return buf[slot];
    };
    std::printf("%-12s %-16s %-16s %-16s %-10.2f\n", instance.name.c_str(),
                cell(flaml_r), cell(tpe_r), cell(evo_r), manual_r.q95);

    ++total;
    if (flaml_r.q95 <= manual_r.q95) ++flaml_beats_manual;
    if (flaml_r.q95 <= tpe_r.q95 && flaml_r.q95 <= evo_r.q95) ++flaml_best;
  }
  std::printf("\n# FLAML beats Manual on %d/%d instances; best AutoML method on "
              "%d/%d\n",
              flaml_beats_manual, total, flaml_best, total);
  return 0;
}
