// Design-choice ablation (beyond the paper's figures): ECI-proportional
// SAMPLING of learners (Property 3 FairChance — what FLAML ships) versus
// GREEDY argmin-ECI selection. The paper argues randomization prevents the
// search from being starved by a mis-estimated ECI; greedy selection should
// occasionally lock onto one learner and lose on datasets where the early
// leader is not the eventual winner.
//
// Flags: --budget=<s> (default 0.5) --row-scale=<f> (0.3) --folds=<n> (2)
// Cached in greedy_sweep.csv.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "args.h"
#include "common/math_util.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 0.5);
  const double row_scale = args.get_double("row-scale", 0.3);
  const int folds = args.get_int("folds", 2);

  fb::SweepParams params;
  for (const auto& entry : benchmark_suite()) params.datasets.push_back(entry.name);
  params.methods = {fb::Method::Flaml, fb::Method::FlamlGreedy};
  params.budgets = {budget};
  params.row_scale = row_scale;
  params.folds = folds;
  params.budget_scale = budget / 600.0;
  auto records = fb::load_or_run_sweep(params, "greedy_sweep.csv");

  std::printf("# Design ablation: ECI sampling (flaml) vs greedy argmin-ECI\n");
  std::printf("%-18s %10s %10s %10s\n", "dataset", "sampling", "greedy", "diff");
  std::vector<double> diffs;
  for (const auto& name : params.datasets) {
    double s = fb::mean_scaled_score(records, name, fb::Method::Flaml, budget);
    double g = fb::mean_scaled_score(records, name, fb::Method::FlamlGreedy, budget);
    std::printf("%-18s %10.3f %10.3f %10.3f\n", name.c_str(), s, g, s - g);
    if (std::isfinite(s - g)) diffs.push_back(s - g);
  }
  if (!diffs.empty()) {
    std::printf("\nmedian diff=%+.3f mean diff=%+.3f frac sampling >= greedy=%.2f\n",
                quantile(diffs, 0.5), mean(diffs),
                static_cast<double>(std::count_if(diffs.begin(), diffs.end(),
                                                  [](double d) { return d >= 0.0; })) /
                    static_cast<double>(diffs.size()));
  }
  return 0;
}
