// Table 9 reproduction: percentage of tasks where FLAML has better or
// matching scaled score than each baseline while using a SMALLER budget
// (1 unit vs 10, 10 vs 60, 1 vs 60; the paper's 1m vs 10m / 10m vs 1h /
// 1m vs 1h). A 0.1% tolerance on the scaled score excludes marginal
// differences, exactly as in the paper's appendix.
//
// Reuses the fig5 sweep cache. Same flags as bench_fig5_scores.

#include <cmath>
#include <cstdio>

#include "args.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double unit = args.get_double("budget-unit", 0.05);
  const double row_scale = args.get_double("row-scale", 0.3);
  const int folds = args.get_int("folds", 1);

  fb::SweepParams params = fb::default_sweep(unit, row_scale, folds);
  auto records = fb::load_or_run_sweep(params, "fig5_sweep.csv");

  const double b1 = params.budgets[0], b10 = params.budgets[1], b60 = params.budgets[2];
  const double tolerance = 0.001;  // 0.1% of the scaled score

  std::printf("# Table 9: %% of tasks where FLAML >= baseline with a smaller "
              "budget (tolerance %.3f)\n",
              tolerance);
  std::printf("%-24s %-12s %-12s %-12s\n", "FLAML vs baseline", "1u vs 10u",
              "10u vs 60u", "1u vs 60u");

  const std::pair<double, double> comparisons[] = {{b1, b10}, {b10, b60}, {b1, b60}};
  for (fb::Method baseline : {fb::Method::Tpe, fb::Method::Random, fb::Method::Bohb,
                              fb::Method::Grid, fb::Method::Evolution}) {
    std::printf("FLAML vs %-15s", fb::method_name(baseline));
    for (auto [small_b, large_b] : comparisons) {
      int wins = 0, total = 0;
      for (const auto& name : params.datasets) {
        double f = fb::mean_scaled_score(records, name, fb::Method::Flaml, small_b);
        double b = fb::mean_scaled_score(records, name, baseline, large_b);
        if (!std::isfinite(f) || !std::isfinite(b)) continue;
        ++total;
        if (f >= b - tolerance) ++wins;
      }
      std::printf(" %3.0f%%        ",
                  total == 0 ? 0.0 : 100.0 * static_cast<double>(wins) / total);
    }
    std::printf("\n");
  }
  std::printf("\n# paper shape: >=58%% in every cell; FLAML at 1 minute beats "
              "most baselines' 1 hour on more than half the tasks\n");
  return 0;
}
