// Table 3 reproduction: the iteration-by-iteration case study of FLAML vs
// HpBandSter on one dataset — which configurations each method tries, when,
// at what cost. The paper's observation: FLAML starts with cheap configs
// (tree num 4, leaf num 4) and only moves to expensive ones after cheap
// trials justify it; HpBandSter samples expensive configs from the start.
//
// Flags: --budget=<s> (default 2) --row-scale=<f> (default 0.5) --rows=<n>

#include <cstdio>

#include "args.h"
#include "automl/automl.h"
#include "automl/baselines.h"
#include "data/suite.h"
#include "harness.h"
#include "learners/registry.h"

namespace fb = flaml::bench;
using namespace flaml;

namespace {

void print_history(const char* name, const TrialHistory& history, Task task,
                   std::size_t full_size, std::size_t max_rows) {
  std::printf("\n## %s\n", name);
  std::printf("%-5s %-9s %-10s %-9s %-9s %s\n", "Iter", "Time(s)", "Learner",
              "Error", "Cost(s)", "Config");
  std::size_t shown = 0;
  for (const auto& r : history) {
    if (shown++ >= max_rows) {
      std::printf("... (%zu more)\n", history.size() - max_rows);
      break;
    }
    ConfigSpace space = builtin_learner(r.learner)->space(task, full_size);
    std::printf("%-5d %-9.2f %-10s %-9.4f %-9.4f %s\n", r.iteration, r.finished_at,
                r.learner.c_str(), r.error, r.cost,
                config_to_string(r.config, space).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double budget = args.get_double("budget", 2.0);
  const double row_scale = args.get_double("row-scale", 0.5);
  const std::size_t max_rows = static_cast<std::size_t>(args.get_int("rows", 30));

  Dataset data = make_suite_dataset(suite_entry("higgs"), row_scale);
  std::printf("# Table 3: case study on higgs-analog (%zu rows), budget=%.2fs\n",
              data.n_rows(), budget);

  AutoML flaml_automl;
  AutoMLOptions fo;
  fo.time_budget_seconds = budget;
  fo.initial_sample_size = static_cast<std::size_t>(10000.0 * row_scale);
  fo.budget_scale = budget / 3600.0;
  fo.seed = 11;
  flaml_automl.fit(data, fo);

  BaselineAutoML bohb(BaselineKind::Bohb);
  BaselineOptions bo;
  bo.time_budget_seconds = budget;
  bo.min_fidelity = static_cast<std::size_t>(10000.0 * row_scale);
  bo.budget_scale = budget / 3600.0;
  bo.seed = 11;
  bohb.fit(data, bo);

  print_history("Config tried by FLAML", flaml_automl.history(), data.task(),
                data.n_rows(), max_rows);
  print_history("Config tried by HpBandSter(BOHB)", bohb.history(), data.task(),
                data.n_rows(), max_rows);

  // The paper's headline check: FLAML's first trial must be the cheapest
  // configuration; report the cost of each method's first trial.
  if (!flaml_automl.history().empty() && !bohb.history().empty()) {
    std::printf("\n# first-trial cost: flaml=%.4fs bohb=%.4fs\n",
                flaml_automl.history().front().cost, bohb.history().front().cost);
  }
  return 0;
}
