// Shared machinery for the paper-reproduction benches.
//
// Evaluation protocol (mirrors the AutoML benchmark used in the paper):
// each suite dataset is split once per fold-seed into 80% train / 20% test
// (stratified); a method fits on the train split under a wall-clock budget;
// the final model's error on the test split is calibrated into the "scaled
// score" where 0 = constant class-prior/mean predictor and 1 = a random
// forest tuned with a generous reference budget. Sweep results are cached
// in a CSV next to the binaries so Figure-6/Table-9 style derivations reuse
// the Figure-5 runs instead of recomputing them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "automl/automl.h"
#include "automl/baselines.h"
#include "data/suite.h"
#include "metrics/scaled_score.h"

namespace flaml::bench {

// Method identifiers. "flaml" plus ablations and the five baselines.
enum class Method {
  Flaml,
  FlamlRoundRobin,  // ablation: round-robin learner choice
  FlamlFullData,    // ablation: no subsampling
  FlamlCv,          // ablation: force cross-validation
  FlamlGreedy,      // design ablation: argmin-ECI instead of 1/ECI sampling
  Bohb,
  Tpe,
  Grid,
  Evolution,
  Random,
};

const char* method_name(Method method);
Method method_from_name(const std::string& name);

struct RunOutcome {
  double test_error = 0.0;    // benchmark metric on the held-out test split
  double scaled_score = 0.0;  // calibrated (0 = prior, 1 = tuned RF)
  double search_seconds = 0.0;
  TrialHistory history;
};

struct SweepParams {
  std::vector<std::string> datasets;      // suite names
  std::vector<Method> methods;
  std::vector<double> budgets;            // seconds (ascending)
  double row_scale = 0.3;                 // suite row-count multiplier
  int folds = 1;                          // independent split seeds
  double budget_scale = 1.0 / 60.0;       // paper-equivalent budget factor
  double reference_budget = 0.0;          // 0 = max(budgets) for the tuned RF
};

struct SweepRecord {
  std::string dataset;
  SuiteGroup group = SuiteGroup::Binary;
  Method method = Method::Flaml;
  double budget = 0.0;
  int fold = 0;
  double test_error = 0.0;
  double scaled_score = 0.0;
};

// Run one method on a pre-split dataset. `calibration` converts the test
// error into the scaled score.
RunOutcome run_method(Method method, const Dataset& train, const DataView& test,
                      const ErrorMetric& metric, const ScoreCalibration& calibration,
                      double budget_seconds, double budget_scale, std::uint64_t seed,
                      std::size_t initial_sample_size = 300);

// Calibration for one split: prior error of the constant predictor and the
// error of a random forest tuned by random search for `reference_budget`.
ScoreCalibration calibrate(const Dataset& train, const DataView& test,
                           const ErrorMetric& metric, double reference_budget,
                           std::uint64_t seed);

// Run (or load from `cache_path` if it already holds this sweep) the full
// dataset × method × budget × fold sweep.
std::vector<SweepRecord> load_or_run_sweep(const SweepParams& params,
                                           const std::string& cache_path,
                                           bool verbose = true);

// Mean scaled score across folds for (dataset, method, budget); NaN if absent.
double mean_scaled_score(const std::vector<SweepRecord>& records,
                         const std::string& dataset, Method method, double budget);

// Parse "a,b,c" into tokens.
std::vector<std::string> split_csv(const std::string& text);

// The default fig5 sweep (shared verbatim by fig5/fig6/table9 so the cache
// key matches); budgets ratio 1:3:10 standing in for the paper's 1m:10m:1h.
SweepParams default_sweep(double budget_unit, double row_scale, int folds);

}  // namespace flaml::bench
