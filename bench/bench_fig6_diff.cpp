// Figure 6 reproduction: box-plot statistics of the scaled-score difference
// between FLAML and each baseline, (row 1) at equal budgets and (row 2)
// with FLAML on a smaller budget (1 unit vs 10, and 10 vs 60). Positive
// difference = FLAML better. The paper's shape: medians clearly positive at
// equal budget; still around zero or positive at 10x smaller budget.
//
// Reuses the fig5 sweep cache (run bench_fig5_scores first, or this binary
// recomputes the sweep itself). Same flags as bench_fig5_scores.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "args.h"
#include "common/math_util.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

namespace {

void print_box(const char* label, std::vector<double> diffs) {
  if (diffs.empty()) return;
  std::printf("%-24s n=%-3zu min=%7.3f q1=%7.3f med=%7.3f q3=%7.3f max=%7.3f "
              "frac>0=%.2f\n",
              label, diffs.size(), quantile(diffs, 0.0), quantile(diffs, 0.25),
              quantile(diffs, 0.5), quantile(diffs, 0.75), quantile(diffs, 1.0),
              static_cast<double>(std::count_if(diffs.begin(), diffs.end(),
                                                [](double d) { return d > 0.0; })) /
                  static_cast<double>(diffs.size()));
}

}  // namespace

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double unit = args.get_double("budget-unit", 0.05);
  const double row_scale = args.get_double("row-scale", 0.3);
  const int folds = args.get_int("folds", 1);

  fb::SweepParams params = fb::default_sweep(unit, row_scale, folds);
  auto records = fb::load_or_run_sweep(params, "fig5_sweep.csv");

  const std::vector<fb::Method> baselines = {fb::Method::Bohb, fb::Method::Tpe,
                                             fb::Method::Grid, fb::Method::Evolution,
                                             fb::Method::Random};

  std::printf("# Figure 6: scaled-score difference FLAML - baseline "
              "(positive = FLAML better)\n");

  std::printf("\n## row 1: equal budgets\n");
  for (fb::Method baseline : baselines) {
    for (double budget : params.budgets) {
      std::vector<double> diffs;
      for (const auto& name : params.datasets) {
        double f = fb::mean_scaled_score(records, name, fb::Method::Flaml, budget);
        double b = fb::mean_scaled_score(records, name, baseline, budget);
        if (std::isfinite(f) && std::isfinite(b)) diffs.push_back(f - b);
      }
      char label[64];
      std::snprintf(label, sizeof(label), "vs %s @%.2fs", fb::method_name(baseline),
                    budget);
      print_box(label, std::move(diffs));
    }
  }

  std::printf("\n## row 2: FLAML with a smaller budget\n");
  const std::pair<double, double> pairs[] = {
      {params.budgets[0], params.budgets[1]},   // 1m vs 10m
      {params.budgets[1], params.budgets[2]}};  // 10m vs 1h
  for (fb::Method baseline : baselines) {
    for (auto [small_b, large_b] : pairs) {
      std::vector<double> diffs;
      for (const auto& name : params.datasets) {
        double f = fb::mean_scaled_score(records, name, fb::Method::Flaml, small_b);
        double b = fb::mean_scaled_score(records, name, baseline, large_b);
        if (std::isfinite(f) && std::isfinite(b)) diffs.push_back(f - b);
      }
      char label[64];
      std::snprintf(label, sizeof(label), "vs %s %.2f/%.2fs",
                    fb::method_name(baseline), small_b, large_b);
      print_box(label, std::move(diffs));
    }
  }
  return 0;
}
