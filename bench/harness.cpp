#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/clock.h"
#include "common/error.h"
#include "data/split.h"
#include "learners/registry.h"
#include "tuners/random_search.h"

namespace flaml::bench {

const char* method_name(Method method) {
  switch (method) {
    case Method::Flaml: return "flaml";
    case Method::FlamlRoundRobin: return "roundrobin";
    case Method::FlamlFullData: return "fulldata";
    case Method::FlamlCv: return "cv";
    case Method::FlamlGreedy: return "greedy";
    case Method::Bohb: return "bohb";
    case Method::Tpe: return "tpe";
    case Method::Grid: return "grid";
    case Method::Evolution: return "evolution";
    case Method::Random: return "random";
  }
  return "?";
}

Method method_from_name(const std::string& name) {
  for (Method m : {Method::Flaml, Method::FlamlRoundRobin, Method::FlamlFullData,
                   Method::FlamlCv, Method::FlamlGreedy, Method::Bohb, Method::Tpe,
                   Method::Grid, Method::Evolution, Method::Random}) {
    if (name == method_name(m)) return m;
  }
  throw InvalidArgument("unknown method '" + name + "'");
}

namespace {

// Error of the constant class-prior / mean predictor on the test split.
double prior_error(const Dataset& train, const DataView& test,
                   const ErrorMetric& metric) {
  Predictions pred;
  pred.task = train.task();
  if (is_classification(train.task())) {
    auto priors = train.class_priors();
    pred.n_classes = train.n_classes();
    pred.values.reserve(test.n_rows() * priors.size());
    for (std::size_t i = 0; i < test.n_rows(); ++i) {
      for (double p : priors) pred.values.push_back(p);
    }
  } else {
    double m = 0.0;
    for (double y : train.labels()) m += y;
    m /= static_cast<double>(train.n_rows());
    pred.n_classes = 0;
    pred.values.assign(test.n_rows(), m);
  }
  return metric(pred, test.labels());
}

bool is_flaml_variant(Method method) {
  return method == Method::Flaml || method == Method::FlamlRoundRobin ||
         method == Method::FlamlFullData || method == Method::FlamlCv ||
         method == Method::FlamlGreedy;
}

BaselineKind baseline_kind(Method method) {
  switch (method) {
    case Method::Bohb: return BaselineKind::Bohb;
    case Method::Tpe: return BaselineKind::Tpe;
    case Method::Grid: return BaselineKind::Grid;
    case Method::Evolution: return BaselineKind::Evolution;
    case Method::Random: return BaselineKind::Random;
    default: throw InternalError("not a baseline method");
  }
}

}  // namespace

ScoreCalibration calibrate(const Dataset& train, const DataView& test,
                           const ErrorMetric& metric, double reference_budget,
                           std::uint64_t seed) {
  ScoreCalibration cal;
  cal.prior_error = prior_error(train, test, metric);

  // Tuned random forest: random search over the rf space for the reference
  // budget, then evaluate the best config on the test split.
  LearnerPtr rf = builtin_learner("rf");
  ConfigSpace space = rf->space(train.task(), train.n_rows());
  TrialRunner::Options runner_options;
  runner_options.resampling = Resampling::Holdout;
  runner_options.seed = seed;
  TrialRunner runner(train, metric, runner_options);
  RandomSearch search(space, seed ^ 0x7ef5ULL);
  WallClock clock;
  while (clock.now() < reference_budget) {
    Config config = search.ask();
    TrialResult trial =
        runner.run(*rf, config, runner.max_sample_size(), reference_budget);
    if (trial.ok) search.tell(config, trial.error);
  }
  Config best = search.has_best() ? search.best_config() : space.initial_config();
  auto model = runner.train_final(*rf, best);
  cal.reference_error = metric(model->predict(test), test.labels());
  // Guard the calibration gap: when the tuned forest barely (or doesn't)
  // beat the prior on this split, raw scores would explode; cap reference
  // at 5% better than the prior so scores stay comparable across datasets.
  cal.reference_error =
      std::min(cal.reference_error, 0.95 * cal.prior_error);
  return cal;
}

RunOutcome run_method(Method method, const Dataset& train, const DataView& test,
                      const ErrorMetric& metric, const ScoreCalibration& calibration,
                      double budget_seconds, double budget_scale, std::uint64_t seed,
                      std::size_t initial_sample_size) {
  RunOutcome outcome;
  WallClock clock;
  Predictions pred;
  if (is_flaml_variant(method)) {
    AutoML automl;
    AutoMLOptions options;
    options.time_budget_seconds = budget_seconds;
    options.custom_metric = metric;
    options.initial_sample_size = initial_sample_size;
    options.budget_scale = budget_scale;
    options.seed = seed;
    if (method == Method::FlamlRoundRobin) {
      options.learner_choice = LearnerChoice::RoundRobin;
    } else if (method == Method::FlamlGreedy) {
      options.learner_choice = LearnerChoice::EciGreedy;
    } else if (method == Method::FlamlFullData) {
      options.sample_policy = SamplePolicy::FullData;
    } else if (method == Method::FlamlCv) {
      options.resampling = ResamplingPolicy::ForceCV;
    }
    automl.fit(train, options);
    outcome.history = automl.history();
    pred = automl.predict(test);
  } else {
    BaselineAutoML automl(baseline_kind(method));
    BaselineOptions options;
    options.time_budget_seconds = budget_seconds;
    options.metric = metric.name();
    options.budget_scale = budget_scale;
    options.min_fidelity = initial_sample_size;
    options.seed = seed;
    automl.fit(train, options);
    outcome.history = automl.history();
    pred = automl.predict(test);
  }
  outcome.search_seconds = clock.now();
  outcome.test_error = metric(pred, test.labels());
  outcome.scaled_score = scaled_score(outcome.test_error, calibration);
  return outcome;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

SweepParams default_sweep(double budget_unit, double row_scale, int folds) {
  SweepParams params;
  for (const auto& entry : benchmark_suite()) params.datasets.push_back(entry.name);
  params.methods = {Method::Flaml, Method::Bohb, Method::Tpe,
                    Method::Grid,  Method::Evolution, Method::Random};
  // 1 : 10 : 60 mirrors the paper's 1m / 10m / 1h budgets.
  params.budgets = {budget_unit, 10.0 * budget_unit, 60.0 * budget_unit};
  params.row_scale = row_scale;
  params.folds = folds;
  // budget_unit stands in for one paper-minute.
  params.budget_scale = budget_unit / 60.0;
  return params;
}

namespace {

std::string sweep_key(const SweepParams& params) {
  std::ostringstream os;
  os.precision(10);
  for (const auto& d : params.datasets) os << d << ';';
  os << '|';
  for (Method m : params.methods) os << method_name(m) << ';';
  os << '|';
  for (double b : params.budgets) os << b << ';';
  os << '|' << params.row_scale << '|' << params.folds << '|' << params.budget_scale
     << '|' << params.reference_budget;
  return os.str();
}

}  // namespace

std::vector<SweepRecord> load_or_run_sweep(const SweepParams& params,
                                           const std::string& cache_path,
                                           bool verbose) {
  const std::string key = sweep_key(params);
  // Try the cache: first line is the key, then one CSV row per record.
  {
    std::ifstream in(cache_path);
    std::string cached_key;
    if (in.good() && std::getline(in, cached_key) && cached_key == key) {
      std::vector<SweepRecord> records;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        auto cells = split_csv(line);
        if (cells.size() != 7) continue;
        SweepRecord r;
        r.dataset = cells[0];
        r.group = static_cast<SuiteGroup>(std::stoi(cells[1]));
        r.method = method_from_name(cells[2]);
        r.budget = std::stod(cells[3]);
        r.fold = std::stoi(cells[4]);
        r.test_error = std::stod(cells[5]);
        r.scaled_score = std::stod(cells[6]);
        records.push_back(std::move(r));
      }
      if (!records.empty()) {
        if (verbose) {
          std::fprintf(stderr, "[bench] reusing %zu cached sweep records from %s\n",
                       records.size(), cache_path.c_str());
        }
        return records;
      }
    }
  }

  const double reference_budget =
      params.reference_budget > 0.0
          ? params.reference_budget
          : *std::max_element(params.budgets.begin(), params.budgets.end());

  std::vector<SweepRecord> records;
  for (const auto& name : params.datasets) {
    const SuiteEntry& entry = suite_entry(name);
    Dataset data = make_suite_dataset(entry, params.row_scale);
    ErrorMetric metric = ErrorMetric::default_for(data.task());
    for (int fold = 0; fold < params.folds; ++fold) {
      Rng rng(1000 + static_cast<std::uint64_t>(fold) * 77);
      auto split = holdout_split(DataView(data), 0.2, rng);
      Dataset train = materialize(split.train);
      ScoreCalibration cal =
          calibrate(train, split.test, metric, reference_budget,
                    9000 + static_cast<std::uint64_t>(fold));
      for (Method method : params.methods) {
        for (double budget : params.budgets) {
          const std::size_t init_sample = static_cast<std::size_t>(
              std::max(500.0, 10000.0 * params.row_scale));
          RunOutcome outcome = run_method(
              method, train, split.test, metric, cal, budget, params.budget_scale,
              42 + static_cast<std::uint64_t>(fold), init_sample);
          SweepRecord r;
          r.dataset = name;
          r.group = entry.group;
          r.method = method;
          r.budget = budget;
          r.fold = fold;
          r.test_error = outcome.test_error;
          r.scaled_score = outcome.scaled_score;
          records.push_back(std::move(r));
          if (verbose) {
            std::fprintf(stderr, "[bench] %-18s %-10s b=%-6.2f fold=%d score=%.3f\n",
                         name.c_str(), method_name(method), budget, fold,
                         records.back().scaled_score);
          }
        }
      }
    }
  }

  std::ofstream out(cache_path);
  if (out.good()) {
    out << key << '\n';
    out.precision(12);
    for (const auto& r : records) {
      out << r.dataset << ',' << static_cast<int>(r.group) << ','
          << method_name(r.method) << ',' << r.budget << ',' << r.fold << ','
          << r.test_error << ',' << r.scaled_score << '\n';
    }
  }
  return records;
}

double mean_scaled_score(const std::vector<SweepRecord>& records,
                         const std::string& dataset, Method method, double budget) {
  double total = 0.0;
  int count = 0;
  for (const auto& r : records) {
    if (r.dataset == dataset && r.method == method &&
        std::fabs(r.budget - budget) < 1e-9) {
      total += r.scaled_score;
      ++count;
    }
  }
  return count == 0 ? std::nan("") : total / count;
}

}  // namespace flaml::bench
