// Micro benchmarks for the ML substrates (google-benchmark).
//
// These support Observation 3 of the paper: trial cost is ~linear in the
// sample size and in the cost-related hyperparameters (tree num, leaf num).
// The per-size/per-leaves timings printed here should scale ~linearly.

#include <benchmark/benchmark.h>

#include <numeric>

#include "boosting/gbdt.h"
#include "data/generators.h"
#include "forest/forest.h"
#include "linear/linear_model.h"
#include "tree/grower.h"

namespace {

using namespace flaml;

Dataset& bench_data() {
  static Dataset data = [] {
    SyntheticSpec spec;
    spec.task = Task::BinaryClassification;
    spec.n_rows = 20000;
    spec.n_features = 20;
    spec.seed = 5;
    return make_classification(spec);
  }();
  return data;
}

void BM_BinningFit(benchmark::State& state) {
  DataView view = DataView(bench_data()).prefix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinMapper::fit(view, 255));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BinningFit)->RangeMultiplier(4)->Range(1000, 16000)->Complexity();

void BM_HistogramTreeGrow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int leaves = static_cast<int>(state.range(1));
  DataView view = DataView(bench_data()).prefix(n);
  BinMapper mapper = BinMapper::fit(view, 255);
  BinnedMatrix binned = mapper.encode(view);
  GradientTreeGrower grower(mapper, binned);
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<double> grad(n), hess(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) grad[i] = view.label(i) - 0.5;
  std::vector<int> features(view.n_cols());
  std::iota(features.begin(), features.end(), 0);
  GrowerParams params;
  params.max_leaves = leaves;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grower.grow(rows, grad, hess, features, params, rng));
  }
}
BENCHMARK(BM_HistogramTreeGrow)
    ->Args({2000, 31})
    ->Args({8000, 31})
    ->Args({16000, 31})
    ->Args({8000, 7})
    ->Args({8000, 127});

void BM_GbdtTrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int trees = static_cast<int>(state.range(1));
  DataView view = DataView(bench_data()).prefix(n);
  GBDTParams params;
  params.n_trees = trees;
  params.max_leaves = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_gbdt(view, nullptr, params));
  }
}
BENCHMARK(BM_GbdtTrain)
    ->Args({1000, 10})
    ->Args({4000, 10})
    ->Args({16000, 10})
    ->Args({4000, 40});

void BM_GbdtPredict(benchmark::State& state) {
  DataView view = DataView(bench_data()).prefix(8000);
  GBDTParams params;
  params.n_trees = 30;
  params.max_leaves = 31;
  GBDTModel model = train_gbdt(view, nullptr, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(view));
  }
}
BENCHMARK(BM_GbdtPredict);

void BM_ForestTrain(benchmark::State& state) {
  DataView view = DataView(bench_data()).prefix(static_cast<std::size_t>(state.range(0)));
  ForestParams params;
  params.n_trees = 10;
  params.max_features = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_forest(view, params));
  }
}
BENCHMARK(BM_ForestTrain)->Arg(2000)->Arg(8000);

void BM_LogisticTrain(benchmark::State& state) {
  DataView view = DataView(bench_data()).prefix(static_cast<std::size_t>(state.range(0)));
  LinearParams params;
  params.max_iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_linear(view, params));
  }
}
BENCHMARK(BM_LogisticTrain)->Arg(2000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
