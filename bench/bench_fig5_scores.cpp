// Figure 5 reproduction: scaled scores of every AutoML method on every
// suite dataset at the three budgets (ratio 1:10:60, standing in for the
// paper's 1m / 10m / 1h). The paper shows these as radar charts grouped by
// task type; we print one table per (group, budget) with the same data —
// rows are datasets ordered by size (the radar's spokes), columns are
// methods. Scores: 0 = constant prior predictor, 1 = tuned random forest.
// Expected shape: FLAML wins most datasets at every budget.
//
// Flags: --budget-unit=<s> (default 0.05, i.e. one "paper minute")
//        --row-scale=<f> (default 0.3)  --folds=<n> (default 1)
//        --datasets=a,b,c (default: the whole suite)
//
// The sweep is cached in fig5_sweep.csv; bench_fig6_diff and
// bench_table9_budget reuse the same cache.

#include <cmath>
#include <cstdio>

#include "args.h"
#include "harness.h"

namespace fb = flaml::bench;
using namespace flaml;

int main(int argc, char** argv) {
  fb::Args args(argc, argv);
  const double unit = args.get_double("budget-unit", 0.05);
  const double row_scale = args.get_double("row-scale", 0.3);
  const int folds = args.get_int("folds", 1);

  fb::SweepParams params = fb::default_sweep(unit, row_scale, folds);
  if (args.has("datasets")) {
    params.datasets = fb::split_csv(args.get_string("datasets", ""));
  }
  auto records = fb::load_or_run_sweep(params, "fig5_sweep.csv");

  std::printf("# Figure 5: scaled scores (0 = prior predictor, 1 = tuned RF)\n");
  std::printf("# budgets %.2fs/%.2fs/%.2fs stand in for 1m/10m/1h\n",
              params.budgets[0], params.budgets[1], params.budgets[2]);

  for (SuiteGroup group : {SuiteGroup::Binary, SuiteGroup::MultiClass,
                           SuiteGroup::Regression}) {
    for (double budget : params.budgets) {
      std::printf("\n## %s, budget=%.2fs\n", suite_group_name(group), budget);
      std::printf("%-18s", "dataset");
      for (fb::Method m : params.methods) std::printf(" %10s", fb::method_name(m));
      std::printf("  winner\n");
      int flaml_wins = 0, rows = 0;
      for (const auto& entry : suite_group(group)) {
        std::printf("%-18s", entry.name.c_str());
        double best = -1e18;
        bool any = false;
        fb::Method best_method = fb::Method::Flaml;
        for (fb::Method m : params.methods) {
          double score = fb::mean_scaled_score(records, entry.name, m, budget);
          std::printf(" %10.3f", score);
          if (std::isfinite(score) && score > best) {
            best = score;
            best_method = m;
            any = true;
          }
        }
        if (!any) {
          std::printf("  (not run)\n");
          continue;
        }
        std::printf("  %s\n", fb::method_name(best_method));
        ++rows;
        if (best_method == fb::Method::Flaml) ++flaml_wins;
      }
      std::printf("-> flaml wins %d / %d datasets in this panel\n", flaml_wins, rows);
    }
  }
  return 0;
}
