#include "args.h"

#include <cstdlib>
#include <stdexcept>

namespace flaml::bench {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "1";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

int Args::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

std::string Args::get_string(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

}  // namespace flaml::bench
