// Prediction-serving benchmark for the micro-batching daemon
// (src/serve/predict_daemon.h). Trains a GBDT serving ensemble, compiles
// and saves it as a `flaml-compiled v1` artifact, then drives the daemon
// with concurrent client threads at several batch windows and writes
// machine-readable results to BENCH_predict_serve.json: a direct
// predict_many baseline plus, per (batch window × client count), per-request
// latency percentiles (p50/p90/p99), rows/sec throughput and the observed
// mean batch occupancy. Also re-asserts the serving bit-identity contract
// on the benchmark traffic: every daemon reply must be bit-identical to
// predicting that client's rows alone with predict_many — batching must
// never change a single output bit.
//
// Usage:
//   bench_predict_serve [--rows=N] [--features=N] [--trees=N] [--leaves=N]
//                       [--requests=N] [--request-rows=N]
//                       [--out=BENCH_predict_serve.json] [--check]
// --check re-reads the emitted file through the JSON parser, validates its
// shape and requires the bit-identity report to be all-true (the ctest
// smoke test and release CI run this).
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "boosting/gbdt.h"
#include "common/clock.h"
#include "common/json.h"
#include "data/generators.h"
#include "serve/predict_daemon.h"

namespace flaml::bench {
namespace {

struct WindowSpec {
  std::size_t max_batch_rows;
  int clients;
};

constexpr WindowSpec kWindows[] = {
    {1, 4},     // every request is its own batch (batching disabled)
    {64, 4},    // small window
    {256, 4},   // default window
    {256, 8},   // default window, more concurrency
};

std::vector<std::vector<float>> make_rows(std::size_t n_rows, std::size_t width,
                                          std::uint64_t seed) {
  std::vector<std::vector<float>> rows(n_rows, std::vector<float>(width));
  std::uint64_t state = seed;
  for (auto& row : rows) {
    for (float& v : row) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      v = static_cast<float>((state >> 33) % 2000) / 100.0f - 10.0f;
    }
  }
  return rows;
}

Dataset rows_to_dataset(const std::vector<std::vector<float>>& rows) {
  const std::size_t width = rows[0].size();
  Dataset data(Task::Regression, std::vector<ColumnInfo>(width, ColumnInfo{}));
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<float> column(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) column[r] = rows[r][c];
    data.set_column(c, std::move(column));
  }
  data.set_labels(std::vector<double>(rows.size(), 0.0));
  return data;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// One daemon configuration: `clients` threads each fire `requests`
// fixed-row requests back to back; every reply is bit-compared against the
// per-client direct predict_many reference.
JsonValue bench_window(const serve::CompiledModel& model,
                       const std::string& artifact_path, const WindowSpec& spec,
                       int requests, std::size_t request_rows,
                       bool* identical_out) {
  serve::PredictDaemonOptions options;
  options.max_batch_rows = spec.max_batch_rows;
  options.max_batch_delay_ms = 0.5;
  options.n_threads = 2;
  serve::PredictDaemon daemon(options);
  daemon.load(artifact_path);

  std::vector<std::vector<std::vector<float>>> rows(
      static_cast<std::size_t>(spec.clients));
  std::vector<Predictions> reference(static_cast<std::size_t>(spec.clients));
  for (int c = 0; c < spec.clients; ++c) {
    rows[c] = make_rows(request_rows, model.n_features(),
                        0x9000 + static_cast<std::uint64_t>(c));
    reference[c] = model.predict_many(DataView(rows_to_dataset(rows[c])), 1);
  }

  std::mutex merge_mutex;
  std::vector<double> latencies;
  double batch_rows_sum = 0.0;
  bool identical = true;
  WallClock clock;
  Stopwatch wall(clock);
  std::vector<std::thread> workers;
  for (int c = 0; c < spec.clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(requests));
      double local_batch_rows = 0.0;
      bool local_identical = true;
      for (int i = 0; i < requests; ++i) {
        Stopwatch timer(clock);
        const serve::PredictDaemon::Reply reply = daemon.predict(rows[c]);
        local.push_back(timer.elapsed());
        local_batch_rows += static_cast<double>(reply.batch_rows);
        local_identical = local_identical &&
                          bits_equal(reply.pred.values, reference[c].values);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
      batch_rows_sum += local_batch_rows;
      identical = identical && local_identical;
    });
  }
  for (auto& t : workers) t.join();
  const double wall_s = wall.elapsed();
  daemon.drain();

  std::sort(latencies.begin(), latencies.end());
  const double total_rows = static_cast<double>(request_rows) *
                            static_cast<double>(requests) *
                            static_cast<double>(spec.clients);

  JsonValue entry = JsonValue::make_object();
  entry.set("max_batch_rows",
            JsonValue::make_number(static_cast<double>(spec.max_batch_rows)));
  entry.set("clients", JsonValue::make_number(spec.clients));
  entry.set("requests", JsonValue::make_number(requests * spec.clients));
  entry.set("latency_p50_s", JsonValue::make_number(percentile(latencies, 50.0)));
  entry.set("latency_p90_s", JsonValue::make_number(percentile(latencies, 90.0)));
  entry.set("latency_p99_s", JsonValue::make_number(percentile(latencies, 99.0)));
  entry.set("rows_per_sec",
            JsonValue::make_number(wall_s > 0.0 ? total_rows / wall_s : 0.0));
  entry.set("mean_batch_rows",
            JsonValue::make_number(
                latencies.empty()
                    ? 0.0
                    : batch_rows_sum / static_cast<double>(latencies.size())));
  entry.set("bit_identical", JsonValue::make_bool(identical));
  if (identical_out != nullptr) *identical_out = identical;
  std::cerr << "  window=" << spec.max_batch_rows << " clients=" << spec.clients
            << ": p50=" << percentile(latencies, 50.0) << " s, "
            << (wall_s > 0.0 ? total_rows / wall_s : 0.0) << " rows/s, "
            << (identical ? "bit-identical" : "DIVERGED") << "\n";
  return entry;
}

// Single-call predict_many over the same total rows: the no-daemon floor.
JsonValue bench_direct(const serve::CompiledModel& model, int requests,
                       std::size_t request_rows) {
  const auto rows = make_rows(request_rows, model.n_features(), 0x9000);
  const Dataset data = rows_to_dataset(rows);
  const DataView view(data);
  WallClock clock;
  std::vector<double> latencies;
  model.predict_many(view, 2);  // warm-up
  for (int i = 0; i < requests; ++i) {
    Stopwatch timer(clock);
    model.predict_many(view, 2);
    latencies.push_back(timer.elapsed());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 50.0);
  JsonValue entry = JsonValue::make_object();
  entry.set("latency_p50_s", JsonValue::make_number(p50));
  entry.set("latency_p90_s", JsonValue::make_number(percentile(latencies, 90.0)));
  entry.set("latency_p99_s", JsonValue::make_number(percentile(latencies, 99.0)));
  entry.set("rows_per_sec",
            JsonValue::make_number(
                p50 > 0.0 ? static_cast<double>(request_rows) / p50 : 0.0));
  std::cerr << "  direct predict_many: p50=" << p50 << " s\n";
  return entry;
}

// Validate the shape --check depends on; throws on any mismatch.
void check_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  if (!root.is_object()) throw std::runtime_error("root is not an object");
  for (const char* key : {"rows", "features", "trees", "request_rows"}) {
    const JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("missing numeric field '") + key +
                               "'");
    }
  }
  const JsonValue* direct = root.find("direct");
  if (direct == nullptr || direct->find("latency_p50_s") == nullptr) {
    throw std::runtime_error("missing direct baseline");
  }
  const JsonValue* windows = root.find("windows");
  if (windows == nullptr || !windows->is_array() ||
      windows->array.size() != std::size(kWindows)) {
    throw std::runtime_error("missing windows array");
  }
  for (const JsonValue& entry : windows->array) {
    for (const char* key : {"latency_p50_s", "latency_p90_s", "latency_p99_s",
                            "rows_per_sec", "mean_batch_rows"}) {
      const JsonValue* v = entry.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0.0) {
        throw std::runtime_error(std::string("malformed timing field '") + key +
                                 "'");
      }
    }
    const JsonValue* identical = entry.find("bit_identical");
    if (identical == nullptr || !identical->is_bool()) {
      throw std::runtime_error("window lacks bit_identical");
    }
  }
  const JsonValue* report = root.find("bit_identity");
  if (report == nullptr || report->find("all_identical") == nullptr) {
    throw std::runtime_error("missing bit_identity report");
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const int n_rows = args.get_int("rows", 8000);
  const int n_features = args.get_int("features", 16);
  const int n_trees = args.get_int("trees", 150);
  const int n_leaves = args.get_int("leaves", 32);
  const int requests = args.get_int("requests", 50);
  const int request_rows = args.get_int("request-rows", 16);
  const std::string out_path = args.get_string("out", "BENCH_predict_serve.json");

  std::cerr << "bench_predict_serve: rows=" << n_rows
            << " features=" << n_features << " trees=" << n_trees
            << " requests/client=" << requests
            << " request_rows=" << request_rows << "\n";

  SyntheticSpec spec;
  spec.task = Task::Regression;
  spec.n_rows = static_cast<std::size_t>(n_rows);
  spec.n_features = n_features;
  spec.nonlinearity = 0.5;
  spec.missing_fraction = 0.05;
  spec.seed = 0xce11;
  const Dataset data = make_synthetic(spec);
  GBDTParams params;
  params.n_trees = n_trees;
  params.max_leaves = n_leaves;
  params.seed = 17;
  const GBDTModel gbdt = train_gbdt(DataView(data), nullptr, params);
  const serve::CompiledModel model = serve::compile(gbdt);
  const std::string artifact_path = out_path + ".artifact.bin";
  model.save_file(artifact_path);

  JsonValue root = JsonValue::make_object();
  root.set("benchmark", JsonValue::make_string("predict_serve"));
  root.set("rows", JsonValue::make_number(n_rows));
  root.set("features", JsonValue::make_number(n_features));
  root.set("trees", JsonValue::make_number(n_trees));
  root.set("request_rows", JsonValue::make_number(request_rows));
  root.set("hardware_concurrency",
           JsonValue::make_number(std::thread::hardware_concurrency()));

  root.set("direct",
           bench_direct(model, requests, static_cast<std::size_t>(request_rows)));

  JsonValue windows = JsonValue::make_array();
  bool all_identical = true;
  for (const WindowSpec& window : kWindows) {
    bool identical = true;
    windows.push(bench_window(model, artifact_path, window, requests,
                              static_cast<std::size_t>(request_rows),
                              &identical));
    all_identical = all_identical && identical;
  }
  root.set("windows", std::move(windows));

  JsonValue report = JsonValue::make_object();
  report.set("all_identical", JsonValue::make_bool(all_identical));
  root.set("bit_identity", std::move(report));
  std::remove(artifact_path.c_str());

  const std::string serialized = dump_json(root);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << serialized;
  }
  std::cerr << "wrote " << out_path << "\n";

  if (args.has("check")) {
    check_result_file(out_path);
    if (!all_identical) {
      std::cerr << "check failed: a daemon reply diverged from predict_many\n";
      return 1;
    }
    std::cerr << "check passed\n";
  }
  return 0;
}

}  // namespace
}  // namespace flaml::bench

int main(int argc, char** argv) {
  try {
    return flaml::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_predict_serve: " << e.what() << "\n";
    return 1;
  }
}
