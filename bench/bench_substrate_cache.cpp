// Microbenchmark for the cross-trial binned-substrate cache
// (src/automl/substrate_cache.h). Replays a FLOW2-like trial workload —
// (learner, config, sample_size) combos revisited many times, the pattern
// the search loop produces at every sample-size rung — through a TrialRunner
// with reuse_binned_data on and off, in holdout and CV mode, with 1 and 4
// concurrent trial workers, and writes machine-readable timings to
// BENCH_substrate_cache.json (per-section cache-on/off best-of-repeats
// seconds, speedup, and the cache's hit/miss/bytes counters). Also
// re-asserts the determinism contract on the benchmark inputs: per-trial
// validation errors must be bit-identical cache-on vs cache-off and for any
// worker count, and the result records whether that held.
//
// Usage:
//   bench_substrate_cache [--rows=N] [--features=N] [--trials=N]
//                         [--repeats=N] [--out=BENCH_substrate_cache.json]
//                         [--check]
// --check re-reads the emitted file through the JSON parser, validates its
// shape and requires the determinism report to be clean (non-zero exit
// otherwise) — that is what the ctest smoke test runs.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "automl/trial_runner.h"
#include "common/clock.h"
#include "common/json.h"
#include "data/generators.h"
#include "learners/registry.h"

namespace flaml::bench {
namespace {

constexpr int kWorkerCounts[] = {1, 4};

// One trial shape the workload cycles through. The salt makes the trial's
// training seed a pure function of the combo, so every (cache, workers)
// variant runs EXACTLY the same trials and their errors are comparable bit
// for bit.
struct Combo {
  LearnerPtr learner;
  Config config;
  std::size_t sample_size;
  std::uint64_t salt;
};

std::vector<Combo> make_combos(const Dataset& data, std::size_t max_sample) {
  std::vector<Combo> combos;
  std::uint64_t salt = 1;
  for (const char* name : {"lgbm", "rf"}) {
    LearnerPtr learner = builtin_learner(name);
    Config config = learner->space(data.task(), max_sample).initial_config();
    for (std::size_t s : {max_sample / 4, max_sample / 2, max_sample}) {
      combos.push_back(Combo{learner, config, s, salt++});
    }
  }
  return combos;
}

struct Outcome {
  std::vector<double> errors;  // per trial index, worker-order independent
  SubstrateCache::Counters counters;  // zeros when the cache is off
};

// Build a fresh runner (cold cache) and push `n_trials` trials through it
// from `n_workers` threads — the shape of a parallel search's trial loop.
Outcome run_workload(const Dataset& data, Resampling mode, bool reuse,
                     int n_workers, int n_trials,
                     const std::vector<Combo>& combos) {
  TrialRunner::Options options;
  options.resampling = mode;
  options.seed = 42;
  options.reuse_binned_data = reuse;
  TrialRunner runner(data, ErrorMetric::default_for(data.task()), options);

  Outcome outcome;
  outcome.errors.assign(static_cast<std::size_t>(n_trials), 0.0);
  auto work = [&](int worker) {
    for (int i = worker; i < n_trials; i += n_workers) {
      const Combo& combo = combos[static_cast<std::size_t>(i) % combos.size()];
      const TrialResult result = runner.run(*combo.learner, combo.config,
                                            combo.sample_size, 0.0, combo.salt);
      outcome.errors[static_cast<std::size_t>(i)] = result.error;
    }
  };
  if (n_workers <= 1) {
    work(0);
  } else {
    std::vector<std::thread> workers;
    for (int w = 0; w < n_workers; ++w) workers.emplace_back(work, w);
    for (auto& worker : workers) worker.join();
  }
  if (runner.substrate_cache() != nullptr) {
    outcome.counters = runner.substrate_cache()->counters();
  }
  return outcome;
}

bool errors_identical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// Best-of-`repeats` wall seconds; keeps the outcome of the last repeat.
template <typename Fn>
double best_seconds(int repeats, Outcome& outcome, Fn&& fn) {
  WallClock clock;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer(clock);
    outcome = fn();
    const double elapsed = timer.elapsed();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

// Validate the shape --check depends on; throws on any mismatch.
void check_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  if (!root.is_object()) throw std::runtime_error("root is not an object");
  for (const char* key : {"rows", "features", "trials", "hardware_concurrency"}) {
    const JsonValue* v = root.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("missing numeric field '") + key + "'");
    }
  }
  const JsonValue* determinism = root.find("determinism");
  if (determinism == nullptr || determinism->find("all_identical") == nullptr) {
    throw std::runtime_error("missing determinism report");
  }
  const JsonValue* sections = root.find("sections");
  if (sections == nullptr || !sections->is_array() || sections->array.empty()) {
    throw std::runtime_error("missing sections array");
  }
  for (const JsonValue& section : sections->array) {
    for (const char* key : {"seconds_cache_on", "seconds_cache_off",
                            "speedup_cache_on"}) {
      const JsonValue* v = section.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0.0) {
        throw std::runtime_error(std::string("malformed section field '") + key +
                                 "'");
      }
    }
    const JsonValue* counters = section.find("cache_counters");
    if (counters == nullptr || counters->find("hits") == nullptr ||
        counters->find("misses") == nullptr ||
        counters->find("bytes") == nullptr) {
      throw std::runtime_error("section lacks cache counters");
    }
    if (counters->find("hits")->number <= 0.0) {
      throw std::runtime_error("cache-on section recorded no cache hits");
    }
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const int n_rows = args.get_int("rows", 4000);
  const int n_features = args.get_int("features", 16);
  const int n_trials = args.get_int("trials", 48);
  const int repeats = args.get_int("repeats", 3);
  const std::string out_path = args.get_string("out", "BENCH_substrate_cache.json");

  std::cerr << "bench_substrate_cache: rows=" << n_rows
            << " features=" << n_features << " trials=" << n_trials
            << " repeats=" << repeats << "\n";

  SyntheticSpec spec;
  spec.task = Task::BinaryClassification;
  spec.n_rows = static_cast<std::size_t>(n_rows);
  spec.n_features = n_features;
  spec.categorical_fraction = 0.25;
  spec.missing_fraction = 0.05;
  spec.seed = 0xcac4eULL;
  const Dataset data = make_classification(spec);

  JsonValue root = JsonValue::make_object();
  root.set("benchmark", JsonValue::make_string("substrate_cache"));
  root.set("rows", JsonValue::make_number(n_rows));
  root.set("features", JsonValue::make_number(n_features));
  root.set("trials", JsonValue::make_number(n_trials));
  root.set("repeats", JsonValue::make_number(repeats));
  root.set("hardware_concurrency",
           JsonValue::make_number(std::thread::hardware_concurrency()));

  JsonValue determinism = JsonValue::make_object();
  bool all_identical = true;

  JsonValue sections = JsonValue::make_array();
  for (Resampling mode : {Resampling::Holdout, Resampling::CV}) {
    // The sample-size schedule works off the runner's train view, which is
    // smaller than the dataset in holdout mode; a quick probe gets the size.
    std::size_t max_sample;
    {
      TrialRunner::Options probe;
      probe.resampling = mode;
      probe.seed = 42;
      TrialRunner runner(data, ErrorMetric::default_for(data.task()), probe);
      max_sample = runner.max_sample_size();
    }
    const std::vector<Combo> combos = make_combos(data, max_sample);

    std::vector<double> reference_errors;  // workers=1, cache on
    for (int n_workers : kWorkerCounts) {
      Outcome on, off;
      const double seconds_on = best_seconds(repeats, on, [&] {
        return run_workload(data, mode, true, n_workers, n_trials, combos);
      });
      const double seconds_off = best_seconds(repeats, off, [&] {
        return run_workload(data, mode, false, n_workers, n_trials, combos);
      });
      const double speedup = seconds_on > 0.0 ? seconds_off / seconds_on : 0.0;

      const std::string label = std::string(resampling_name(mode)) +
                                " workers=" + std::to_string(n_workers);
      const bool on_off_identical = errors_identical(on.errors, off.errors);
      if (reference_errors.empty()) reference_errors = on.errors;
      const bool workers_identical =
          errors_identical(on.errors, reference_errors);
      all_identical = all_identical && on_off_identical && workers_identical;
      if (!on_off_identical) {
        std::cerr << "DETERMINISM VIOLATION: " << label
                  << " cache-on errors differ from cache-off\n";
      }
      if (!workers_identical) {
        std::cerr << "DETERMINISM VIOLATION: " << label
                  << " errors depend on worker count\n";
      }

      JsonValue section = JsonValue::make_object();
      section.set("mode", JsonValue::make_string(resampling_name(mode)));
      section.set("workers", JsonValue::make_number(n_workers));
      section.set("seconds_cache_on", JsonValue::make_number(seconds_on));
      section.set("seconds_cache_off", JsonValue::make_number(seconds_off));
      section.set("speedup_cache_on", JsonValue::make_number(speedup));
      section.set("errors_identical",
                  JsonValue::make_bool(on_off_identical && workers_identical));
      JsonValue counters = JsonValue::make_object();
      counters.set("hits", JsonValue::make_number(
                               static_cast<double>(on.counters.hits)));
      counters.set("misses", JsonValue::make_number(
                                 static_cast<double>(on.counters.misses)));
      counters.set("bytes", JsonValue::make_number(
                                static_cast<double>(on.counters.bytes)));
      section.set("cache_counters", std::move(counters));
      sections.push(std::move(section));

      std::cerr << "  " << label << ": cache on " << seconds_on << " s, off "
                << seconds_off << " s, speedup " << speedup << "x (hits "
                << on.counters.hits << ", misses " << on.counters.misses
                << ")\n";
    }
  }
  root.set("sections", std::move(sections));
  determinism.set("all_identical", JsonValue::make_bool(all_identical));
  root.set("determinism", std::move(determinism));

  const std::string serialized = dump_json(root);
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << serialized;
  }
  std::cerr << "wrote " << out_path << "\n";

  if (args.has("check")) {
    check_result_file(out_path);
    if (!all_identical) {
      std::cerr << "check failed: cached trials diverged from fresh ones\n";
      return 1;
    }
    std::cerr << "check passed\n";
  }
  return 0;
}

}  // namespace
}  // namespace flaml::bench

int main(int argc, char** argv) {
  try {
    return flaml::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_substrate_cache: " << e.what() << "\n";
    return 1;
  }
}
