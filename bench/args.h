// Tiny --key=value argument parser shared by the bench binaries.
#pragma once

#include <map>
#include <string>

namespace flaml::bench {

class Args {
 public:
  Args(int argc, char** argv);

  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace flaml::bench
